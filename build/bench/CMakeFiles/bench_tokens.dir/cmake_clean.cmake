file(REMOVE_RECURSE
  "CMakeFiles/bench_tokens.dir/bench_tokens.cpp.o"
  "CMakeFiles/bench_tokens.dir/bench_tokens.cpp.o.d"
  "bench_tokens"
  "bench_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
