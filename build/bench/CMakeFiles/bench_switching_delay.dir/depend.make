# Empty dependencies file for bench_switching_delay.
# This may be replaced when dependencies are built.
