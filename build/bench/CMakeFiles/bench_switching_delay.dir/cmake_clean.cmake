file(REMOVE_RECURSE
  "CMakeFiles/bench_switching_delay.dir/bench_switching_delay.cpp.o"
  "CMakeFiles/bench_switching_delay.dir/bench_switching_delay.cpp.o.d"
  "bench_switching_delay"
  "bench_switching_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switching_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
