
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scalability.cpp" "bench/CMakeFiles/bench_scalability.dir/bench_scalability.cpp.o" "gcc" "bench/CMakeFiles/bench_scalability.dir/bench_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/directory/CMakeFiles/srp_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/srp_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/srp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/congestion/CMakeFiles/srp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/viper/CMakeFiles/srp_viper.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/srp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tokens/CMakeFiles/srp_tokens.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/srp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/srp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/srp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
