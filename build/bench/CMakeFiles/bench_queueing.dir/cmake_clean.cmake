file(REMOVE_RECURSE
  "CMakeFiles/bench_queueing.dir/bench_queueing.cpp.o"
  "CMakeFiles/bench_queueing.dir/bench_queueing.cpp.o.d"
  "bench_queueing"
  "bench_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
