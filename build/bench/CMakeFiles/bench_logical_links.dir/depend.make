# Empty dependencies file for bench_logical_links.
# This may be replaced when dependencies are built.
