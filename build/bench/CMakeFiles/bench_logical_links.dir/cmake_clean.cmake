file(REMOVE_RECURSE
  "CMakeFiles/bench_logical_links.dir/bench_logical_links.cpp.o"
  "CMakeFiles/bench_logical_links.dir/bench_logical_links.cpp.o.d"
  "bench_logical_links"
  "bench_logical_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logical_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
