file(REMOVE_RECURSE
  "libsrp_vmtp.a"
)
