file(REMOVE_RECURSE
  "CMakeFiles/srp_vmtp.dir/header.cpp.o"
  "CMakeFiles/srp_vmtp.dir/header.cpp.o.d"
  "CMakeFiles/srp_vmtp.dir/vmtp.cpp.o"
  "CMakeFiles/srp_vmtp.dir/vmtp.cpp.o.d"
  "libsrp_vmtp.a"
  "libsrp_vmtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_vmtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
