# Empty compiler generated dependencies file for srp_vmtp.
# This may be replaced when dependencies are built.
