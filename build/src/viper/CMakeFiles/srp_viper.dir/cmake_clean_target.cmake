file(REMOVE_RECURSE
  "libsrp_viper.a"
)
