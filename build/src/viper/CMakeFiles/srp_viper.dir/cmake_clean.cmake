file(REMOVE_RECURSE
  "CMakeFiles/srp_viper.dir/codec.cpp.o"
  "CMakeFiles/srp_viper.dir/codec.cpp.o.d"
  "CMakeFiles/srp_viper.dir/host.cpp.o"
  "CMakeFiles/srp_viper.dir/host.cpp.o.d"
  "CMakeFiles/srp_viper.dir/router.cpp.o"
  "CMakeFiles/srp_viper.dir/router.cpp.o.d"
  "libsrp_viper.a"
  "libsrp_viper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_viper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
