# Empty dependencies file for srp_viper.
# This may be replaced when dependencies are built.
