file(REMOVE_RECURSE
  "CMakeFiles/srp_net.dir/ethernet.cpp.o"
  "CMakeFiles/srp_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/srp_net.dir/lan.cpp.o"
  "CMakeFiles/srp_net.dir/lan.cpp.o.d"
  "CMakeFiles/srp_net.dir/port.cpp.o"
  "CMakeFiles/srp_net.dir/port.cpp.o.d"
  "libsrp_net.a"
  "libsrp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
