# Empty compiler generated dependencies file for srp_net.
# This may be replaced when dependencies are built.
