file(REMOVE_RECURSE
  "libsrp_net.a"
)
