file(REMOVE_RECURSE
  "CMakeFiles/srp_core.dir/multicast.cpp.o"
  "CMakeFiles/srp_core.dir/multicast.cpp.o.d"
  "CMakeFiles/srp_core.dir/trailer.cpp.o"
  "CMakeFiles/srp_core.dir/trailer.cpp.o.d"
  "libsrp_core.a"
  "libsrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
