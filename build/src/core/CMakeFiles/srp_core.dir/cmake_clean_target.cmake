file(REMOVE_RECURSE
  "libsrp_core.a"
)
