
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/multicast.cpp" "src/core/CMakeFiles/srp_core.dir/multicast.cpp.o" "gcc" "src/core/CMakeFiles/srp_core.dir/multicast.cpp.o.d"
  "/root/repo/src/core/trailer.cpp" "src/core/CMakeFiles/srp_core.dir/trailer.cpp.o" "gcc" "src/core/CMakeFiles/srp_core.dir/trailer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/srp_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
