file(REMOVE_RECURSE
  "CMakeFiles/srp_crypto.dir/siphash.cpp.o"
  "CMakeFiles/srp_crypto.dir/siphash.cpp.o.d"
  "CMakeFiles/srp_crypto.dir/xtea.cpp.o"
  "CMakeFiles/srp_crypto.dir/xtea.cpp.o.d"
  "libsrp_crypto.a"
  "libsrp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
