# Empty compiler generated dependencies file for srp_crypto.
# This may be replaced when dependencies are built.
