file(REMOVE_RECURSE
  "libsrp_crypto.a"
)
