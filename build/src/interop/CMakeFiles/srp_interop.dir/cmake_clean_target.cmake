file(REMOVE_RECURSE
  "libsrp_interop.a"
)
