file(REMOVE_RECURSE
  "CMakeFiles/srp_interop.dir/ip_gateway.cpp.o"
  "CMakeFiles/srp_interop.dir/ip_gateway.cpp.o.d"
  "libsrp_interop.a"
  "libsrp_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
