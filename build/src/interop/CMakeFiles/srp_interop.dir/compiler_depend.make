# Empty compiler generated dependencies file for srp_interop.
# This may be replaced when dependencies are built.
