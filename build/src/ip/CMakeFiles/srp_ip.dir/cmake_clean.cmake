file(REMOVE_RECURSE
  "CMakeFiles/srp_ip.dir/dv.cpp.o"
  "CMakeFiles/srp_ip.dir/dv.cpp.o.d"
  "CMakeFiles/srp_ip.dir/header.cpp.o"
  "CMakeFiles/srp_ip.dir/header.cpp.o.d"
  "CMakeFiles/srp_ip.dir/host.cpp.o"
  "CMakeFiles/srp_ip.dir/host.cpp.o.d"
  "CMakeFiles/srp_ip.dir/router.cpp.o"
  "CMakeFiles/srp_ip.dir/router.cpp.o.d"
  "libsrp_ip.a"
  "libsrp_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
