# Empty compiler generated dependencies file for srp_ip.
# This may be replaced when dependencies are built.
