file(REMOVE_RECURSE
  "libsrp_ip.a"
)
