
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/dv.cpp" "src/ip/CMakeFiles/srp_ip.dir/dv.cpp.o" "gcc" "src/ip/CMakeFiles/srp_ip.dir/dv.cpp.o.d"
  "/root/repo/src/ip/header.cpp" "src/ip/CMakeFiles/srp_ip.dir/header.cpp.o" "gcc" "src/ip/CMakeFiles/srp_ip.dir/header.cpp.o.d"
  "/root/repo/src/ip/host.cpp" "src/ip/CMakeFiles/srp_ip.dir/host.cpp.o" "gcc" "src/ip/CMakeFiles/srp_ip.dir/host.cpp.o.d"
  "/root/repo/src/ip/router.cpp" "src/ip/CMakeFiles/srp_ip.dir/router.cpp.o" "gcc" "src/ip/CMakeFiles/srp_ip.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/srp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/srp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
