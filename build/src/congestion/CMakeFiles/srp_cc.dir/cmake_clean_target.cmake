file(REMOVE_RECURSE
  "libsrp_cc.a"
)
