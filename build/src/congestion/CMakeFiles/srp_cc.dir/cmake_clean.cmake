file(REMOVE_RECURSE
  "CMakeFiles/srp_cc.dir/controller.cpp.o"
  "CMakeFiles/srp_cc.dir/controller.cpp.o.d"
  "CMakeFiles/srp_cc.dir/messages.cpp.o"
  "CMakeFiles/srp_cc.dir/messages.cpp.o.d"
  "CMakeFiles/srp_cc.dir/throttle.cpp.o"
  "CMakeFiles/srp_cc.dir/throttle.cpp.o.d"
  "libsrp_cc.a"
  "libsrp_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
