# Empty compiler generated dependencies file for srp_cc.
# This may be replaced when dependencies are built.
