file(REMOVE_RECURSE
  "libsrp_sim.a"
)
