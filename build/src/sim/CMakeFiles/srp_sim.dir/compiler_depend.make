# Empty compiler generated dependencies file for srp_sim.
# This may be replaced when dependencies are built.
