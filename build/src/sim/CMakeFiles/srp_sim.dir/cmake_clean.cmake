file(REMOVE_RECURSE
  "CMakeFiles/srp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/srp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/srp_sim.dir/random.cpp.o"
  "CMakeFiles/srp_sim.dir/random.cpp.o.d"
  "CMakeFiles/srp_sim.dir/simulator.cpp.o"
  "CMakeFiles/srp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/srp_sim.dir/trace.cpp.o"
  "CMakeFiles/srp_sim.dir/trace.cpp.o.d"
  "libsrp_sim.a"
  "libsrp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
