file(REMOVE_RECURSE
  "CMakeFiles/srp_wire.dir/buffer.cpp.o"
  "CMakeFiles/srp_wire.dir/buffer.cpp.o.d"
  "CMakeFiles/srp_wire.dir/checksum.cpp.o"
  "CMakeFiles/srp_wire.dir/checksum.cpp.o.d"
  "CMakeFiles/srp_wire.dir/crc32.cpp.o"
  "CMakeFiles/srp_wire.dir/crc32.cpp.o.d"
  "libsrp_wire.a"
  "libsrp_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
