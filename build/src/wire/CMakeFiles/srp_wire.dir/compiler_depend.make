# Empty compiler generated dependencies file for srp_wire.
# This may be replaced when dependencies are built.
