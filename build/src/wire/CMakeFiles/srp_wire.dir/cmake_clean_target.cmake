file(REMOVE_RECURSE
  "libsrp_wire.a"
)
