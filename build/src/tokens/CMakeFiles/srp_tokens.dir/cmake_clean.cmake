file(REMOVE_RECURSE
  "CMakeFiles/srp_tokens.dir/cache.cpp.o"
  "CMakeFiles/srp_tokens.dir/cache.cpp.o.d"
  "CMakeFiles/srp_tokens.dir/token.cpp.o"
  "CMakeFiles/srp_tokens.dir/token.cpp.o.d"
  "libsrp_tokens.a"
  "libsrp_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
