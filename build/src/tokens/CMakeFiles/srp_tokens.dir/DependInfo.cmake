
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokens/cache.cpp" "src/tokens/CMakeFiles/srp_tokens.dir/cache.cpp.o" "gcc" "src/tokens/CMakeFiles/srp_tokens.dir/cache.cpp.o.d"
  "/root/repo/src/tokens/token.cpp" "src/tokens/CMakeFiles/srp_tokens.dir/token.cpp.o" "gcc" "src/tokens/CMakeFiles/srp_tokens.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/srp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/srp_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
