# Empty dependencies file for srp_tokens.
# This may be replaced when dependencies are built.
