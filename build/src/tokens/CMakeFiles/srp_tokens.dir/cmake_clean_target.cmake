file(REMOVE_RECURSE
  "libsrp_tokens.a"
)
