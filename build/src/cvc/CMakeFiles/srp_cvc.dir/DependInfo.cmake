
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cvc/host.cpp" "src/cvc/CMakeFiles/srp_cvc.dir/host.cpp.o" "gcc" "src/cvc/CMakeFiles/srp_cvc.dir/host.cpp.o.d"
  "/root/repo/src/cvc/switch.cpp" "src/cvc/CMakeFiles/srp_cvc.dir/switch.cpp.o" "gcc" "src/cvc/CMakeFiles/srp_cvc.dir/switch.cpp.o.d"
  "/root/repo/src/cvc/wire.cpp" "src/cvc/CMakeFiles/srp_cvc.dir/wire.cpp.o" "gcc" "src/cvc/CMakeFiles/srp_cvc.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/srp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/srp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
