file(REMOVE_RECURSE
  "libsrp_cvc.a"
)
