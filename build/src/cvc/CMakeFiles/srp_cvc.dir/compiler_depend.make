# Empty compiler generated dependencies file for srp_cvc.
# This may be replaced when dependencies are built.
