file(REMOVE_RECURSE
  "CMakeFiles/srp_cvc.dir/host.cpp.o"
  "CMakeFiles/srp_cvc.dir/host.cpp.o.d"
  "CMakeFiles/srp_cvc.dir/switch.cpp.o"
  "CMakeFiles/srp_cvc.dir/switch.cpp.o.d"
  "CMakeFiles/srp_cvc.dir/wire.cpp.o"
  "CMakeFiles/srp_cvc.dir/wire.cpp.o.d"
  "libsrp_cvc.a"
  "libsrp_cvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_cvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
