file(REMOVE_RECURSE
  "CMakeFiles/srp_dir.dir/client.cpp.o"
  "CMakeFiles/srp_dir.dir/client.cpp.o.d"
  "CMakeFiles/srp_dir.dir/directory.cpp.o"
  "CMakeFiles/srp_dir.dir/directory.cpp.o.d"
  "CMakeFiles/srp_dir.dir/fabric.cpp.o"
  "CMakeFiles/srp_dir.dir/fabric.cpp.o.d"
  "CMakeFiles/srp_dir.dir/routes.cpp.o"
  "CMakeFiles/srp_dir.dir/routes.cpp.o.d"
  "CMakeFiles/srp_dir.dir/topology.cpp.o"
  "CMakeFiles/srp_dir.dir/topology.cpp.o.d"
  "libsrp_dir.a"
  "libsrp_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
