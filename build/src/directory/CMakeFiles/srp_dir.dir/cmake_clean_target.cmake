file(REMOVE_RECURSE
  "libsrp_dir.a"
)
