# Empty compiler generated dependencies file for srp_dir.
# This may be replaced when dependencies are built.
