# Empty dependencies file for srp_dirsvc.
# This may be replaced when dependencies are built.
