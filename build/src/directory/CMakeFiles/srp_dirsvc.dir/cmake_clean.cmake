file(REMOVE_RECURSE
  "CMakeFiles/srp_dirsvc.dir/remote.cpp.o"
  "CMakeFiles/srp_dirsvc.dir/remote.cpp.o.d"
  "libsrp_dirsvc.a"
  "libsrp_dirsvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_dirsvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
