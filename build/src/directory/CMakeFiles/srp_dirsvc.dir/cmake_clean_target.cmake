file(REMOVE_RECURSE
  "libsrp_dirsvc.a"
)
