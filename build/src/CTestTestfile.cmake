# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("wire")
subdirs("crypto")
subdirs("stats")
subdirs("net")
subdirs("core")
subdirs("viper")
subdirs("tokens")
subdirs("congestion")
subdirs("directory")
subdirs("transport")
subdirs("ip")
subdirs("cvc")
subdirs("workload")
subdirs("interop")
