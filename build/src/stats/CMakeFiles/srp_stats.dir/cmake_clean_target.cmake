file(REMOVE_RECURSE
  "libsrp_stats.a"
)
