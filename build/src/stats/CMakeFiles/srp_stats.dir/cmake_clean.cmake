file(REMOVE_RECURSE
  "CMakeFiles/srp_stats.dir/histogram.cpp.o"
  "CMakeFiles/srp_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/srp_stats.dir/queueing.cpp.o"
  "CMakeFiles/srp_stats.dir/queueing.cpp.o.d"
  "CMakeFiles/srp_stats.dir/summary.cpp.o"
  "CMakeFiles/srp_stats.dir/summary.cpp.o.d"
  "CMakeFiles/srp_stats.dir/table.cpp.o"
  "CMakeFiles/srp_stats.dir/table.cpp.o.d"
  "libsrp_stats.a"
  "libsrp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
