# Empty dependencies file for srp_stats.
# This may be replaced when dependencies are built.
