file(REMOVE_RECURSE
  "CMakeFiles/vmtp_test.dir/vmtp_test.cpp.o"
  "CMakeFiles/vmtp_test.dir/vmtp_test.cpp.o.d"
  "vmtp_test"
  "vmtp_test.pdb"
  "vmtp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
