# Empty dependencies file for tokens_test.
# This may be replaced when dependencies are built.
