file(REMOVE_RECURSE
  "CMakeFiles/tokens_test.dir/tokens_test.cpp.o"
  "CMakeFiles/tokens_test.dir/tokens_test.cpp.o.d"
  "tokens_test"
  "tokens_test.pdb"
  "tokens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
