file(REMOVE_RECURSE
  "CMakeFiles/viper_codec_test.dir/viper_codec_test.cpp.o"
  "CMakeFiles/viper_codec_test.dir/viper_codec_test.cpp.o.d"
  "viper_codec_test"
  "viper_codec_test.pdb"
  "viper_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
