file(REMOVE_RECURSE
  "CMakeFiles/interop_test.dir/interop_test.cpp.o"
  "CMakeFiles/interop_test.dir/interop_test.cpp.o.d"
  "interop_test"
  "interop_test.pdb"
  "interop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
