# Empty dependencies file for cvc_test.
# This may be replaced when dependencies are built.
