file(REMOVE_RECURSE
  "CMakeFiles/cvc_test.dir/cvc_test.cpp.o"
  "CMakeFiles/cvc_test.dir/cvc_test.cpp.o.d"
  "cvc_test"
  "cvc_test.pdb"
  "cvc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
