# Empty dependencies file for remote_directory_test.
# This may be replaced when dependencies are built.
