file(REMOVE_RECURSE
  "CMakeFiles/remote_directory_test.dir/remote_directory_test.cpp.o"
  "CMakeFiles/remote_directory_test.dir/remote_directory_test.cpp.o.d"
  "remote_directory_test"
  "remote_directory_test.pdb"
  "remote_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
