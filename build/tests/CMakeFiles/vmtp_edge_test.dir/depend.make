# Empty dependencies file for vmtp_edge_test.
# This may be replaced when dependencies are built.
