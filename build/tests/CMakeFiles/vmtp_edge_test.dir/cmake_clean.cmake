file(REMOVE_RECURSE
  "CMakeFiles/vmtp_edge_test.dir/vmtp_edge_test.cpp.o"
  "CMakeFiles/vmtp_edge_test.dir/vmtp_edge_test.cpp.o.d"
  "vmtp_edge_test"
  "vmtp_edge_test.pdb"
  "vmtp_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtp_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
