# Empty dependencies file for viper_routing_test.
# This may be replaced when dependencies are built.
