file(REMOVE_RECURSE
  "CMakeFiles/viper_routing_test.dir/viper_routing_test.cpp.o"
  "CMakeFiles/viper_routing_test.dir/viper_routing_test.cpp.o.d"
  "viper_routing_test"
  "viper_routing_test.pdb"
  "viper_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
