# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/viper_codec_test[1]_include.cmake")
include("/root/repo/build/tests/viper_routing_test[1]_include.cmake")
include("/root/repo/build/tests/tokens_test[1]_include.cmake")
include("/root/repo/build/tests/directory_test[1]_include.cmake")
include("/root/repo/build/tests/congestion_test[1]_include.cmake")
include("/root/repo/build/tests/vmtp_test[1]_include.cmake")
include("/root/repo/build/tests/ip_test[1]_include.cmake")
include("/root/repo/build/tests/cvc_test[1]_include.cmake")
include("/root/repo/build/tests/interop_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/remote_directory_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/vmtp_edge_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stress_test[1]_include.cmake")
include("/root/repo/build/tests/combo_test[1]_include.cmake")
