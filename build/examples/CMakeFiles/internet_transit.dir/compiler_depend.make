# Empty compiler generated dependencies file for internet_transit.
# This may be replaced when dependencies are built.
