file(REMOVE_RECURSE
  "CMakeFiles/internet_transit.dir/internet_transit.cpp.o"
  "CMakeFiles/internet_transit.dir/internet_transit.cpp.o.d"
  "internet_transit"
  "internet_transit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_transit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
