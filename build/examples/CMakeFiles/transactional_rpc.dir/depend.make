# Empty dependencies file for transactional_rpc.
# This may be replaced when dependencies are built.
