file(REMOVE_RECURSE
  "CMakeFiles/transactional_rpc.dir/transactional_rpc.cpp.o"
  "CMakeFiles/transactional_rpc.dir/transactional_rpc.cpp.o.d"
  "transactional_rpc"
  "transactional_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
