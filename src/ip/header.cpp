#include "ip/header.hpp"

#include "wire/checksum.hpp"

namespace srp::ip {

wire::Bytes encode_ip_packet(IpHeader header,
                             std::span<const std::uint8_t> payload) {
  header.total_length =
      static_cast<std::uint16_t>(IpHeader::kWireSize + payload.size());
  wire::Writer w(header.total_length);
  w.u8(0x45);  // version 4, IHL 5 (no options)
  w.u8(header.tos);
  w.u16(header.total_length);
  w.u16(header.id);
  w.u16(header.flags_frag);
  w.u8(header.ttl);
  w.u8(header.protocol);
  const std::size_t checksum_offset = w.size();
  w.u16(0);
  w.u32(header.src);
  w.u32(header.dst);
  wire::Bytes bytes = std::move(w).take();
  const std::uint16_t checksum = wire::internet_checksum(
      std::span(bytes).first(IpHeader::kWireSize));
  bytes[checksum_offset] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[checksum_offset + 1] = static_cast<std::uint8_t>(checksum);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

std::optional<IpPacketView> decode_ip_packet(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < IpHeader::kWireSize) return std::nullopt;
  if (!wire::internet_checksum_ok(bytes.first(IpHeader::kWireSize))) {
    return std::nullopt;
  }
  wire::Reader r(bytes);
  if (r.u8() != 0x45) return std::nullopt;
  IpPacketView view;
  IpHeader& h = view.header;
  h.tos = r.u8();
  h.total_length = r.u16();
  h.id = r.u16();
  h.flags_frag = r.u16();
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16();
  h.src = r.u32();
  h.dst = r.u32();
  if (h.total_length < IpHeader::kWireSize || h.total_length > bytes.size()) {
    return std::nullopt;
  }
  view.payload = bytes.subspan(IpHeader::kWireSize,
                               h.total_length - IpHeader::kWireSize);
  return view;
}

bool decrement_ttl_in_place(wire::Bytes& packet_bytes) {
  // TTL is byte 8; checksum is bytes 10..11; TTL shares a 16-bit word with
  // the protocol field (bytes 8..9).
  const std::uint8_t ttl = packet_bytes[8];
  if (ttl <= 1) return false;
  const std::uint16_t old_word =
      static_cast<std::uint16_t>(packet_bytes[8] << 8) | packet_bytes[9];
  packet_bytes[8] = ttl - 1;
  const std::uint16_t new_word =
      static_cast<std::uint16_t>(packet_bytes[8] << 8) | packet_bytes[9];
  const std::uint16_t old_checksum =
      static_cast<std::uint16_t>(packet_bytes[10] << 8) | packet_bytes[11];
  const std::uint16_t new_checksum =
      wire::checksum_update16(old_checksum, old_word, new_word);
  packet_bytes[10] = static_cast<std::uint8_t>(new_checksum >> 8);
  packet_bytes[11] = static_cast<std::uint8_t>(new_checksum);
  return true;
}

}  // namespace srp::ip
