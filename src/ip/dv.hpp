// Distance-vector routing for the IP baseline (RIP-style).
//
// Provides the "conventional distributed routing" whose reconvergence time
// Sirpent's client-driven route switching is compared against (paper §6.3):
// periodic full updates, split horizon with poisoned reverse, triggered
// updates, route timeout at three periods, metric 16 = infinity.
#pragma once

#include <cstdint>

#include "ip/router.hpp"
#include "sim/simulator.hpp"

namespace srp::ip {

struct DvConfig {
  sim::Time period = 100 * sim::kMillisecond;
  std::uint8_t infinity = 16;
  /// A learned route not refreshed within this window is poisoned.
  sim::Time timeout = 300 * sim::kMillisecond;
  bool triggered_updates = true;
  /// Local interfaces are polled each period; a down interface poisons the
  /// routes using it (serial-line style local failure detection).
  bool detect_local_link_failure = true;
};

/// RIP-ish update payload: [count u16] then (addr u32, metric u8) entries.
wire::Bytes encode_dv_update(
    const std::vector<std::pair<Addr, std::uint8_t>>& entries);
std::vector<std::pair<Addr, std::uint8_t>> decode_dv_update(
    std::span<const std::uint8_t> payload);

class DvRouting {
 public:
  struct Stats {
    std::uint64_t updates_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t triggered_updates = 0;
    std::uint64_t routes_timed_out = 0;
    std::uint64_t routes_poisoned_locally = 0;
  };

  /// @p phase delays the first tick, de-synchronizing routers the way
  /// independent timers would be in a real deployment.
  DvRouting(sim::Simulator& sim, IpRouter& router, DvConfig config,
            sim::Time phase = 0);

  /// True when the router currently holds a live route to @p dst —
  /// the convergence probe used by bench_failover.
  [[nodiscard]] bool has_route(Addr dst) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void tick();
  void on_rip(const IpPacketView& packet, int in_port);
  void send_full_update();
  void maybe_trigger();

  sim::Simulator& sim_;
  IpRouter& router_;
  DvConfig config_;
  bool changed_ = false;
  bool trigger_pending_ = false;
  Stats stats_;
};

}  // namespace srp::ip
