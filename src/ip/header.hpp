// IPv4-style header for the "universal internetwork datagram" baseline.
//
// This is the design the paper argues against: "each router must ...
// determine the next hop of the route from the destination address, update
// the Time To Live (TTL) field, possibly fragment the packet and update
// the header checksum before sending on the packet."  All four costs are
// implemented so the benches can charge them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "wire/buffer.hpp"

namespace srp::ip {

using Addr = std::uint32_t;

inline constexpr std::uint8_t kProtoVmtp = 81;   ///< transport over IP
inline constexpr std::uint8_t kProtoRip = 120;   ///< distance-vector updates
inline constexpr Addr kBroadcast = 0xFFFFFFFFu;

inline constexpr std::uint16_t kFlagMoreFragments = 0x2000;
inline constexpr std::uint16_t kFragOffsetMask = 0x1FFF;

struct IpHeader {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  ///< header + payload
  std::uint16_t id = 0;
  std::uint16_t flags_frag = 0;    ///< MF flag + offset in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Addr src = 0;
  Addr dst = 0;

  static constexpr std::size_t kWireSize = 20;

  [[nodiscard]] bool more_fragments() const {
    return (flags_frag & kFlagMoreFragments) != 0;
  }
  [[nodiscard]] std::size_t frag_offset_bytes() const {
    return static_cast<std::size_t>(flags_frag & kFragOffsetMask) * 8;
  }
  [[nodiscard]] bool is_fragment() const {
    return more_fragments() || frag_offset_bytes() != 0;
  }

  bool operator==(const IpHeader&) const = default;
};

/// Encodes header + payload; fills in total_length and checksum.
wire::Bytes encode_ip_packet(IpHeader header,
                             std::span<const std::uint8_t> payload);

struct IpPacketView {
  IpHeader header;
  std::span<const std::uint8_t> payload;
};

/// Decodes and verifies the header checksum; nullopt on damage.
std::optional<IpPacketView> decode_ip_packet(
    std::span<const std::uint8_t> bytes);

/// The per-hop rewrite: decrement TTL in place and incrementally update
/// the stored checksum (RFC 1624), exactly the work an IP router performs.
/// Returns false when TTL hit zero (drop the packet).
bool decrement_ttl_in_place(wire::Bytes& packet_bytes);

}  // namespace srp::ip
