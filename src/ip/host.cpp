#include "ip/host.hpp"

namespace srp::ip {

IpHost::IpHost(sim::Simulator& sim, std::string name,
               net::PacketFactory& packets, IpHostConfig config)
    : net::PortedNode(sim, std::move(name)), packets_(packets),
      config_(config) {}

void IpHost::send(Addr dst, std::uint8_t protocol,
                  std::span<const std::uint8_t> payload, std::uint8_t tos) {
  IpHeader h;
  h.tos = tos;
  h.id = next_id_++;
  h.ttl = config_.default_ttl;
  h.protocol = protocol;
  h.src = config_.address;
  h.dst = dst;
  net::PacketPtr packet =
      packets_.make(encode_ip_packet(h, payload), sim_.now());
  ++stats_.sent;
  net::TxMeta meta;
  meta.rank = tos >> 5;
  port(1).enqueue(std::move(packet), meta, 0);
}

void IpHost::on_arrival(const net::Arrival& arrival) {
  sim_.at(arrival.tail, [this, arrival] { process(arrival); });
}

void IpHost::process(const net::Arrival& arrival) {
  if (arrival.packet->effectively_truncated()) {
    ++stats_.checksum_drops;
    return;
  }
  const auto view = decode_ip_packet(arrival.packet->bytes);
  if (!view.has_value()) {
    ++stats_.checksum_drops;
    return;
  }
  if (view->header.dst != config_.address &&
      view->header.dst != kBroadcast) {
    ++stats_.not_for_us;
    return;
  }
  if (view->header.protocol == kProtoRip) {
    return;  // routing chatter on the link; hosts ignore it
  }
  if (!view->header.is_fragment()) {
    deliver(view->header,
            wire::Bytes(view->payload.begin(), view->payload.end()),
            /*was_fragmented=*/false);
    return;
  }
  accept_fragment(*view);
}

void IpHost::accept_fragment(const IpPacketView& view) {
  const auto key = std::make_pair(view.header.src, view.header.id);
  auto it = reassemblies_.find(key);
  if (it == reassemblies_.end()) {
    if (reassemblies_.size() >= config_.max_reassemblies) {
      // Overrun: the systematic failure mode the paper warns about — no
      // buffer for a new datagram means all its fragments are wasted.
      ++stats_.reassembly_overflows;
      return;
    }
    it = reassemblies_.emplace(key, Reassembly{}).first;
    it->second.first_header = view.header;
    it->second.timer = sim_.after(config_.reassembly_timeout, [this, key] {
      const auto victim = reassemblies_.find(key);
      if (victim != reassemblies_.end()) {
        ++stats_.reassembly_timeouts;
        reassemblies_.erase(victim);
      }
    });
  }
  Reassembly& r = it->second;
  r.pieces[view.header.frag_offset_bytes()] =
      wire::Bytes(view.payload.begin(), view.payload.end());
  if (!view.header.more_fragments()) {
    r.total = view.header.frag_offset_bytes() + view.payload.size();
  }
  if (r.total == 0) return;

  // Complete when the pieces tile [0, total) without gaps.
  std::size_t covered = 0;
  for (const auto& [offset, bytes] : r.pieces) {
    if (offset > covered) return;  // gap
    covered = std::max(covered, offset + bytes.size());
  }
  if (covered < r.total) return;

  wire::Bytes whole(r.total);
  for (const auto& [offset, bytes] : r.pieces) {
    const std::size_t len = std::min(bytes.size(), r.total - offset);
    std::copy_n(bytes.begin(), len,
                whole.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  IpHeader header = r.first_header;
  sim_.cancel(r.timer);
  reassemblies_.erase(it);
  deliver(header, std::move(whole), /*was_fragmented=*/true);
}

void IpHost::deliver(const IpHeader& header, wire::Bytes payload,
                     bool was_fragmented) {
  ++stats_.delivered;
  if (was_fragmented) ++stats_.reassembled;
  if (handler_) handler_(header, std::move(payload));
}

}  // namespace srp::ip
