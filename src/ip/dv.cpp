#include "ip/dv.hpp"

#include <algorithm>

namespace srp::ip {

wire::Bytes encode_dv_update(
    const std::vector<std::pair<Addr, std::uint8_t>>& entries) {
  wire::Writer w(2 + entries.size() * 5);
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const auto& [addr, metric] : entries) {
    w.u32(addr);
    w.u8(metric);
  }
  return std::move(w).take();
}

std::vector<std::pair<Addr, std::uint8_t>> decode_dv_update(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  const std::uint16_t count = r.u16();
  std::vector<std::pair<Addr, std::uint8_t>> entries;
  entries.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const Addr addr = r.u32();
    const std::uint8_t metric = r.u8();
    entries.emplace_back(addr, metric);
  }
  return entries;
}

DvRouting::DvRouting(sim::Simulator& sim, IpRouter& router, DvConfig config,
                     sim::Time phase)
    : sim_(sim), router_(router), config_(config) {
  router_.set_rip_handler([this](const IpPacketView& p, int in_port) {
    on_rip(p, in_port);
  });
  sim_.after(config_.period + phase, [this] { tick(); });
}

bool DvRouting::has_route(Addr dst) const {
  return router_.lookup(dst).has_value();
}

void DvRouting::tick() {
  auto& table = router_.table();

  if (config_.detect_local_link_failure) {
    for (auto& [addr, entry] : table) {
      const bool up = router_.port(entry.out_port).is_up();
      if (entry.connected) {
        const std::uint8_t want = up ? 1 : config_.infinity;
        if (entry.metric != want) {
          entry.metric = want;
          changed_ = true;
          if (!up) ++stats_.routes_poisoned_locally;
        }
      } else if (!up && entry.metric < config_.infinity) {
        entry.metric = config_.infinity;
        changed_ = true;
        ++stats_.routes_poisoned_locally;
      }
    }
  }

  // Expire learned routes that have gone stale.
  for (auto it = table.begin(); it != table.end();) {
    RouteEntry& entry = it->second;
    if (!entry.connected && entry.metric < config_.infinity &&
        sim_.now() - entry.refreshed > config_.timeout) {
      entry.metric = config_.infinity;
      changed_ = true;
      ++stats_.routes_timed_out;
    }
    // Garbage-collect long-dead learned routes.
    if (!entry.connected && entry.metric >= config_.infinity &&
        sim_.now() - entry.refreshed > 2 * config_.timeout) {
      it = table.erase(it);
    } else {
      ++it;
    }
  }

  send_full_update();
  changed_ = false;
  sim_.after(config_.period, [this] { tick(); });
}

void DvRouting::send_full_update() {
  auto& table = router_.table();
  for (int p = 1; p <= router_.port_count(); ++p) {
    if (!router_.port(p).is_up()) continue;
    std::vector<std::pair<Addr, std::uint8_t>> entries;
    entries.reserve(table.size());
    for (const auto& [addr, entry] : table) {
      // Split horizon with poisoned reverse.
      const std::uint8_t metric = entry.out_port == p && !entry.connected
                                      ? config_.infinity
                                      : entry.metric;
      entries.emplace_back(addr, metric);
    }
    if (entries.empty()) continue;
    IpHeader h;
    h.ttl = 1;
    h.protocol = kProtoRip;
    h.src = router_.config().address;
    h.dst = kBroadcast;
    router_.send_raw(p, encode_ip_packet(h, encode_dv_update(entries)));
    ++stats_.updates_sent;
  }
}

void DvRouting::maybe_trigger() {
  if (!config_.triggered_updates || trigger_pending_) return;
  trigger_pending_ = true;
  // Small fixed delay coalesces bursts of changes into one update.
  sim_.after(5 * sim::kMillisecond, [this] {
    trigger_pending_ = false;
    if (changed_) {
      ++stats_.triggered_updates;
      send_full_update();
      changed_ = false;
    }
  });
}

void DvRouting::on_rip(const IpPacketView& packet, int in_port) {
  ++stats_.updates_received;
  auto entries = decode_dv_update(packet.payload);
  auto& table = router_.table();
  for (const auto& [addr, advertised] : entries) {
    const std::uint8_t metric = static_cast<std::uint8_t>(
        std::min<int>(advertised + 1, config_.infinity));
    auto it = table.find(addr);
    if (it == table.end()) {
      if (metric < config_.infinity) {
        table[addr] = RouteEntry{in_port, metric, false, sim_.now()};
        changed_ = true;
      }
      continue;
    }
    RouteEntry& entry = it->second;
    if (entry.connected) continue;
    if (entry.out_port == in_port) {
      // Current next hop speaks: believe it, better or worse.
      if (entry.metric != metric) changed_ = true;
      entry.metric = metric;
      entry.refreshed = sim_.now();
    } else if (metric < entry.metric) {
      entry.out_port = in_port;
      entry.metric = metric;
      entry.refreshed = sim_.now();
      changed_ = true;
    }
  }
  if (changed_) maybe_trigger();
}

}  // namespace srp::ip
