#include "ip/router.hpp"

#include <algorithm>

namespace srp::ip {

IpRouter::IpRouter(sim::Simulator& sim, std::string name,
                   net::PacketFactory& packets, IpRouterConfig config)
    : net::PortedNode(sim, std::move(name)), packets_(packets),
      config_(config) {}

void IpRouter::add_connected(Addr host, int out_port) {
  table_[host] = RouteEntry{out_port, 1, true, 0};
}

std::optional<int> IpRouter::lookup(Addr dst) const {
  const auto it = table_.find(dst);
  if (it == table_.end() || it->second.metric >= config_.infinity_metric) {
    return std::nullopt;
  }
  return it->second.out_port;
}

void IpRouter::send_raw(int port_index, wire::Bytes packet_bytes) {
  net::PacketPtr packet = packets_.make(std::move(packet_bytes), sim_.now());
  port(port_index).enqueue(std::move(packet), net::TxMeta{}, 0);
}

void IpRouter::on_arrival(const net::Arrival& arrival) {
  ++stats_.received;
  // Store-and-forward: nothing can happen before the last bit is in, and
  // then the packet pays the processing delay.
  sim_.at(arrival.tail + config_.proc_delay,
          [this, arrival] { process(arrival); });
}

void IpRouter::process(const net::Arrival& arrival) {
  const net::Packet& packet = *arrival.packet;
  if (packet.effectively_truncated()) return;  // damaged upstream
  const auto view = decode_ip_packet(packet.bytes);
  if (!view.has_value()) {
    ++stats_.dropped_checksum;
    return;
  }

  if (view->header.protocol == kProtoRip) {
    ++stats_.rip_delivered;
    if (rip_handler_) rip_handler_(*view, arrival.in_port);
    return;
  }

  const auto out = lookup(view->header.dst);
  if (!out.has_value()) {
    ++stats_.dropped_no_route;
    return;
  }

  wire::Bytes bytes = packet.bytes;
  if (!decrement_ttl_in_place(bytes)) {
    ++stats_.dropped_ttl;
    return;
  }

  const std::size_t mtu = port(*out).config().mtu_bytes;
  if (bytes.size() <= mtu) {
    transmit(*out, std::move(bytes), packet, view->header.tos);
    return;
  }

  // Fragment: payload split on 8-byte boundaries, each piece re-headed.
  const auto refreshed = decode_ip_packet(bytes);
  if (!refreshed.has_value()) {
    ++stats_.dropped_checksum;
    return;
  }
  const IpHeader& h = refreshed->header;
  const std::span<const std::uint8_t> payload = refreshed->payload;
  const std::size_t max_payload = (mtu - IpHeader::kWireSize) / 8 * 8;
  if (max_payload == 0) {
    ++stats_.dropped_no_route;
    return;
  }
  for (std::size_t off = 0; off < payload.size(); off += max_payload) {
    const std::size_t len = std::min(max_payload, payload.size() - off);
    IpHeader fh = h;
    fh.checksum = 0;
    const std::size_t abs_off = h.frag_offset_bytes() + off;
    fh.flags_frag = static_cast<std::uint16_t>(abs_off / 8);
    const bool last_piece = off + len >= payload.size();
    if (h.more_fragments() || !last_piece) {
      fh.flags_frag |= kFlagMoreFragments;
    }
    ++stats_.fragments_created;
    transmit(*out, encode_ip_packet(fh, payload.subspan(off, len)), packet,
             h.tos);
  }
}

void IpRouter::transmit(int out_port, wire::Bytes bytes,
                        const net::Packet& origin, std::uint8_t tos) {
  net::PacketPtr forwarded = origin.derive(std::move(bytes));
  forwarded->last_in_port = origin.last_in_port;
  ++stats_.forwarded;
  net::TxMeta meta;
  meta.rank = tos >> 5;  // IP precedence bits
  port(out_port).enqueue(std::move(forwarded), meta, 0);
}

}  // namespace srp::ip
