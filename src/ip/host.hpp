// IP end host with datagram send/receive and fragment reassembly.
//
// Reassembly is the "all-or-nothing behavior of IP" the paper criticizes
// (§4.3): a logical packet is delivered only when every fragment arrives,
// incomplete buffers are discarded on timeout, and a bounded reassembly
// buffer models the overrun failures the paper mentions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ip/header.hpp"
#include "net/network.hpp"

namespace srp::ip {

struct IpHostConfig {
  Addr address = 0;
  sim::Time reassembly_timeout = 500 * sim::kMillisecond;
  std::size_t max_reassemblies = 64;
  std::uint8_t default_ttl = 64;
};

class IpHost : public net::PortedNode {
 public:
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;       ///< complete datagrams handed up
    std::uint64_t reassembled = 0;     ///< of which were fragmented
    std::uint64_t reassembly_timeouts = 0;
    std::uint64_t reassembly_overflows = 0;
    std::uint64_t checksum_drops = 0;
    std::uint64_t not_for_us = 0;
  };

  using DatagramHandler =
      std::function<void(const IpHeader& header, wire::Bytes payload)>;

  IpHost(sim::Simulator& sim, std::string name, net::PacketFactory& packets,
         IpHostConfig config);

  /// Sends a datagram toward @p dst through the default port (1).
  /// Fragmentation happens in the network if needed.
  void send(Addr dst, std::uint8_t protocol,
            std::span<const std::uint8_t> payload, std::uint8_t tos = 0);

  void set_handler(DatagramHandler handler) {
    handler_ = std::move(handler);
  }

  [[nodiscard]] Addr address() const { return config_.address; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  void on_arrival(const net::Arrival& arrival) override;

 private:
  struct Reassembly {
    std::map<std::size_t, wire::Bytes> pieces;  ///< offset -> bytes
    std::size_t total = 0;  ///< 0 until the final fragment arrives
    sim::EventId timer = 0;
    IpHeader first_header;
  };

  void process(const net::Arrival& arrival);
  void accept_fragment(const IpPacketView& view);
  void deliver(const IpHeader& header, wire::Bytes payload,
               bool was_fragmented);

  net::PacketFactory& packets_;
  IpHostConfig config_;
  DatagramHandler handler_;
  std::map<std::pair<Addr, std::uint16_t>, Reassembly> reassemblies_;
  std::uint16_t next_id_ = 1;
  Stats stats_;
};

}  // namespace srp::ip
