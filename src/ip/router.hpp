// Store-and-forward IP router — the datagram baseline (paper §1).
//
// Every packet pays: full reception (store-and-forward), a routing table
// lookup on the destination address, the TTL decrement, the incremental
// header-checksum update, and, when the next link's MTU is too small,
// fragmentation.  Host routes are /32 entries maintained by the
// distance-vector protocol (ip/dv.hpp) plus connected routes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "ip/header.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace srp::ip {

struct IpRouterConfig {
  Addr address = 0;  ///< the router's own address (routing updates)
  /// Per-packet processing: lookup + TTL + checksum update.  The paper's
  /// complaint: "each packet suffers a reception, storage and processing
  /// delay at each router."
  sim::Time proc_delay = 20 * sim::kMicrosecond;
  std::uint8_t infinity_metric = 16;
};

/// One /32 routing table entry.
struct RouteEntry {
  int out_port = 0;
  std::uint8_t metric = 16;
  bool connected = false;   ///< directly attached; never expires
  sim::Time refreshed = 0;  ///< last confirmation from the protocol
};

class IpRouter : public net::PortedNode {
 public:
  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_ttl = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_checksum = 0;
    std::uint64_t fragments_created = 0;
    std::uint64_t rip_delivered = 0;
  };

  using RipHandler =
      std::function<void(const IpPacketView& packet, int in_port)>;

  IpRouter(sim::Simulator& sim, std::string name,
           net::PacketFactory& packets, IpRouterConfig config);

  /// Adds a directly connected host route.
  void add_connected(Addr host, int out_port);

  [[nodiscard]] std::optional<int> lookup(Addr dst) const;
  [[nodiscard]] std::map<Addr, RouteEntry>& table() { return table_; }
  [[nodiscard]] const IpRouterConfig& config() const { return config_; }

  /// Routing protocol hook: RIP-protocol packets land here, not forward.
  void set_rip_handler(RipHandler handler) {
    rip_handler_ = std::move(handler);
  }

  /// Originates a packet on @p port (used by the routing protocol).
  void send_raw(int port_index, wire::Bytes packet_bytes);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  void on_arrival(const net::Arrival& arrival) override;

 private:
  void process(const net::Arrival& arrival);
  void transmit(int out_port, wire::Bytes bytes, const net::Packet& origin,
                std::uint8_t tos);

  net::PacketFactory& packets_;
  IpRouterConfig config_;
  std::map<Addr, RouteEntry> table_;
  RipHandler rip_handler_;
  Stats stats_;
};

}  // namespace srp::ip
