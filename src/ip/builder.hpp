// Builder for IP baseline networks, mirroring dir::Fabric for the Sirpent
// stack so benches can raise identical topologies on both.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ip/dv.hpp"
#include "ip/host.hpp"
#include "ip/router.hpp"
#include "net/network.hpp"

namespace srp::ip {

class IpFabric {
 public:
  explicit IpFabric(sim::Simulator& sim) : sim_(sim), net_(sim) {}

  IpHost& add_host(const std::string& name, Addr address,
                   IpHostConfig config = {}) {
    config.address = address;
    auto& host = net_.add<IpHost>(name, net_.packets(), config);
    hosts_.push_back(&host);
    return host;
  }

  IpRouter& add_router(const std::string& name, Addr address,
                       IpRouterConfig config = {}) {
    config.address = address;
    auto& router = net_.add<IpRouter>(name, net_.packets(), config);
    routers_.push_back(&router);
    return router;
  }

  /// Duplex link; when one side is a router and the other a host, the
  /// router gains a connected route to the host.
  void connect(net::PortedNode& a, net::PortedNode& b,
               net::LinkConfig config) {
    const auto [pa, pb] = net_.duplex(a, b, config);
    links_.push_back({&a, &b, pa, pb});
    if (auto* ra = dynamic_cast<IpRouter*>(&a)) {
      if (auto* hb = dynamic_cast<IpHost*>(&b)) {
        ra->add_connected(hb->address(), pa);
      }
    }
    if (auto* rb = dynamic_cast<IpRouter*>(&b)) {
      if (auto* ha = dynamic_cast<IpHost*>(&a)) {
        rb->add_connected(ha->address(), pb);
      }
    }
  }

  /// Starts distance-vector routing on every router, with per-router
  /// timer phases (synchronized periodic timers are unrealistic and make
  /// reconvergence look instantaneous).
  void enable_dv(DvConfig config = {}) {
    const std::size_t n = std::max<std::size_t>(routers_.size(), 1);
    for (std::size_t i = 0; i < routers_.size(); ++i) {
      const sim::Time phase =
          static_cast<sim::Time>(i) * config.period / static_cast<sim::Time>(n);
      dv_.push_back(
          std::make_unique<DvRouting>(sim_, *routers_[i], config, phase));
    }
  }

  void fail_link(net::PortedNode& a, net::PortedNode& b) {
    set_link(a, b, false);
  }
  void restore_link(net::PortedNode& a, net::PortedNode& b) {
    set_link(a, b, true);
  }

  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] const std::vector<std::unique_ptr<DvRouting>>& dv() const {
    return dv_;
  }

 private:
  struct LinkRecord {
    net::PortedNode* a;
    net::PortedNode* b;
    int port_a;
    int port_b;
  };

  void set_link(net::PortedNode& a, net::PortedNode& b, bool up) {
    for (auto& record : links_) {
      if ((record.a == &a && record.b == &b) ||
          (record.a == &b && record.b == &a)) {
        record.a->port(record.port_a).set_up(up);
        record.b->port(record.port_b).set_up(up);
        return;
      }
    }
    throw std::invalid_argument("IpFabric: no such link");
  }

  sim::Simulator& sim_;
  net::Network net_;
  std::vector<IpHost*> hosts_;
  std::vector<IpRouter*> routers_;
  std::vector<LinkRecord> links_;
  std::vector<std::unique_ptr<DvRouting>> dv_;
};

}  // namespace srp::ip
