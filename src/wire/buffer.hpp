// Bounds-checked wire-format serialization.
//
// All protocol codecs (VIPER, IP, CVC signaling, VMTP) are built on these
// two types.  Network byte order (big-endian) throughout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace srp::wire {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a decoder runs off the end of a packet or meets a value
/// that cannot be represented (e.g. a length field overflow on encode).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian writer over an owned byte vector.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  /// @p count zero bytes (padding).
  void zeros(std::size_t count);

  [[nodiscard]] std::size_t size() const { return out_.size(); }

  /// Overwrites previously written bytes (for back-patched length fields).
  void patch_u16(std::size_t offset, std::uint16_t v);

  /// Consumes the writer, returning the accumulated buffer.
  Bytes take() && { return std::move(out_); }
  [[nodiscard]] const Bytes& view() const { return out_; }

 private:
  Bytes out_;
};

/// Non-owning big-endian reader with hard bounds checks.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads @p count bytes into a fresh vector.
  Bytes bytes(std::size_t count);
  /// Returns a view of the next @p count bytes and advances.
  std::span<const std::uint8_t> view(std::size_t count);
  void skip(std::size_t count);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace srp::wire
