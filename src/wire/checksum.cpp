#include "wire/checksum.hpp"

namespace srp::wire {
namespace {

std::uint32_t sum16(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {  // odd trailing byte, padded with zero
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~sum16(data) & 0xffff);
}

bool internet_checksum_ok(std::span<const std::uint8_t> data) {
  return sum16(data) == 0xffff;
}

std::uint16_t checksum_update16(std::uint16_t old_checksum,
                                std::uint16_t old_field,
                                std::uint16_t new_field) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_field);
  sum += new_field;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace srp::wire
