#include "wire/buffer.hpp"

#include "check/contract.hpp"

namespace srp::wire {

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::zeros(std::size_t count) { out_.resize(out_.size() + count, 0); }

void Writer::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > out_.size()) {
    throw CodecError("Writer::patch_u16 out of range");
  }
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v);
}

void Reader::require(std::size_t count) const {
  // The cursor can never have run past the end: every advance goes through
  // require() first.  Bounds on *input* are CodecError (a recoverable wire
  // condition); this is the decoder's own consistency.
  SIRPENT_INVARIANT(pos_ <= data_.size());
  if (remaining() < count) {
    throw CodecError("Reader: truncated input (need " +
                     std::to_string(count) + " bytes, have " +
                     std::to_string(remaining()) + ")");
  }
}

std::uint8_t Reader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes Reader::bytes(std::size_t count) {
  require(count);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  SIRPENT_ENSURES(out.size() == count);
  return out;
}

std::span<const std::uint8_t> Reader::view(std::size_t count) {
  require(count);
  auto out = data_.subspan(pos_, count);
  pos_ += count;
  return out;
}

void Reader::skip(std::size_t count) {
  require(count);
  pos_ += count;
}

}  // namespace srp::wire
