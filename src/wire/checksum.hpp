// Internet (RFC 1071) checksum — used by the IP baseline, which must pay
// the per-hop checksum-update cost Sirpent eliminates, and by VMTP's
// end-to-end packet checksum.
#pragma once

#include <cstdint>
#include <span>

namespace srp::wire {

/// One's-complement 16-bit Internet checksum of @p data.  Returns the value
/// to *store* in the checksum field (i.e. already complemented).  A buffer
/// whose stored checksum is correct sums (via verify) to zero.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// True when @p data, which includes a stored checksum field, verifies.
bool internet_checksum_ok(std::span<const std::uint8_t> data);

/// Incremental update per RFC 1624 for a 16-bit field change — models the
/// per-hop checksum rewrite an IP router performs when it decrements TTL.
std::uint16_t checksum_update16(std::uint16_t old_checksum,
                                std::uint16_t old_field,
                                std::uint16_t new_field);

}  // namespace srp::wire
