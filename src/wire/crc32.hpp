// CRC-32 (IEEE 802.3) — models the Ethernet frame check sequence; used by
// the corruption-injection tests that exercise Sirpent's "no internetwork
// checksum, transport detects misdelivery" design point.
#pragma once

#include <cstdint>
#include <span>

namespace srp::wire {

/// CRC-32 of @p data (reflected, polynomial 0xEDB88320, init/final 0xFFFFFFFF
/// as in Ethernet, gzip, zlib).
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace srp::wire
