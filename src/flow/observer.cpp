#include "flow/observer.hpp"

#include <limits>

#include "check/analysis.hpp"

namespace srp::flow {

FlowObserver::FlowObserver(std::string name, const FlowConfig& config,
                           stats::Registry* registry,
                           obs::FlightRecorder* recorder)
    : name_(std::move(name)),
      table_(config.table_capacity),
      recorder_(recorder),
      sampler_(config.seed, name_, config.sample_period) {
  if (registry != nullptr) {
    const auto instance = stats::metric_component(name_);
    sampled_counter_ = &registry->counter("flow." + instance + ".sampled");
    evictions_counter_ =
        &registry->counter("flow." + instance + ".evictions");
    flows_gauge_ = &registry->gauge("flow." + instance + ".flows");
  }
}

SRP_HOT_PATH void FlowObserver::record_table(const obs::FlowSample& sample) {
  const FlowKey key{sample.route_digest, sample.account, sample.tos_class};
  const bool evicted = table_.record(key, sample.bytes, sample.cut_through,
                                     sample.now, sample.in_port,
                                     sample.out_port);
  if (evicted && evictions_counter_ != nullptr) evictions_counter_->add();
  if (flows_gauge_ != nullptr) {
    flows_gauge_->set(static_cast<std::int64_t>(table_.size()));
  }
}

SRP_HOT_PATH void FlowObserver::record_sampled(const obs::FlowSample& sample) {
  if (sample.in_port != 0) {
    feeders_[{sample.out_port, sample.in_port}] = sample.now;
  }
  if (sampler_.sample()) {
    ++sampled_total_;
    if (sampled_counter_ != nullptr) sampled_counter_->add();
    if (recorder_ != nullptr) {
      obs::SpanRecord span;
      // Sampled captures are useful even for untraced packets; fall back
      // to the packet id so the span still names a unique packet.
      span.trace_id =
          sample.trace_id != 0 ? sample.trace_id : sample.packet_id;
      span.kind = obs::SpanKind::kSample;
      span.cut_through = sample.cut_through;
      span.in_port = sample.in_port;
      span.out_port = sample.out_port;
      span.start = span.decision = span.end = sample.now;
      span.set_component(name_);
      span.set_excerpt(sample.header);
      recorder_->record(span);
    }
  }
}

SRP_HOT_PATH void FlowObserver::on_forward(const obs::FlowSample& sample) {
  record_table(sample);
  MutexLock lock(mutex_);
  record_sampled(sample);
}

SRP_HOT_PATH void FlowObserver::on_forward_burst(
    std::span<const obs::FlowSample> samples) {
  // Table updates first (lock-free half), then one mutex acquisition for
  // the whole burst.  Per-sample order is preserved in both halves, so the
  // sampler stream and the flow table are byte-identical to a loop over
  // on_forward().
  for (const obs::FlowSample& sample : samples) record_table(sample);
  MutexLock lock(mutex_);
  for (const obs::FlowSample& sample : samples) record_sampled(sample);
}

void FlowObserver::on_charge(std::uint32_t account, std::uint64_t bytes) {
  MutexLock lock(mutex_);
  auto& c = charges_[account];
  ++c.packets;
  c.bytes += bytes;
}

void FlowObserver::feeders_toward(int out_port, sim::Time since,
                                  std::vector<int>& out) const {
  MutexLock lock(mutex_);
  const auto port = static_cast<std::uint16_t>(out_port);
  const auto lo = feeders_.lower_bound({port, 0});
  const auto hi = feeders_.upper_bound(
      {port, std::numeric_limits<std::uint16_t>::max()});
  for (auto it = lo; it != hi; ++it) {
    if (it->second >= since) out.push_back(it->first.second);
  }
}

std::map<std::uint32_t, AccountCharge> FlowObserver::charges() const {
  MutexLock lock(mutex_);
  return charges_;
}

std::uint64_t FlowObserver::sampled() const {
  MutexLock lock(mutex_);
  return sampled_total_;
}

}  // namespace srp::flow
