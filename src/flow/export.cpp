#include "flow/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <iterator>

namespace srp::flow {
namespace {

void append_fmt(std::string& out, const char* fmt, auto... args) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

void append_record(std::string& out, const FlowRecord& r) {
  append_fmt(out, "{\"route\":\"%016" PRIx64 "\"", r.key.route_digest);
  append_fmt(out, ",\"account\":%" PRIu32, r.key.account);
  append_fmt(out, ",\"tos\":%u", r.key.tos_class);
  append_fmt(out, ",\"packets\":%" PRIu64, r.packets);
  append_fmt(out, ",\"bytes\":%" PRIu64, r.bytes);
  append_fmt(out, ",\"error_packets\":%" PRIu64, r.error_packets);
  append_fmt(out, ",\"error_bytes\":%" PRIu64, r.error_bytes);
  append_fmt(out, ",\"first_seen_ps\":%" PRId64, r.first_seen);
  append_fmt(out, ",\"last_seen_ps\":%" PRId64, r.last_seen);
  append_fmt(out, ",\"cut_through\":%" PRIu64, r.cut_through);
  append_fmt(out, ",\"store_forward\":%" PRIu64, r.store_forward);
  append_fmt(out, ",\"in_port\":%u", r.last_in_port);
  append_fmt(out, ",\"out_port\":%u", r.last_out_port);
  out += "}";
}

void append_accounts(std::string& out,
                     const std::map<std::uint32_t, AccountCharge>& accounts) {
  out += "{";
  bool first = true;
  for (const auto& [account, charge] : accounts) {
    if (!first) out += ",";
    first = false;
    append_fmt(out, "\"%" PRIu32 "\":{\"packets\":%" PRIu64
                    ",\"bytes\":%" PRIu64 "}",
               account, charge.packets, charge.bytes);
  }
  out += "}";
}

}  // namespace

std::string to_json(const FlowPlane& plane, std::size_t top_k) {
  std::string out;
  out += "{\"components\":{";
  bool first = true;
  for (const auto* observer : plane.observers()) {
    if (!first) out += ",";
    first = false;
    append_fmt(out, "\"%s\":{", observer->name().c_str());
    const auto stats = observer->table().stats();
    append_fmt(out,
               "\"stats\":{\"recorded\":%" PRIu64 ",\"evictions\":%" PRIu64
               ",\"total_bytes\":%" PRIu64 ",\"monitored\":%zu"
               ",\"capacity\":%zu,\"sampled\":%" PRIu64 "}",
               stats.recorded, stats.evictions, stats.total_bytes,
               observer->table().size(), observer->table().capacity(),
               observer->sampled());
    out += ",\"flows\":[";
    bool first_flow = true;
    for (const auto& record : observer->table().top(top_k)) {
      if (!first_flow) out += ",";
      first_flow = false;
      append_record(out, record);
    }
    out += "],\"accounts\":";
    append_accounts(out, observer->charges());
    out += "}";
  }
  out += "},\"accounts\":";
  append_accounts(out, plane.account_rollup());
  out += "}";
  return out;
}

wire::Bytes to_ipfix(const std::vector<FlowRecord>& records,
                     std::uint32_t observation_domain,
                     std::uint32_t export_time_sec, std::uint32_t sequence) {
  // Field ids (enterprise-specific, kEnterpriseNumber) and octet widths,
  // in record order.
  static constexpr struct {
    std::uint16_t id;
    std::uint16_t len;
  } kFields[] = {
      {1, 8},   // routeDigest
      {2, 4},   // accountId
      {3, 1},   // typeOfService
      {4, 2},   // ingressPort
      {5, 2},   // egressPort
      {6, 8},   // packetTotalCount
      {7, 8},   // octetTotalCount
      {8, 8},   // packetCountError (space-saving bound)
      {9, 8},   // octetCountError (space-saving bound)
      {10, 8},  // flowStartPicoseconds (sim time)
      {11, 8},  // flowEndPicoseconds (sim time)
      {12, 8},  // cutThroughPacketCount
      {13, 8},  // storeForwardPacketCount
  };
  constexpr std::size_t kFieldCount = std::size(kFields);

  wire::Writer w(64 + records.size() * 81);
  // Message header (RFC 7011 §3.1); total length back-patched at the end.
  w.u16(10);  // version
  const std::size_t length_at = w.size();
  w.u16(0);
  w.u32(export_time_sec);
  w.u32(sequence);
  w.u32(observation_domain);

  // Template set (set id 2): one template describing the record layout.
  w.u16(2);
  const std::size_t template_len_at = w.size();
  w.u16(0);
  w.u16(kTemplateId);
  w.u16(static_cast<std::uint16_t>(kFieldCount));
  for (const auto& field : kFields) {
    w.u16(static_cast<std::uint16_t>(0x8000U | field.id));  // enterprise bit
    w.u16(field.len);
    w.u32(kEnterpriseNumber);
  }
  w.patch_u16(template_len_at,
              static_cast<std::uint16_t>(w.size() - (template_len_at - 2)));

  // Data set (set id = template id).
  w.u16(kTemplateId);
  const std::size_t data_len_at = w.size();
  w.u16(0);
  for (const auto& r : records) {
    w.u64(r.key.route_digest);
    w.u32(r.key.account);
    w.u8(r.key.tos_class);
    w.u16(r.last_in_port);
    w.u16(r.last_out_port);
    w.u64(r.packets);
    w.u64(r.bytes);
    w.u64(r.error_packets);
    w.u64(r.error_bytes);
    w.u64(static_cast<std::uint64_t>(r.first_seen));
    w.u64(static_cast<std::uint64_t>(r.last_seen));
    w.u64(r.cut_through);
    w.u64(r.store_forward);
  }
  w.patch_u16(data_len_at,
              static_cast<std::uint16_t>(w.size() - (data_len_at - 2)));
  w.patch_u16(length_at, static_cast<std::uint16_t>(w.size()));
  return std::move(w).take();
}

}  // namespace srp::flow
