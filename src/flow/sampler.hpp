// Deterministic 1-in-N packet sampler.
//
// Systematic count-down sampling: each call decrements a counter; at zero
// the packet is sampled and the counter resets to the period.  The initial
// phase is drawn from a per-component RNG stream seeded exactly like
// src/fault seeds its lanes — `Rng(seed ^ fnv1a(component_name))` — so a
// rerun with the same seed samples the byte-identical packet sequence
// regardless of the order components were wired.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/random.hpp"

namespace srp::flow {

/// FNV-1a over a component name: same per-target seed perturbation as
/// fault::FaultEngine::stream_for.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Sampler {
 public:
  /// Samples 1 in @p period packets (0 = never, 1 = every packet).  The
  /// phase offset is drawn from `seed ^ fnv1a(component)`.
  Sampler(std::uint64_t seed, std::string_view component,
          std::uint32_t period)
      : period_(period) {
    if (period_ > 1) {
      sim::Rng rng(seed ^ fnv1a(component));
      countdown_ = static_cast<std::uint32_t>(
          rng.uniform_int(1, period_));
    }
  }

  /// True when the current packet is the sampled one.
  bool sample() {
    if (period_ == 0) return false;
    if (period_ == 1) return true;
    if (--countdown_ == 0) {
      countdown_ = period_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::uint32_t period() const { return period_; }

 private:
  std::uint32_t period_;
  std::uint32_t countdown_ = 1;
};

}  // namespace srp::flow
