#include "flow/table.hpp"

#include <algorithm>

#include "check/analysis.hpp"
#include "check/contract.hpp"

namespace srp::flow {

FlowTable::FlowTable(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  // slots_ grows to capacity_ and then stays put: indices in index_ remain
  // valid because eviction replaces slots in place.
}

SRP_HOT_PATH bool FlowTable::record(const FlowKey& key, std::uint32_t bytes,
                       bool cut_through, sim::Time now,
                       std::uint16_t in_port, std::uint16_t out_port) {
  MutexLock lock(mutex_);
  ++stats_.recorded;
  stats_.total_bytes += bytes;

  const auto touch = [&](FlowRecord& r) {
    ++r.packets;
    r.bytes += bytes;
    r.last_seen = now;
    if (cut_through) {
      ++r.cut_through;
    } else {
      ++r.store_forward;
    }
    r.last_in_port = in_port;
    r.last_out_port = out_port;
  };

  const auto it = index_.find(key);
  if (it != index_.end()) {
    touch(slots_[it->second]);
    return false;
  }

  if (slots_.size() < capacity_) {
    FlowRecord r;
    r.key = key;
    r.first_seen = now;
    touch(r);
    // Table fill: at most `capacity_` of these ever run; the steady-state
    // hit path above is allocation-free.
    SRP_ALLOC_OK(index_.emplace(key, slots_.size()));
    SRP_ALLOC_OK(slots_.push_back(r));
    return false;
  }

  // Space-saving replacement: evict the minimum-byte entry; the newcomer
  // inherits its counts as guaranteed-bounded error.  The linear min scan
  // is O(capacity) but runs only on unmonitored-key misses with a full
  // table — the steady-state hit path above never pays it.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].bytes < slots_[victim].bytes) victim = i;
  }
  ++stats_.evictions;
  FlowRecord& r = slots_[victim];
  index_.erase(r.key);  // erase never allocates
  const std::uint64_t inherited_bytes = r.bytes;
  const std::uint64_t inherited_packets = r.packets;
  r = FlowRecord{};
  r.key = key;
  r.bytes = inherited_bytes;
  r.packets = inherited_packets;
  r.error_bytes = inherited_bytes;
  r.error_packets = inherited_packets;
  r.first_seen = now;
  touch(r);
  // Slot replacement reuses the victim's index entry budget: one erase +
  // one emplace against a table already at capacity.
  SRP_ALLOC_OK(index_.emplace(key, victim));
  SIRPENT_INVARIANT(index_.size() == slots_.size());
  return true;
}

std::vector<FlowRecord> FlowTable::sorted_locked() const {
  std::vector<FlowRecord> out = slots_;
  std::sort(out.begin(), out.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.packets != b.packets) return a.packets > b.packets;
              return a.key < b.key;
            });
  return out;
}

std::vector<FlowRecord> FlowTable::top(std::size_t k) const {
  MutexLock lock(mutex_);
  std::vector<FlowRecord> out = sorted_locked();
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<FlowRecord> FlowTable::all() const {
  MutexLock lock(mutex_);
  std::vector<FlowRecord> out = slots_;
  std::sort(out.begin(), out.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.key < b.key;
            });
  return out;
}

FlowTable::Stats FlowTable::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t FlowTable::size() const {
  MutexLock lock(mutex_);
  return slots_.size();
}

void FlowTable::clear() {
  MutexLock lock(mutex_);
  slots_.clear();
  index_.clear();
  stats_ = Stats{};
}

}  // namespace srp::flow
