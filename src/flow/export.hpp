// Flow-record export: an operator-facing JSON document and an
// IPFIX-flavored binary export.
//
// The JSON export is deterministic (components name-sorted, flows in
// top() order, accounts numerically sorted) so fixed-seed runs diff
// cleanly and the golden fixture stays stable.
//
// The binary export follows the IPFIX (RFC 7011) framing — version-10
// message header, one template set describing the record layout with
// enterprise-specific information elements, then one data set — so the
// records are parseable by standard collectors given the template.  All
// fields live under a private enterprise number; see kEnterpriseNumber.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/plane.hpp"
#include "flow/table.hpp"
#include "wire/buffer.hpp"

namespace srp::flow {

/// Private enterprise number carried by every IPFIX field spec ("SRPT").
inline constexpr std::uint32_t kEnterpriseNumber = 0x53525054;
/// Template id of the flow-record layout (>= 256 per RFC 7011).
inline constexpr std::uint16_t kTemplateId = 256;

/// Whole-plane JSON snapshot: per-component table stats, the top_k
/// heaviest flows each, per-component and plane-wide account roll-ups.
[[nodiscard]] std::string to_json(const FlowPlane& plane,
                                  std::size_t top_k = 8);

/// IPFIX-framed export of @p records (template set + data set in one
/// message).  @p export_time_sec is the header export timestamp — pass a
/// fixed value for reproducible fixtures.
[[nodiscard]] wire::Bytes to_ipfix(const std::vector<FlowRecord>& records,
                                   std::uint32_t observation_domain,
                                   std::uint32_t export_time_sec,
                                   std::uint32_t sequence);

}  // namespace srp::flow
