// Fixed-capacity per-component flow table with space-saving eviction.
//
// Sirpent assumes routers can aggregate traffic by source route and by
// account — tokens name the account to charge (paper §2.2) and congestion
// control reads the source routes in its queues — so the flow table keys
// on (source-route digest, account, type of service) and accumulates
// packet/byte counters, first/last-seen times and the cut-through vs
// store-and-forward split.
//
// Eviction is the space-saving algorithm (Metwally, Agrawal, El Abbadi,
// "Efficient computation of frequent and top-k elements in data streams"):
// when a sample for an unmonitored key finds the table full, the entry
// with the minimum byte count is replaced and the new entry *inherits* its
// counts, remembering them as `error_*`.  The classic guarantees follow:
//
//   * every inherited error is bounded by min_bytes <= total_bytes / m
//     for a table of m slots, so bytes - error_bytes <= true bytes <=
//     bytes for every monitored key;
//   * any key whose true volume exceeds total_bytes / m is guaranteed to
//     be monitored — the table doubles as a guaranteed-error top-K
//     heavy-hitter sketch.
//
// Thread safety: a capability-annotated monitor like tokens::TokenCache —
// record() may be called from any thread; the read APIs return value
// snapshots consistent at batch boundaries.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "check/sync.hpp"
#include "check/thread_annotations.hpp"
#include "sim/time.hpp"

namespace srp::flow {

/// Flow identity: (whole-route digest, charged account, type of service).
struct FlowKey {
  std::uint64_t route_digest = 0;
  std::uint32_t account = 0;
  std::uint8_t tos_class = 0;

  bool operator==(const FlowKey&) const = default;
  /// Deterministic total order for tie-breaking and sorted export.
  bool operator<(const FlowKey& o) const {
    if (route_digest != o.route_digest) return route_digest < o.route_digest;
    if (account != o.account) return account < o.account;
    return tos_class < o.tos_class;
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    // Mix the three fields with distinct odd multipliers (Fibonacci-style).
    std::uint64_t h = k.route_digest * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<std::uint64_t>(k.account) << 8 | k.tos_class) *
         0xC2B2AE3D27D4EB4FULL;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

/// One monitored flow.  `bytes`/`packets` are space-saving counts: they
/// overestimate the truth by at most `error_bytes`/`error_packets` (the
/// counts inherited from the evicted minimum when this key took its slot).
struct FlowRecord {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t error_packets = 0;
  std::uint64_t error_bytes = 0;
  sim::Time first_seen = 0;
  sim::Time last_seen = 0;
  std::uint64_t cut_through = 0;    ///< packets forwarded cut-through
  std::uint64_t store_forward = 0;  ///< packets forwarded store-and-forward
  std::uint16_t last_in_port = 0;
  std::uint16_t last_out_port = 0;
};

class FlowTable {
 public:
  struct Stats {
    std::uint64_t recorded = 0;    ///< record() calls
    std::uint64_t evictions = 0;   ///< space-saving replacements
    std::uint64_t total_bytes = 0; ///< exact sum over all record() calls
  };

  static constexpr std::size_t kDefaultCapacity = 128;

  explicit FlowTable(std::size_t capacity = kDefaultCapacity);

  /// Accounts one forwarded packet.  Returns true when the sample evicted
  /// a monitored flow (space-saving replacement).
  bool record(const FlowKey& key, std::uint32_t bytes, bool cut_through,
              sim::Time now, std::uint16_t in_port, std::uint16_t out_port)
      SRP_EXCLUDES(mutex_);

  /// The k heaviest monitored flows, bytes-descending (ties broken by
  /// packets, then key order — deterministic across reruns).
  [[nodiscard]] std::vector<FlowRecord> top(std::size_t k) const
      SRP_EXCLUDES(mutex_);

  /// Every monitored flow in deterministic (key) order.
  [[nodiscard]] std::vector<FlowRecord> all() const SRP_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const SRP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const SRP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Forgets every flow (stats included).  Quiescent use only.
  void clear() SRP_EXCLUDES(mutex_);

 private:
  /// Sorted copy of the monitored flows, bytes-descending.
  [[nodiscard]] std::vector<FlowRecord> sorted_locked() const
      SRP_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable srp::Mutex mutex_;
  std::vector<FlowRecord> slots_ SRP_GUARDED_BY(mutex_);
  std::unordered_map<FlowKey, std::size_t, FlowKeyHash> index_
      SRP_GUARDED_BY(mutex_);
  Stats stats_ SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::flow
