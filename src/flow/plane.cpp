#include "flow/plane.hpp"

namespace srp::flow {

FlowPlane::FlowPlane(FlowConfig config, stats::Registry* registry,
                     obs::FlightRecorder* recorder)
    : config_(config), registry_(registry), recorder_(recorder) {}

obs::FlowSink& FlowPlane::scoped(std::string_view component) {
  MutexLock lock(mutex_);
  const auto it = observers_.find(component);
  if (it != observers_.end()) return *it->second;
  auto observer = std::make_unique<FlowObserver>(
      std::string(component), config_, registry_, recorder_);
  return *observers_.emplace(std::string(component), std::move(observer))
              .first->second;
}

std::vector<const FlowObserver*> FlowPlane::observers() const {
  MutexLock lock(mutex_);
  std::vector<const FlowObserver*> out;
  out.reserve(observers_.size());
  for (const auto& [name, observer] : observers_) {
    out.push_back(observer.get());
  }
  return out;  // std::map iteration is already name-sorted
}

const FlowObserver* FlowPlane::observer(std::string_view component) const {
  MutexLock lock(mutex_);
  const auto it = observers_.find(component);
  return it != observers_.end() ? it->second.get() : nullptr;
}

std::map<std::uint32_t, AccountCharge> FlowPlane::account_rollup() const {
  std::map<std::uint32_t, AccountCharge> rollup;
  for (const auto* observer : observers()) {
    for (const auto& [account, charge] : observer->charges()) {
      auto& total = rollup[account];
      total.packets += charge.packets;
      total.bytes += charge.bytes;
    }
  }
  return rollup;
}

}  // namespace srp::flow
