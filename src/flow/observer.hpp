// One component's flow-accounting state: the FlowTable, the deterministic
// packet sampler, the exact per-account charge mirror and the feeder
// aggregates the congestion controller reads back.
//
// A FlowObserver implements obs::FlowSink for a single named component
// (one router).  Components obtain theirs via FlowPlane::scoped(name); the
// router and its congestion controller share one observer by name, which
// is how feeders_toward() answers from the router's own forward stream.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/sync.hpp"
#include "check/thread_annotations.hpp"
#include "flow/sampler.hpp"
#include "flow/table.hpp"
#include "obs/flow_sink.hpp"
#include "obs/recorder.hpp"
#include "stats/registry.hpp"

namespace srp::flow {

/// Flow-plane tuning, shared by every observer a plane creates.
struct FlowConfig {
  std::size_t table_capacity = FlowTable::kDefaultCapacity;
  /// 1-in-N deterministic packet sampling (0 = off, 1 = every packet).
  std::uint32_t sample_period = 64;
  /// Base seed for the per-component sampler streams (mixed with the
  /// component name, src/fault style, so replay is attach-order-free).
  std::uint64_t seed = 0x5EED;
};

/// Per-account roll-up entry, mirroring tokens::AccountUsage without a
/// dependency on the tokens layer.
struct AccountCharge {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  bool operator==(const AccountCharge&) const = default;
};

class FlowObserver final : public obs::FlowSink {
 public:
  /// @p registry / @p recorder may be null (no metrics / no sampled-span
  /// capture).  Metrics: `flow.<name>.sampled`, `flow.<name>.evictions`
  /// counters and a `flow.<name>.flows` gauge.
  FlowObserver(std::string name, const FlowConfig& config,
               stats::Registry* registry, obs::FlightRecorder* recorder);

  void on_forward(const obs::FlowSample& sample) override
      SRP_EXCLUDES(mutex_);
  /// Batch pass: same per-sample semantics and order as on_forward(), but
  /// the mutex is taken once for the whole burst.
  void on_forward_burst(std::span<const obs::FlowSample> samples) override
      SRP_EXCLUDES(mutex_);
  void on_charge(std::uint32_t account, std::uint64_t bytes) override
      SRP_EXCLUDES(mutex_);
  void feeders_toward(int out_port, sim::Time since,
                      std::vector<int>& out) const override
      SRP_EXCLUDES(mutex_);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }

  /// Exact per-account charge mirror: one entry per Ledger::charge the
  /// component reported, reconcilable 1:1 with the ledger.
  [[nodiscard]] std::map<std::uint32_t, AccountCharge> charges() const
      SRP_EXCLUDES(mutex_);

  /// Packets sampled so far.
  [[nodiscard]] std::uint64_t sampled() const SRP_EXCLUDES(mutex_);

 private:
  /// The unlocked half of one sample: flow-table update + metrics.
  void record_table(const obs::FlowSample& sample);
  /// The locked half of one sample: feeder aggregate + sampler draw (and
  /// the sampled-capture span, when one is taken).
  void record_sampled(const obs::FlowSample& sample) SRP_REQUIRES(mutex_);

  const std::string name_;
  FlowTable table_;
  obs::FlightRecorder* recorder_ = nullptr;
  stats::Counter* sampled_counter_ = nullptr;
  stats::Counter* evictions_counter_ = nullptr;
  stats::Gauge* flows_gauge_ = nullptr;

  mutable srp::Mutex mutex_;
  Sampler sampler_ SRP_GUARDED_BY(mutex_);
  std::uint64_t sampled_total_ SRP_GUARDED_BY(mutex_) = 0;
  std::map<std::uint32_t, AccountCharge> charges_ SRP_GUARDED_BY(mutex_);
  /// (out_port, in_port) -> last time in_port fed out_port.
  std::map<std::pair<std::uint16_t, std::uint16_t>, sim::Time> feeders_
      SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::flow
