// Origin-host telemetry marking discipline.
//
// Path telemetry costs trailer bytes at every hop, so (like flow
// sampling) it is applied to 1-in-N packets, not all of them.  The
// marker wraps the same deterministic count-down Sampler the flow
// accounting plane uses, under its own component namespace
// ("int.<host>"), so telemetry marking and flow sampling draw from
// well-separated streams of the one fabric seed and a rerun marks the
// byte-identical packet sequence.
//
// A caller may also force a mark (viper::SendOptions::telemetry); the
// sampler is still advanced on forced sends so the marked-packet
// sequence of everything *after* the forced send is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "flow/sampler.hpp"

namespace srp::flow {

class TelemetryMarker {
 public:
  /// Marks 1 in @p period sends (0 = never, 1 = every send) from the
  /// host named @p host, phase-seeded exactly like every other sampled
  /// discipline in the tree.
  TelemetryMarker(std::uint64_t seed, std::string_view host,
                  std::uint32_t period)
      : sampler_(seed, "int." + std::string(host), period) {}

  /// Decides whether this send is telemetry-marked.  The sampler always
  /// advances — a forced mark must not phase-shift later samples.
  bool mark(bool forced = false) {
    const bool sampled = sampler_.sample();
    return forced || sampled;
  }

  [[nodiscard]] std::uint32_t period() const { return sampler_.period(); }

 private:
  Sampler sampler_;
};

}  // namespace srp::flow
