// The flow accounting plane: one FlowObserver per named component.
//
// A FlowPlane is the obs::FlowSink a fabric hands to Observer::flow.  The
// plane itself records nothing — components call scoped(name) once at
// set_observer() time and publish into their own FlowObserver, so the
// per-packet path touches only per-component state (no plane-wide lock).
// A router and its congestion controller share one name and therefore one
// observer, which is how the controller reads feeder aggregates straight
// from the router's forward stream.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/sync.hpp"
#include "check/thread_annotations.hpp"
#include "flow/observer.hpp"
#include "obs/flow_sink.hpp"

namespace srp::flow {

class FlowPlane final : public obs::FlowSink {
 public:
  /// @p registry / @p recorder may be null; they are handed to every
  /// observer the plane creates.
  explicit FlowPlane(FlowConfig config = {},
                     stats::Registry* registry = nullptr,
                     obs::FlightRecorder* recorder = nullptr);

  /// Finds or creates the observer for @p component.  References stay
  /// valid for the plane's lifetime (observers are never destroyed).
  FlowSink& scoped(std::string_view component) override
      SRP_EXCLUDES(mutex_);

  // The plane-level sink is inert: components always publish through
  // scoped().  Accepting (and ignoring) direct calls keeps a mis-wired
  // component harmless instead of undefined.
  void on_forward(const obs::FlowSample&) override {}
  void on_charge(std::uint32_t, std::uint64_t) override {}
  void feeders_toward(int, sim::Time, std::vector<int>&) const override {}

  /// Every observer, name-sorted.  Quiescent read (batch boundaries).
  [[nodiscard]] std::vector<const FlowObserver*> observers() const
      SRP_EXCLUDES(mutex_);

  /// The observer for @p component, or nullptr.
  [[nodiscard]] const FlowObserver* observer(std::string_view component) const
      SRP_EXCLUDES(mutex_);

  /// Per-account charges summed across every observer — the plane-wide
  /// mirror of tokens::Ledger::all().
  [[nodiscard]] std::map<std::uint32_t, AccountCharge> account_rollup() const
      SRP_EXCLUDES(mutex_);

  [[nodiscard]] const FlowConfig& config() const { return config_; }

 private:
  const FlowConfig config_;
  stats::Registry* registry_;
  obs::FlightRecorder* recorder_;

  mutable srp::Mutex mutex_;
  std::map<std::string, std::unique_ptr<FlowObserver>, std::less<>>
      observers_ SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::flow
