// Traffic sources: Poisson, on-off bursty, and constant-bit-rate.
//
// "The highly bursty traffic characteristic of most computer communication
// makes the CVC approach ill-suited ... an 8 Mb data stream appears as
// periodic bursts of packets on a gigabit channel" (paper §1).  Sources
// emit through a callback; the experiment supplies what "emit" means
// (usually: build a packet and send it down a host port).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace srp::wl {

/// Poisson arrivals with a given mean inter-arrival time.
class PoissonSource {
 public:
  using Emit = std::function<void()>;

  PoissonSource(sim::Simulator& sim, std::uint64_t seed,
                sim::Time mean_interval, Emit emit)
      : sim_(sim), rng_(seed), mean_interval_(mean_interval),
        emit_(std::move(emit)) {}

  void start() {
    running_ = true;
    schedule_next();
  }
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void schedule_next() {
    if (!running_) return;
    sim_.after(rng_.exp_interval(mean_interval_), [this] {
      if (!running_) return;
      ++emitted_;
      emit_();
      schedule_next();
    });
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  sim::Time mean_interval_;
  Emit emit_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

/// On-off bursty source: exponentially distributed burst and idle periods;
/// packets emitted back-to-back at a fixed spacing during a burst.
class OnOffSource {
 public:
  using Emit = std::function<void()>;

  OnOffSource(sim::Simulator& sim, std::uint64_t seed, sim::Time mean_on,
              sim::Time mean_off, sim::Time packet_spacing, Emit emit)
      : sim_(sim), rng_(seed), mean_on_(mean_on), mean_off_(mean_off),
        spacing_(packet_spacing), emit_(std::move(emit)) {}

  void start() {
    running_ = true;
    begin_burst();
  }
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void begin_burst() {
    if (!running_) return;
    burst_end_ = sim_.now() + rng_.exp_interval(mean_on_);
    pump();
  }
  void pump() {
    if (!running_) return;
    if (sim_.now() >= burst_end_) {
      sim_.after(rng_.exp_interval(mean_off_), [this] { begin_burst(); });
      return;
    }
    ++emitted_;
    emit_();
    sim_.after(spacing_, [this] { pump(); });
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  sim::Time mean_on_;
  sim::Time mean_off_;
  sim::Time spacing_;
  Emit emit_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
  sim::Time burst_end_ = 0;
};

/// Constant-bit-rate source (the paper's real-time video traffic).
class CbrSource {
 public:
  using Emit = std::function<void()>;

  CbrSource(sim::Simulator& sim, sim::Time interval, Emit emit)
      : sim_(sim), interval_(interval), emit_(std::move(emit)) {}

  void start() {
    running_ = true;
    tick();
  }
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void tick() {
    if (!running_) return;
    ++emitted_;
    emit_();
    sim_.after(interval_, [this] { tick(); });
  }

  sim::Simulator& sim_;
  sim::Time interval_;
  Emit emit_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace srp::wl
