// Packet-size model from the paper's header-overhead analysis (§6.2).
//
// "Previous network measurements suggest (as a rough approximation) that
// half the packets are close to minimum size (for the transport layer),
// one quarter are maximum size and the rest are more or less uniformly
// distributed between these two extremes.  Using this approximation in
// general, the average packet size is roughly 3/8 of the maximum packet
// size."
#pragma once

#include <cstddef>

#include "sim/random.hpp"

namespace srp::wl {

struct PacketSizeModel {
  std::size_t min_bytes = 64;
  std::size_t max_bytes = 2048;

  /// Draws a size: P(min) = 1/2, P(max) = 1/4, else uniform in between.
  [[nodiscard]] std::size_t sample(sim::Rng& rng) const {
    const double u = rng.next_double();
    if (u < 0.5) return min_bytes;
    if (u < 0.75) return max_bytes;
    return static_cast<std::size_t>(
        rng.uniform(static_cast<double>(min_bytes),
                    static_cast<double>(max_bytes)));
  }

  /// Closed-form mean of the model.
  [[nodiscard]] double analytic_mean() const {
    const auto min = static_cast<double>(min_bytes);
    const auto max = static_cast<double>(max_bytes);
    return 0.5 * min + 0.25 * max + 0.25 * (min + max) / 2.0;
  }

  /// The paper's headline approximation (exact when min == 0).
  [[nodiscard]] double paper_mean() const {
    return 3.0 / 8.0 * static_cast<double>(max_bytes);
  }
};

}  // namespace srp::wl
