// Pending-event set for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace srp::sim {

/// Opaque handle identifying a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Min-heap of timestamped callbacks with stable FIFO ordering among
/// events scheduled for the same instant (ties break on insertion order,
/// which keeps runs deterministic).
///
/// Cancellation is lazy: a cancelled event stays in the heap but is skipped
/// when it reaches the top.  schedule/pop are O(log n), cancel is O(1).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules @p cb to run at @p when.  Returns a handle for cancel().
  EventId schedule(Time when, Callback cb);

  /// Cancels a previously scheduled event.  Cancelling an event that has
  /// already run (or was already cancelled) is a harmless no-op.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of live events still pending.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<Time, Callback> pop();

 private:
  struct Entry {
    Time when;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when != b.when ? a.when > b.when : a.id > b.id;
    }
  };

  /// Pops heap entries whose ids are no longer pending (i.e. cancelled).
  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;  // ids scheduled and not yet run
  EventId next_id_ = 1;
};

}  // namespace srp::sim
