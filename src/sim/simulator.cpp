#include "sim/simulator.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace srp::sim {

EventId Simulator::at(Time when, EventQueue::Callback cb) {
  // Scheduling from a worker thread would race the event queue and break
  // replay determinism; offloaded work reports back via its own monitor.
  SIRPENT_EXPECTS(std::this_thread::get_id() == owner_);
  if (when < now_) {
    throw std::invalid_argument("Simulator::at: scheduling into the past");
  }
  return events_.schedule(when, std::move(cb));
}

bool Simulator::step() {
  SIRPENT_EXPECTS(std::this_thread::get_id() == owner_);
  if (events_.empty()) return false;
  auto [when, cb] = events_.pop();
  SIRPENT_INVARIANT(when >= now_);  // event queue returned a past event
  now_ = when;
  cb();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!events_.empty() && events_.next_time() <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Simulator::run_steps(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace srp::sim
