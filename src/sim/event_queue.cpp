#include "sim/event_queue.hpp"

#include "check/contract.hpp"

namespace srp::sim {

EventId EventQueue::schedule(Time when, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) { pending_.erase(id); }

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kTimeInfinity : heap_.top().when;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  drop_cancelled();
  SIRPENT_EXPECTS(!heap_.empty());  // pop() on empty EventQueue
  // std::priority_queue::top() returns a const ref; the Entry is moved out
  // via const_cast because the immediately following pop() discards it.
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<Time, Callback> out{top.when, std::move(top.cb)};
  pending_.erase(top.id);
  heap_.pop();
  return out;
}

}  // namespace srp::sim
