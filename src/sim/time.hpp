// Simulated time for the Sirpent discrete-event substrate.
//
// Time is an integer count of picoseconds.  Picosecond resolution lets us
// represent single-bit serialization times on multi-gigabit links exactly
// (1 bit at 10 Gb/s = 100 ps) while still covering ~106 days of simulated
// time in a signed 64-bit integer — far more than any experiment here runs.
#pragma once

#include <cstdint>

namespace srp::sim {

/// Simulated time in picoseconds since the start of the run.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000 * kPicosecond;
inline constexpr Time kMicrosecond = 1'000 * kNanosecond;
inline constexpr Time kMillisecond = 1'000 * kMicrosecond;
inline constexpr Time kSecond = 1'000 * kMillisecond;

/// A Time value that compares after every real event time.
inline constexpr Time kTimeInfinity = INT64_MAX;

/// Serialization time of @p bits at @p bits_per_second, rounded up to the
/// next picosecond so a transmission never finishes "early".
constexpr Time transmission_time(std::uint64_t bits, double bits_per_second) {
  if (bits == 0) return 0;
  const double ps = static_cast<double>(bits) * 1e12 / bits_per_second;
  const auto t = static_cast<Time>(ps);
  return (static_cast<double>(t) < ps) ? t + 1 : t;
}

/// Serialization time of @p bytes (octets) at @p bits_per_second.
constexpr Time byte_time(std::uint64_t bytes, double bits_per_second) {
  return transmission_time(bytes * 8, bits_per_second);
}

/// Time expressed as (possibly fractional) seconds, for reporting.
constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e12; }

/// Time expressed as microseconds, for reporting.
constexpr double to_micros(Time t) { return static_cast<double>(t) / 1e6; }

/// Time expressed as milliseconds, for reporting.
constexpr double to_millis(Time t) { return static_cast<double>(t) / 1e9; }

/// Seconds (as a double) converted to simulated Time.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e12);
}

}  // namespace srp::sim
