#include "sim/trace.hpp"

namespace srp::sim {

void Trace::emit(Time when, std::string_view component,
                 std::string_view message) {
  if (!enabled_) return;
  records_.push_back(
      TraceRecord{when, std::string(component), std::string(message)});
}

std::size_t Trace::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace srp::sim
