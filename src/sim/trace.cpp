#include "sim/trace.hpp"

#include "check/contract.hpp"

namespace srp::sim {

void Trace::set_limit(std::size_t limit) {
  SIRPENT_EXPECTS(limit >= 1);
  limit_ = limit;
  while (records_.size() > limit_) {
    records_.pop_front();
    ++dropped_;
  }
}

void Trace::emit(Time when, std::string_view component,
                 std::string_view message) {
  if (!enabled_) return;
  if (records_.size() >= limit_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(
      TraceRecord{when, std::string(component), std::string(message)});
}

std::size_t Trace::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace srp::sim
