// The discrete-event simulator driving every Sirpent experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace srp::sim {

/// Single-threaded discrete-event simulator.
///
/// All network components hold a reference to one Simulator and schedule
/// work on it; the run*() loop advances the clock to each event in time
/// order.  Determinism: identical schedules (and identical RNG seeds in the
/// components) replay identically.
///
/// Single-threaded is a checked contract, not a convention: with the
/// exec::WorkerPool in the tree, a worker accidentally scheduling an event
/// would silently destroy reproducibility.  The simulator records its
/// owning thread at construction and (in contract-enabled builds) rejects
/// at()/after()/run*() from any other thread — offloaded work must hand
/// results back through its own synchronized state and let the sim thread
/// consume them at a scheduled event (see tokens::ValidationEngine).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules @p cb at absolute time @p when (>= now()).
  EventId at(Time when, EventQueue::Callback cb);

  /// Schedules @p cb @p delay after now().
  EventId after(Time delay, EventQueue::Callback cb) {
    return at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event (no-op if it already ran).
  void cancel(EventId id) { events_.cancel(id); }

  /// Runs until the event queue drains.  Returns the number of events run.
  std::uint64_t run();

  /// Runs events with time <= @p deadline, then sets the clock to
  /// @p deadline.  Returns the number of events run.
  std::uint64_t run_until(Time deadline);

  /// Runs at most @p max_events events (for watchdog-style tests).
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Number of events still pending.
  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }

 private:
  bool step();

  EventQueue events_;
  Time now_ = 0;
  std::thread::id owner_ = std::this_thread::get_id();
};

}  // namespace srp::sim
