// Lightweight event tracing for debugging simulations and asserting
// event orderings in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace srp::sim {

/// One trace record: (time, component, message).
struct TraceRecord {
  Time when;
  std::string component;
  std::string message;
};

/// Collects trace records; disabled by default so the hot path costs one
/// branch.  Tests enable it and assert on the captured sequence.
///
/// Retention is bounded: once the record count reaches the configured
/// limit (set_limit, default 64Ki) the oldest record is evicted for each
/// new one and dropped() counts the evictions, so soak runs can leave
/// tracing on indefinitely without unbounded growth.
class Trace {
 public:
  static constexpr std::size_t kDefaultLimit = std::size_t{1} << 16;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Caps retained records at @p limit (>= 1); excess oldest records are
  /// evicted immediately.
  void set_limit(std::size_t limit);
  [[nodiscard]] std::size_t limit() const { return limit_; }

  void emit(Time when, std::string_view component, std::string_view message);

  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  /// Records evicted to honor the ring limit (not reset by clear()).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() { records_.clear(); }

  /// Number of retained records whose message contains @p needle.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

 private:
  bool enabled_ = false;
  std::size_t limit_ = kDefaultLimit;
  std::uint64_t dropped_ = 0;
  std::deque<TraceRecord> records_;
};

}  // namespace srp::sim
