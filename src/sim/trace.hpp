// Lightweight event tracing for debugging simulations and asserting
// event orderings in tests.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace srp::sim {

/// One trace record: (time, component, message).
struct TraceRecord {
  Time when;
  std::string component;
  std::string message;
};

/// Collects trace records; disabled by default so the hot path costs one
/// branch.  Tests enable it and assert on the captured sequence.
class Trace {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(Time when, std::string_view component, std::string_view message);

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

  /// Number of records whose message contains @p needle.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace srp::sim
