#include "sim/random.hpp"

#include <cmath>
#include <numbers>

#include "check/contract.hpp"

namespace srp::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  SIRPENT_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + v % span;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  // -mean * ln(U) with U in (0,1]; 1 - next_double() avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

Time Rng::exp_interval(Time mean) {
  const double v = exponential(static_cast<double>(mean));
  const Time t = static_cast<Time>(v);
  return t < 1 ? 1 : t;
}

std::uint64_t Rng::geometric(double p) {
  SIRPENT_EXPECTS(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  const double u = 1.0 - next_double();  // (0,1]
  const double n = std::ceil(std::log(u) / std::log(1.0 - p));
  return n < 1.0 ? 1 : static_cast<std::uint64_t>(n);
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - next_double();  // (0,1]
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::pareto(double xm, double alpha) {
  const double u = 1.0 - next_double();  // (0,1]
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace srp::sim
