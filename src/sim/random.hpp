// Deterministic random-number substrate for workloads and experiments.
//
// A thin wrapper over xoshiro256** with the distributions the benches need.
// Every component takes an explicit seed so runs are reproducible and
// experiments can vary seeds independently of each other.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace srp::sim {

/// xoshiro256** 1.0 (Blackman & Vigna) — small, fast, high quality, and —
/// unlike std::mt19937 — guaranteed identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the state from @p seed via SplitMix64, which guarantees
  /// a non-zero, well-mixed state even for small consecutive seeds.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive).  Precondition: lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability @p p.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed value with mean @p mean.
  double exponential(double mean);

  /// Exponentially distributed inter-arrival gap with the given mean,
  /// rounded to Time (>= 1 ps so the clock always advances).
  Time exp_interval(Time mean);

  /// Geometric number of trials (>= 1) with success probability @p p.
  std::uint64_t geometric(double p);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);

  /// Pareto-distributed value with scale @p xm and shape @p alpha — used
  /// for heavy-tailed burst sizes.
  double pareto(double xm, double alpha);

  /// Forks an independent stream; derived deterministically from this
  /// stream so components can be given private generators.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace srp::sim
