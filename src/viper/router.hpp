// The VIPER router: Sirpent's per-hop algorithm on the simulated plane.
//
// "On reception of a Sirpent packet at a router ... the router removes the
// network header from the front of the packet as well as the port,
// typeOfService and portToken fields.  It checks the authorization provided
// by the portToken, if present ... revises the network-specific portion so
// that it constitutes a correct return hop through this router and appends
// the return port and network header fields to the end of the packet.  The
// packet is then forwarded out through the port specified by the port
// field."  (paper §2)
//
// Cut-through: the switching decision is made once the link header and the
// first VIPER segment have arrived; the output may start then, never
// before, and only when input and output rates match (§2.1).  Blocked
// packets are saved / dropped / preempt per type of service.  Tokens are
// checked against the cache with optimistic / blocking / drop handling for
// misses (§2.2).  Logical ports implement replicated-trunk load balancing
// and multi-port multicast; tree-structured portInfo implements Blazenet-
// style multicast (§2, §2.2).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/multicast.hpp"
#include "check/analysis.hpp"
#include "core/segment.hpp"
#include "core/trailer.hpp"
#include "net/arena.hpp"
#include "net/burst.hpp"
#include "net/ethernet.hpp"
#include "net/network.hpp"
#include "obs/flow_sink.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"
#include "tokens/cache.hpp"
#include "tokens/token.hpp"
#include "tokens/validator.hpp"
#include "viper/codec.hpp"

namespace srp::viper {

/// What is attached to a port: a point-to-point link (no link framing) or a
/// multi-access network (Ethernet framing from the segment's portInfo).
enum class PortKind : std::uint8_t { kPointToPoint, kLan };

struct RouterConfig {
  std::uint32_t router_id = 0;

  /// Cut-through enabled; falls back to store-and-forward when the input
  /// and output link rates differ (paper §2.1).
  bool cut_through = true;

  /// Switch decision + setup time ("significantly less than a
  /// microsecond", §2.1/§6.1).
  sim::Time decision_delay = 500 * sim::kNanosecond;

  /// Per-packet processing when operating store-and-forward.
  sim::Time store_forward_proc = 2 * sim::kMicrosecond;

  // --- token handling (§2.2) ---
  bool require_tokens = false;
  tokens::UncachedPolicy uncached_policy = tokens::UncachedPolicy::kOptimistic;
  /// Full decrypt+check time for an uncached token.
  sim::Time verify_delay = 50 * sim::kMicrosecond;
};

/// A port id that maps to several physical ports (paper §2.2 "logical hops
/// and load balancing" / §2 multicast mechanism 1).
struct LogicalPort {
  enum class Kind {
    kFanout,       ///< copy the packet out every member (multicast)
    kLoadBalance,  ///< pick one member: idle first, else shortest queue
  };
  Kind kind = Kind::kLoadBalance;
  std::vector<int> members;
};


/// Port field of the packet's next segment starting at @p offset, or 0
/// when the remainder does not start with a routable segment.  The
/// cut-through fast path: reads the fixed 4-byte prefix and skips the
/// variable fields without materializing them, so it is allocation-free
/// (pinned by tests/alloc_budget_test.cpp).
SRP_HOT_PATH std::uint8_t peek_next_port(const wire::Bytes& bytes,
                                         std::size_t offset);

class ViperRouter : public net::PortedNode {
 public:
  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered_control = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_no_port = 0;
    std::uint64_t dropped_unauthorized = 0;
    std::uint64_t dropped_token_limit = 0;
    std::uint64_t dropped_uncached = 0;
    std::uint64_t truncated_forwards = 0;
    std::uint64_t tree_copies = 0;
    std::uint64_t fanout_copies = 0;
    std::uint64_t delay_line_loops = 0;     ///< deferrals via delay lines
    std::uint64_t delay_line_overflows = 0; ///< recirculation cap exceeded
    std::uint64_t dropped_expired_token = 0;
    std::uint64_t telemetry_stamped = 0;   ///< HopTelemetry records appended
    std::uint64_t telemetry_overflow = 0;  ///< marked packets past the
                                           ///  kMaxTelemetryHops stamp bound
  };

  /// Handler for locally addressed (port 0) packets — congestion reports
  /// and other router control traffic.
  using ControlHandler = std::function<void(
      const core::HeaderSegment& segment, wire::Bytes payload, int in_port)>;

  /// Congestion-layer intercept: called before a forwarded packet is handed
  /// to its output port.  Returning true means the shaper has taken custody
  /// and will call emit_to_port() later.  `next_hop_port` is the port field
  /// of the packet's *next* segment — together with the neighbour behind
  /// `out_port` it names the downstream queue the packet will feed, which
  /// is the paper's per-flow rate-control key.
  using Shaper =
      std::function<bool(int out_port, std::uint8_t next_hop_port,
                         net::PacketPtr packet, net::TxMeta meta,
                         sim::Time earliest_start)>;

  /// Tunnel transmit hook (paper §2.3): a segment addressed to a tunnel
  /// port hands the remaining VIPER image to the far end designated by the
  /// segment's portInfo — e.g. an IP datagram across "the Internet as one
  /// logical hop".  @p info is the segment's portInfo, @p viper_bytes the
  /// encapsulated packet (trailer entry already appended).
  using TunnelTransmit = std::function<void(
      const wire::Bytes& info, wire::Bytes viper_bytes,
      const core::TypeOfService& tos)>;

  ViperRouter(sim::Simulator& sim, std::string name, RouterConfig config);

  void set_port_kind(int port_index, PortKind kind);
  [[nodiscard]] PortKind port_kind(int port_index) const;

  void define_logical_port(std::uint8_t id, LogicalPort lp);

  /// Declares @p id a tunnel port served by @p transmit.
  void define_tunnel_port(std::uint8_t id, TunnelTransmit transmit);

  /// Blazenet-style deferral (§2.1): instead of dropping on a full output
  /// buffer, circulate the packet through a local delay line of @p latency
  /// and retry, up to @p max_recirculations times.  Applies to every port
  /// that has a buffer limit set.
  void enable_delay_lines(sim::Time latency, int max_recirculations = 10);

  /// Ingress of a packet decapsulated from a tunnel: processed as if it
  /// arrived on tunnel port @p tunnel_port_id; the reverse trailer entry
  /// names that port with @p reverse_info as its portInfo (the paper's
  /// network-specific return information — e.g. the far gateway's IP
  /// address learned from the encapsulation header).
  void inject_from_tunnel(std::uint8_t tunnel_port_id,
                          wire::Bytes viper_bytes, wire::Bytes reverse_info);

  /// Enables token enforcement against @p authority, charging @p ledger.
  void set_token_authority(const tokens::TokenAuthority* authority,
                           tokens::Ledger* ledger);

  /// Offloads uncached-token verification (XTEA decrypt + MAC check) to
  /// @p engine's worker pool: submitted at cache-miss time, awaited inside
  /// the verify-completion event, so results land at the same simulated
  /// instants as the serial path (deterministic).  nullptr reverts to
  /// inline verification.
  void set_validation_engine(tokens::ValidationEngine* engine) {
    validation_engine_ = engine;
  }

  /// Adjusts token enforcement after construction (experiment harness
  /// convenience).
  void set_token_requirement(bool require, tokens::UncachedPolicy policy,
                             sim::Time verify_delay) {
    config_.require_tokens = require;
    config_.uncached_policy = policy;
    config_.verify_delay = verify_delay;
  }

  /// Wires the router (and its token cache) to an observability sink:
  /// a `viper.<name>.hop_latency_ps` histogram (head arrival to earliest
  /// forward), `viper.<name>.token_*` outcome counters, a
  /// `tokens.<name>.cache_entries` gauge, and — when a recorder is
  /// present — one kHop span per forwarded traced packet capturing the
  /// arrival / switch-decision / earliest-forward times, the cut-through
  /// vs store-and-forward choice and the token outcome.  When the observer
  /// carries a flow sink, every forwarded packet additionally publishes an
  /// obs::FlowSample (flow accounting + sampled capture) and every ledger
  /// charge is mirrored to the sink.  All handles are resolved here once;
  /// an unobserved router pays one untaken branch per instrumentation
  /// point.  Call set_observer after the last add_port().
  void set_observer(const obs::Observer& observer);

  /// Enables in-band path telemetry stamping: every forwarded packet whose
  /// Packet::telemetry mark is set gets one obs::HopTelemetry record
  /// appended to its trailer (after this hop's return entry, subject to the
  /// same MTU truncation as any trailer bytes).  Off by default; a disabled
  /// router is byte-identical to one built before telemetry existed.
  void set_path_telemetry(bool enabled) { telemetry_enabled_ = enabled; }
  [[nodiscard]] bool path_telemetry_enabled() const {
    return telemetry_enabled_;
  }

  void set_control_handler(ControlHandler handler) {
    control_handler_ = std::move(handler);
  }
  void set_shaper(Shaper shaper) { shaper_ = std::move(shaper); }

  /// Sends a control payload to the neighbour behind @p port_index,
  /// addressed to its local control endpoint.  Used by the congestion
  /// layer to push rate reports upstream.
  void send_control(int port_index, std::span<const std::uint8_t> payload,
                    std::uint8_t priority = 5);

  /// Congestion layer hands back a shaped packet for transmission.
  void emit_to_port(int out_port, net::PacketPtr packet, net::TxMeta meta,
                    sim::Time earliest_start);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  [[nodiscard]] tokens::TokenCache& token_cache() { return token_cache_; }
  [[nodiscard]] std::uint32_t router_id() const { return config_.router_id; }

  // --- batched data plane (DESIGN.md §11) ---

  /// Tuning for the batched forward path.
  struct BatchConfig {
    /// Packets handed to one forward_burst() call.  Larger bursts amortize
    /// better; batch boundaries still align to event boundaries, so this
    /// is a pure engine knob with no effect on simulated behaviour.
    std::size_t max_burst = 16;
    /// Packet slabs the arena may pool (free slabs recycle, zero-alloc).
    std::size_t arena_capacity = net::PacketArena::kDefaultCapacity;
  };

  /// Switches the forward path to run-to-completion bursts: same-instant
  /// arrivals coalesce into one drain event that runs token validation,
  /// header parsing, flow accounting and observability as batch passes
  /// over arena-backed buffers.  Off by default; the per-packet and
  /// batched paths produce byte-identical simulations (pinned by
  /// tests/batch_equivalence_test.cpp).
  void set_batching(BatchConfig config);
  void disable_batching() { batching_ = false; }
  [[nodiscard]] bool batching_enabled() const { return batching_; }
  [[nodiscard]] const net::PacketArena& arena() const { return arena_; }

  /// Forwards @p burst — a vector of same-instant arrivals, in arrival
  /// order — through the batch passes.  Requires set_batching().  Public
  /// so burst-capable drivers (benches, the alloc-budget test) can hand
  /// a dequeued vector straight to the engine; in the sim proper the
  /// drain event scheduled by on_arrival() is the only caller.
  void forward_burst(std::span<const net::Arrival> burst);

  void on_arrival(const net::Arrival& arrival) override;

 private:
  struct ParsedFront {
    std::optional<net::EthernetHeader> link;  ///< present on LAN arrivals
    core::HeaderSegment segment;              ///< first VIPER segment
    std::size_t consumed = 0;                 ///< front bytes consumed
    /// Set on tunnel ingress: (tunnel port id, reverse tunnel info) for
    /// the trailer entry instead of arrival port / link header.
    std::optional<std::pair<std::uint8_t, wire::Bytes>> tunnel_return;
  };

  void handle_packet(
      const net::Arrival& arrival, const wire::Bytes& bytes,
      bool synthetic_tree_copy,
      std::optional<std::pair<std::uint8_t, wire::Bytes>> tunnel_return =
          std::nullopt);
  /// @p was_blocked marks a re-entry after a blocking token admission, so
  /// the hop span keeps the miss-blocking outcome instead of the hit the
  /// retry sees.
  void forward(const net::Arrival& arrival, const ParsedFront& front,
               int physical_port, const wire::Bytes& bytes,
               bool was_blocked = false);
  void deliver_control(const net::Arrival& arrival, const ParsedFront& front,
                       const wire::Bytes& bytes);
  void branch_tree(const net::Arrival& arrival, const ParsedFront& front,
                   const wire::Bytes& bytes);

  /// Builds the trailer entry for the reverse hop through this router.
  [[nodiscard]] core::HeaderSegment make_return_entry(
      const net::Arrival& arrival, const ParsedFront& front,
      bool token_reversible) const;

  /// Token admission.  Returns nullopt when the packet must be dropped;
  /// otherwise the extra delay (0 for cache hits / optimistic) and whether
  /// the token authorizes the reverse route.
  struct TokenDecision {
    sim::Time extra_delay = 0;
    bool reversible = false;
    obs::TokenOutcome outcome = obs::TokenOutcome::kNone;
    std::uint32_t account = 0;  ///< charged account (cache hits only)
  };
  std::optional<TokenDecision> admit_token(const core::HeaderSegment& seg,
                                           int physical_port,
                                           std::size_t packet_bytes);

  /// The token-relevant slice of a segment as *views* — what admission
  /// needs, without materializing a HeaderSegment.
  struct TokenRef {
    std::span<const std::uint8_t> token;
    std::uint8_t port = 0;
    std::uint8_t priority = 0;
    bool rpf = false;
  };
  /// The real admission logic; admit_token() is a thin wrapper over this.
  std::optional<TokenDecision> admit_token_ref(const TokenRef& ref,
                                               int physical_port,
                                               std::size_t packet_bytes);

  // --- batched forward path internals ---

  /// Per-item classification result for one burst.
  struct BurstSlot {
    SegmentView view;
    bool fast = false;  ///< eligible for forward_fast()
  };

  /// True when @p arrival can take the zero-copy fast path: plain
  /// point-to-point in and out, a legal physical-port segment, no tunnel /
  /// logical / tree / control dispatch, and no blocking token policy.
  /// Pure — no counters move — so a slow item replays from scratch.
  bool classify_fast(const net::Arrival& arrival, SegmentView& view) const;

  /// Batch pass 2: submits validation tickets for the burst's distinct
  /// uncached tokens before any packet is admitted, so the engine's
  /// workers overlap the whole burst.  Tickets are parked in
  /// pending_tickets_ and consumed by admit_token_ref()'s miss path.
  void prefetch_burst_tokens();

  /// The zero-copy per-item pass: admission, in-place header rewrite into
  /// an arena slab, timing, accounting.  Mirrors forward() exactly for the
  /// packets classify_fast() accepts.
  void forward_fast(const net::Arrival& arrival, const SegmentView& view);

  /// Publishes the burst's accumulated flow samples and hop spans through
  /// the batch-pass observer hooks.  Called before any slow-path item (to
  /// keep the sampler stream in strict item order) and at burst end.
  void flush_burst_obs();

  /// Drain event body: forwards everything coalesced at this instant.
  void drain_bursts();

  /// When the switch decision happens and when output may start (§2.1).
  struct ForwardTiming {
    sim::Time decision = 0;  ///< header+segment in hand, route resolved
    sim::Time earliest = 0;  ///< decision + setup; output never earlier
    bool cut_through = false;
  };
  [[nodiscard]] ForwardTiming forward_timing(const net::Arrival& arrival,
                                             std::size_t consumed,
                                             int out_port) const;

  /// Bumps the `viper.<name>.token_*` counter for @p outcome, if observed.
  void count_token_outcome(obs::TokenOutcome outcome);

  /// Appends this hop's telemetry record to @p out_bytes (the rewritten
  /// image, return entry already in place).  @p out is the egress TxPort
  /// whose queue state the record samples — null for tunnel egress.
  /// Identical byte effect on the reference and zero-copy paths.
  void stamp_telemetry(wire::Bytes& out_bytes, const net::Arrival& arrival,
                       int out_port, const net::TxPort* out,
                       const ForwardTiming& timing,
                       obs::TokenOutcome outcome);

  void forward_into_tunnel(const net::Arrival& arrival,
                           const ParsedFront& front,
                           const TunnelTransmit& transmit,
                           const wire::Bytes& bytes);

  RouterConfig config_;
  std::vector<PortKind> port_kinds_;  // indexed by port id
  std::map<std::uint8_t, LogicalPort> logical_ports_;
  std::map<std::uint8_t, TunnelTransmit> tunnel_ports_;

  const tokens::TokenAuthority* authority_ = nullptr;
  tokens::Ledger* ledger_ = nullptr;
  tokens::ValidationEngine* validation_engine_ = nullptr;
  tokens::TokenCache token_cache_;
  std::unordered_set<std::uint64_t> pending_verifies_;

  // Batched data plane state.  The scratch vectors keep their capacity
  // across bursts, so the steady-state drain is allocation-free.
  bool batching_ = false;
  BatchConfig batch_config_;
  net::PacketArena arena_;
  net::ArrivalBurst ingress_;
  std::vector<BurstSlot> burst_slots_;
  std::vector<obs::FlowSample> burst_samples_;
  std::vector<obs::SpanRecord> burst_spans_;
  /// Verification tickets prefetched for the burst in flight, by token
  /// cache key.  Consumed by admit_token_ref() within the same drain.
  std::unordered_map<std::uint64_t, tokens::ValidationEngine::Ticket>
      pending_tickets_;
  std::vector<std::span<const std::uint8_t>> prefetch_tokens_;
  std::vector<std::uint64_t> prefetch_keys_;
  std::vector<tokens::ValidationEngine::Ticket> prefetch_tickets_;

  ControlHandler control_handler_;
  Shaper shaper_;
  Stats stats_;
  bool telemetry_enabled_ = false;  ///< set_path_telemetry()

  /// Publishes one obs::FlowSample for a forwarded packet, when a flow
  /// sink is wired.
  void record_flow(const net::Arrival& arrival, const ParsedFront& front,
                   int out_port, const wire::Bytes& bytes, bool cut_through,
                   std::uint32_t account, sim::Time now);

  // Observability handles, resolved once by set_observer(); null = off.
  stats::Histogram* obs_hop_latency_ = nullptr;
  std::array<stats::Counter*, 6> obs_token_counters_{};  // by TokenOutcome
  obs::FlightRecorder* obs_recorder_ = nullptr;
  obs::FlowSink* obs_flow_ = nullptr;  // scoped to this router's name
};

/// 8-byte local endpoint id carried in a port-0 segment's portInfo.
wire::Bytes encode_endpoint_id(std::uint64_t id);
std::optional<std::uint64_t> decode_endpoint_id(const wire::Bytes& info);

/// Well-known control endpoint present on every router and host.
inline constexpr std::uint64_t kControlEndpoint = 0xC0'00'00'00'00'00'00'01ULL;

}  // namespace srp::viper
