#include "viper/router.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "check/analysis.hpp"
#include "check/contract.hpp"
#include "obs/telemetry.hpp"

namespace srp::viper {
namespace {

net::TxMeta meta_for(const core::TypeOfService& tos) {
  return net::TxMeta{core::priority_rank(tos.priority),
                     core::priority_preempts(tos.priority),
                     tos.drop_if_blocked};
}

}  // namespace

/// Port field of the packet's next segment, or 0 when the remainder does
/// not start with a routable segment (e.g. it is the DataLen of a locally
/// terminating packet).  Used only as the congestion flow key.
///
/// Reads the fixed 4-byte prefix and *skips* the variable fields instead
/// of materializing them the way decode_segment would — this runs once
/// per forward, and srp-lint's hot-path pass budget assumes it stays
/// allocation-free.
SRP_HOT_PATH std::uint8_t peek_next_port(const wire::Bytes& bytes,
                                         std::size_t offset) {
  if (offset >= bytes.size()) return 0;
  wire::Reader r{std::span{bytes}.subspan(offset)};
  try {
    const std::uint8_t info_len = r.u8();
    const std::uint8_t token_len = r.u8();
    const std::uint8_t port = r.u8();
    const std::uint8_t flags = static_cast<std::uint8_t>(r.u8() >> 4);
    // Mirror decode_field's framing exactly (length-escape rules and
    // bounds) so "parses here" agrees with "parses downstream".
    for (const std::uint8_t length_byte : {token_len, info_len}) {
      std::size_t len = length_byte;
      if (length_byte == 255) {
        len = r.u32();
        if (len <= 254) return 0;
      }
      r.skip(len);
    }
    const bool legal = (flags & kFlagTrm) == 0;
    return legal ? port : 0;
  } catch (const wire::CodecError&) {
    return 0;
  }
}

wire::Bytes encode_endpoint_id(std::uint64_t id) {
  wire::Writer w(8);
  w.u64(id);
  return std::move(w).take();
}

std::optional<std::uint64_t> decode_endpoint_id(const wire::Bytes& info) {
  if (info.size() != 8) return std::nullopt;
  wire::Reader r(info);
  return r.u64();
}

ViperRouter::ViperRouter(sim::Simulator& sim, std::string name,
                         RouterConfig config)
    : net::PortedNode(sim, std::move(name)), config_(config) {}

void ViperRouter::set_port_kind(int port_index, PortKind kind) {
  if (port_index <= 0) throw std::out_of_range("bad port index");
  if (static_cast<std::size_t>(port_index) >= port_kinds_.size()) {
    port_kinds_.resize(static_cast<std::size_t>(port_index) + 1,
                       PortKind::kPointToPoint);
  }
  port_kinds_[static_cast<std::size_t>(port_index)] = kind;
}

PortKind ViperRouter::port_kind(int port_index) const {
  if (port_index <= 0 ||
      static_cast<std::size_t>(port_index) >= port_kinds_.size()) {
    return PortKind::kPointToPoint;
  }
  return port_kinds_[static_cast<std::size_t>(port_index)];
}

void ViperRouter::define_logical_port(std::uint8_t id, LogicalPort lp) {
  logical_ports_[id] = std::move(lp);
}

void ViperRouter::define_tunnel_port(std::uint8_t id,
                                     TunnelTransmit transmit) {
  tunnel_ports_[id] = std::move(transmit);
}

void ViperRouter::inject_from_tunnel(std::uint8_t tunnel_port_id,
                                     wire::Bytes viper_bytes,
                                     wire::Bytes reverse_info) {
  ++stats_.received;
  auto packet = std::make_shared<net::Packet>();
  packet->bytes = std::move(viper_bytes);
  packet->created = sim_.now();
  net::Arrival arrival;
  arrival.packet = packet;
  arrival.in_port = 0;  // not a physical port; the trailer entry names the
                        // tunnel port instead (see make_return_entry)
  arrival.head = sim_.now();
  arrival.tail = sim_.now();
  arrival.rate_bps = 0.0;  // forces store-and-forward timing
  handle_packet(arrival, packet->bytes, /*synthetic_tree_copy=*/true,
                std::make_pair(tunnel_port_id, std::move(reverse_info)));
}

void ViperRouter::enable_delay_lines(sim::Time latency,
                                     int max_recirculations) {
  for (int p = 1; p <= port_count(); ++p) {
    net::TxPort& out = port(p);
    out.overflow_handler = [this, p, latency, max_recirculations](
                               net::PacketPtr packet, net::TxMeta meta) {
      if (packet->recirculations >=
          static_cast<std::uint8_t>(max_recirculations)) {
        ++stats_.delay_line_overflows;
        return false;  // give up: normal drop
      }
      ++packet->recirculations;
      ++stats_.delay_line_loops;
      // The packet spends `latency` in the delay line, then retries the
      // same output port ("entering it into a local delay line to store
      // the packet for some period of time", §2.1).
      sim_.after(latency, [this, p, packet = std::move(packet), meta] {
        port(p).enqueue(packet, meta, 0);
      });
      return true;
    };
  }
}

void ViperRouter::set_token_authority(const tokens::TokenAuthority* authority,
                                      tokens::Ledger* ledger) {
  authority_ = authority;
  ledger_ = ledger;
}

void ViperRouter::set_observer(const obs::Observer& observer) {
  if (observer.registry != nullptr) {
    const auto instance = stats::metric_component(name());
    obs_hop_latency_ =
        &observer.registry->histogram("viper." + instance + ".hop_latency_ps");
    // Indexed by obs::TokenOutcome; kNone (index 0) is never counted.
    static constexpr std::array<const char*, 6> kOutcomeMetric = {
        nullptr,          "token_hit",       "token_miss_optimistic",
        "token_miss_blocking", "token_miss_drop", "token_rejected"};
    for (std::size_t i = 1; i < kOutcomeMetric.size(); ++i) {
      obs_token_counters_[i] = &observer.registry->counter(
          "viper." + instance + "." + kOutcomeMetric[i]);
    }
    token_cache_.set_occupancy_gauge(
        &observer.registry->gauge("tokens." + instance + ".cache_entries"));
  } else {
    obs_hop_latency_ = nullptr;
    obs_token_counters_ = {};
    token_cache_.set_occupancy_gauge(nullptr);
  }
  obs_recorder_ = observer.recorder;
  // Resolve this router's scoped flow observer once: the forward path then
  // pays a single untaken null branch when flow accounting is off.
  obs_flow_ =
      observer.flow != nullptr ? &observer.flow->scoped(name()) : nullptr;
  for (int p = 1; p <= port_count(); ++p) port(p).set_observer(observer);
}

void ViperRouter::count_token_outcome(obs::TokenOutcome outcome) {
  stats::Counter* c = obs_token_counters_[static_cast<std::size_t>(outcome)];
  if (c != nullptr) c->add();
}

SRP_HOT_PATH void ViperRouter::record_flow(
    const net::Arrival& arrival, const ParsedFront& front, int out_port,
    const wire::Bytes& bytes, bool cut_through, std::uint32_t account,
    sim::Time now) {
  obs::FlowSample sample;
  sample.route_digest = arrival.packet->route_digest;
  sample.packet_id = arrival.packet->id;
  sample.trace_id = arrival.packet->trace_id;
  sample.account = account;
  sample.tos_class = front.segment.tos.priority;
  sample.cut_through = cut_through;
  sample.in_port = static_cast<std::uint16_t>(arrival.in_port);
  sample.out_port = static_cast<std::uint16_t>(out_port);
  // The admitted byte count — the same value admit_token charged, which
  // is what makes per-account roll-ups reconcile with the ledger.
  sample.bytes = static_cast<std::uint32_t>(bytes.size());
  sample.now = now;
  // Link header + first segment, exactly as received: the excerpt source
  // for sampled-packet capture.
  sample.header =
      std::span(bytes).first(std::min(front.consumed, bytes.size()));
  obs_flow_->on_forward(sample);
}

SRP_SIM_VISIBLE void ViperRouter::on_arrival(const net::Arrival& arrival) {
  ++stats_.received;
  arrival.packet->last_in_port = arrival.in_port;
  if (!batching_) {
    handle_packet(arrival, arrival.packet->bytes,
                  /*synthetic_tree_copy=*/false);
    return;
  }
  // Batched plane: coalesce every arrival of this instant and drain once.
  // The drain event is scheduled at +0, so same-time FIFO ordering places
  // it after all arrivals already delivered at this instant — the batch
  // boundary IS the event boundary, which is what keeps the batched sim
  // byte-identical to the per-packet one (all forward timing derives from
  // arrival.head/tail, never from "processing time" within the instant).
  if (ingress_.push(arrival)) {
    // SRP_ALLOC_OK(one drain event per same-instant burst, not per packet)
    sim_.after(0, [this] { drain_bursts(); });
  }
}

void ViperRouter::set_batching(BatchConfig config) {
  if (config.max_burst == 0) config.max_burst = 1;
  batch_config_ = config;
  arena_ = net::PacketArena(batch_config_.arena_capacity);
  batching_ = true;
}

SRP_SIM_VISIBLE void ViperRouter::drain_bursts() {
  while (!ingress_.empty()) {
    forward_burst(ingress_.take(batch_config_.max_burst));
  }
  ingress_.reset();  // drop held packet references, re-arm scheduling
}

SRP_HOT_PATH void ViperRouter::forward_burst(
    std::span<const net::Arrival> burst) {
  // Pass 1: classify.  Pure — no counters move, nothing is charged — so a
  // slow item replays through handle_packet() from scratch with no
  // double-count and a fast item is guaranteed to reach admission.
  burst_slots_.clear();
  for (const net::Arrival& arrival : burst) {
    // capacity-warm scratch; classify writes the view in place
    SRP_ALLOC_OK(BurstSlot& slot = burst_slots_.emplace_back());
    slot.fast = classify_fast(arrival, slot.view);
  }

  // Pass 2: prefetch validation tickets for this burst's uncached tokens.
  prefetch_burst_tokens();

  // Pass 3: per-item, in strict arrival order.  Slow items flush the
  // accumulated observability first so the flow sampler draws in exactly
  // the per-packet order.
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const net::Arrival& arrival = burst[i];
    if (burst_slots_[i].fast) {
      forward_fast(arrival, burst_slots_[i].view);
    } else {
      flush_burst_obs();
      handle_packet(arrival, arrival.packet->bytes,
                    /*synthetic_tree_copy=*/false);
    }
  }
  flush_burst_obs();

  // Every prefetched ticket is normally consumed by its fast item's
  // admission above.  The one escape: a slow item sharing the token value
  // entered pending_verifies_ first, orphaning the fast item's ticket —
  // settle such strays now so the engine's await-every-ticket contract
  // holds.
  if (!pending_tickets_.empty()) {
    for (const auto& [key, ticket] : SRP_ORDER_OK(pending_tickets_)) {
      (void)key;
      (void)validation_engine_->await(ticket);
    }
    pending_tickets_.clear();
  }
}

SRP_HOT_PATH bool ViperRouter::classify_fast(const net::Arrival& arrival,
                                             SegmentView& view) const {
  if (port_kind(arrival.in_port) == PortKind::kLan) return false;
  try {
    view = decode_segment_view(arrival.packet->bytes, 0);
  } catch (const wire::CodecError&) {
    return false;  // handle_packet counts the malformed drop
  }
  if (!view.is_legal()) return false;
  if (view.port == core::kLocalPort) return false;
  if (core::is_tree_info(view.port_info)) return false;
  if (!tunnel_ports_.empty() && tunnel_ports_.contains(view.port)) {
    return false;
  }
  if (!logical_ports_.empty() && logical_ports_.contains(view.port)) {
    return false;
  }
  if (view.port > port_count()) return false;  // slow path counts the drop
  if (port_kind(view.port) == PortKind::kLan) return false;
  // kBlocking admission defers the packet with a copied image; keep that
  // cold machinery on the reference path.
  if (config_.require_tokens && authority_ != nullptr &&
      config_.uncached_policy == tokens::UncachedPolicy::kBlocking) {
    return false;
  }
  return true;
}

SRP_HOT_PATH void ViperRouter::prefetch_burst_tokens() {
  if (!config_.require_tokens || authority_ == nullptr ||
      validation_engine_ == nullptr) {
    return;
  }
  prefetch_tokens_.clear();
  prefetch_keys_.clear();
  for (const BurstSlot& slot : burst_slots_) {
    if (!slot.fast || slot.view.token.empty()) continue;
    const std::uint64_t key = tokens::TokenCache::key_of(slot.view.token);
    // Skip tokens already verifying, already ticketed, already cached —
    // and dedup within the burst — so exactly one submission exists per
    // distinct uncached token, the same as the per-packet path.
    if (pending_verifies_.contains(key)) continue;
    if (!pending_tickets_.empty() && pending_tickets_.contains(key)) continue;
    if (std::find(prefetch_keys_.begin(), prefetch_keys_.end(), key) !=
        prefetch_keys_.end()) {
      continue;
    }
    if (token_cache_.probe(slot.view.token)) continue;
    SRP_ALLOC_OK(prefetch_keys_.push_back(key));       // capacity-warm
    SRP_ALLOC_OK(prefetch_tokens_.push_back(slot.view.token));
  }
  if (prefetch_tokens_.empty()) return;
  prefetch_tickets_.clear();
  validation_engine_->submit_batch(config_.router_id, prefetch_tokens_,
                                   prefetch_tickets_);
  SIRPENT_INVARIANT(prefetch_tickets_.size() == prefetch_keys_.size());
  for (std::size_t i = 0; i < prefetch_keys_.size(); ++i) {
    SRP_ALLOC_OK(
        pending_tickets_.emplace(prefetch_keys_[i], prefetch_tickets_[i]));
  }
}

SRP_HOT_PATH void ViperRouter::forward_fast(const net::Arrival& arrival,
                                            const SegmentView& v) {
  const int physical_port = v.port;  // classified: a plain physical port
  net::TxPort& out = port(physical_port);
  const wire::Bytes& bytes = arrival.packet->bytes;

  const auto decision = admit_token_ref(
      TokenRef{v.token, v.port, v.tos.priority, v.flags.rpf}, physical_port,
      bytes.size());
  if (!decision.has_value()) return;
  // kBlocking was classified slow, so admission never defers here.
  SIRPENT_INVARIANT(decision->extra_delay == 0);

  // The zero-copy rewrite: remainder + return entry appended straight into
  // a recycled arena slab whose capacity is warm — no Writer, no derive
  // allocation, header fields as views throughout.
  net::PacketPtr derived = arena_.acquire();
  wire::Bytes& out_bytes = derived->bytes;
  SRP_ALLOC_OK(out_bytes.insert(
      out_bytes.end(),
      bytes.begin() + static_cast<std::ptrdiff_t>(v.wire_size), bytes.end()));
  {
    // Byte-identical twin of make_return_entry() + encode_segment() for a
    // point-to-point, non-tunnel arrival: return port = arrival port, DIB
    // mirrored from the type of service, VNT set (no link header), token
    // echoed when reversible.
    core::SegmentFlags return_flags;
    return_flags.vnt = true;
    return_flags.dib = v.tos.drop_if_blocked;
    append_segment_raw(out_bytes, static_cast<std::uint8_t>(arrival.in_port),
                       v.tos, return_flags,
                       decision->reversible
                           ? v.token
                           : std::span<const std::uint8_t>{},
                       {});
  }

  const ForwardTiming timing =
      forward_timing(arrival, v.wire_size, physical_port);
  if (telemetry_enabled_ && arrival.packet->telemetry) {
    // Same stamp, same placement as forward(): after the return entry,
    // before the MTU cut — so the cut may slice through the newest record
    // on either path, byte-identically.
    stamp_telemetry(out_bytes, arrival, physical_port, &out, timing,
                    decision->outcome);
  }

  bool truncated = false;
  if (out_bytes.size() > out.config().mtu_bytes) {
    // Same cut as forward(): resize to MTU minus the 4-byte truncation
    // mark, then append the mark (an illegal segment, §2).
    static constexpr std::size_t kMarkWire = 4;
    SIRPENT_INVARIANT(out.config().mtu_bytes >= kMarkWire);
    SRP_ALLOC_OK(out_bytes.resize(out.config().mtu_bytes - kMarkWire));
    const core::HeaderSegment mark = core::HeaderSegment::truncation_marker();
    append_segment_raw(out_bytes, mark.port, mark.tos, mark.flags, {}, {});
    truncated = true;
    ++stats_.truncated_forwards;
    SIRPENT_ENSURES(out_bytes.size() == out.config().mtu_bytes);
  }

  // Packet::derive()'s bookkeeping, applied to the slab.
  const net::Packet& src = *arrival.packet;
  derived->id = src.id;
  derived->created = src.created;
  derived->flow = src.flow;
  derived->hops = src.hops + 1;
  derived->trace_id = src.trace_id;
  derived->route_digest = src.route_digest;
  derived->parent = arrival.packet;
  derived->truncated = truncated;
  derived->last_in_port = arrival.in_port;
  derived->feedforward = src.feedforward;
  derived->telemetry = src.telemetry;

  const net::TxMeta meta = meta_for(v.tos);

  ++stats_.forwarded;
  if (obs_hop_latency_ != nullptr) {
    obs_hop_latency_->record(
        static_cast<std::uint64_t>(timing.earliest - arrival.head));
  }
  if (obs_flow_ != nullptr) {
    obs::FlowSample sample;
    sample.route_digest = src.route_digest;
    sample.packet_id = src.id;
    sample.trace_id = src.trace_id;
    sample.account = decision->account;
    sample.tos_class = v.tos.priority;
    sample.cut_through = timing.cut_through;
    sample.in_port = static_cast<std::uint16_t>(arrival.in_port);
    sample.out_port = static_cast<std::uint16_t>(physical_port);
    sample.bytes = static_cast<std::uint32_t>(bytes.size());
    sample.now = timing.earliest;
    sample.header =
        std::span(bytes).first(std::min(v.wire_size, bytes.size()));
    SRP_ALLOC_OK(burst_samples_.push_back(sample));  // flushed this drain
  }
  if (obs_recorder_ != nullptr && derived->trace_id != 0) {
    obs::SpanRecord span;
    span.trace_id = derived->trace_id;
    span.hop = src.hops;
    span.kind = obs::SpanKind::kHop;
    span.token = decision->outcome;
    span.cut_through = timing.cut_through;
    span.in_port = static_cast<std::uint16_t>(arrival.in_port);
    span.out_port = static_cast<std::uint16_t>(physical_port);
    span.start = arrival.head;
    span.decision = timing.decision;
    span.end = timing.earliest;
    span.set_component(name());
    SRP_ALLOC_OK(burst_spans_.push_back(span));  // flushed this drain
  }
  if (shaper_) {
    // The shaper lookahead is the only consumer of the next-hop peek, so
    // the second segment decode is skipped entirely when no congestion
    // layer is attached.
    const std::uint8_t next_port = peek_next_port(bytes, v.wire_size);
    if (shaper_(physical_port, next_port, derived, meta, timing.earliest)) {
      return;  // congestion layer took custody
    }
  }
  out.enqueue(std::move(derived), meta, timing.earliest);
}

SRP_HOT_PATH void ViperRouter::flush_burst_obs() {
  if (!burst_samples_.empty()) {
    obs_flow_->on_forward_burst(burst_samples_);
    burst_samples_.clear();
  }
  if (!burst_spans_.empty()) {
    obs_recorder_->record_burst(burst_spans_);
    burst_spans_.clear();
  }
}

SRP_HOT_PATH void ViperRouter::handle_packet(
    const net::Arrival& arrival, const wire::Bytes& bytes,
    bool synthetic_tree_copy,
    std::optional<std::pair<std::uint8_t, wire::Bytes>> tunnel_return) {
  ParsedFront front;
  front.tunnel_return = std::move(tunnel_return);
  try {
    wire::Reader r(bytes);
    if (!synthetic_tree_copy &&
        port_kind(arrival.in_port) == PortKind::kLan) {
      front.link = net::EthernetHeader::decode(r);
    }
    front.segment = decode_segment(r);
    front.consumed = r.position();
  } catch (const wire::CodecError&) {
    ++stats_.dropped_malformed;
    return;
  }
  // Everything downstream slices `bytes` at `consumed`; the reader position
  // is by construction inside the packet.
  SIRPENT_INVARIANT(front.consumed <= bytes.size());
  if (!front.segment.is_legal()) {
    ++stats_.dropped_malformed;
    return;
  }

  if (front.segment.port == core::kLocalPort) {
    deliver_control(arrival, front, bytes);
    return;
  }

  // Blazenet-style tree multicast: the continuation lives in the branches.
  if (core::is_tree_info(front.segment.port_info)) {
    branch_tree(arrival, front, bytes);
    return;
  }

  const auto tunnel = tunnel_ports_.find(front.segment.port);
  if (tunnel != tunnel_ports_.end()) {
    forward_into_tunnel(arrival, front, tunnel->second, bytes);
    return;
  }

  const auto logical = logical_ports_.find(front.segment.port);
  if (logical != logical_ports_.end()) {
    const LogicalPort& lp = logical->second;
    if (lp.members.empty()) {
      ++stats_.dropped_no_port;
      return;
    }
    if (lp.kind == LogicalPort::Kind::kFanout) {
      // Multicast mechanism 1: reserved multi-port value.
      for (std::size_t i = 0; i < lp.members.size(); ++i) {
        if (i > 0) ++stats_.fanout_copies;
        forward(arrival, front, lp.members[i], bytes);
      }
      return;
    }
    // Replicated trunk: "A packet arriving for this logical link would be
    // routed to whichever of the channels was free" (§2.2).
    int best = lp.members.front();
    std::size_t best_bytes = std::numeric_limits<std::size_t>::max();
    for (int member : lp.members) {
      const net::TxPort& p = port(member);
      if (!p.is_up()) continue;
      if (!p.busy() && p.queue_packets() == 0) {
        best = member;
        best_bytes = 0;
        break;
      }
      if (p.queue_bytes() < best_bytes) {
        best = member;
        best_bytes = p.queue_bytes();
      }
    }
    forward(arrival, front, best, bytes);
    return;
  }

  if (front.segment.port > port_count()) {
    ++stats_.dropped_no_port;
    return;
  }
  forward(arrival, front, front.segment.port, bytes);
}

void ViperRouter::branch_tree(const net::Arrival& arrival,
                              const ParsedFront& front,
                              const wire::Bytes& bytes) {
  std::vector<wire::Bytes> branches;
  try {
    branches = core::decode_tree_info(front.segment.port_info);
  } catch (const wire::CodecError&) {
    ++stats_.dropped_malformed;
    return;
  }
  const std::span<const std::uint8_t> rest =
      std::span(bytes).subspan(front.consumed);
  for (const auto& blob : branches) {
    ++stats_.tree_copies;
    wire::Bytes copy;
    copy.reserve(blob.size() + rest.size());
    copy.insert(copy.end(), blob.begin(), blob.end());
    copy.insert(copy.end(), rest.begin(), rest.end());
    handle_packet(arrival, copy, /*synthetic_tree_copy=*/true);
  }
}

void ViperRouter::deliver_control(const net::Arrival& arrival,
                                  const ParsedFront& front,
                                  const wire::Bytes& bytes) {
  if (!control_handler_) {
    ++stats_.dropped_no_port;
    return;
  }
  try {
    wire::Reader r{std::span{bytes}.subspan(front.consumed)};
    DeliveredBody body = decode_delivered_body(r);
    ++stats_.delivered_control;
    control_handler_(front.segment, std::move(body.data), arrival.in_port);
  } catch (const wire::CodecError&) {
    ++stats_.dropped_malformed;
  }
}

core::HeaderSegment ViperRouter::make_return_entry(
    const net::Arrival& arrival, const ParsedFront& front,
    bool token_reversible) const {
  core::HeaderSegment entry;
  entry.port = static_cast<std::uint8_t>(arrival.in_port);
  entry.tos = front.segment.tos;
  entry.flags.dib = front.segment.tos.drop_if_blocked;
  if (token_reversible) entry.token = front.segment.token;
  if (front.tunnel_return.has_value()) {
    // Tunnel ingress: the return hop re-enters the tunnel toward the far
    // gateway learned from the encapsulation header.
    entry.port = front.tunnel_return->first;
    entry.port_info = front.tunnel_return->second;
    entry.flags.vnt = entry.port_info.empty();
    return entry;
  }
  if (front.link.has_value()) {
    // "with an Ethernet header, the destination and source addresses are
    // swapped" so the stored header is a correct return hop.
    wire::Writer w(net::EthernetHeader::kWireSize);
    front.link->reversed().encode(w);
    entry.port_info = std::move(w).take();
    entry.flags.vnt = false;
  } else {
    entry.flags.vnt = true;
  }
  return entry;
}

SRP_HOT_PATH std::optional<ViperRouter::TokenDecision>
ViperRouter::admit_token(const core::HeaderSegment& seg, int physical_port,
                         std::size_t packet_bytes) {
  return admit_token_ref(
      TokenRef{seg.token, seg.port, seg.tos.priority, seg.flags.rpf},
      physical_port, packet_bytes);
}

SRP_HOT_PATH std::optional<ViperRouter::TokenDecision>
ViperRouter::admit_token_ref(const TokenRef& ref, int physical_port,
                             std::size_t packet_bytes) {
  if (!config_.require_tokens || authority_ == nullptr) {
    // Enforcement disabled: echo any supplied token into the trailer so
    // the receiver can reuse it on the return route.
    return TokenDecision{0, !ref.token.empty()};
  }
  (void)physical_port;
  if (ref.token.empty()) {
    ++stats_.dropped_unauthorized;
    count_token_outcome(obs::TokenOutcome::kRejected);
    return std::nullopt;
  }

  const std::optional<tokens::TokenCache::Entry> entry =
      token_cache_.lookup(ref.token);
  if (entry.has_value()) {
    if (entry->flagged) {
      ++stats_.dropped_unauthorized;
      count_token_outcome(obs::TokenOutcome::kRejected);
      return std::nullopt;
    }
    // Cached, valid: real-time checks against the cached body.  A token
    // minted for the forward port also authorizes the *return* hop when
    // reverse charging is granted and the packet is marked RPF ("the
    // token can be used for the return route as well", §2.2).
    const bool port_ok =
        entry->body.port == ref.port ||
        (ref.rpf && entry->body.reverse_ok);
    if (!port_ok || core::priority_rank(ref.priority) >
                        core::priority_rank(entry->body.max_priority)) {
      ++stats_.dropped_unauthorized;
      count_token_outcome(obs::TokenOutcome::kRejected);
      return std::nullopt;
    }
    if (entry->body.expiry_sec != 0 &&
        sim_.now() > static_cast<sim::Time>(entry->body.expiry_sec) *
                         sim::kSecond) {
      ++stats_.dropped_expired_token;
      count_token_outcome(obs::TokenOutcome::kRejected);
      return std::nullopt;
    }
    SIRPENT_INVARIANT(ledger_ != nullptr);
    if (token_cache_.charge(ref.token, packet_bytes, *ledger_) !=
        tokens::TokenCache::ChargeResult::kCharged) {
      ++stats_.dropped_token_limit;
      count_token_outcome(obs::TokenOutcome::kRejected);
      return std::nullopt;
    }
    if (obs_flow_ != nullptr) {
      obs_flow_->on_charge(entry->body.account, packet_bytes);
    }
    count_token_outcome(obs::TokenOutcome::kHit);
    return TokenDecision{0, entry->body.reverse_ok, obs::TokenOutcome::kHit,
                         entry->body.account};
  }

  // Miss: start the (slow) verification exactly once per token value.
  // With a ValidationEngine attached, the XTEA decrypt + MAC check runs on
  // the worker pool while simulated time passes; the completion event
  // below awaits the ticket at exactly the instant the serial code would
  // have computed the same (pure-function) result, so the simulation
  // schedule is bit-identical either way.
  const std::uint64_t key = tokens::TokenCache::key_of(ref.token);
  if (!pending_verifies_.contains(key)) {
    // Verification slow path: one-time bookkeeping per distinct token
    // value, not per packet — the blessed allocations below amortize to
    // zero in steady state (pinned by tests/alloc_budget_test.cpp).
    SRP_ALLOC_OK(pending_verifies_.insert(key));
    SRP_ALLOC_OK(
        wire::Bytes token_copy(ref.token.begin(), ref.token.end()));
    const std::uint64_t first_packet_bytes = packet_bytes;
    std::optional<tokens::ValidationEngine::Ticket> ticket;
    if (validation_engine_ != nullptr) {
      // A batched drain prefetched this burst's uncached tokens; consume
      // the parked ticket instead of re-submitting.
      const auto prefetched = pending_tickets_.find(key);
      if (prefetched != pending_tickets_.end()) {
        ticket = prefetched->second;
        pending_tickets_.erase(prefetched);
      } else {
        ticket = validation_engine_->submit(config_.router_id, token_copy);
      }
    }
    // SRP_ALLOC_OK(verification completion event, once per token value)
    sim_.after(config_.verify_delay, [this, token_copy = std::move(token_copy),
                                      first_packet_bytes, key, ticket] {
      pending_verifies_.erase(key);
      const std::optional<tokens::TokenBody> body =
          ticket.has_value() ? validation_engine_->await(*ticket)
                             : authority_->open(config_.router_id, token_copy);
      // Store + optimistic settlement in one atomic cache step: the first
      // packet that flew before verification landed is charged exactly
      // once (tokens/token_core.hpp owns the transition).
      const std::uint64_t settle_bytes =
          config_.uncached_policy == tokens::UncachedPolicy::kOptimistic
              ? first_packet_bytes
              : 0;
      const auto outcome = token_cache_.store_and_settle(
          token_copy, body, settle_bytes, ledger_);
      if (outcome.settled && obs_flow_ != nullptr) {
        obs_flow_->on_charge(outcome.entry.body.account, first_packet_bytes);
      }
    });
  }

  switch (config_.uncached_policy) {
    case tokens::UncachedPolicy::kOptimistic:
      // "one or a small number of unauthorized packets can be allowed
      // through without significant problems."  The token is also echoed
      // into the trailer optimistically: by the time a reply presents it,
      // verification has landed and a bad token is flagged.
      count_token_outcome(obs::TokenOutcome::kMissOptimistic);
      return TokenDecision{0, true, obs::TokenOutcome::kMissOptimistic};
    case tokens::UncachedPolicy::kBlocking:
      // "the initial packet can be handled as a blocked packet ... the
      // blocking action allows some time for the token to be processed."
      count_token_outcome(obs::TokenOutcome::kMissBlocking);
      return TokenDecision{config_.verify_delay, false,
                           obs::TokenOutcome::kMissBlocking};
    case tokens::UncachedPolicy::kDrop:
      ++stats_.dropped_uncached;
      count_token_outcome(obs::TokenOutcome::kMissDrop);
      return std::nullopt;
  }
  return std::nullopt;
}

SRP_HOT_PATH void ViperRouter::stamp_telemetry(
    wire::Bytes& out_bytes, const net::Arrival& arrival, int out_port,
    const net::TxPort* out, const ForwardTiming& timing,
    obs::TokenOutcome outcome) {
  const net::Packet& src = *arrival.packet;
  if (src.hops >= obs::kMaxTelemetryHops) {
    // The record would outgrow any legal route; skip, but count the skip
    // so the sink can see its hop profile is a prefix.
    ++stats_.telemetry_overflow;
    return;
  }
  obs::HopTelemetry t;
  t.router_id = config_.router_id;
  t.hop = static_cast<std::uint8_t>(src.hops);
  t.egress_port = static_cast<std::uint8_t>(out_port);
  t.token = outcome;
  t.cut_through = timing.cut_through;
  t.in_port = static_cast<std::uint16_t>(arrival.in_port);
  t.arrival_ps = static_cast<std::uint64_t>(arrival.head);
  t.depart_ps = static_cast<std::uint64_t>(timing.earliest);
  if (out != nullptr) {
    t.egress_down = !out->is_up();
    t.queue_depth = static_cast<std::uint16_t>(
        std::min<std::size_t>(out->queue_packets(), 0xFFFF));
    const double rate = out->config().rate_bps;
    if (rate > 0.0) {
      // Estimated drain time of the bytes already queued ahead — the
      // queue's contribution to this hop's latency as seen at stamp time.
      t.queue_wait_ps = static_cast<std::uint32_t>(
          std::min<sim::Time>(sim::byte_time(out->queue_bytes(), rate),
                              0xFFFFFFFF));
    }
  }
  // The record is a pseudo-segment: TRM so it is "not a legal Sirpent
  // header segment" (no router routes by it), VNT clear so the payload
  // survives decode, the reserved port naming the record kind.
  std::array<std::uint8_t, obs::kHopTelemetryWire> payload;
  t.encode(payload);
  core::SegmentFlags flags;
  flags.trm = true;
  append_segment_raw(out_bytes, core::kTelemetryPort, core::TypeOfService{},
                     flags, {}, payload);
  ++stats_.telemetry_stamped;
}

SRP_HOT_PATH ViperRouter::ForwardTiming ViperRouter::forward_timing(
    const net::Arrival& arrival, std::size_t consumed, int out_port) const {
  // Cut-through preconditions (§2.1): output may start only after the
  // decision point — link header + first segment — has fully arrived, and
  // never before the packet's head reached us.
  SIRPENT_EXPECTS(consumed > 0);
  SIRPENT_EXPECTS(arrival.head <= arrival.tail);
  const net::TxPort& out = port(out_port);
  const bool same_rate = arrival.rate_bps == out.config().rate_bps;
  ForwardTiming timing;
  if (config_.cut_through && same_rate) {
    // Decision is possible once the link header + first segment are in.
    timing.cut_through = true;
    timing.decision =
        arrival.head + sim::byte_time(consumed, arrival.rate_bps);
  } else {
    // "Cut-through routing is only applicable when the input link and the
    // output link are the same data rates" — otherwise store-and-forward.
    timing.decision = arrival.tail + config_.store_forward_proc;
  }
  timing.earliest = timing.decision + config_.decision_delay;
  SIRPENT_ENSURES(timing.earliest >= arrival.head);
  return timing;
}

SRP_HOT_PATH void ViperRouter::forward(const net::Arrival& arrival,
                                       const ParsedFront& front,
                                       int physical_port,
                                       const wire::Bytes& bytes,
                                       bool was_blocked) {
  if (physical_port <= 0 || physical_port > port_count()) {
    ++stats_.dropped_no_port;
    return;
  }
  net::TxPort& out = port(physical_port);

  const auto decision =
      admit_token(front.segment, physical_port, bytes.size());
  if (!decision.has_value()) return;

  if (decision->extra_delay > 0 &&
      config_.uncached_policy == tokens::UncachedPolicy::kBlocking) {
    // Blocking admission: retry once the verification has landed in the
    // cache (the packet is fully buffered by then).  Copying the packet
    // image for the deferral is the price of the kBlocking policy, not of
    // the steady-state forward path.
    net::Arrival deferred = arrival;
    SRP_ALLOC_OK(wire::Bytes bytes_copy = bytes);
    SRP_ALLOC_OK(ParsedFront front_copy = front);
    // SRP_ALLOC_OK(deferred-retry event, kBlocking policy only)
    sim_.after(decision->extra_delay,
               [this, deferred, front_copy = std::move(front_copy),
                physical_port, bytes_copy = std::move(bytes_copy)] {
                 forward(deferred, front_copy, physical_port, bytes_copy,
                         /*was_blocked=*/true);
               });
    return;
  }

  // The one per-forward buffer: the rewritten packet image (remainder +
  // this hop's return entry).  The batched zero-copy refactor (ROADMAP
  // item 1) replaces this with an arena slab; until then it is the
  // documented baseline cost.
  SRP_ALLOC_OK(wire::Writer w(bytes.size() + 32));
  if (port_kind(physical_port) == PortKind::kLan) {
    if (front.segment.port_info.size() < net::EthernetHeader::kWireSize) {
      ++stats_.dropped_malformed;
      return;
    }
    // The segment's portInfo is the link header for the next network.
    w.bytes(front.segment.port_info);
  }
  w.bytes(std::span(bytes).subspan(front.consumed));
  encode_segment(w, make_return_entry(arrival, front, decision->reversible));
  wire::Bytes out_bytes = std::move(w).take();

  // forward_timing is pure; computed here so the telemetry stamp can
  // carry the hop's departure time before the MTU cut decides its fate.
  const ForwardTiming timing =
      forward_timing(arrival, front.consumed, physical_port);
  if (telemetry_enabled_ && arrival.packet->telemetry) {
    stamp_telemetry(out_bytes, arrival, physical_port, &out, timing,
                    was_blocked ? obs::TokenOutcome::kMissBlocking
                                : decision->outcome);
  }

  bool truncated = false;
  if (out_bytes.size() > out.config().mtu_bytes) {
    // Cut-through discovers oversize mid-transmission; the packet is cut
    // and a truncation mark (an illegal segment) is appended (§2).
    const core::HeaderSegment mark = core::HeaderSegment::truncation_marker();
    SRP_ALLOC_OK(wire::Writer mw(4));
    encode_segment(mw, mark);
    const wire::Bytes mark_bytes = std::move(mw).take();
    SIRPENT_INVARIANT(out.config().mtu_bytes >= mark_bytes.size());
    SRP_ALLOC_OK(out_bytes.resize(out.config().mtu_bytes - mark_bytes.size()));
    SRP_ALLOC_OK(
        out_bytes.insert(out_bytes.end(), mark_bytes.begin(), mark_bytes.end()));
    truncated = true;
    ++stats_.truncated_forwards;
    // A truncated forward is cut exactly to the output MTU with the mark as
    // its final segment — "not a legal Sirpent header segment".
    SIRPENT_ENSURES(out_bytes.size() == out.config().mtu_bytes);
  }

  const std::uint8_t next_port = peek_next_port(bytes, front.consumed);
  net::PacketPtr derived = arrival.packet->derive(std::move(out_bytes));
  derived->truncated = truncated;
  derived->last_in_port = arrival.in_port;
  // Feed-forward load info rides one hop: stamped by the upstream shaper,
  // read by this router's congested-port monitor (paper §2.2).
  derived->feedforward = arrival.packet->feedforward;

  const net::TxMeta meta = meta_for(front.segment.tos);

  ++stats_.forwarded;
  if (obs_hop_latency_ != nullptr) {
    obs_hop_latency_->record(
        static_cast<std::uint64_t>(timing.earliest - arrival.head));
  }
  if (obs_flow_ != nullptr) {
    record_flow(arrival, front, physical_port, bytes, timing.cut_through,
                decision->account, timing.earliest);
  }
  if (obs_recorder_ != nullptr && derived->trace_id != 0) {
    obs::SpanRecord span;
    span.trace_id = derived->trace_id;
    span.hop = arrival.packet->hops;
    span.kind = obs::SpanKind::kHop;
    span.token = was_blocked ? obs::TokenOutcome::kMissBlocking
                             : decision->outcome;
    span.cut_through = timing.cut_through;
    span.in_port = static_cast<std::uint16_t>(arrival.in_port);
    span.out_port = static_cast<std::uint16_t>(physical_port);
    span.start = arrival.head;
    span.decision = timing.decision;
    span.end = timing.earliest;
    span.set_component(name());
    obs_recorder_->record(span);
  }
  if (shaper_ &&
      shaper_(physical_port, next_port, derived, meta, timing.earliest)) {
    return;  // congestion layer took custody
  }
  out.enqueue(std::move(derived), meta, timing.earliest);
}

void ViperRouter::forward_into_tunnel(const net::Arrival& arrival,
                                       const ParsedFront& front,
                                       const TunnelTransmit& transmit,
                                       const wire::Bytes& bytes) {
  const auto decision =
      admit_token(front.segment, /*physical_port=*/0, bytes.size());
  if (!decision.has_value()) return;
  // Encapsulated image: the remainder plus this hop's return entry —
  // exactly what a physical forward would put on the wire, minus framing.
  wire::Writer w(bytes.size() + 32);
  w.bytes(std::span{bytes}.subspan(front.consumed));
  encode_segment(w, make_return_entry(arrival, front, decision->reversible));
  wire::Bytes encap = std::move(w).take();
  if (telemetry_enabled_ && arrival.packet->telemetry) {
    // Tunnel egress has no TxPort to sample and is store-and-forward by
    // construction; the record still pins the hop's identity and times.
    ForwardTiming timing;
    timing.decision = arrival.tail;
    timing.earliest = std::max(arrival.tail, sim_.now());
    stamp_telemetry(encap, arrival, front.segment.port, nullptr, timing,
                    decision->outcome);
  }
  ++stats_.forwarded;
  if (obs_hop_latency_ != nullptr) {
    obs_hop_latency_->record(
        static_cast<std::uint64_t>(arrival.tail - arrival.head));
  }
  if (obs_flow_ != nullptr) {
    // Tunnel hops are store-and-forward by construction.
    record_flow(arrival, front, front.segment.port, bytes,
                /*cut_through=*/false, decision->account,
                std::max(arrival.tail, sim_.now()));
  }
  if (obs_recorder_ != nullptr && arrival.packet->trace_id != 0) {
    // Tunnel hops are store-and-forward by construction; the span closes
    // when the encapsulated image is handed to the tunnel transmit hook.
    obs::SpanRecord span;
    span.trace_id = arrival.packet->trace_id;
    span.hop = arrival.packet->hops;
    span.kind = obs::SpanKind::kHop;
    span.token = decision->outcome;
    span.in_port = static_cast<std::uint16_t>(arrival.in_port);
    span.out_port = front.segment.port;
    span.start = arrival.head;
    span.decision = arrival.tail;
    span.end = std::max(arrival.tail, sim_.now());
    span.set_component(name());
    obs_recorder_->record(span);
  }
  transmit(front.segment.port_info, std::move(encap), front.segment.tos);
}

void ViperRouter::emit_to_port(int out_port, net::PacketPtr packet,
                               net::TxMeta meta, sim::Time earliest_start) {
  port(out_port).enqueue(std::move(packet), meta, earliest_start);
}

void ViperRouter::send_control(int port_index,
                               std::span<const std::uint8_t> payload,
                               std::uint8_t priority) {
  core::SourceRoute route;
  core::HeaderSegment seg;
  seg.port = core::kLocalPort;
  seg.tos.priority = priority;
  seg.port_info = encode_endpoint_id(kControlEndpoint);
  route.segments.push_back(std::move(seg));

  auto packet = std::make_shared<net::Packet>();
  packet->bytes = encode_packet(route, payload);
  packet->created = sim_.now();
  port(port_index).enqueue(std::move(packet), meta_for(route.segments[0].tos),
                           0);
}

}  // namespace srp::viper
