#include "viper/host.hpp"

#include <algorithm>

#include "check/analysis.hpp"
#include "check/contract.hpp"

namespace srp::viper {

ViperHost::ViperHost(sim::Simulator& sim, std::string name,
                     net::PacketFactory& packets)
    : net::PortedNode(sim, std::move(name)), packets_(packets) {}

void ViperHost::set_port_kind(int port_index, PortKind kind) {
  if (port_index <= 0) throw std::out_of_range("bad port index");
  if (static_cast<std::size_t>(port_index) >= port_kinds_.size()) {
    port_kinds_.resize(static_cast<std::size_t>(port_index) + 1,
                       PortKind::kPointToPoint);
  }
  port_kinds_[static_cast<std::size_t>(port_index)] = kind;
}

PortKind ViperHost::port_kind(int port_index) const {
  if (port_index <= 0 ||
      static_cast<std::size_t>(port_index) >= port_kinds_.size()) {
    return PortKind::kPointToPoint;
  }
  return port_kinds_[static_cast<std::size_t>(port_index)];
}

void ViperHost::bind(std::uint64_t endpoint_id, Handler handler) {
  endpoints_[endpoint_id] = std::move(handler);
}

void ViperHost::unbind(std::uint64_t endpoint_id) {
  endpoints_.erase(endpoint_id);
}

void ViperHost::set_default_handler(Handler handler) {
  default_handler_ = std::move(handler);
}

void ViperHost::set_path_telemetry(obs::PathCollector* collector,
                                   std::uint64_t seed,
                                   std::uint32_t sample_period) {
  collector_ = collector;
  marker_.emplace(seed, name(), sample_period);
}

void ViperHost::set_observer(const obs::Observer& observer) {
  if (observer.registry != nullptr) {
    obs_e2e_latency_ = &observer.registry->histogram(
        "host." + stats::metric_component(name()) + ".e2e_latency_ps");
  } else {
    obs_e2e_latency_ = nullptr;
  }
  obs_recorder_ = observer.recorder;
  stamp_route_digest_ = observer.flow != nullptr;
  for (int p = 1; p <= port_count(); ++p) port(p).set_observer(observer);
}

std::uint64_t ViperHost::send(const core::SourceRoute& route,
                              std::span<const std::uint8_t> data,
                              const SendOptions& options) {
  wire::Writer w;
  if (options.link.has_value()) {
    options.link->encode(w);
  }
  wire::Bytes body = encode_packet(route, data);
  w.bytes(body);

  net::PacketPtr packet =
      packets_.make(std::move(w).take(), sim_.now(), options.flow);
  const std::uint64_t id = packet->id;
  // Mint the trace context at the origin: the packet id is already unique
  // per simulation, so it doubles as the trace id.
  if (obs_recorder_ != nullptr) packet->trace_id = id;
  // Flow accounting on: stamp the whole-route identity at the origin (the
  // only place that still sees the full source route); it rides the
  // packet's measurement side-band, constant along the path.
  if (stamp_route_digest_) packet->route_digest = route_digest(route);
  // Telemetry mark: sampled by the marker when wired (always advanced, so
  // a forced mark never phase-shifts later samples), else forced-only.
  packet->telemetry = marker_.has_value() ? marker_->mark(options.telemetry)
                                          : options.telemetry;
  if (packet->telemetry) ++stats_.telemetry_marked;
  ++stats_.sent;
  core::TypeOfService tos = options.tos;
  port(options.out_port)
      .enqueue(std::move(packet),
               net::TxMeta{core::priority_rank(tos.priority),
                           core::priority_preempts(tos.priority),
                           tos.drop_if_blocked},
               0);
  return id;
}

std::uint64_t ViperHost::reply(const Delivery& delivery,
                               std::span<const std::uint8_t> data,
                               core::TypeOfService tos) {
  core::SourceRoute route = delivery.return_route;
  for (auto& seg : route.segments) {
    seg.tos.priority = tos.priority;
    seg.tos.drop_if_blocked = tos.drop_if_blocked;
    seg.flags.dib = tos.drop_if_blocked;
  }
  SendOptions options;
  options.tos = tos;
  options.flow = delivery.flow;
  options.out_port = delivery.in_port;
  options.link = delivery.reply_link;
  return send(route, data, options);
}

SRP_SIM_VISIBLE void ViperHost::on_arrival(const net::Arrival& arrival) {
  // A host needs the whole packet (data + trailer): act at last-bit time.
  sim_.at(arrival.tail, [this, arrival] { process(arrival); });
}

bool ViperHost::decode_body_reversed(wire::Reader& r, DeliveredBody& body) {
  // Probe on a copy so a bail-out leaves the caller's reader untouched for
  // the reference path.
  wire::Reader probe = r;
  if (probe.remaining() < 2) return false;
  const std::uint16_t data_len = probe.u16();
  if (probe.remaining() < data_len) return false;  // truncated in flight
  wire::Bytes data = probe.bytes(data_len);
  const auto raw_trailer = probe.view(probe.remaining());
  trailer_scratch_.assign(raw_trailer.begin(), raw_trailer.end());
  if (!reverse_trailer_in_place(trailer_scratch_)) return false;
  wire::Reader tr(trailer_scratch_);
  body.trailer = decode_segments(tr);  // already in return order
  body.data = std::move(data);
  r = probe;
  return true;
}

void ViperHost::process(const net::Arrival& arrival) {
  const net::Packet& packet = *arrival.packet;
  std::optional<net::EthernetHeader> link;
  core::HeaderSegment local_seg;
  DeliveredBody body;
  bool reversed_in_place = false;
  try {
    wire::Reader r(packet.bytes);
    if (port_kind(arrival.in_port) == PortKind::kLan) {
      link = net::EthernetHeader::decode(r);
    }
    local_seg = decode_segment(r);
    if (local_seg.port != core::kLocalPort || !local_seg.is_legal()) {
      ++stats_.misrouted;
      return;
    }
    if (batched_) reversed_in_place = decode_body_reversed(r, body);
    if (!reversed_in_place) body = decode_delivered_body(r);
  } catch (const wire::CodecError&) {
    ++stats_.dropped_malformed;
    // A marked packet too damaged to parse still carries its postcard:
    // the last telemetry record names where it was last intact.
    if (packet.telemetry && collector_ != nullptr) {
      collector_->on_malformed_arrival(packet.bytes);
    }
    return;
  }

  const auto endpoint = decode_endpoint_id(local_seg.port_info);

  if (endpoint.has_value() && *endpoint == kControlEndpoint) {
    ++stats_.control_received;
    if (control_handler_) {
      control_handler_(std::move(body.data), arrival.in_port);
    }
    return;
  }

  // classify_trailer's TRM filter preserves relative order, so it commutes
  // with the in-place reversal: filtering the reversed entries yields the
  // reversal of the filtered forward-order entries.
  core::TrailerInfo trailer = core::classify_trailer(std::move(body.trailer));
  Delivery delivery;
  delivery.data = std::move(body.data);
  std::size_t telemetry_decode_errors = 0;
  if (!trailer.telemetry.empty()) {
    // Decode the in-band records.  Hop order — not trailer position —
    // orders the path, so the reference (forward-order) and in-place
    // reversed (newest-first) decodes reconstruct identically.
    delivery.path.reserve(trailer.telemetry.size());
    for (const core::HeaderSegment& rec : trailer.telemetry) {
      const auto hop = obs::decode_hop_telemetry(rec.port_info);
      if (hop.has_value()) {
        delivery.path.push_back(*hop);
      } else {
        ++telemetry_decode_errors;
      }
    }
    std::sort(delivery.path.begin(), delivery.path.end(),
              [](const obs::HopTelemetry& a, const obs::HopTelemetry& b) {
                return a.hop < b.hop;
              });
  }
  if (reversed_in_place) {
    // Entries are already in return order: append the local segment and
    // set RPF directly instead of re-reversing through build_return_route.
    core::SourceRoute route;
    route.segments = std::move(trailer.entries);
    core::HeaderSegment local;
    local.port = core::kLocalPort;
    local.flags.vnt = true;
    route.segments.push_back(std::move(local));
    route.set_rpf();
    delivery.return_route = std::move(route);
  } else {
    delivery.return_route = core::build_return_route(trailer.entries);
  }
  // A reply along this route must terminate at the origin host's local
  // port, marked RPF so routers honour reverse-charged tokens.
  SIRPENT_ENSURES(!delivery.return_route.empty() &&
                  delivery.return_route.segments.back().port ==
                      core::kLocalPort);
  if (link.has_value()) delivery.reply_link = link->reversed();
  delivery.truncated = trailer.truncated || packet.effectively_truncated();
  delivery.endpoint = endpoint.value_or(0);
  delivery.packet_id = packet.id;
  delivery.flow = packet.flow;
  delivery.hops = packet.hops;
  delivery.sent_at = packet.created;
  delivery.delivered_at = sim_.now();
  delivery.in_port = arrival.in_port;

  ++stats_.delivered;
  if (delivery.truncated) ++stats_.truncated_received;

  if (obs_e2e_latency_ != nullptr) {
    obs_e2e_latency_->record(
        static_cast<std::uint64_t>(delivery.delivered_at - delivery.sent_at));
  }
  if (obs_recorder_ != nullptr && packet.trace_id != 0) {
    obs::SpanRecord span;
    span.trace_id = packet.trace_id;
    span.hop = packet.hops;
    span.kind = obs::SpanKind::kDeliver;
    span.in_port = static_cast<std::uint16_t>(arrival.in_port);
    span.start = delivery.sent_at;
    span.decision = arrival.head;
    span.end = delivery.delivered_at;
    span.set_component(name());
    obs_recorder_->record(span);
  }
  if (packet.telemetry && collector_ != nullptr) {
    obs::DeliveredTelemetry meta;
    meta.trace_id = packet.trace_id;
    meta.packet_id = packet.id;
    meta.sent_at = delivery.sent_at;
    meta.delivered_at = delivery.delivered_at;
    meta.truncated = delivery.truncated;
    collector_->on_delivery(meta, delivery.path, telemetry_decode_errors);
  }

  if (endpoint.has_value()) {
    const auto it = endpoints_.find(*endpoint);
    if (it != endpoints_.end()) {
      it->second(delivery);
      return;
    }
    ++stats_.unknown_endpoint;
  }
  if (default_handler_) {
    default_handler_(delivery);
  }
}

}  // namespace srp::viper
