#include "viper/codec.hpp"

#include "check/analysis.hpp"
#include "check/contract.hpp"
#include "crypto/siphash.hpp"

namespace srp::viper {
namespace {

constexpr std::size_t kLengthEscape = 255;

std::size_t field_wire_size(std::size_t len) {
  // A field longer than 254 octets is prefixed by its 32-bit length.
  return len > 254 ? 4 + len : len;
}

std::uint8_t encode_flags(const core::SegmentFlags& f) {
  std::uint8_t v = 0;
  if (f.vnt) v |= kFlagVnt;
  if (f.dib) v |= kFlagDib;
  if (f.rpf) v |= kFlagRpf;
  if (f.trm) v |= kFlagTrm;
  return v;
}

core::SegmentFlags decode_flags(std::uint8_t v) {
  core::SegmentFlags f;
  f.vnt = (v & kFlagVnt) != 0;
  f.dib = (v & kFlagDib) != 0;
  f.rpf = (v & kFlagRpf) != 0;
  f.trm = (v & kFlagTrm) != 0;
  return f;
}

void encode_length_byte(wire::Writer& w, std::size_t len) {
  w.u8(len > 254 ? static_cast<std::uint8_t>(kLengthEscape)
                 : static_cast<std::uint8_t>(len));
}

void encode_field(wire::Writer& w, const wire::Bytes& field) {
  if (field.size() > 254) {
    w.u32(static_cast<std::uint32_t>(field.size()));
  }
  w.bytes(field);
}

wire::Bytes decode_field(wire::Reader& r, std::uint8_t length_byte) {
  std::size_t len = length_byte;
  if (length_byte == kLengthEscape) {
    len = r.u32();
    if (len <= 254) {
      throw wire::CodecError("VIPER: escaped length not > 254");
    }
  }
  return r.bytes(len);
}

}  // namespace

std::size_t segment_wire_size(const core::HeaderSegment& segment) {
  return 4 + field_wire_size(segment.token.size()) +
         field_wire_size(segment.port_info.size());
}

SRP_HOT_PATH void encode_segment(wire::Writer& w,
                                 const core::HeaderSegment& segment) {
  if (segment.token.size() > 0xFFFFFFFFull ||
      segment.port_info.size() > 0xFFFFFFFFull) {
    throw wire::CodecError("VIPER: field too large");
  }
  [[maybe_unused]] const std::size_t before = w.size();
  encode_length_byte(w, segment.port_info.size());
  encode_length_byte(w, segment.token.size());
  w.u8(segment.port);
  w.u8(static_cast<std::uint8_t>(encode_flags(segment.flags) << 4 |
                                 (segment.tos.priority & 0x0F)));
  encode_field(w, segment.token);
  encode_field(w, segment.port_info);
  // Cut-through hardware sizes the segment from the fixed prefix alone; the
  // encoder must agree with that arithmetic exactly.
  SIRPENT_ENSURES(w.size() - before == segment_wire_size(segment));
}

SRP_HOT_PATH core::HeaderSegment decode_segment(wire::Reader& r) {
  [[maybe_unused]] const std::size_t start = r.position();
  const std::uint8_t info_len = r.u8();
  const std::uint8_t token_len = r.u8();
  core::HeaderSegment seg;
  seg.port = r.u8();
  const std::uint8_t fp = r.u8();
  seg.flags = decode_flags(static_cast<std::uint8_t>(fp >> 4));
  seg.tos.priority = fp & 0x0F;
  seg.tos.drop_if_blocked = seg.flags.dib;
  seg.token = decode_field(r, token_len);
  seg.port_info = decode_field(r, info_len);
  // Decode must consume exactly what the encoder would produce — the
  // router's cut-through offset arithmetic depends on it.  (VNT clearing of
  // port_info below happens after the bytes were consumed.)
  SIRPENT_ENSURES(r.position() - start == segment_wire_size(seg));
  if (seg.flags.vnt && !seg.flags.trm) {
    // "the portInfo field is void ... may still be non-zero if the PortInfo
    // field is used for padding" — padding is discarded on decode.
    seg.port_info.clear();
  }
  return seg;
}

wire::Bytes encode_route(const core::SourceRoute& route) {
  wire::Writer w;
  for (const auto& seg : route.segments) encode_segment(w, seg);
  return std::move(w).take();
}

std::vector<core::HeaderSegment> decode_segments(wire::Reader& r) {
  std::vector<core::HeaderSegment> out;
  while (!r.done()) out.push_back(decode_segment(r));
  return out;
}

wire::Bytes encode_packet(const core::SourceRoute& route,
                          std::span<const std::uint8_t> data) {
  if (route.segments.empty() || route.segments.size() > core::kMaxSegments) {
    throw wire::CodecError("VIPER: route length out of range");
  }
  if (data.size() > 0xFFFF) {
    throw wire::CodecError("VIPER: data exceeds 16-bit length");
  }
  wire::Writer w;
  for (const auto& seg : route.segments) {
    if (!seg.is_legal()) {
      throw wire::CodecError("VIPER: truncation mark in route");
    }
    encode_segment(w, seg);
  }
  [[maybe_unused]] const std::size_t header_len = w.size();
  w.u16(static_cast<std::uint16_t>(data.size()));
  w.bytes(data);
  SIRPENT_ENSURES(w.size() == header_len + 2 + data.size());
  return std::move(w).take();
}

DeliveredBody decode_delivered_body(wire::Reader& r) {
  DeliveredBody body;
  const std::uint16_t data_len = r.u16();
  if (r.remaining() >= data_len) {
    body.data = r.bytes(data_len);
    body.trailer = decode_segments(r);
    SIRPENT_ENSURES(body.data.size() == data_len);
    SIRPENT_ENSURES(r.done());
    return body;
  }
  // Truncated in flight: the data was cut short.  A truncating router
  // appends a 4-byte TRM segment after the cut; recover it if present so
  // the receiver sees an explicit truncation mark.
  wire::Bytes rest = r.bytes(r.remaining());
  if (rest.size() >= 4) {
    wire::Reader tail{std::span{rest}.subspan(rest.size() - 4)};
    try {
      core::HeaderSegment mark = decode_segment(tail);
      if (mark.flags.trm) {
        body.trailer.push_back(mark);
        rest.resize(rest.size() - 4);
      }
    } catch (const wire::CodecError&) {
      // Tail does not parse as a mark: leave the bytes as data.
    }
  }
  body.data = std::move(rest);
  return body;
}

std::uint64_t route_digest(const core::SourceRoute& route) {
  // Serialize the token-free shape of the route and SipHash it under a
  // fixed key: the digest must be identical for every packet sent down
  // the same path, while distinct paths should collide only by accident.
  wire::Writer w(route.hops() * 8);
  for (const auto& seg : route.segments) {
    w.u8(seg.port);
    w.u8(static_cast<std::uint8_t>((seg.tos.priority & 0x0F) |
                                   (seg.tos.drop_if_blocked ? 0x10 : 0)));
    w.u8(static_cast<std::uint8_t>((seg.flags.vnt ? 0x8 : 0) |
                                   (seg.flags.dib ? 0x4 : 0) |
                                   (seg.flags.rpf ? 0x2 : 0) |
                                   (seg.flags.trm ? 0x1 : 0)));
    if (seg.port_info.size() > 0xFF) {
      w.u8(0xFF);
      w.u32(static_cast<std::uint32_t>(seg.port_info.size()));
    } else {
      w.u8(static_cast<std::uint8_t>(seg.port_info.size()));
    }
    w.bytes(seg.port_info);
  }
  static constexpr crypto::SipKey kRouteDigestKey{0x53495250454E5421ULL,
                                                  0x464C4F574B455921ULL};
  const auto digest = crypto::siphash24(kRouteDigestKey, w.view());
  // 0 means "unattributed" in flow accounting; dodge the (astronomically
  // unlikely) collision so real routes are always attributable.
  return digest == 0 ? 1 : digest;
}

}  // namespace srp::viper
