#include "viper/codec.hpp"

#include <array>

#include "check/analysis.hpp"
#include "check/contract.hpp"
#include "core/trailer.hpp"
#include "crypto/siphash.hpp"

namespace srp::viper {
namespace {

constexpr std::size_t kLengthEscape = 255;

std::size_t field_wire_size(std::size_t len) {
  // A field longer than 254 octets is prefixed by its 32-bit length.
  return len > 254 ? 4 + len : len;
}

std::uint8_t encode_flags(const core::SegmentFlags& f) {
  std::uint8_t v = 0;
  if (f.vnt) v |= kFlagVnt;
  if (f.dib) v |= kFlagDib;
  if (f.rpf) v |= kFlagRpf;
  if (f.trm) v |= kFlagTrm;
  return v;
}

core::SegmentFlags decode_flags(std::uint8_t v) {
  core::SegmentFlags f;
  f.vnt = (v & kFlagVnt) != 0;
  f.dib = (v & kFlagDib) != 0;
  f.rpf = (v & kFlagRpf) != 0;
  f.trm = (v & kFlagTrm) != 0;
  return f;
}

void encode_length_byte(wire::Writer& w, std::size_t len) {
  w.u8(len > 254 ? static_cast<std::uint8_t>(kLengthEscape)
                 : static_cast<std::uint8_t>(len));
}

void encode_field(wire::Writer& w, const wire::Bytes& field) {
  if (field.size() > 254) {
    w.u32(static_cast<std::uint32_t>(field.size()));
  }
  w.bytes(field);
}

wire::Bytes decode_field(wire::Reader& r, std::uint8_t length_byte) {
  std::size_t len = length_byte;
  if (length_byte == kLengthEscape) {
    len = r.u32();
    if (len <= 254) {
      throw wire::CodecError("VIPER: escaped length not > 254");
    }
  }
  return r.bytes(len);
}

/// decode_field without the copy: same framing rules (big-endian u32
/// length escape), returns a view over @p base.  Raw-pointer twin of the
/// Reader-based decode_field so the burst classify pass pays one bounds
/// check per field instead of one per byte.
std::span<const std::uint8_t> decode_field_view_raw(
    const std::uint8_t* base, std::size_t avail, std::size_t& pos,
    std::uint8_t length_byte) {
  std::size_t len = length_byte;
  if (length_byte == kLengthEscape) {
    if (avail - pos < 4) {
      throw wire::CodecError("VIPER: truncated field length");
    }
    len = static_cast<std::size_t>(base[pos]) << 24 |
          static_cast<std::size_t>(base[pos + 1]) << 16 |
          static_cast<std::size_t>(base[pos + 2]) << 8 |
          static_cast<std::size_t>(base[pos + 3]);
    pos += 4;
    if (len <= 254) {
      throw wire::CodecError("VIPER: escaped length not > 254");
    }
  }
  if (avail - pos < len) {
    throw wire::CodecError("VIPER: truncated field");
  }
  const std::span<const std::uint8_t> view{base + pos, len};
  pos += len;
  return view;
}

/// Raw-append twin of encode_length_byte / encode_field (big-endian u32
/// escape, same as wire::Writer).  The appends land in a capacity-warm
/// arena buffer, so they amortize to zero allocations; srp-lint sees them
/// via the SRP_ALLOC_OK blessings at the call sites in append_segment_raw.
void append_u32_raw(wire::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

std::size_t segment_wire_size(const core::HeaderSegment& segment) {
  return 4 + field_wire_size(segment.token.size()) +
         field_wire_size(segment.port_info.size());
}

SRP_HOT_PATH void encode_segment(wire::Writer& w,
                                 const core::HeaderSegment& segment) {
  if (segment.token.size() > 0xFFFFFFFFull ||
      segment.port_info.size() > 0xFFFFFFFFull) {
    throw wire::CodecError("VIPER: field too large");
  }
  [[maybe_unused]] const std::size_t before = w.size();
  encode_length_byte(w, segment.port_info.size());
  encode_length_byte(w, segment.token.size());
  w.u8(segment.port);
  w.u8(static_cast<std::uint8_t>(encode_flags(segment.flags) << 4 |
                                 (segment.tos.priority & 0x0F)));
  encode_field(w, segment.token);
  encode_field(w, segment.port_info);
  // Cut-through hardware sizes the segment from the fixed prefix alone; the
  // encoder must agree with that arithmetic exactly.
  SIRPENT_ENSURES(w.size() - before == segment_wire_size(segment));
}

SRP_HOT_PATH core::HeaderSegment decode_segment(wire::Reader& r) {
  [[maybe_unused]] const std::size_t start = r.position();
  const std::uint8_t info_len = r.u8();
  const std::uint8_t token_len = r.u8();
  core::HeaderSegment seg;
  seg.port = r.u8();
  const std::uint8_t fp = r.u8();
  seg.flags = decode_flags(static_cast<std::uint8_t>(fp >> 4));
  seg.tos.priority = fp & 0x0F;
  seg.tos.drop_if_blocked = seg.flags.dib;
  seg.token = decode_field(r, token_len);
  seg.port_info = decode_field(r, info_len);
  // Decode must consume exactly what the encoder would produce — the
  // router's cut-through offset arithmetic depends on it.  (VNT clearing of
  // port_info below happens after the bytes were consumed.)
  SIRPENT_ENSURES(r.position() - start == segment_wire_size(seg));
  if (seg.flags.vnt && !seg.flags.trm) {
    // "the portInfo field is void ... may still be non-zero if the PortInfo
    // field is used for padding" — padding is discarded on decode.
    seg.port_info.clear();
  }
  return seg;
}

SRP_HOT_PATH SegmentView decode_segment_view(
    std::span<const std::uint8_t> bytes, std::size_t offset) {
  if (offset > bytes.size()) {
    throw wire::CodecError("VIPER: segment offset out of range");
  }
  // Raw-pointer parse: the fixed prefix is validated with one bounds
  // check and each field with one more, instead of the Reader's check
  // per byte — this is the entry point of the burst classify pass.
  const std::uint8_t* base = bytes.data() + offset;
  const std::size_t avail = bytes.size() - offset;
  if (avail < 4) {
    throw wire::CodecError("VIPER: truncated segment prefix");
  }
  const std::uint8_t info_len = base[0];
  const std::uint8_t token_len = base[1];
  SegmentView v;
  v.port = base[2];
  const std::uint8_t fp = base[3];
  v.flags = decode_flags(static_cast<std::uint8_t>(fp >> 4));
  v.tos.priority = fp & 0x0F;
  v.tos.drop_if_blocked = v.flags.dib;
  std::size_t pos = 4;
  v.token = decode_field_view_raw(base, avail, pos, token_len);
  v.port_info = decode_field_view_raw(base, avail, pos, info_len);
  v.wire_size = pos;
  // Same consumption arithmetic as decode_segment — computed before the
  // VNT padding discard below, which empties the view but not the wire.
  SIRPENT_ENSURES(v.wire_size == 4 + field_wire_size(v.token.size()) +
                                     field_wire_size(v.port_info.size()));
  if (v.flags.vnt && !v.flags.trm) {
    // Padding is discarded on decode, exactly as decode_segment does.
    v.port_info = {};
  }
  return v;
}

SRP_HOT_PATH void append_segment_raw(wire::Bytes& out, std::uint8_t port,
                                     const core::TypeOfService& tos,
                                     const core::SegmentFlags& flags,
                                     std::span<const std::uint8_t> token,
                                     std::span<const std::uint8_t> port_info) {
  if (token.size() > 0xFFFFFFFFull || port_info.size() > 0xFFFFFFFFull) {
    throw wire::CodecError("VIPER: field too large");
  }
  [[maybe_unused]] const std::size_t before = out.size();
  // Every append below lands in a caller-owned buffer that the batched
  // data plane keeps capacity-warm (arena slabs), so the blessed sites
  // amortize to zero allocations (pinned by tests/alloc_budget_test.cpp).
  // The fixed prefix goes in as one insert, not four push_backs: the
  // per-byte growth checks are measurable on the burst path.
  const std::uint8_t prefix[4] = {
      port_info.size() > 254 ? static_cast<std::uint8_t>(kLengthEscape)
                             : static_cast<std::uint8_t>(port_info.size()),
      token.size() > 254 ? static_cast<std::uint8_t>(kLengthEscape)
                         : static_cast<std::uint8_t>(token.size()),
      port,
      static_cast<std::uint8_t>(encode_flags(flags) << 4 |
                                (tos.priority & 0x0F))};
  SRP_ALLOC_OK(out.insert(out.end(), prefix, prefix + 4));
  if (token.size() > 254) {
    SRP_ALLOC_OK(append_u32_raw(out, static_cast<std::uint32_t>(token.size())));
  }
  if (!token.empty()) {
    SRP_ALLOC_OK(out.insert(out.end(), token.begin(), token.end()));
  }
  if (port_info.size() > 254) {
    SRP_ALLOC_OK(
        append_u32_raw(out, static_cast<std::uint32_t>(port_info.size())));
  }
  if (!port_info.empty()) {
    SRP_ALLOC_OK(out.insert(out.end(), port_info.begin(), port_info.end()));
  }
  // Byte-identical to encode_segment of the equivalent HeaderSegment; the
  // size agreement is the same contract encode_segment carries.
  SIRPENT_ENSURES(out.size() - before == 4 + field_wire_size(token.size()) +
                                             field_wire_size(port_info.size()));
}

bool reverse_trailer_in_place(std::span<std::uint8_t> trailer) {
  // Segment sizes, walked off the fixed prefixes without materializing any
  // field.  A trailer holds at most one entry per traversed hop plus
  // truncation marks; 2 * kMaxSegments is a generous ceiling.
  std::array<std::size_t, 2 * core::kMaxSegments> sizes;
  std::size_t count = 0;
  std::size_t offset = 0;
  while (offset < trailer.size()) {
    if (count == sizes.size()) return false;
    std::size_t segment_size = 0;
    try {
      segment_size = decode_segment_view(trailer, offset).wire_size;
    } catch (const wire::CodecError&) {
      return false;
    }
    sizes[count++] = segment_size;
    offset += segment_size;
  }
  SIRPENT_INVARIANT(offset == trailer.size());
  core::reverse_records_in_place(trailer, std::span(sizes).first(count));
  return true;
}

wire::Bytes encode_route(const core::SourceRoute& route) {
  wire::Writer w;
  for (const auto& seg : route.segments) encode_segment(w, seg);
  return std::move(w).take();
}

std::vector<core::HeaderSegment> decode_segments(wire::Reader& r) {
  std::vector<core::HeaderSegment> out;
  while (!r.done()) out.push_back(decode_segment(r));
  return out;
}

wire::Bytes encode_packet(const core::SourceRoute& route,
                          std::span<const std::uint8_t> data) {
  if (route.segments.empty() || route.segments.size() > core::kMaxSegments) {
    throw wire::CodecError("VIPER: route length out of range");
  }
  if (data.size() > 0xFFFF) {
    throw wire::CodecError("VIPER: data exceeds 16-bit length");
  }
  wire::Writer w;
  for (const auto& seg : route.segments) {
    if (!seg.is_legal()) {
      throw wire::CodecError("VIPER: truncation mark in route");
    }
    encode_segment(w, seg);
  }
  [[maybe_unused]] const std::size_t header_len = w.size();
  w.u16(static_cast<std::uint16_t>(data.size()));
  w.bytes(data);
  SIRPENT_ENSURES(w.size() == header_len + 2 + data.size());
  return std::move(w).take();
}

DeliveredBody decode_delivered_body(wire::Reader& r) {
  DeliveredBody body;
  const std::uint16_t data_len = r.u16();
  if (r.remaining() >= data_len) {
    body.data = r.bytes(data_len);
    body.trailer = decode_segments(r);
    SIRPENT_ENSURES(body.data.size() == data_len);
    SIRPENT_ENSURES(r.done());
    return body;
  }
  // Truncated in flight: the data was cut short.  A truncating router
  // appends a 4-byte TRM segment after the cut; recover it if present so
  // the receiver sees an explicit truncation mark.
  wire::Bytes rest = r.bytes(r.remaining());
  if (rest.size() >= 4) {
    wire::Reader tail{std::span{rest}.subspan(rest.size() - 4)};
    try {
      core::HeaderSegment mark = decode_segment(tail);
      if (mark.flags.trm) {
        body.trailer.push_back(mark);
        rest.resize(rest.size() - 4);
      }
    } catch (const wire::CodecError&) {
      // Tail does not parse as a mark: leave the bytes as data.
    }
  }
  body.data = std::move(rest);
  return body;
}

std::uint64_t route_digest(const core::SourceRoute& route) {
  // Serialize the token-free shape of the route and SipHash it under a
  // fixed key: the digest must be identical for every packet sent down
  // the same path, while distinct paths should collide only by accident.
  wire::Writer w(route.hops() * 8);
  for (const auto& seg : route.segments) {
    w.u8(seg.port);
    w.u8(static_cast<std::uint8_t>((seg.tos.priority & 0x0F) |
                                   (seg.tos.drop_if_blocked ? 0x10 : 0)));
    w.u8(static_cast<std::uint8_t>((seg.flags.vnt ? 0x8 : 0) |
                                   (seg.flags.dib ? 0x4 : 0) |
                                   (seg.flags.rpf ? 0x2 : 0) |
                                   (seg.flags.trm ? 0x1 : 0)));
    if (seg.port_info.size() > 0xFF) {
      w.u8(0xFF);
      w.u32(static_cast<std::uint32_t>(seg.port_info.size()));
    } else {
      w.u8(static_cast<std::uint8_t>(seg.port_info.size()));
    }
    w.bytes(seg.port_info);
  }
  static constexpr crypto::SipKey kRouteDigestKey{0x53495250454E5421ULL,
                                                  0x464C4F574B455921ULL};
  const auto digest = crypto::siphash24(kRouteDigestKey, w.view());
  // 0 means "unattributed" in flow accounting; dodge the (astronomically
  // unlikely) collision so real routes are always attributable.
  return digest == 0 ? 1 : digest;
}

}  // namespace srp::viper
