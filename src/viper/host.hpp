// End-host Sirpent module: sends source-routed VIPER packets and, on
// delivery, rebuilds the return route from the trailer (paper §2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/segment.hpp"
#include "core/trailer.hpp"
#include "flow/telemetry_mark.hpp"
#include "net/ethernet.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "viper/codec.hpp"
#include "viper/router.hpp"

namespace srp::viper {

/// A packet delivered to an end host, with everything the higher layers
/// need: the data, the network-independently reversed return route, the
/// link header for the first return hop, and truncation status.
struct Delivery {
  wire::Bytes data;
  core::SourceRoute return_route;  ///< trailer reversed + local segment
  std::optional<net::EthernetHeader> reply_link;  ///< swapped arrival header
  bool truncated = false;   ///< TRM mark seen or transmission aborted
  std::uint64_t endpoint = 0;  ///< local endpoint id addressed (0 = none)
  std::uint64_t packet_id = 0;
  std::uint64_t flow = 0;
  std::uint32_t hops = 0;        ///< routers the packet traversed
  sim::Time sent_at = 0;
  sim::Time delivered_at = 0;
  int in_port = 0;
  /// In-band telemetry records carried by a telemetry-marked packet, in
  /// ascending hop order (empty when the packet was not marked or path
  /// telemetry is off).
  std::vector<obs::HopTelemetry> path;
};

/// Options for ViperHost::send.
struct SendOptions {
  core::TypeOfService tos;
  std::uint64_t flow = 0;
  int out_port = 1;
  /// Link header for the first hop when the out port is on a LAN; the
  /// paper's "initial header segment is implicit from the network type".
  std::optional<net::EthernetHeader> link;
  /// Force an in-band telemetry mark on this packet regardless of the
  /// host's sampling discipline (flow::TelemetryMarker).
  bool telemetry = false;
};

class ViperHost : public net::PortedNode {
 public:
  using Handler = std::function<void(const Delivery&)>;
  using ControlHandler =
      std::function<void(wire::Bytes payload, int in_port)>;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t truncated_received = 0;
    std::uint64_t misrouted = 0;       ///< arrived with a non-local segment
    std::uint64_t unknown_endpoint = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t control_received = 0;
    std::uint64_t telemetry_marked = 0;  ///< sends carrying the INT mark
  };

  ViperHost(sim::Simulator& sim, std::string name,
            net::PacketFactory& packets);

  void set_port_kind(int port_index, PortKind kind);
  [[nodiscard]] PortKind port_kind(int port_index) const;

  /// Binds a local endpoint id; packets whose final segment carries this id
  /// are delivered to @p handler ("intra-host addressing is provided by the
  /// same mechanism as used for inter-host addressing").
  void bind(std::uint64_t endpoint_id, Handler handler);
  void unbind(std::uint64_t endpoint_id);

  /// Receives packets with no / unknown endpoint id — the transport
  /// dispatcher, which must detect misdelivery itself (paper §4.1).
  void set_default_handler(Handler handler);

  void set_control_handler(ControlHandler handler) {
    control_handler_ = std::move(handler);
  }

  /// Sends @p data along @p route.  The route's last segment should be a
  /// local-delivery (port 0) segment for the destination host.
  /// Returns the packet id.
  std::uint64_t send(const core::SourceRoute& route,
                     std::span<const std::uint8_t> data,
                     const SendOptions& options = {});

  /// Sends @p data back along a received packet's return route.
  std::uint64_t reply(const Delivery& delivery,
                      std::span<const std::uint8_t> data,
                      core::TypeOfService tos = {});

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Switches delivery to the batched-plane trailer pass: the raw trailer
  /// bytes are copied once into a reused scratch buffer and reversed *in
  /// place* (core::reverse_records_in_place), so the decoded segments come
  /// out already in return order and build_return_route's re-reversal is
  /// skipped.  Falls back to the reference path — byte-identically — when
  /// the packet was truncated in flight or the trailer fails to parse.
  void set_batching(bool enabled) { batched_ = enabled; }
  [[nodiscard]] bool batching_enabled() const { return batched_; }

  /// Wires the host to an observability sink.  With a recorder present,
  /// every packet this host originates is traced: send() mints a trace
  /// context (trace id = packet id) that rides the packet's measurement
  /// side-band through every router hop, and delivery records an
  /// end-to-end kDeliver span.  Metrics: a `host.<name>.e2e_latency_ps`
  /// histogram of send-to-delivery times.  Also wires this host's ports.
  void set_observer(const obs::Observer& observer);

  /// Wires in-band path telemetry: sends are marked 1-in-@p sample_period
  /// (flow::TelemetryMarker seeded from @p seed and this host's name; a
  /// SendOptions::telemetry send is always marked), and marked deliveries —
  /// including arrivals too damaged to parse — feed @p collector.  Either
  /// half may be off: a null collector still marks (a remote sink
  /// collects), period 0 still collects (only forced marks occur).
  void set_path_telemetry(obs::PathCollector* collector, std::uint64_t seed,
                          std::uint32_t sample_period);

  void on_arrival(const net::Arrival& arrival) override;

 private:
  void process(const net::Arrival& arrival);

  /// Batched-plane body parse: reads [DataLen][Data], then reverses the
  /// remaining trailer bytes in place on trailer_scratch_ and decodes the
  /// segments — already in return order.  Returns false, leaving @p r
  /// untouched, when the data was truncated in flight or the trailer does
  /// not parse as whole segments; the caller then takes the reference
  /// decode_delivered_body path.
  bool decode_body_reversed(wire::Reader& r, DeliveredBody& body);

  net::PacketFactory& packets_;
  std::vector<PortKind> port_kinds_;
  std::map<std::uint64_t, Handler> endpoints_;
  Handler default_handler_;
  ControlHandler control_handler_;
  Stats stats_;

  // Observability handles, resolved once by set_observer(); null = off.
  stats::Histogram* obs_e2e_latency_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
  /// Flow accounting wired: send() stamps Packet::route_digest so routers
  /// along the path can attribute the packet to its source route.
  bool stamp_route_digest_ = false;

  // Path-telemetry wiring (set_path_telemetry); both null/empty = off.
  obs::PathCollector* collector_ = nullptr;
  std::optional<flow::TelemetryMarker> marker_;

  // Batched-plane delivery state (set_batching).
  bool batched_ = false;
  /// Reused trailer image for the in-place reversal; capacity survives
  /// across deliveries so the steady state re-allocates nothing.
  wire::Bytes trailer_scratch_;
};

}  // namespace srp::viper
