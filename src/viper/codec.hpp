// VIPER wire format (paper §5, Figure 1).
//
//    0                   1
//    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5
//   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//   |PortInfoLength |PortTokenLength|
//   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//   |     Port      | Flags |Priorit|
//   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//   >          Port Token           <
//   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//   >          PortInfo             <
//   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//
// The fixed 32-bit prefix comes first so cut-through hardware learns the
// variable-length sizes "as far in advance as possible"; a length byte of
// 255 escapes to a 32-bit length occupying the first four octets of the
// corresponding field.  The smallest segment is 32 bits.
//
// Packet layout used by this implementation (concretization documented in
// DESIGN.md — the paper leaves the data/trailer boundary to the transport):
//
//   ViperPacket := Segment*  DataLen(u16)  Data  TrailerSegment*
//
// Routers never read DataLen; only end hosts do.  Trailer entries reuse the
// header-segment encoding; the truncation mark is a segment with the TRM
// flag, "not a legal Sirpent header segment".
#pragma once

#include <cstdint>
#include <span>

#include "core/segment.hpp"
#include "wire/buffer.hpp"

namespace srp::viper {

/// VIPER transmission unit: "The VIPER transmission unit is 1500 bytes."
inline constexpr std::size_t kViperMtu = 1500;

/// Flags nibble bit assignment (VNT/DIB/RPF from the paper; TRM ours).
inline constexpr std::uint8_t kFlagVnt = 0x8;
inline constexpr std::uint8_t kFlagDib = 0x4;
inline constexpr std::uint8_t kFlagRpf = 0x2;
inline constexpr std::uint8_t kFlagTrm = 0x1;

/// Encoded size of @p segment in octets.
std::size_t segment_wire_size(const core::HeaderSegment& segment);

/// Appends one encoded segment.
void encode_segment(wire::Writer& w, const core::HeaderSegment& segment);

/// Decodes one segment, advancing the reader.  Throws wire::CodecError on
/// malformed input.
core::HeaderSegment decode_segment(wire::Reader& r);

/// A decoded segment whose variable fields are *views* into the packet
/// buffer instead of copies — the batched data plane's header
/// representation.  Field semantics match decode_segment exactly
/// (including the VNT padding discard, which leaves `port_info` empty);
/// the spans stay valid only while the underlying buffer does.
struct SegmentView {
  std::uint8_t port = 0;
  core::TypeOfService tos;
  core::SegmentFlags flags;
  std::span<const std::uint8_t> token;
  std::span<const std::uint8_t> port_info;
  std::size_t wire_size = 0;  ///< encoded size of this segment

  [[nodiscard]] bool is_legal() const { return !flags.trm; }
};

/// Decodes the segment starting at @p offset of @p bytes without copying
/// its fields.  Byte-for-byte the same acceptance rules as decode_segment;
/// throws wire::CodecError on malformed input.  Allocation-free.
SegmentView decode_segment_view(std::span<const std::uint8_t> bytes,
                                std::size_t offset);

/// Appends the encoding of one segment to @p out by raw byte appends —
/// byte-identical to encode_segment of the equivalent HeaderSegment, but
/// writing into a caller-owned (typically arena-backed, capacity-warm)
/// buffer instead of a Writer.  The batched codec must not move a single
/// byte on the wire: golden_wire_test pins the agreement.
void append_segment_raw(wire::Bytes& out, std::uint8_t port,
                        const core::TypeOfService& tos,
                        const core::SegmentFlags& flags,
                        std::span<const std::uint8_t> token,
                        std::span<const std::uint8_t> port_info);

/// Reverses the order of the trailer segments inside @p trailer *in place*
/// (segment reversal is length-preserving, so no copy is needed): walks
/// the segment sizes with decode_segment_view, then rotates the records
/// with core::reverse_records_in_place.  Returns false — leaving the
/// buffer unchanged — if the bytes do not parse as a whole number of
/// segments or there are more than 2 * core::kMaxSegments of them.
bool reverse_trailer_in_place(std::span<std::uint8_t> trailer);

/// Encodes a full route (all segments, in order).
wire::Bytes encode_route(const core::SourceRoute& route);

/// Decodes segments until the reader is exhausted (for route blobs and
/// trailers).
std::vector<core::HeaderSegment> decode_segments(wire::Reader& r);

/// Builds the body of a fresh VIPER packet: route + DataLen + data, with an
/// empty trailer.  Throws if the route is too long (core::kMaxSegments) or
/// the data exceeds the 16-bit length field.
wire::Bytes encode_packet(const core::SourceRoute& route,
                          std::span<const std::uint8_t> data);

/// What an end host sees after consuming the final (local) segment.
struct DeliveredBody {
  wire::Bytes data;
  std::vector<core::HeaderSegment> trailer;  ///< raw, may include TRM marks
};

/// Parses [DataLen][Data][Trailer...] — the bytes remaining after the local
/// segment has been decoded.  If the packet was truncated in flight the
/// data may be short; `data` then contains what arrived and the TRM mark
/// (if it survived) is in `trailer`.
DeliveredBody decode_delivered_body(wire::Reader& r);

/// Stable 64-bit digest of a source route's *path* — per-segment port,
/// priority, flags and port_info, excluding tokens — so the same physical
/// route hashes identically no matter which tokens were minted for it.
/// Used as the flow-accounting key (obs::FlowSample::route_digest).
std::uint64_t route_digest(const core::SourceRoute& route);

}  // namespace srp::viper
