// Sirpent over IP: "the Internet as one logical hop" (paper §2.3).
//
// "An IP protocol number is assigned to the Sirpent protocol.  A Sirpent
// packet can view the Internet as providing one logical hop across its
// internetwork.  That is, the packet is source routed to an IP host or
// gateway so that the header is now an IP header.  The host/gateway uses
// standard IP to route the packet to the specified destination host.  At
// this point, the packet is demultiplexed to the Sirpent protocol module
// which interprets the remainder of the packet header as a source route on
// from that point."
//
// An IpTunnel binds a co-located ViperRouter and IpHost into such a
// gateway.  A VIPER segment addressed to the router's tunnel port carries
// the far gateway's IP address in its portInfo; the remainder of the VIPER
// packet travels as an IP datagram (fragmented and reassembled by the IP
// substrate if need be) and re-enters the Sirpent world at the far side —
// with the reverse trailer entry pointing back through the tunnel, so
// return routes work transparently across the IP cloud.
#pragma once

#include <cstdint>
#include <optional>

#include "ip/host.hpp"
#include "viper/router.hpp"

namespace srp::interop {

/// IP protocol number assigned to Sirpent-in-IP encapsulation.
inline constexpr std::uint8_t kProtoSirpent = 94;

/// Tag byte opening a tunnel portInfo field (distinct from the tree tag
/// 0x54 and from MAC first octets used in our deployments).
inline constexpr std::uint8_t kTunnelInfoTag = 0x49;  // 'I'

/// Encodes a tunnel portInfo: [tag][u32 far-gateway IP address].
wire::Bytes encode_tunnel_info(ip::Addr far_gateway);
std::optional<ip::Addr> decode_tunnel_info(const wire::Bytes& info);

/// Note: only the wire image crosses the tunnel (as it would in reality),
/// so simulation-side bookkeeping (packet id, hop count, creation time)
/// restarts at the far gateway; end-to-end timing should be measured at
/// the transport layer, which is unaffected.
class IpTunnel {
 public:
  struct Stats {
    std::uint64_t encapsulated = 0;
    std::uint64_t decapsulated = 0;
    std::uint64_t bad_tunnel_info = 0;
  };

  /// Wires @p router's @p tunnel_port_id to @p ip_host.  The IpHost must
  /// be attached to the IP internetwork; incoming kProtoSirpent datagrams
  /// are injected back into the router.
  IpTunnel(viper::ViperRouter& router, ip::IpHost& ip_host,
           std::uint8_t tunnel_port_id);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint8_t tunnel_port_id() const {
    return tunnel_port_id_;
  }

 private:
  viper::ViperRouter& router_;
  ip::IpHost& ip_host_;
  std::uint8_t tunnel_port_id_;
  Stats stats_;
};

}  // namespace srp::interop
