#include "interop/ip_gateway.hpp"

namespace srp::interop {

wire::Bytes encode_tunnel_info(ip::Addr far_gateway) {
  wire::Writer w(5);
  w.u8(kTunnelInfoTag);
  w.u32(far_gateway);
  return std::move(w).take();
}

std::optional<ip::Addr> decode_tunnel_info(const wire::Bytes& info) {
  if (info.size() != 5 || info[0] != kTunnelInfoTag) return std::nullopt;
  wire::Reader r(info);
  r.skip(1);
  return r.u32();
}

IpTunnel::IpTunnel(viper::ViperRouter& router, ip::IpHost& ip_host,
                   std::uint8_t tunnel_port_id)
    : router_(router), ip_host_(ip_host), tunnel_port_id_(tunnel_port_id) {
  // Egress: VIPER -> IP datagram toward the far gateway.
  router_.define_tunnel_port(
      tunnel_port_id_,
      [this](const wire::Bytes& info, wire::Bytes viper_bytes,
             const core::TypeOfService& tos) {
        const auto far = decode_tunnel_info(info);
        if (!far.has_value()) {
          ++stats_.bad_tunnel_info;
          return;
        }
        ++stats_.encapsulated;
        ip_host_.send(*far, kProtoSirpent, viper_bytes,
                      static_cast<std::uint8_t>(tos.priority << 5));
      });

  // Ingress: IP datagram -> back into the Sirpent world.  The reverse
  // trailer entry names this tunnel port with the *source* gateway's
  // address, learned from the IP header, so replies tunnel back.
  ip_host_.set_handler(
      [this](const ip::IpHeader& header, wire::Bytes payload) {
        if (header.protocol != kProtoSirpent) return;
        ++stats_.decapsulated;
        router_.inject_from_tunnel(tunnel_port_id_, std::move(payload),
                                   encode_tunnel_info(header.src));
      });
}

}  // namespace srp::interop
