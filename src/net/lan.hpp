// Multi-access network segment (an "Ethernet" in the paper's examples).
//
// Modeled as a learning-free segment node: every attached station registers
// its MAC, and a frame entering the segment is relayed to the station whose
// MAC matches the Ethernet destination (or flooded for broadcast).  The
// segment relays with cut-through timing — a shared medium delivers bits to
// all stations as they are transmitted — plus a configurable forwarding
// latency defaulting to zero.
#pragma once

#include <map>
#include <string>

#include "net/ethernet.hpp"
#include "net/network.hpp"

namespace srp::net {

class LanSegment : public PortedNode {
 public:
  LanSegment(sim::Simulator& sim, std::string name)
      : PortedNode(sim, std::move(name)) {}

  /// Binds @p mac to the segment port leading to that station.
  void register_mac(const MacAddr& mac, int port_index) {
    stations_[mac] = port_index;
  }

  /// Extra relay latency (e.g. a bridge); zero for a pure shared medium.
  void set_forward_latency(sim::Time t) { forward_latency_ = t; }

  [[nodiscard]] std::uint64_t unknown_mac_drops() const {
    return unknown_mac_drops_;
  }

  void on_arrival(const Arrival& arrival) override;

 private:
  void relay(const Arrival& arrival, int out_port);

  std::map<MacAddr, int> stations_;
  sim::Time forward_latency_ = 0;
  std::uint64_t unknown_mac_drops_ = 0;
};

}  // namespace srp::net
