#include "net/lan.hpp"

namespace srp::net {

void LanSegment::on_arrival(const Arrival& arrival) {
  // A frame too short for an Ethernet header is noise; drop it.
  if (arrival.packet->size() < EthernetHeader::kWireSize) {
    ++unknown_mac_drops_;
    return;
  }
  wire::Reader r(arrival.packet->bytes);
  const EthernetHeader eth = EthernetHeader::decode(r);

  if (eth.dst.is_broadcast()) {
    for (const auto& [mac, out] : stations_) {
      if (out != arrival.in_port) relay(arrival, out);
    }
    return;
  }

  const auto it = stations_.find(eth.dst);
  if (it == stations_.end()) {
    ++unknown_mac_drops_;
    return;
  }
  if (it->second == arrival.in_port) return;  // already where it belongs
  relay(arrival, it->second);
}

void LanSegment::relay(const Arrival& arrival, int out_port) {
  TxPort& out = port(out_port);
  // Shared-medium timing: the station hears the frame as it is sent, so the
  // relay may start as soon as the link header has arrived (cut-through),
  // never before.
  const sim::Time earliest =
      arrival.head +
      sim::byte_time(EthernetHeader::kWireSize, arrival.rate_bps) +
      forward_latency_;
  out.enqueue(arrival.packet, TxMeta{}, earliest);
}

}  // namespace srp::net
