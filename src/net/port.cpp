#include "net/port.hpp"

#include <utility>

#include "check/analysis.hpp"
#include "check/contract.hpp"

namespace srp::net {

FaultHook drop_when(std::function<bool(const Packet&)> predicate) {
  return [pred = std::move(predicate)](PacketPtr& packet, TxMeta&,
                                       sim::Time&) {
    return pred(*packet) ? FaultVerdict::kDrop : FaultVerdict::kPass;
  };
}

TxPort::TxPort(sim::Simulator& sim, std::string name, LinkConfig config)
    : sim_(sim), name_(std::move(name)), config_(config) {}

void TxPort::connect(Node* peer, int peer_in_port) {
  peer_ = peer;
  peer_in_port_ = peer_in_port;
}

void TxPort::set_buffer_limit(std::size_t bytes) { buffer_limit_ = bytes; }

void TxPort::set_observer(const obs::Observer& observer) {
  if (observer.registry != nullptr) {
    const auto instance = stats::metric_component(name_);
    obs_queue_depth_ =
        &observer.registry->gauge("port." + instance + ".queue_depth");
    obs_queue_wait_ =
        &observer.registry->histogram("port." + instance + ".queue_wait_ps");
  } else {
    obs_queue_depth_ = nullptr;
    obs_queue_wait_ = nullptr;
  }
  obs_recorder_ = observer.recorder;
}

void TxPort::notify_queue_change() {
  if (on_queue_change) on_queue_change(sim_.now(), queue_.size());
  if (obs_queue_depth_ != nullptr) {
    obs_queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
}

SRP_HOT_PATH void TxPort::enqueue(PacketPtr packet, TxMeta meta,
                                  sim::Time earliest_start) {
  if (fault_hook) {
    switch (fault_hook(packet, meta, earliest_start)) {
      case FaultVerdict::kPass:
        break;
      case FaultVerdict::kDrop:
        ++stats_.enqueued;
        ++stats_.dropped_injected;
        return;
      case FaultVerdict::kConsume:
        // The hook re-injects (or drops and counts) the packet itself; it
        // is accounted when it re-enters through enqueue_unfiltered().
        return;
    }
  }
  enqueue_unfiltered(std::move(packet), meta, earliest_start);
}

SRP_HOT_PATH void TxPort::enqueue_burst(std::span<BurstItem> burst) {
  for (BurstItem& item : burst) {
    enqueue(std::move(item.packet), item.meta, item.earliest_start);
  }
}

SRP_HOT_PATH void TxPort::enqueue_unfiltered(PacketPtr packet, TxMeta meta,
                                             sim::Time earliest_start) {
  ++stats_.enqueued;
  if (!up_) {
    ++stats_.dropped_down;
    return;
  }

  Queued item{std::move(packet), meta, sim_.now(), earliest_start};

  if (transmitting_ && meta.preempting && !current_.meta.preempting) {
    // Paper §2.1: a preemptive-priority packet aborts a non-preemptive
    // transmission in progress; the victim arrives truncated at the peer.
    abort_transmission();
  }

  // "Blocked" per the paper: the packet cannot go straight onto the wire —
  // a transmission is in progress or others are already waiting.
  const bool blocked = transmitting_ || !queue_.empty();
  if (blocked && meta.drop_if_blocked) {
    ++stats_.dropped_blocked;
    return;
  }
  if (queue_bytes_ + item.packet->size() > buffer_limit_) {
    if (overflow_handler && overflow_handler(item.packet, item.meta)) {
      ++stats_.deflected;
      return;
    }
    ++stats_.dropped_full;
    return;
  }
  if (on_enqueue) on_enqueue(*item.packet);
  queue_bytes_ += item.packet->size();
  insert_by_rank(std::move(item));
  notify_queue_change();
  // If idle, the packet still waits for its cut-through bound via the
  // queue head; try_start() decides when it may actually go.
  if (!transmitting_) try_start(sim_.now());
}

SRP_HOT_PATH void TxPort::insert_by_rank(Queued item) {
  // Descending rank, FIFO within a rank: scan from the back.
  auto it = queue_.end();
  while (it != queue_.begin() && std::prev(it)->meta.rank < item.meta.rank) {
    --it;
  }
  // The output queue is the paper's "output buffer space": buffering a
  // blocked packet is the deliberate allocation on this path.
  SRP_ALLOC_OK(queue_.insert(it, std::move(item)));
}

SRP_HOT_PATH void TxPort::try_start(sim::Time not_before) {
  if (transmitting_ || queue_.empty() || !up_) return;

  Queued& front = queue_.front();
  const sim::Time start =
      std::max({sim_.now(), not_before, front.earliest_start});
  if (start > sim_.now()) {
    if (wakeup_event_ != 0) sim_.cancel(wakeup_event_);
    // SRP_ALLOC_OK(cut-through wakeup event)
    wakeup_event_ = sim_.at(start, [this] {
      wakeup_event_ = 0;
      try_start(sim_.now());
    });
    return;
  }

  Queued item = std::move(queue_.front());
  queue_.pop_front();
  SIRPENT_INVARIANT(queue_bytes_ >= item.packet->size());
  queue_bytes_ -= item.packet->size();
  // Start first, notify after: observers of the queue change must see the
  // port already busy (time-weighted "in system" statistics depend on it).
  start_transmission(std::move(item), start);
  notify_queue_change();
}

SRP_HOT_PATH void TxPort::start_transmission(Queued item, sim::Time start) {
  SIRPENT_EXPECTS(!transmitting_);
  SIRPENT_EXPECTS(start >= item.earliest_start);
  transmitting_ = true;
  current_ = std::move(item);
  current_start_ = start;
  current_end_ = start + tx_time(current_.packet->size());

  // SRP_ALLOC_OK(completion event, one per transmission)
  completion_event_ =
      sim_.at(current_end_, [this] { complete_transmission(); });

  const sim::Time queue_wait = start - current_.enqueue_time;
  if (obs_queue_wait_ != nullptr) {
    obs_queue_wait_->record(static_cast<std::uint64_t>(queue_wait));
  }
  if (obs_recorder_ != nullptr && current_.packet->trace_id != 0) {
    obs::SpanRecord span;
    span.trace_id = current_.packet->trace_id;
    span.hop = current_.packet->hops;
    span.kind = obs::SpanKind::kTx;
    span.out_port = static_cast<std::uint16_t>(peer_in_port_);
    span.start = current_.enqueue_time;
    span.decision = start;
    span.end = current_end_;
    span.queue_delay = queue_wait;
    span.set_component(name_);
    obs_recorder_->record(span);
  }

  if (peer_ != nullptr) {
    const sim::Time head = start + config_.prop_delay;
    const sim::Time tail = current_end_ + config_.prop_delay;
    Arrival arrival{current_.packet, peer_in_port_, head, tail,
                    config_.rate_bps};
    // SRP_ALLOC_OK(arrival event, one per transmission)
    sim_.at(head, [peer = peer_, arrival] { peer->on_arrival(arrival); });
  }
}

SRP_HOT_PATH void TxPort::complete_transmission() {
  SIRPENT_EXPECTS(transmitting_);
  ++stats_.sent;
  stats_.bytes_sent += current_.packet->size();
  stats_.busy_time += current_end_ - current_start_;
  completion_event_ = 0;
  transmitting_ = false;
  if (on_depart) on_depart(*current_.packet);
  current_ = Queued{};
  try_start(sim_.now());
}

void TxPort::abort_transmission() {
  SIRPENT_EXPECTS(transmitting_);
  ++stats_.preempt_aborts;
  stats_.busy_time += sim_.now() - current_start_;
  sim_.cancel(completion_event_);
  completion_event_ = 0;
  // The truncated tail reaches the peer early, but we leave the already
  // scheduled arrival in place and flag the shared packet: receivers check
  // effectively_truncated() when they act on the packet.
  current_.packet->truncated = true;
  transmitting_ = false;
  current_ = Queued{};
}

void TxPort::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    if (transmitting_) abort_transmission();
    stats_.dropped_down += queue_.size();
    queue_.clear();
    queue_bytes_ = 0;
    notify_queue_change();
    if (wakeup_event_ != 0) {
      sim_.cancel(wakeup_event_);
      wakeup_event_ = 0;
    }
  } else {
    try_start(sim_.now());
  }
}

}  // namespace srp::net
