// Same-instant arrival coalescing for the batched forward path.
//
// Batch boundaries must align with event boundaries to keep the sim
// byte-identical (DESIGN.md §11): a router's on_arrival pushes each
// arrival into an ArrivalBurst, and the first push of a quiet period
// schedules one zero-delay drain event.  Because same-time events fire in
// insertion order, the drain runs after every arrival delivered at this
// instant and before anything of a later instant — so a burst is exactly
// "the packets that arrived at this sim time", in arrival order.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "check/analysis.hpp"
#include "net/node.hpp"

namespace srp::net {

class ArrivalBurst {
 public:
  /// Appends an arrival.  Returns true when the caller must schedule a
  /// drain (first push since the last reset()).
  SRP_HOT_PATH bool push(const Arrival& arrival) {
    // Amortized: the vector keeps its capacity across reset(), so pushes
    // allocate only while the burst high-water mark is still growing.
    SRP_ALLOC_OK(items_.push_back(arrival));
    const bool need_drain = !scheduled_;
    scheduled_ = true;
    return need_drain;
  }

  /// Removes and returns (a view of) the next at-most-@p max_count items.
  /// The view stays valid until the next push() or reset().
  [[nodiscard]] std::span<const Arrival> take(std::size_t max_count) {
    const std::size_t n = std::min(max_count, items_.size() - next_);
    const std::span<const Arrival> burst{items_.data() + next_, n};
    next_ += n;
    return burst;
  }

  [[nodiscard]] bool empty() const { return next_ >= items_.size(); }
  [[nodiscard]] std::size_t pending() const { return items_.size() - next_; }

  /// Clears the burst (keeping capacity) and re-arms drain scheduling.
  /// Also drops the packet references the queued arrivals held.
  void reset() {
    items_.clear();
    next_ = 0;
    scheduled_ = false;
  }

 private:
  std::vector<Arrival> items_;
  std::size_t next_ = 0;
  bool scheduled_ = false;
};

}  // namespace srp::net
