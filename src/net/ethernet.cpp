#include "net/ethernet.hpp"

#include <cstdio>

namespace srp::net {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

MacAddr MacAddr::from_index(std::uint16_t index) {
  MacAddr m;
  m.octets = {0x02, 0x00, 0x00, 0x00, static_cast<std::uint8_t>(index >> 8),
              static_cast<std::uint8_t>(index & 0xFF)};
  return m;
}

MacAddr MacAddr::broadcast() {
  MacAddr m;
  m.octets.fill(0xFF);
  return m;
}

void EthernetHeader::encode(wire::Writer& w) const {
  w.bytes(dst.octets);
  w.bytes(src.octets);
  w.u16(ether_type);
}

EthernetHeader EthernetHeader::decode(wire::Reader& r) {
  EthernetHeader h;
  auto d = r.view(6);
  std::copy(d.begin(), d.end(), h.dst.octets.begin());
  auto s = r.view(6);
  std::copy(s.begin(), s.end(), h.src.octets.begin());
  h.ether_type = r.u16();
  return h;
}

}  // namespace srp::net
