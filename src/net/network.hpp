// Topology container and the port-owning node base class.
#pragma once

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"

namespace srp::net {

/// A node that owns output ports.  Ports are numbered from 1 because VIPER
/// reserves port 0 to mean "local delivery" (paper §5); index 0 is never
/// assigned to a link.
class PortedNode : public Node {
 public:
  PortedNode(sim::Simulator& sim, std::string name)
      : Node(std::move(name)), sim_(sim) {
    ports_.push_back(nullptr);  // slot 0 reserved
  }

  /// Adds an output port with the given link parameters; returns its index.
  int add_port(LinkConfig config) {
    const int index = static_cast<int>(ports_.size());
    ports_.push_back(std::make_unique<TxPort>(
        sim_, std::string(name()) + ":p" + std::to_string(index), config));
    return index;
  }

  [[nodiscard]] TxPort& port(int index) {
    if (index <= 0 || index >= static_cast<int>(ports_.size())) {
      throw std::out_of_range("PortedNode::port: bad port index");
    }
    return *ports_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const TxPort& port(int index) const {
    return const_cast<PortedNode*>(this)->port(index);
  }

  /// Number of usable ports (excludes the reserved slot 0).
  [[nodiscard]] int port_count() const {
    return static_cast<int>(ports_.size()) - 1;
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 protected:
  sim::Simulator& sim_;

 private:
  std::vector<std::unique_ptr<TxPort>> ports_;
};

/// Owns the nodes of one simulated internetwork and wires duplex links.
class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  /// Constructs a node in place; the Network owns it.
  template <class T, class... Args>
  T& add(Args&&... args) {
    auto node = std::make_unique<T>(sim_, std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Connects @p a and @p b with a duplex link (two simplex channels with
  /// identical parameters).  Returns the port index on each side.
  std::pair<int, int> duplex(PortedNode& a, PortedNode& b,
                             LinkConfig config) {
    const int pa = a.add_port(config);
    const int pb = b.add_port(config);
    a.port(pa).connect(&b, pb);
    b.port(pb).connect(&a, pa);
    return {pa, pb};
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] PacketFactory& packets() { return packets_; }

 private:
  sim::Simulator& sim_;
  PacketFactory packets_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace srp::net
