#include "net/arena.hpp"

#include "check/contract.hpp"

namespace srp::net {

void PacketArena::reset_slab(Packet& p) {
  p.bytes.clear();  // keeps capacity: the whole point of slab reuse
  p.id = 0;
  p.created = 0;
  p.flow = 0;
  p.hops = 0;
  p.truncated = false;
  p.last_in_port = 0;
  p.feedforward = 0;
  p.recirculations = 0;
  p.trace_id = 0;
  p.route_digest = 0;
  p.parent.reset();
}

SRP_HOT_PATH PacketPtr PacketArena::acquire() {
  ++stats_.acquired;
  // Rotating scan for a slab nobody else references.  Starting where the
  // last acquire left off makes the common case O(1): the slab recycled
  // longest ago is the one most likely to have been released.
  const std::size_t n = pool_.size();
  std::size_t i = cursor_;
  for (std::size_t step = 0; step < n; ++step) {
    ++stats_.scan_steps;
    PacketPtr& slot = pool_[i];
    if (slot.use_count() == 1) {
      // Same rotation as (cursor_ + step) % n, without the per-step
      // integer division — acquire() is the batch plane's allocator.
      cursor_ = i + 1 == n ? 0 : i + 1;
      reset_slab(*slot);
      ++stats_.recycled;
      return slot;
    }
    if (++i == n) i = 0;
  }
  // No free slab: allocate fresh.  Pool it (so it recycles later) while
  // under capacity; past capacity it is a one-off the caller fully owns.
  ++stats_.fresh;
  SRP_ALLOC_OK(PacketPtr fresh = std::make_shared<Packet>());
  if (pool_.size() < capacity_) {
    SRP_ALLOC_OK(pool_.push_back(fresh));
    cursor_ = 0;
  }
  return fresh;
}

}  // namespace srp::net
