// The simulated packet.
//
// A Packet carries a real wire image (`bytes`) — VIPER headers, IP headers,
// CVC labels are all actual encoded octets that routers parse and rewrite —
// plus side-band bookkeeping used only for measurement (ids, timestamps,
// flow labels).  Routers that rewrite a packet (e.g. a Sirpent router
// moving a header segment to the trailer) produce a fresh Packet and copy
// the bookkeeping forward via Packet::derive().
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/time.hpp"
#include "wire/buffer.hpp"

namespace srp::net {

struct Packet;
using PacketPtr = std::shared_ptr<Packet>;

struct Packet : std::enable_shared_from_this<Packet> {
  wire::Bytes bytes;  ///< full wire image, link header onward

  // --- measurement side-band (never "transmitted") ---
  std::uint64_t id = 0;        ///< unique per simulation
  sim::Time created = 0;       ///< time the original packet entered the net
  std::uint64_t flow = 0;      ///< workload-assigned flow label
  std::uint32_t hops = 0;      ///< routers traversed so far
  bool truncated = false;      ///< transmission was aborted / MTU-cut
  int last_in_port = 0;        ///< port the current holder received it on
                               ///  (congestion control's feeder identity)
  std::uint32_t feedforward = 0;  ///< paper §2.2 "feed forward" load info:
                                  ///  packets queued behind this one at its
                                  ///  previous (rate-controlled) router;
                                  ///  models a small network-layer field
  std::uint8_t recirculations = 0;  ///< delay-line loops taken so far
                                    ///  (Blazenet-style deferral, §2.1)
  std::uint64_t trace_id = 0;  ///< nonzero = per-hop tracing requested;
                               ///  spans land in the obs::FlightRecorder
  std::uint64_t route_digest = 0;  ///< hash of the source route stamped by
                                   ///  the origin host when flow accounting
                                   ///  is on; constant along the whole path
                                   ///  (0 = unattributed, e.g. tunnel
                                   ///  ingress)
  bool telemetry = false;  ///< in-band path telemetry requested: routers on
                           ///  the path append an obs::HopTelemetry record
                           ///  to the trailer (models an INT mark bit in a
                           ///  network-layer header field)

  /// Upstream image this packet was derived from.  With cut-through a
  /// router forwards the head of a packet whose tail is still in flight
  /// upstream; if that upstream transmission is later aborted, the damage
  /// is discovered by walking this chain (effectively_truncated()), just as
  /// a real cut-through abort propagates to every downstream copy.
  std::shared_ptr<const Packet> parent;

  [[nodiscard]] std::size_t size() const { return bytes.size(); }
  [[nodiscard]] std::uint64_t size_bits() const { return bytes.size() * 8; }

  /// True if this packet, or any upstream image it was cut-through-derived
  /// from, was truncated.
  [[nodiscard]] bool effectively_truncated() const {
    for (const Packet* p = this; p != nullptr; p = p->parent.get()) {
      if (p->truncated) return true;
    }
    return false;
  }

  /// New packet derived from this one (rewritten at a router): fresh wire
  /// image, inherited bookkeeping, hop count bumped, truncation chained.
  [[nodiscard]] PacketPtr derive(wire::Bytes new_bytes) const {
    auto p = std::make_shared<Packet>();
    p->bytes = std::move(new_bytes);
    p->id = id;
    p->created = created;
    p->flow = flow;
    p->hops = hops + 1;
    p->trace_id = trace_id;
    p->route_digest = route_digest;
    p->telemetry = telemetry;
    p->parent = shared_from_this();
    return p;
  }
};

/// Factory assigning unique ids; one per simulation run.
class PacketFactory {
 public:
  PacketPtr make(wire::Bytes bytes, sim::Time now, std::uint64_t flow = 0) {
    auto p = std::make_shared<Packet>();
    p->bytes = std::move(bytes);
    p->id = ++last_id_;
    p->created = now;
    p->flow = flow;
    return p;
  }

  [[nodiscard]] std::uint64_t issued() const { return last_id_; }

 private:
  std::uint64_t last_id_ = 0;
};

}  // namespace srp::net
