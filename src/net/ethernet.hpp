// Ethernet-style link-layer framing.
//
// The paper's running example carries Sirpent packets across Ethernets: the
// portInfo field of a header segment holds the Ethernet header for the next
// hop, and the router swaps source/destination when it moves the segment to
// the trailer.  This module provides the 14-byte header codec and the MAC
// address type those examples need.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "wire/buffer.hpp"

namespace srp::net {

/// 48-bit MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  bool operator==(const MacAddr&) const = default;
  auto operator<=>(const MacAddr&) const = default;

  [[nodiscard]] bool is_broadcast() const {
    for (auto o : octets) {
      if (o != 0xFF) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;

  /// Deterministic test/example address: 02:00:00:00:hi:lo (locally
  /// administered, unicast).
  static MacAddr from_index(std::uint16_t index);
  static MacAddr broadcast();
};

/// Reserved EtherType for Sirpent/VIPER, per the paper: "an Ethernet ...
/// protocol type field contains a value associated with Sirpent".
inline constexpr std::uint16_t kEtherTypeSirpent = 0x88B5;
/// IPv4, for the IP baseline.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
/// CVC signaling/data, for the concatenated-virtual-circuit baseline.
inline constexpr std::uint16_t kEtherTypeCvc = 0x88B6;

/// DstMAC(6) | SrcMAC(6) | EtherType(2).
struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kWireSize = 14;

  void encode(wire::Writer& w) const;
  static EthernetHeader decode(wire::Reader& r);

  /// The paper's per-hop rewrite: "the destination and source addresses are
  /// swapped" so the stored header becomes a correct return hop.
  [[nodiscard]] EthernetHeader reversed() const {
    return EthernetHeader{src, dst, ether_type};
  }

  bool operator==(const EthernetHeader&) const = default;
};

}  // namespace srp::net
