// Node and arrival interfaces for the simulated forwarding plane.
#pragma once

#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace srp::net {

/// Delivery of a packet to a node.  The callback fires at `head` (first-bit
/// arrival), carrying `tail` (last-bit arrival) so the receiver can choose
/// cut-through (act once the header portion is in) or store-and-forward
/// (schedule itself at `tail`).  `rate_bps` is the incoming link rate; the
/// paper permits cut-through only when input and output rates match.
struct Arrival {
  PacketPtr packet;
  int in_port = 0;          ///< receiving node's port the packet came in on
  sim::Time head = 0;       ///< first-bit arrival time (== now at delivery)
  sim::Time tail = 0;       ///< last-bit arrival time
  double rate_bps = 0.0;    ///< incoming link rate
};

/// Anything attached to the network: routers, hosts, LAN segments.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] std::string_view name() const { return name_; }

  /// Called at first-bit arrival time.
  virtual void on_arrival(const Arrival& arrival) = 0;

 private:
  std::string name_;
};

}  // namespace srp::net
