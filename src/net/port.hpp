// Output port: the transmitter end of a simplex link.
//
// Implements the paper's blocked-packet semantics: a packet that finds the
// port busy is *saved* on a priority queue, *dropped* (drop-if-blocked type
// of service), or — for VIPER priorities 6/7 — *preempts* the transmission
// in progress, which is aborted mid-packet and arrives truncated at the
// peer.  Queue order is by priority rank, FIFO within a rank.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <span>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/registry.hpp"

namespace srp::net {

/// Static parameters of a simplex link.
struct LinkConfig {
  double rate_bps = 1e9;                   ///< serialization rate
  sim::Time prop_delay = sim::kMicrosecond;  ///< one-way propagation
  std::size_t mtu_bytes = 1500;            ///< maximum transmission unit
};

/// Per-transmission scheduling directives, distilled from the packet's
/// type-of-service by the owning router (protocol-agnostic here).
struct TxMeta {
  int rank = 0;                  ///< higher rank is served first
  bool preempting = false;       ///< may abort a lower-rank transmission
  bool drop_if_blocked = false;  ///< paper's "drop" blocked-packet policy
};

/// Verdict returned by a TxPort fault hook.
enum class FaultVerdict : std::uint8_t {
  kPass,     ///< transmit (the hook may have mutated packet/meta/start)
  kDrop,     ///< discard silently; counted as dropped_injected
  kConsume,  ///< hook took custody; it re-injects via enqueue_unfiltered()
};

/// Generalized fault-injection hook (see src/fault): consulted once per
/// enqueue().  It may mutate the packet, its scheduling metadata and its
/// earliest-start bound in place (corruption, delay jitter), drop the
/// packet, or take custody of it for later re-injection (reordering,
/// duplication).  Exactly one injection path: this hook subsumes the old
/// ad-hoc drop_filter predicate.
using FaultHook = std::function<FaultVerdict(
    PacketPtr& packet, TxMeta& meta, sim::Time& earliest_start)>;

/// Adapts a boolean predicate into a FaultHook dropping matching packets —
/// the old drop_filter semantics, for targeted loss in tests.
FaultHook drop_when(std::function<bool(const Packet&)> predicate);

/// Transmitter of one simplex channel, with a bounded priority queue.
class TxPort {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t sent = 0;              ///< completed transmissions
    std::uint64_t bytes_sent = 0;
    std::uint64_t dropped_blocked = 0;   ///< drop-if-blocked while busy
    std::uint64_t dropped_full = 0;      ///< buffer exhausted
    std::uint64_t deflected = 0;         ///< taken by the overflow handler
    std::uint64_t dropped_down = 0;      ///< link was down
    std::uint64_t dropped_injected = 0;  ///< loss injection (tests/benches)
    std::uint64_t preempt_aborts = 0;    ///< transmissions we aborted
    sim::Time busy_time = 0;             ///< cumulative transmitting time
  };

  struct Queued {
    PacketPtr packet;
    TxMeta meta;
    sim::Time enqueue_time = 0;
    sim::Time earliest_start = 0;  ///< cut-through causality bound
  };

  TxPort(sim::Simulator& sim, std::string name, LinkConfig config);

  /// Points this transmitter at its receiver.
  void connect(Node* peer, int peer_in_port);

  /// Hands a packet to the port.  `earliest_start` lets a cut-through
  /// router forbid transmission before the header has actually arrived.
  void enqueue(PacketPtr packet, TxMeta meta, sim::Time earliest_start = 0);

  /// Hands a packet to the port bypassing the fault hook — the re-injection
  /// path for delayed/duplicated packets, which must not be perturbed a
  /// second time.
  void enqueue_unfiltered(PacketPtr packet, TxMeta meta,
                          sim::Time earliest_start = 0);

  /// One ready-to-transmit packet of a burst handoff.
  struct BurstItem {
    PacketPtr packet;
    TxMeta meta;
    sim::Time earliest_start = 0;
  };

  /// Hands a whole burst to the port, in order.  Semantically a loop over
  /// enqueue() — deliberately so: per-item fault hooks, blocked-packet
  /// policy and transmission starts must behave exactly as if the packets
  /// had been handed over one by one (the first item may start
  /// transmitting before the second is examined, which a deferred design
  /// would get wrong).  The burst form exists so batched callers cross the
  /// port boundary once per burst.
  void enqueue_burst(std::span<BurstItem> burst);

  /// Bounds the queue in bytes (the paper's "output buffer space").
  /// Unlimited by default.
  void set_buffer_limit(std::size_t bytes);

  /// Link failure injection: a down link drops everything handed to it and
  /// aborts the transmission in progress.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] bool busy() const { return transmitting_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Node* peer() const { return peer_; }
  [[nodiscard]] int peer_in_port() const { return peer_in_port_; }

  /// Queue introspection — congestion control reads the source routes of
  /// waiting packets to identify upstream feeders (paper §2.2).
  [[nodiscard]] const std::deque<Queued>& queue() const { return queue_; }
  [[nodiscard]] std::size_t queue_bytes() const { return queue_bytes_; }
  [[nodiscard]] std::size_t queue_packets() const { return queue_.size(); }

  /// Fault-injection hook; empty (one untaken branch) in normal operation.
  FaultHook fault_hook;

  /// Alternative to dropping on buffer exhaustion (the paper's Blazenet-
  /// style deferral: "looping it back to a previous node ... or entering
  /// it into a local delay line").  Return true if the packet was taken;
  /// false falls through to the normal drop.
  std::function<bool(PacketPtr, TxMeta)> overflow_handler;

  /// Observation hooks for the congestion controller / stats collectors.
  /// Called after a packet is accepted, and after each departure.
  std::function<void(const Packet&)> on_enqueue;
  std::function<void(const Packet&)> on_depart;
  /// Called when the queue length changes (for time-weighted averages).
  std::function<void(sim::Time, std::size_t queued_packets)> on_queue_change;

  /// Serialization time of @p bytes on this link.
  [[nodiscard]] sim::Time tx_time(std::size_t bytes) const {
    return sim::byte_time(bytes, config_.rate_bps);
  }

  /// Wires this port to an observability sink: a `port.<name>.queue_depth`
  /// gauge and a `port.<name>.queue_wait_ps` histogram in the registry,
  /// plus a kTx span per traced-packet transmission in the recorder.  The
  /// metric handles are resolved once here; with no observer every data
  /// path pays exactly one untaken branch.
  void set_observer(const obs::Observer& observer);

 private:
  void try_start(sim::Time not_before);
  void start_transmission(Queued item, sim::Time start);
  void complete_transmission();
  void abort_transmission();
  void insert_by_rank(Queued item);
  void notify_queue_change();

  sim::Simulator& sim_;
  std::string name_;
  LinkConfig config_;
  Node* peer_ = nullptr;
  int peer_in_port_ = 0;
  bool up_ = true;

  std::deque<Queued> queue_;
  std::size_t queue_bytes_ = 0;
  std::size_t buffer_limit_ = std::numeric_limits<std::size_t>::max();

  // Observability handles, resolved once by set_observer(); null = off.
  stats::Gauge* obs_queue_depth_ = nullptr;
  stats::Histogram* obs_queue_wait_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;

  bool transmitting_ = false;
  Queued current_;
  sim::Time current_start_ = 0;
  sim::Time current_end_ = 0;
  sim::EventId completion_event_ = 0;
  sim::EventId wakeup_event_ = 0;

  Stats stats_;
};

}  // namespace srp::net
