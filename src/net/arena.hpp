// Slab-reusing packet arena: the allocation backbone of the batched data
// plane (DESIGN.md §11).
//
// The per-packet forward path pays one heap-backed Writer buffer plus a
// make_shared per derived packet.  The arena replaces both: it owns a
// bounded pool of Packet slabs and recycles a slab the moment the pool is
// its *only* owner (use_count() == 1).  Everything that still needs a
// packet — an output queue, an in-flight transmission, a fault lane
// holding a duplicate, a downstream derive's parent chain — holds a
// PacketPtr reference and thereby blocks recycling, so a slab can never be
// reused while any byte of it is observable.  The sim is single-threaded,
// which makes use_count() an exact, deterministic liveness oracle.
//
// A recycled slab keeps its wire::Bytes capacity, so steady-state
// acquire()+append runs with zero allocations (pinned by
// tests/alloc_budget_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "check/analysis.hpp"
#include "net/packet.hpp"

namespace srp::net {

class PacketArena {
 public:
  struct Stats {
    std::uint64_t acquired = 0;   ///< total acquire() calls
    std::uint64_t recycled = 0;   ///< served by reusing a free slab
    std::uint64_t fresh = 0;      ///< served by a new heap allocation
    std::uint64_t scan_steps = 0; ///< pool slots inspected across acquires
  };

  explicit PacketArena(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// A packet slab with empty (capacity-preserving) bytes and zeroed
  /// side-band, ready to be filled as a derived image.  Recycles a free
  /// slab when one exists; falls back to a fresh allocation otherwise.
  PacketPtr acquire();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pooled() const { return pool_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  /// Scrubs a slab for reuse.  Only called when the pool is the sole
  /// owner, so no holder can observe the reset.
  static void reset_slab(Packet& p);

  std::vector<PacketPtr> pool_;  ///< every slab ever pooled (≤ capacity_)
  std::size_t cursor_ = 0;       ///< rotating scan start
  std::size_t capacity_;
  Stats stats_;
};

}  // namespace srp::net
