// The directory as a networked service (paper §3).
//
// "The directory servers, as users of the internetwork themselves, can
// also observe load and failures as part of their normal operation."  And
// footnote 10: "Acquiring a route requires a full round trip to the region
// server for the destination.  Thus, without caching, the time to acquire
// the route incurs a similar round trip delay to that incurred by circuit
// setup in a circuit-switched network."
//
// DirectoryServerNode exposes a Directory over VMTP on a host attached to
// the internetwork; RemoteDirectoryClient issues route queries as
// transactions, given only a bootstrap route to its region server.  The
// query/response wire formats are defined here.
#pragma once

#include <functional>
#include <set>
#include <memory>
#include <string>

#include "directory/directory.hpp"
#include "transport/vmtp.hpp"

namespace srp::dir {

/// Well-known transport entity id of a region's directory server.
inline constexpr std::uint64_t kDirectoryEntity = 0xD14EC7041ULL;

/// Serialized route query: requester topology id + name + options.
wire::Bytes encode_route_query(std::uint32_t from_node,
                               std::string_view name,
                               const QueryOptions& options);

struct DecodedQuery {
  std::uint32_t from_node = 0;
  std::string name;
  QueryOptions options;
};
std::optional<DecodedQuery> decode_route_query(
    std::span<const std::uint8_t> bytes);

/// Serialized query result (routes with attributes and tokens).
wire::Bytes encode_issued_routes(const std::vector<IssuedRoute>& routes);
std::optional<std::vector<IssuedRoute>> decode_issued_routes(
    std::span<const std::uint8_t> bytes);

/// Referral: "ask that server instead" — the route (from the requester)
/// to the next region server and its transport entity.
struct Referral {
  IssuedRoute server_route;
  std::uint64_t server_entity = 0;
};
wire::Bytes encode_referral(const Referral& referral);

/// A query response is either routes or a referral.
struct QueryResponse {
  std::vector<IssuedRoute> routes;
  std::optional<Referral> referral;
};
std::optional<QueryResponse> decode_query_response(
    std::span<const std::uint8_t> bytes);

/// Serves a Directory over VMTP from @p host.
///
/// By default the server answers every name (a root/global server).  With
/// serve_regions() it owns only those naming regions and *refers* other
/// queries to the named peer server ("each server is responsible for
/// maintaining the routing information for immediately higher layer
/// servers and lower level servers within the same region") — the
/// topology database is shared infrastructure, the name space is
/// partitioned.
class DirectoryServerNode {
 public:
  DirectoryServerNode(sim::Simulator& sim, viper::ViperHost& host,
                      Directory& directory,
                      std::uint64_t entity = kDirectoryEntity);

  /// Restricts this server to @p regions; out-of-scope queries are
  /// referred to the server on @p peer_fqdn (entity @p peer_entity).
  void serve_regions(std::set<std::uint32_t> regions, std::string peer_fqdn,
                     std::uint64_t peer_entity);

  [[nodiscard]] std::uint64_t queries_served() const {
    return queries_served_;
  }
  [[nodiscard]] std::uint64_t referrals_issued() const {
    return referrals_issued_;
  }

 private:
  Directory& directory_;
  vmtp::VmtpEndpoint endpoint_;
  std::optional<std::set<std::uint32_t>> scope_;
  std::string peer_fqdn_;
  std::uint64_t peer_entity_ = 0;
  std::uint64_t queries_served_ = 0;
  std::uint64_t referrals_issued_ = 0;
};

/// Issues route queries over the internetwork.  Needs only a bootstrap
/// route to the region server (statically configured, like a resolver
/// address) and this host's topology id.
class RemoteDirectoryClient {
 public:
  using QueryCallback =
      std::function<void(std::vector<IssuedRoute> routes, sim::Time rtt)>;

  RemoteDirectoryClient(sim::Simulator& sim, viper::ViperHost& host,
                        std::uint32_t self_node, IssuedRoute server_route,
                        std::uint64_t client_entity,
                        std::uint64_t server_entity = kDirectoryEntity);

  /// Asks the server for routes to @p name, following referrals between
  /// region servers (bounded depth); empty vector = failure.  The RTT
  /// reported to the callback is the total across all servers visited.
  void query(const std::string& name, QueryOptions options,
             QueryCallback callback);

  [[nodiscard]] std::uint64_t referrals_followed() const {
    return referrals_followed_;
  }

  [[nodiscard]] const vmtp::VmtpEndpoint::Stats& transport_stats() const {
    return endpoint_.stats();
  }

 private:
  void query_at(const IssuedRoute& server_route,
                std::uint64_t server_entity, const std::string& name,
                QueryOptions options, int depth, sim::Time rtt_so_far,
                QueryCallback callback);

  std::uint32_t self_node_;
  IssuedRoute server_route_;
  std::uint64_t server_entity_;
  vmtp::VmtpEndpoint endpoint_;
  std::uint64_t referrals_followed_ = 0;
};

}  // namespace srp::dir
