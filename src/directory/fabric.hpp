// Experiment fabric: builds a simulated Sirpent internetwork and its
// directory database in lockstep.
//
// Every wiring operation creates both the simulated entities (hosts,
// routers, LAN segments, ports) and the matching TopologyDb records, so
// the VIPER port numbers the directory puts into source routes always
// match the ports that exist on the simulated routers.  Tests, examples
// and benches all build their internetworks through this class.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "congestion/controller.hpp"
#include "congestion/throttle.hpp"
#include "health/monitor.hpp"
#include "directory/client.hpp"
#include "directory/directory.hpp"
#include "directory/topology.hpp"
#include "net/lan.hpp"
#include "net/network.hpp"
#include "tokens/cache.hpp"
#include "tokens/token.hpp"
#include "viper/host.hpp"
#include "viper/router.hpp"

namespace srp::dir {

/// Parameters shared by the simulated link and its topology record.
struct LinkParams {
  double rate_bps = 1e9;
  sim::Time prop_delay = 10 * sim::kMicrosecond;
  std::size_t mtu = viper::kViperMtu;
  double cost = 1.0;
  std::uint8_t security = 0;
};

/// In-band path telemetry knobs (Fabric::enable_path_telemetry).
struct PathTelemetryConfig {
  std::uint64_t seed = 0x1A7;       ///< marker phase seed
  std::uint32_t sample_period = 1;  ///< mark 1-in-N sends (1 = all)
  obs::PathCollectorConfig collector;
};

class Fabric {
 public:
  explicit Fabric(sim::Simulator& sim);

  // --- construction ---

  /// Adds a host and registers @p fqdn in the directory.
  viper::ViperHost& add_host(const std::string& fqdn,
                             std::uint32_t region = 0);

  /// Adds a router; its VIPER router id is its topology node id.
  viper::ViperRouter& add_router(const std::string& name,
                                 viper::RouterConfig config = {});

  /// Duplex point-to-point link, in both the simulation and the topology.
  void connect(net::PortedNode& a, net::PortedNode& b,
               LinkParams params = {});

  /// Creates a multi-access segment.  Stations attach with attach_lan();
  /// finish with mesh_lan() to create the pairwise topology links.
  net::LanSegment& add_lan(const std::string& name, LinkParams params = {});
  net::MacAddr attach_lan(net::LanSegment& lan, net::PortedNode& station);
  void mesh_lan(net::LanSegment& lan);

  // --- behaviour toggles ---

  /// Mints per-hop tokens on every issued route and (optionally) turns on
  /// enforcement at every router.
  void enable_tokens(std::uint64_t secret, bool enforce,
                     tokens::UncachedPolicy policy =
                         tokens::UncachedPolicy::kOptimistic,
                     sim::Time verify_delay = 50 * sim::kMicrosecond);

  /// Attaches a CongestionController to every router (monitoring every
  /// port) and a SourceThrottle to every host.
  void enable_congestion_control(cc::ControllerConfig config = {});

  /// Periodic utilization reports from every router link into the
  /// directory's topology database (paper §3: "routing information is
  /// updated by reports from routers, hosts and networking monitors"),
  /// feeding the load-aware route metric.
  void enable_load_reporting(sim::Time interval = 10 * sim::kMillisecond);

  /// Wires every router, host and congestion controller built so far to
  /// @p observer (metrics, tracing, or both).  Call after the topology is
  /// complete — components added later are not wired retroactively.
  void enable_observability(const obs::Observer& observer);

  /// Switches every router built so far to the batched (arena-backed)
  /// forward path and every host to the in-place trailer reversal pass.
  /// Like enable_observability, not retroactive for later components.
  void enable_batching(viper::ViperRouter::BatchConfig config = {});

  /// Turns on in-band path telemetry: every router built so far stamps
  /// obs::HopTelemetry records onto telemetry-marked packets, every host
  /// marks 1-in-`sample_period` sends and feeds marked deliveries into a
  /// fabric-owned obs::PathCollector wired to the current observer()
  /// sinks (call enable_observability first for metrics/spans).  Like
  /// enable_observability, not retroactive for later components.
  obs::PathCollector& enable_path_telemetry(PathTelemetryConfig config = {});

  /// The collector built by enable_path_telemetry(); null before it.
  [[nodiscard]] obs::PathCollector* path_collector() {
    return collector_.get();
  }

  /// Turns on the health plane: a fabric-owned health::HealthMonitor
  /// watching every router port built so far, reading the observer()
  /// registry (call enable_observability first), corroborating root
  /// causes through the path collector and flow plane when present, and
  /// ticking once per config window.  Like enable_observability, not
  /// retroactive for later components.
  health::HealthMonitor& enable_health(health::HealthConfig config = {});

  /// The monitor built by enable_health(); null before it.
  [[nodiscard]] health::HealthMonitor* health_monitor() {
    return monitor_.get();
  }

  // --- failure injection (simulation + directory advisories together) ---
  void fail_link(net::PortedNode& a, net::PortedNode& b);
  void restore_link(net::PortedNode& a, net::PortedNode& b);
  /// Same, but without telling the directory (silent failure: clients must
  /// detect it end-to-end).
  void fail_link_silently(net::PortedNode& a, net::PortedNode& b);

  // --- access ---
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] TopologyDb& topology() { return topo_; }
  [[nodiscard]] Directory& directory() { return *directory_; }
  [[nodiscard]] tokens::Ledger& ledger() { return ledger_; }
  /// The domain's token authority; nullptr before enable_tokens().
  [[nodiscard]] const tokens::TokenAuthority* authority() const {
    return authority_.has_value() ? &*authority_ : nullptr;
  }
  [[nodiscard]] std::uint32_t id_of(const net::Node& node) const;
  [[nodiscard]] cc::SourceThrottle* throttle_of(const viper::ViperHost& h);
  [[nodiscard]] cc::CongestionController* controller_of(
      const viper::ViperRouter& r);
  [[nodiscard]] const std::vector<viper::ViperRouter*>& routers() const {
    return routers_;
  }
  [[nodiscard]] const std::vector<viper::ViperHost*>& hosts() const {
    return hosts_;
  }
  /// The observer last passed to enable_observability() (all-null sinks
  /// before the first call) — what obs::Introspector snapshots against.
  [[nodiscard]] const obs::Observer& observer() const { return observer_; }

  /// A RouteCache for @p host (owned by the fabric).
  RouteCache& route_cache(viper::ViperHost& host,
                          RouteCacheConfig config = {});

 private:
  struct LinkRecord {
    net::PortedNode* a = nullptr;
    net::PortedNode* b = nullptr;
    int port_a = 0;
    int port_b = 0;
  };
  struct LanAttachment {
    net::PortedNode* node = nullptr;
    std::uint32_t topo_id = 0;
    int station_port = 0;
    net::MacAddr mac;
  };
  struct LanRecord {
    net::LanSegment* segment = nullptr;
    LinkParams params;
    std::vector<LanAttachment> stations;
  };

  void set_lan_kind(net::PortedNode& node, int port_index);
  LinkRecord* find_link(const net::Node& a, const net::Node& b);
  void set_link_state(net::PortedNode& a, net::PortedNode& b, bool up,
                      bool tell_directory);

  sim::Simulator& sim_;
  net::Network net_;
  TopologyDb topo_;
  std::optional<tokens::TokenAuthority> authority_;
  tokens::Ledger ledger_;
  std::unique_ptr<Directory> directory_;

  std::map<const net::Node*, std::uint32_t> ids_;
  std::vector<LinkRecord> link_records_;
  std::map<const net::LanSegment*, LanRecord> lans_;
  std::vector<viper::ViperRouter*> routers_;
  std::vector<viper::ViperHost*> hosts_;
  std::vector<std::unique_ptr<cc::CongestionController>> controllers_;
  std::map<const viper::ViperHost*, std::unique_ptr<cc::SourceThrottle>>
      throttles_;
  std::map<const viper::ViperHost*, std::unique_ptr<RouteCache>> caches_;
  std::uint16_t next_mac_index_ = 1;
  obs::Observer observer_;  ///< last enable_observability() argument
  std::unique_ptr<obs::PathCollector> collector_;  ///< enable_path_telemetry
  std::unique_ptr<health::HealthMonitor> monitor_;  ///< enable_health
};

}  // namespace srp::dir
