#include "directory/topology.hpp"

namespace srp::dir {

std::uint32_t TopologyDb::add_node(NodeType type, std::string name) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(TopoNode{id, type, std::move(name)});
  adjacency_.emplace_back();
  return id;
}

std::size_t TopologyDb::add_link(TopoLink link) {
  if (link.from >= nodes_.size() || link.to >= nodes_.size()) {
    throw std::out_of_range("TopologyDb::add_link: unknown node");
  }
  const std::size_t index = links_.size();
  adjacency_[link.from].push_back(index);
  links_.push_back(link);
  return index;
}

void TopologyDb::add_duplex(std::uint32_t a, std::uint32_t b,
                            std::uint8_t port_at_a, std::uint8_t port_at_b,
                            const TopoLink& params) {
  TopoLink forward = params;
  forward.from = a;
  forward.to = b;
  forward.from_port = port_at_a;
  add_link(forward);

  TopoLink backward = params;
  backward.from = b;
  backward.to = a;
  backward.from_port = port_at_b;
  if (params.lan) {
    backward.from_mac = params.to_mac;
    backward.to_mac = params.from_mac;
  }
  add_link(backward);
}

const TopoNode& TopologyDb::node(std::uint32_t id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("TopologyDb::node: unknown id");
  }
  return nodes_[id];
}

const std::vector<std::size_t>& TopologyDb::out_links(
    std::uint32_t node_id) const {
  if (node_id >= adjacency_.size()) {
    throw std::out_of_range("TopologyDb::out_links: unknown id");
  }
  return adjacency_[node_id];
}

void TopologyDb::set_link_up(std::uint32_t from, std::uint32_t to, bool up) {
  if (TopoLink* l = find_link(from, to)) l->up = up;
}

void TopologyDb::set_link_load(std::uint32_t from, std::uint32_t to,
                               double load) {
  if (TopoLink* l = find_link(from, to)) l->load = load;
}

TopoLink* TopologyDb::find_link(std::uint32_t from, std::uint32_t to) {
  if (from >= adjacency_.size()) return nullptr;
  for (std::size_t index : adjacency_[from]) {
    if (links_[index].to == to) return &links_[index];
  }
  return nullptr;
}

}  // namespace srp::dir
