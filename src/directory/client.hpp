// Client-side route cache and reselection (paper §3, §6.3).
//
// "Clients can request multiple routes (rather than a single route) to the
// desired host or service, and switch between these routes based on the
// performance of the different routes.  Because the client knows the base
// round trip time for the route, measures the actual round trip time ...
// it is able to quickly detect and react to congestion and link failures."
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "check/sync.hpp"
#include "directory/directory.hpp"
#include "sim/simulator.hpp"

namespace srp::dir {

struct RouteCacheConfig {
  sim::Time ttl = sim::kSecond;        ///< cache lifetime of a query result
  double rtt_degraded_factor = 3.0;    ///< measured/base RTT ratio => switch
  int degraded_threshold = 3;          ///< consecutive degraded RTTs
  std::size_t routes_per_query = 3;    ///< alternatives requested
};

/// Capability-annotated monitor: cache state is SRP_GUARDED_BY an internal
/// mutex and route_to() hands out value snapshots, so transport worker
/// threads may consult cached routes and report RTTs concurrently.  The
/// *miss* path still calls into the Directory and the simulator clock,
/// which stay sim-thread-only — concurrent callers must therefore only hit
/// warm entries (report_* and base_rtt are always safe; they never fetch).
class RouteCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t queries = 0;
    std::uint64_t switches = 0;    ///< moved to an alternate route
    std::uint64_t refreshes = 0;   ///< had to re-query the directory
  };

  RouteCache(sim::Simulator& sim, Directory& directory,
             std::uint32_t self_node, RouteCacheConfig config = {});

  /// Preferred route to @p name, fetching / refreshing as needed.
  /// Returns a snapshot; nullopt when the name is unknown or unreachable.
  std::optional<IssuedRoute> route_to(const std::string& name,
                                      QueryOptions options = {})
      SRP_EXCLUDES(mutex_);

  /// Transport reports a hard failure (timeout) on the current route:
  /// switch to the next alternate, or re-query when exhausted.
  void report_failure(const std::string& name) SRP_EXCLUDES(mutex_);

  /// Transport reports a measured round trip; sustained inflation over the
  /// route's base RTT triggers a switch (congestion avoidance).
  void report_rtt(const std::string& name, sim::Time rtt)
      SRP_EXCLUDES(mutex_);

  /// Base round-trip time of the current route: twice the one-way
  /// propagation the directory advertised (the client "knows the base
  /// round trip time for the route").
  [[nodiscard]] sim::Time base_rtt(const std::string& name) const
      SRP_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const SRP_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::vector<IssuedRoute> routes;
    std::size_t active = 0;
    sim::Time fetched_at = 0;
    int degraded_count = 0;
    QueryOptions options;
  };

  Entry* fetch(const std::string& name, QueryOptions options)
      SRP_REQUIRES(mutex_);

  sim::Simulator& sim_;
  Directory& directory_;
  std::uint32_t self_node_;
  RouteCacheConfig config_;
  mutable srp::Mutex mutex_;
  std::map<std::string, Entry> entries_ SRP_GUARDED_BY(mutex_);
  Stats stats_ SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::dir
