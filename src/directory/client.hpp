// Client-side route cache and reselection (paper §3, §6.3).
//
// "Clients can request multiple routes (rather than a single route) to the
// desired host or service, and switch between these routes based on the
// performance of the different routes.  Because the client knows the base
// round trip time for the route, measures the actual round trip time ...
// it is able to quickly detect and react to congestion and link failures."
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "directory/directory.hpp"
#include "sim/simulator.hpp"

namespace srp::dir {

struct RouteCacheConfig {
  sim::Time ttl = sim::kSecond;        ///< cache lifetime of a query result
  double rtt_degraded_factor = 3.0;    ///< measured/base RTT ratio => switch
  int degraded_threshold = 3;          ///< consecutive degraded RTTs
  std::size_t routes_per_query = 3;    ///< alternatives requested
};

class RouteCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t queries = 0;
    std::uint64_t switches = 0;    ///< moved to an alternate route
    std::uint64_t refreshes = 0;   ///< had to re-query the directory
  };

  RouteCache(sim::Simulator& sim, Directory& directory,
             std::uint32_t self_node, RouteCacheConfig config = {});

  /// Preferred route to @p name, fetching / refreshing as needed.
  /// Returns nullptr when the name is unknown or unreachable.
  const IssuedRoute* route_to(const std::string& name,
                              QueryOptions options = {});

  /// Transport reports a hard failure (timeout) on the current route:
  /// switch to the next alternate, or re-query when exhausted.
  void report_failure(const std::string& name);

  /// Transport reports a measured round trip; sustained inflation over the
  /// route's base RTT triggers a switch (congestion avoidance).
  void report_rtt(const std::string& name, sim::Time rtt);

  /// Base round-trip time of the current route: twice the one-way
  /// propagation the directory advertised (the client "knows the base
  /// round trip time for the route").
  [[nodiscard]] sim::Time base_rtt(const std::string& name) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::vector<IssuedRoute> routes;
    std::size_t active = 0;
    sim::Time fetched_at = 0;
    int degraded_count = 0;
    QueryOptions options;
  };

  Entry* fetch(const std::string& name, QueryOptions options);

  sim::Simulator& sim_;
  Directory& directory_;
  std::uint32_t self_node_;
  RouteCacheConfig config_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace srp::dir
