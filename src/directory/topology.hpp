// Internetwork topology database (paper §3).
//
// "Routing information is updated by reports from routers, hosts and
// networking monitors.  The directory servers ... can also observe load
// and failures as part of their normal operation."  The database holds the
// graph the directory computes routes over: nodes (routers/hosts) and
// directed links annotated with the attributes the paper's directory
// returns to clients — bandwidth, propagation delay, MTU, cost and
// security — plus liveness and advisory load.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/ethernet.hpp"
#include "sim/time.hpp"

namespace srp::dir {

enum class NodeType : std::uint8_t { kRouter, kHost };

struct TopoNode {
  std::uint32_t id = 0;
  NodeType type = NodeType::kRouter;
  std::string name;  ///< informational; FQDN binding lives in Directory
};

struct TopoLink {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  /// VIPER output port (or logical port id) at `from` leading to `to`.
  std::uint8_t from_port = 0;

  double bandwidth_bps = 1e9;
  sim::Time prop_delay = sim::kMicrosecond;
  std::size_t mtu = 1500;
  double cost = 1.0;          ///< administrative / monetary cost
  std::uint8_t security = 0;  ///< higher = more trusted path
  bool up = true;
  double load = 0.0;          ///< advisory utilization in [0, 1]

  /// Link-layer addressing when this hop crosses a multi-access network.
  bool lan = false;
  net::MacAddr from_mac;  ///< sender's MAC on the shared network
  net::MacAddr to_mac;    ///< next recipient's MAC
};

class TopologyDb {
 public:
  std::uint32_t add_node(NodeType type, std::string name);

  /// Adds a directed link; returns its index.
  std::size_t add_link(TopoLink link);

  /// Convenience: adds both directions of a symmetric link.
  /// @p port_at_from / @p port_at_to are the VIPER ports on each side.
  void add_duplex(std::uint32_t a, std::uint32_t b, std::uint8_t port_at_a,
                  std::uint8_t port_at_b, const TopoLink& params);

  [[nodiscard]] const TopoNode& node(std::uint32_t id) const;
  [[nodiscard]] const std::vector<TopoLink>& links() const { return links_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Outgoing links of @p node_id (indices into links()).
  [[nodiscard]] const std::vector<std::size_t>& out_links(
      std::uint32_t node_id) const;

  /// Monitoring reports (paper §3 / §6.3).
  void set_link_up(std::uint32_t from, std::uint32_t to, bool up);
  void set_link_load(std::uint32_t from, std::uint32_t to, double load);

  [[nodiscard]] TopoLink* find_link(std::uint32_t from, std::uint32_t to);

 private:
  std::vector<TopoNode> nodes_;
  std::vector<TopoLink> links_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace srp::dir
