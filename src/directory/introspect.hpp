// Live fabric introspection: a queryable diagnostics snapshot.
//
// An Introspector turns the current state of a dir::Fabric — per-router
// forwarding stats, per-port queue gauges, token-cache occupancy,
// congestion rate-limit soft state, the flow plane's heavy hitters and
// per-account roll-ups against the ledger — into one deterministic,
// name-sorted JSON document.  It reads only state the components already
// keep; taking a snapshot never perturbs the simulation schedule.
#pragma once

#include <cstddef>
#include <string>

#include "directory/fabric.hpp"
#include "flow/plane.hpp"

namespace srp::obs {

class Introspector {
 public:
  /// @p plane may be null (no flow accounting: the snapshot then omits the
  /// flows / accounts sections).  @p top_k bounds the heavy-hitter lists.
  explicit Introspector(dir::Fabric& fabric,
                        const flow::FlowPlane* plane = nullptr,
                        std::size_t top_k = 8)
      : fabric_(fabric), plane_(plane), top_k_(top_k) {}

  /// The whole-fabric diagnostics document at simulated time @p now.
  /// Deterministic: routers and hosts in fabric construction order carry
  /// their names, every map is key-sorted, flows are in FlowTable::top()
  /// order.
  [[nodiscard]] std::string snapshot_json(sim::Time now);

 private:
  dir::Fabric& fabric_;
  const flow::FlowPlane* plane_;
  const std::size_t top_k_;
};

}  // namespace srp::obs
