#include "directory/introspect.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "flow/export.hpp"

namespace srp::obs {
namespace {

void append_fmt(std::string& out, const char* fmt, auto... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

void append_flow_record(std::string& out, const flow::FlowRecord& r) {
  append_fmt(out,
             "{\"route\":\"%016" PRIx64 "\",\"account\":%" PRIu32
             ",\"tos\":%u,\"packets\":%" PRIu64 ",\"bytes\":%" PRIu64
             ",\"error_bytes\":%" PRIu64 ",\"cut_through\":%" PRIu64
             ",\"store_forward\":%" PRIu64 ",\"in_port\":%u,\"out_port\":%u}",
             r.key.route_digest, r.key.account, r.key.tos_class, r.packets,
             r.bytes, r.error_bytes, r.cut_through, r.store_forward,
             r.last_in_port, r.last_out_port);
}

template <typename T>
std::vector<T*> by_name(const std::vector<T*>& nodes) {
  std::vector<T*> sorted = nodes;
  std::sort(sorted.begin(), sorted.end(),
            [](const T* a, const T* b) { return a->name() < b->name(); });
  return sorted;
}

}  // namespace

std::string Introspector::snapshot_json(sim::Time now) {
  std::string out;
  append_fmt(out, "{\"time_ps\":%" PRId64, now);

  out += ",\"routers\":{";
  bool first = true;
  for (viper::ViperRouter* router : by_name(fabric_.routers())) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += router->name();
    out += "\":{";

    const auto& s = router->stats();
    append_fmt(out,
               "\"stats\":{\"received\":%" PRIu64 ",\"forwarded\":%" PRIu64
               ",\"dropped_no_port\":%" PRIu64
               ",\"dropped_unauthorized\":%" PRIu64
               ",\"truncated\":%" PRIu64 "}",
               s.received, s.forwarded, s.dropped_no_port,
               s.dropped_unauthorized, s.truncated_forwards);
    append_fmt(out, ",\"token_cache_entries\":%zu",
               router->token_cache().size());

    out += ",\"ports\":{";
    for (int p = 1; p <= router->port_count(); ++p) {
      const net::TxPort& port = router->port(p);
      if (p > 1) out += ",";
      append_fmt(out,
                 "\"%d\":{\"queue_packets\":%zu,\"queue_bytes\":%zu"
                 ",\"up\":%s,\"busy\":%s}",
                 p, port.queue_packets(), port.queue_bytes(),
                 port.is_up() ? "true" : "false",
                 port.busy() ? "true" : "false");
    }
    out += "}";

    if (cc::CongestionController* cc = fabric_.controller_of(*router)) {
      out += ",\"congestion\":[";
      bool first_flow = true;
      for (const auto& f : cc->flow_snapshots()) {
        if (!first_flow) out += ",";
        first_flow = false;
        append_fmt(out,
                   "{\"toward_router\":%" PRIu32 ",\"toward_port\":%u"
                   ",\"rate_bps\":%.1f,\"held_packets\":%zu"
                   ",\"held_bytes\":%zu,\"expires_ps\":%" PRId64 "}",
                   f.key.router_id, f.key.port, f.rate_bps, f.held_packets,
                   f.held_bytes, f.expires);
      }
      out += "]";
    }

    if (plane_ != nullptr) {
      if (const flow::FlowObserver* obs = plane_->observer(router->name())) {
        append_fmt(out, ",\"sampled\":%" PRIu64, obs->sampled());
        out += ",\"flows\":[";
        bool first_flow = true;
        for (const auto& record : obs->table().top(top_k_)) {
          if (!first_flow) out += ",";
          first_flow = false;
          append_flow_record(out, record);
        }
        out += "]";
      }
    }
    out += "}";
  }
  out += "}";

  out += ",\"hosts\":{";
  first = true;
  for (viper::ViperHost* host : by_name(fabric_.hosts())) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += host->name();
    append_fmt(out,
               "\":{\"sent\":%" PRIu64 ",\"delivered\":%" PRIu64
               ",\"truncated\":%" PRIu64 "}",
               host->stats().sent, host->stats().delivered,
               host->stats().truncated_received);
  }
  out += "}";

  // Per-account reconciliation view: the flow plane's charge mirror next
  // to the authoritative ledger — equal by construction when every charging
  // router publishes into the plane.
  out += ",\"accounts\":{";
  const auto ledger = fabric_.ledger().all();
  const auto mirrored = plane_ != nullptr
                            ? plane_->account_rollup()
                            : std::map<std::uint32_t, flow::AccountCharge>{};
  first = true;
  for (const auto& [account, usage] : ledger) {
    if (!first) out += ",";
    first = false;
    const auto it = mirrored.find(account);
    const flow::AccountCharge charge =
        it != mirrored.end() ? it->second : flow::AccountCharge{};
    append_fmt(out,
               "\"%" PRIu32 "\":{\"ledger_packets\":%" PRIu64
               ",\"ledger_bytes\":%" PRIu64 ",\"flow_packets\":%" PRIu64
               ",\"flow_bytes\":%" PRIu64 "}",
               account, usage.packets, usage.bytes, charge.packets,
               charge.bytes);
  }
  out += "}}";
  return out;
}

}  // namespace srp::obs
