#include "directory/client.hpp"

namespace srp::dir {

RouteCache::RouteCache(sim::Simulator& sim, Directory& directory,
                       std::uint32_t self_node, RouteCacheConfig config)
    : sim_(sim), directory_(directory), self_node_(self_node),
      config_(config) {}

RouteCache::Entry* RouteCache::fetch(const std::string& name,
                                     QueryOptions options) {
  options.constraints.count =
      std::max(options.constraints.count, config_.routes_per_query);
  auto routes = directory_.query(self_node_, name, options);
  ++stats_.queries;
  if (routes.empty()) {
    entries_.erase(name);
    return nullptr;
  }
  Entry& e = entries_[name];
  e.routes = std::move(routes);
  e.active = 0;
  e.fetched_at = sim_.now();
  e.degraded_count = 0;
  e.options = options;
  return &e;
}

std::optional<IssuedRoute> RouteCache::route_to(const std::string& name,
                                                QueryOptions options) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() ||
      sim_.now() - it->second.fetched_at > config_.ttl) {
    Entry* e = fetch(name, options);
    if (e == nullptr) return std::nullopt;
    return e->routes[e->active];
  }
  ++stats_.hits;
  Entry& e = it->second;
  return e.routes[e.active];
}

void RouteCache::report_failure(const std::string& name) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.active + 1 < e.routes.size()) {
    ++e.active;
    e.degraded_count = 0;
    ++stats_.switches;
    return;
  }
  // All alternates exhausted: ask the directory again (it may have fresher
  // liveness advisories by now).
  ++stats_.refreshes;
  fetch(name, e.options);
}

void RouteCache::report_rtt(const std::string& name, sim::Time rtt) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  const sim::Time base = 2 * e.routes[e.active].propagation_delay;
  if (base > 0 &&
      static_cast<double>(rtt) >
          config_.rtt_degraded_factor * static_cast<double>(base)) {
    if (++e.degraded_count >= config_.degraded_threshold) {
      e.degraded_count = 0;
      if (e.routes.size() > 1) {
        e.active = (e.active + 1) % e.routes.size();
        ++stats_.switches;
      }
    }
  } else {
    e.degraded_count = 0;
  }
}

sim::Time RouteCache::base_rtt(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  return 2 * it->second.routes[it->second.active].propagation_delay;
}

RouteCache::Stats RouteCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace srp::dir
