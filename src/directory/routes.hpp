// Route computation over the topology database (paper §3).
//
// "A client can request and receive multiple routes to a service.  It can
// also request a route with particular properties, such as low delay, high
// bandwidth, low cost and security."  Implemented as constrained Dijkstra
// for the best route plus Yen's algorithm for k alternatives; policy
// constraints (security floor, bandwidth floor, avoiding down links) are
// edge filters, following Clark's policy-routing framing the paper builds
// on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/segment.hpp"
#include "directory/topology.hpp"
#include "net/ethernet.hpp"

namespace srp::dir {

/// Optimization objective for a route request.
enum class RouteMetric : std::uint8_t {
  kDelay,      ///< minimize propagation delay
  kCost,       ///< minimize administrative cost
  kHops,       ///< minimize router count
  kLoadAware,  ///< delay scaled by advisory load
};

/// Client requirements (paper §3's "route with particular properties").
struct RouteQuery {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  RouteMetric metric = RouteMetric::kDelay;
  std::uint8_t min_security = 0;   ///< exclude links below this level
  double min_bandwidth_bps = 0.0;  ///< exclude slower links
  std::size_t count = 1;           ///< number of (disjoint-ish) routes
  bool include_down_links = false;
};

/// One computed path with the attributes the directory reports so the
/// client "can determine (up to variations in queuing delay) the roundtrip
/// time and MTU for packets on this route" (paper §3).
struct ComputedRoute {
  std::vector<std::size_t> link_indices;  ///< into TopologyDb::links()
  sim::Time propagation_delay = 0;        ///< one-way, sum of links
  double bottleneck_bps = 0.0;
  std::size_t mtu = 0;                    ///< minimum along the path
  double cost = 0.0;
  std::uint8_t security_floor = 255;
  std::size_t hops = 0;                   ///< routers traversed
};

/// Computes up to query.count routes, best first.  Empty when unreachable.
std::vector<ComputedRoute> compute_routes(const TopologyDb& topo,
                                          const RouteQuery& query);

/// A route as handed to a client: the VIPER source route (ending in a
/// local-delivery segment), the initial link header when the first hop
/// crosses a LAN, and the advertised attributes.
struct IssuedRoute {
  core::SourceRoute route;
  std::optional<net::EthernetHeader> first_hop_link;
  int host_out_port = 1;  ///< the client host's port for the first hop

  sim::Time propagation_delay = 0;
  double bottleneck_bps = 0.0;
  std::size_t mtu = 0;
  double cost = 0.0;
  std::uint8_t security_floor = 0;
  std::size_t hops = 0;
  std::vector<std::uint32_t> router_ids;  ///< routers along the path
};

/// Materializes a computed path into an IssuedRoute (without tokens; the
/// Directory adds those).  @p dest_endpoint is the optional 8-byte
/// endpoint id for the final local segment (0 = host dispatcher).
IssuedRoute materialize_route(const TopologyDb& topo,
                              const ComputedRoute& computed,
                              std::uint64_t dest_endpoint = 0);

}  // namespace srp::dir
