#include "directory/directory.hpp"

#include "check/contract.hpp"

namespace srp::dir {

std::uint32_t Directory::add_region(std::string name, std::uint32_t parent) {
  SIRPENT_EXPECTS(parent < regions_.size());
  const auto id = static_cast<std::uint32_t>(regions_.size());
  regions_.push_back(Region{id, std::move(name), parent, {}});
  regions_[parent].children.push_back(id);
  return id;
}

void Directory::register_name(std::string fqdn, std::uint32_t node_id,
                              std::uint32_t region) {
  SIRPENT_EXPECTS(region < regions_.size());
  names_[std::move(fqdn)] = {node_id, region};
}

std::optional<std::uint32_t> Directory::resolve(std::string_view fqdn) {
  const auto it = names_.find(fqdn);
  if (it == names_.end()) {
    ++stats_.resolve_failures;
    return std::nullopt;
  }
  // Model the hierarchical resolution cost: one visit per region level
  // from the root down to the owning region, plus the root itself.
  std::size_t depth = 1;
  for (std::uint32_t r = it->second.second; r != 0; r = regions_[r].parent) {
    ++depth;
  }
  stats_.server_visits += depth;
  return it->second.first;
}

void Directory::attach_tokens(IssuedRoute& route,
                              const QueryOptions& options) {
  if (authority_ == nullptr) return;
  // One token per router hop; the final segment is local delivery and
  // needs none.
  SIRPENT_ENSURES(route.router_ids.size() + 1 == route.route.segments.size());
  for (std::size_t i = 0; i < route.router_ids.size(); ++i) {
    core::HeaderSegment& seg = route.route.segments[i];
    tokens::TokenBody body;
    body.router_id = route.router_ids[i];
    body.port = seg.port;
    body.max_priority = core::kPriorityHighest;
    body.reverse_ok = true;
    body.account = options.account;
    body.byte_limit = options.token_byte_limit;
    body.expiry_sec = options.token_expiry_sec;
    seg.token = authority_->mint(body);
    ++stats_.tokens_minted;
  }
}

std::vector<IssuedRoute> Directory::query(std::uint32_t from_node,
                                          std::string_view fqdn,
                                          QueryOptions options) {
  ++stats_.queries;
  std::vector<IssuedRoute> issued;
  const auto target = resolve(fqdn);
  if (!target.has_value()) return issued;

  RouteQuery constraints = options.constraints;
  constraints.from = from_node;
  constraints.to = *target;
  const auto computed = compute_routes(topo_, constraints);
  issued.reserve(computed.size());
  for (const auto& c : computed) {
    IssuedRoute r = materialize_route(topo_, c, options.dest_endpoint);
    attach_tokens(r, options);
    issued.push_back(std::move(r));
  }
  return issued;
}

}  // namespace srp::dir
