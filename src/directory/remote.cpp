#include "directory/remote.hpp"

#include <bit>

#include "viper/codec.hpp"

namespace srp::dir {
namespace {

constexpr std::uint8_t kTagQuery = 0x51;     // 'Q'
constexpr std::uint8_t kTagRoutes = 0x52;    // 'R'
constexpr std::uint8_t kTagReferral = 0x46;  // 'F'

void encode_one_route(wire::Writer& w, const IssuedRoute& route) {
  const wire::Bytes blob = viper::encode_route(route.route);
  w.u16(static_cast<std::uint16_t>(blob.size()));
  w.bytes(blob);
  w.u8(route.first_hop_link.has_value() ? 1 : 0);
  if (route.first_hop_link.has_value()) {
    route.first_hop_link->encode(w);
  }
  w.u8(static_cast<std::uint8_t>(route.host_out_port));
  w.u64(static_cast<std::uint64_t>(route.propagation_delay));
  w.u64(std::bit_cast<std::uint64_t>(route.bottleneck_bps));
  w.u32(static_cast<std::uint32_t>(route.mtu));
  w.u64(std::bit_cast<std::uint64_t>(route.cost));
  w.u8(route.security_floor);
  w.u16(static_cast<std::uint16_t>(route.hops));
  w.u8(static_cast<std::uint8_t>(route.router_ids.size()));
  for (std::uint32_t id : route.router_ids) w.u32(id);
}

IssuedRoute decode_one_route(wire::Reader& r) {
  IssuedRoute route;
  const std::uint16_t blob_len = r.u16();
  wire::Reader blob_reader(r.view(blob_len));
  route.route.segments = viper::decode_segments(blob_reader);
  if (r.u8() != 0) {
    route.first_hop_link = net::EthernetHeader::decode(r);
  }
  route.host_out_port = r.u8();
  route.propagation_delay = static_cast<sim::Time>(r.u64());
  route.bottleneck_bps = std::bit_cast<double>(r.u64());
  route.mtu = r.u32();
  route.cost = std::bit_cast<double>(r.u64());
  route.security_floor = r.u8();
  route.hops = r.u16();
  const std::uint8_t n_ids = r.u8();
  route.router_ids.reserve(n_ids);
  for (std::uint8_t i = 0; i < n_ids; ++i) {
    route.router_ids.push_back(r.u32());
  }
  return route;
}

}  // namespace

wire::Bytes encode_route_query(std::uint32_t from_node,
                               std::string_view name,
                               const QueryOptions& options) {
  wire::Writer w(64 + name.size());
  w.u8(kTagQuery);
  w.u32(from_node);
  w.u16(static_cast<std::uint16_t>(name.size()));
  w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(name.data()),
                    name.size()));
  w.u8(static_cast<std::uint8_t>(options.constraints.metric));
  w.u8(options.constraints.min_security);
  w.u64(std::bit_cast<std::uint64_t>(options.constraints.min_bandwidth_bps));
  w.u16(static_cast<std::uint16_t>(options.constraints.count));
  w.u32(options.account);
  w.u64(options.dest_endpoint);
  w.u64(options.token_byte_limit);
  w.u32(options.token_expiry_sec);
  return std::move(w).take();
}

std::optional<DecodedQuery> decode_route_query(
    std::span<const std::uint8_t> bytes) {
  try {
    wire::Reader r(bytes);
    if (r.u8() != kTagQuery) return std::nullopt;
    DecodedQuery q;
    q.from_node = r.u32();
    const std::uint16_t name_len = r.u16();
    const auto name_bytes = r.view(name_len);
    q.name.assign(name_bytes.begin(), name_bytes.end());
    q.options.constraints.metric = static_cast<RouteMetric>(r.u8());
    q.options.constraints.min_security = r.u8();
    q.options.constraints.min_bandwidth_bps = std::bit_cast<double>(r.u64());
    q.options.constraints.count = r.u16();
    q.options.account = r.u32();
    q.options.dest_endpoint = r.u64();
    q.options.token_byte_limit = r.u64();
    q.options.token_expiry_sec = r.u32();
    return q;
  } catch (const wire::CodecError&) {
    return std::nullopt;
  }
}

wire::Bytes encode_issued_routes(const std::vector<IssuedRoute>& routes) {
  wire::Writer w;
  w.u8(kTagRoutes);
  w.u8(static_cast<std::uint8_t>(routes.size()));
  for (const auto& route : routes) encode_one_route(w, route);
  return std::move(w).take();
}

std::optional<std::vector<IssuedRoute>> decode_issued_routes(
    std::span<const std::uint8_t> bytes) {
  try {
    wire::Reader r(bytes);
    if (r.u8() != kTagRoutes) return std::nullopt;
    const std::uint8_t count = r.u8();
    std::vector<IssuedRoute> routes;
    routes.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
      routes.push_back(decode_one_route(r));
    }
    return routes;
  } catch (const wire::CodecError&) {
    return std::nullopt;
  }
}

wire::Bytes encode_referral(const Referral& referral) {
  wire::Writer w;
  w.u8(kTagReferral);
  w.u64(referral.server_entity);
  encode_one_route(w, referral.server_route);
  return std::move(w).take();
}

std::optional<QueryResponse> decode_query_response(
    std::span<const std::uint8_t> bytes) {
  try {
    wire::Reader r(bytes);
    const std::uint8_t tag = r.u8();
    QueryResponse response;
    if (tag == kTagRoutes) {
      const std::uint8_t count = r.u8();
      response.routes.reserve(count);
      for (std::uint8_t i = 0; i < count; ++i) {
        response.routes.push_back(decode_one_route(r));
      }
      return response;
    }
    if (tag == kTagReferral) {
      Referral referral;
      referral.server_entity = r.u64();
      referral.server_route = decode_one_route(r);
      response.referral = std::move(referral);
      return response;
    }
    return std::nullopt;
  } catch (const wire::CodecError&) {
    return std::nullopt;
  }
}

DirectoryServerNode::DirectoryServerNode(sim::Simulator& sim,
                                         viper::ViperHost& host,
                                         Directory& directory,
                                         std::uint64_t entity)
    : directory_(directory), endpoint_(sim, host, entity) {
  endpoint_.serve([this](std::span<const std::uint8_t> request,
                         const viper::Delivery&) -> wire::Bytes {
    const auto query = decode_route_query(request);
    if (!query.has_value()) {
      return encode_issued_routes({});
    }
    if (scope_.has_value()) {
      const auto region = directory_.region_of(query->name);
      if (region.has_value() && !scope_->contains(*region)) {
        // Out of this server's naming region: refer the client to the
        // peer server, with a route computed from the *requester*.
        QueryOptions peer_options;
        peer_options.dest_endpoint = peer_entity_;
        auto peer_routes = directory_.query(query->from_node, peer_fqdn_,
                                            peer_options);
        if (!peer_routes.empty()) {
          ++referrals_issued_;
          return encode_referral(
              Referral{std::move(peer_routes.front()), peer_entity_});
        }
      }
    }
    ++queries_served_;
    return encode_issued_routes(
        directory_.query(query->from_node, query->name, query->options));
  });
}

void DirectoryServerNode::serve_regions(std::set<std::uint32_t> regions,
                                        std::string peer_fqdn,
                                        std::uint64_t peer_entity) {
  scope_ = std::move(regions);
  peer_fqdn_ = std::move(peer_fqdn);
  peer_entity_ = peer_entity;
}

RemoteDirectoryClient::RemoteDirectoryClient(
    sim::Simulator& sim, viper::ViperHost& host, std::uint32_t self_node,
    IssuedRoute server_route, std::uint64_t client_entity,
    std::uint64_t server_entity)
    : self_node_(self_node), server_route_(std::move(server_route)),
      server_entity_(server_entity),
      endpoint_(sim, host, client_entity) {}

void RemoteDirectoryClient::query(const std::string& name,
                                  QueryOptions options,
                                  QueryCallback callback) {
  query_at(server_route_, server_entity_, name, options, /*depth=*/0,
           /*rtt_so_far=*/0, std::move(callback));
}

void RemoteDirectoryClient::query_at(const IssuedRoute& server_route,
                                     std::uint64_t server_entity,
                                     const std::string& name,
                                     QueryOptions options, int depth,
                                     sim::Time rtt_so_far,
                                     QueryCallback callback) {
  constexpr int kMaxReferralDepth = 8;
  const wire::Bytes request = encode_route_query(self_node_, name, options);
  endpoint_.invoke(
      server_route, server_entity, request,
      [this, name, options, depth, rtt_so_far,
       callback = std::move(callback)](vmtp::Result result) {
        const sim::Time total_rtt = rtt_so_far + result.rtt;
        if (!result.ok) {
          callback({}, total_rtt);
          return;
        }
        auto response = decode_query_response(result.response);
        if (!response.has_value()) {
          callback({}, total_rtt);
          return;
        }
        if (response->referral.has_value()) {
          if (depth >= kMaxReferralDepth) {
            callback({}, total_rtt);
            return;
          }
          ++referrals_followed_;
          const Referral referral = std::move(*response->referral);
          query_at(referral.server_route, referral.server_entity, name,
                   options, depth + 1, total_rtt, std::move(callback));
          return;
        }
        callback(std::move(response->routes), total_rtt);
      });
}

}  // namespace srp::dir
