#include "directory/fabric.hpp"

#include <stdexcept>

#include "flow/plane.hpp"

namespace srp::dir {

Fabric::Fabric(sim::Simulator& sim) : sim_(sim), net_(sim) {
  directory_ = std::make_unique<Directory>(topo_, nullptr);
}

viper::ViperHost& Fabric::add_host(const std::string& fqdn,
                                   std::uint32_t region) {
  auto& host = net_.add<viper::ViperHost>(fqdn, net_.packets());
  const std::uint32_t id = topo_.add_node(NodeType::kHost, fqdn);
  ids_[&host] = id;
  hosts_.push_back(&host);
  directory_->register_name(fqdn, id, region);
  return host;
}

viper::ViperRouter& Fabric::add_router(const std::string& name,
                                       viper::RouterConfig config) {
  const std::uint32_t id = topo_.add_node(NodeType::kRouter, name);
  config.router_id = id;
  auto& router = net_.add<viper::ViperRouter>(name, config);
  ids_[&router] = id;
  routers_.push_back(&router);
  if (authority_.has_value() && config.require_tokens) {
    router.set_token_authority(&*authority_, &ledger_);
  }
  return router;
}

void Fabric::connect(net::PortedNode& a, net::PortedNode& b,
                     LinkParams params) {
  const net::LinkConfig link_config{params.rate_bps, params.prop_delay,
                                    params.mtu};
  const auto [pa, pb] = net_.duplex(a, b, link_config);
  link_records_.push_back(LinkRecord{&a, &b, pa, pb});

  TopoLink t;
  t.bandwidth_bps = params.rate_bps;
  t.prop_delay = params.prop_delay;
  t.mtu = params.mtu;
  t.cost = params.cost;
  t.security = params.security;
  topo_.add_duplex(id_of(a), id_of(b), static_cast<std::uint8_t>(pa),
                   static_cast<std::uint8_t>(pb), t);
}

net::LanSegment& Fabric::add_lan(const std::string& name,
                                 LinkParams params) {
  auto& lan = net_.add<net::LanSegment>(name);
  lans_[&lan] = LanRecord{&lan, params, {}};
  return lan;
}

void Fabric::set_lan_kind(net::PortedNode& node, int port_index) {
  if (auto* router = dynamic_cast<viper::ViperRouter*>(&node)) {
    router->set_port_kind(port_index, viper::PortKind::kLan);
  } else if (auto* host = dynamic_cast<viper::ViperHost*>(&node)) {
    host->set_port_kind(port_index, viper::PortKind::kLan);
  }
}

net::MacAddr Fabric::attach_lan(net::LanSegment& lan,
                                net::PortedNode& station) {
  auto it = lans_.find(&lan);
  if (it == lans_.end()) {
    throw std::invalid_argument("attach_lan: segment not from this fabric");
  }
  LanRecord& record = it->second;
  const net::LinkConfig link_config{record.params.rate_bps,
                                    record.params.prop_delay,
                                    record.params.mtu};
  const auto [station_port, segment_port] =
      net_.duplex(station, lan, link_config);
  const net::MacAddr mac = net::MacAddr::from_index(next_mac_index_++);
  lan.register_mac(mac, segment_port);
  set_lan_kind(station, station_port);
  record.stations.push_back(
      LanAttachment{&station, id_of(station), station_port, mac});
  return mac;
}

void Fabric::mesh_lan(net::LanSegment& lan) {
  const LanRecord& record = lans_.at(&lan);
  for (const auto& from : record.stations) {
    for (const auto& to : record.stations) {
      if (from.node == to.node) continue;
      TopoLink t;
      t.from = from.topo_id;
      t.to = to.topo_id;
      t.from_port = static_cast<std::uint8_t>(from.station_port);
      t.bandwidth_bps = record.params.rate_bps;
      // Station -> segment -> station: two propagation legs.
      t.prop_delay = 2 * record.params.prop_delay;
      t.mtu = record.params.mtu;
      t.cost = record.params.cost;
      t.security = record.params.security;
      t.lan = true;
      t.from_mac = from.mac;
      t.to_mac = to.mac;
      topo_.add_link(t);
    }
  }
}

void Fabric::enable_tokens(std::uint64_t secret, bool enforce,
                           tokens::UncachedPolicy policy,
                           sim::Time verify_delay) {
  authority_.emplace(secret);
  directory_ = std::make_unique<Directory>(topo_, &*authority_);
  // Re-register names lost by rebuilding the Directory: rebuild from ids_.
  for (const auto& [node, id] : ids_) {
    if (topo_.node(id).type == NodeType::kHost) {
      directory_->register_name(topo_.node(id).name, id, 0);
    }
  }
  for (viper::ViperRouter* router : routers_) {
    router->set_token_authority(&*authority_, &ledger_);
    router->set_token_requirement(enforce, policy, verify_delay);
  }
}

void Fabric::enable_congestion_control(cc::ControllerConfig config) {
  for (viper::ViperRouter* router : routers_) {
    auto controller =
        std::make_unique<cc::CongestionController>(sim_, *router, config);
    for (int p = 1; p <= router->port_count(); ++p) {
      controller->monitor_port(p);
      const net::Node* peer = router->port(p).peer();
      const auto it = ids_.find(peer);
      if (it != ids_.end()) controller->set_neighbor(p, it->second);
    }
    controllers_.push_back(std::move(controller));
  }
  for (viper::ViperHost* host : hosts_) {
    throttles_[host] = std::make_unique<cc::SourceThrottle>(sim_, *host);
  }
}

void Fabric::enable_load_reporting(sim::Time interval) {
  // One shared tick walks every router port with a known peer and reports
  // the interval's utilization as the link load advisory.
  struct Sample {
    viper::ViperRouter* router;
    int port;
    std::uint32_t from;
    std::uint32_t to;
    sim::Time last_busy = 0;
  };
  auto samples = std::make_shared<std::vector<Sample>>();
  for (viper::ViperRouter* router : routers_) {
    for (int p = 1; p <= router->port_count(); ++p) {
      const auto it = ids_.find(router->port(p).peer());
      if (it == ids_.end()) continue;
      samples->push_back(Sample{router, p, id_of(*router), it->second, 0});
    }
  }
  auto tick = std::make_shared<std::function<void()>>();
  // Weak self-capture: the only strong reference lives in the pending
  // event, so the ticker is reclaimed with the event queue instead of
  // leaking through a shared_ptr cycle.
  *tick = [this, samples, interval, weak = std::weak_ptr(tick)] {
    for (Sample& s : *samples) {
      const sim::Time busy = s.router->port(s.port).stats().busy_time;
      const double load = static_cast<double>(busy - s.last_busy) /
                          static_cast<double>(interval);
      s.last_busy = busy;
      directory_->report_link_load(s.from, s.to, std::min(load, 1.0));
    }
    sim_.after(interval, [self = weak.lock()] { (*self)(); });
  };
  sim_.after(interval, [tick] { (*tick)(); });
}

void Fabric::enable_observability(const obs::Observer& observer) {
  observer_ = observer;
  for (viper::ViperRouter* router : routers_) router->set_observer(observer);
  for (viper::ViperHost* host : hosts_) host->set_observer(observer);
  for (auto& controller : controllers_) controller->set_observer(observer);
}

void Fabric::enable_batching(viper::ViperRouter::BatchConfig config) {
  for (viper::ViperRouter* router : routers_) router->set_batching(config);
  for (viper::ViperHost* host : hosts_) host->set_batching(true);
}

obs::PathCollector& Fabric::enable_path_telemetry(PathTelemetryConfig config) {
  collector_ = std::make_unique<obs::PathCollector>(
      observer_.registry, observer_.recorder, config.collector);
  for (viper::ViperRouter* router : routers_) {
    router->set_path_telemetry(true);
  }
  for (viper::ViperHost* host : hosts_) {
    host->set_path_telemetry(collector_.get(), config.seed,
                             config.sample_period);
  }
  return *collector_;
}

health::HealthMonitor& Fabric::enable_health(health::HealthConfig config) {
  if (observer_.registry == nullptr) {
    throw std::logic_error(
        "Fabric::enable_health: enable_observability with a registry first");
  }
  monitor_ = std::make_unique<health::HealthMonitor>(
      sim_, *observer_.registry, config);
  monitor_->set_recorder(observer_.recorder);
  monitor_->set_flow_plane(dynamic_cast<flow::FlowPlane*>(observer_.flow));
  monitor_->set_path_collector(collector_.get());
  for (viper::ViperRouter* router : routers_) {
    monitor_->map_router(id_of(*router), std::string(router->name()));
    for (int p = 1; p <= router->port_count(); ++p) {
      monitor_->watch_link(router->port(p), std::string(router->name()));
    }
  }
  monitor_->start();
  return *monitor_;
}

std::uint32_t Fabric::id_of(const net::Node& node) const {
  const auto it = ids_.find(&node);
  if (it == ids_.end()) {
    throw std::invalid_argument("Fabric::id_of: unknown node");
  }
  return it->second;
}

cc::SourceThrottle* Fabric::throttle_of(const viper::ViperHost& host) {
  const auto it = throttles_.find(&host);
  return it == throttles_.end() ? nullptr : it->second.get();
}

cc::CongestionController* Fabric::controller_of(
    const viper::ViperRouter& router) {
  // Controllers are created in routers_ order by enable_congestion_control.
  for (std::size_t i = 0; i < routers_.size() && i < controllers_.size();
       ++i) {
    if (routers_[i] == &router) return controllers_[i].get();
  }
  return nullptr;
}

RouteCache& Fabric::route_cache(viper::ViperHost& host,
                                RouteCacheConfig config) {
  auto& slot = caches_[&host];
  if (!slot) {
    slot = std::make_unique<RouteCache>(sim_, *directory_, id_of(host),
                                        config);
  }
  return *slot;
}

Fabric::LinkRecord* Fabric::find_link(const net::Node& a,
                                      const net::Node& b) {
  for (auto& record : link_records_) {
    if ((record.a == &a && record.b == &b) ||
        (record.a == &b && record.b == &a)) {
      return &record;
    }
  }
  return nullptr;
}

void Fabric::set_link_state(net::PortedNode& a, net::PortedNode& b, bool up,
                            bool tell_directory) {
  LinkRecord* record = find_link(a, b);
  if (record == nullptr) {
    throw std::invalid_argument("Fabric: no such link");
  }
  record->a->port(record->port_a).set_up(up);
  record->b->port(record->port_b).set_up(up);
  if (tell_directory) {
    directory_->report_link_state(id_of(a), id_of(b), up);
    directory_->report_link_state(id_of(b), id_of(a), up);
  }
}

void Fabric::fail_link(net::PortedNode& a, net::PortedNode& b) {
  set_link_state(a, b, false, true);
}

void Fabric::restore_link(net::PortedNode& a, net::PortedNode& b) {
  set_link_state(a, b, true, true);
}

void Fabric::fail_link_silently(net::PortedNode& a, net::PortedNode& b) {
  set_link_state(a, b, false, false);
}

}  // namespace srp::dir
