// The internetwork directory service (paper §3).
//
// "The global internetwork directory service is extended in Sirpent to
// provide routes to a host or service, given its character-string name."
// Names are hierarchical (stanford.edu / cs.stanford.edu) and double as the
// routing-region hierarchy, Singh-style: each region has a directory server
// responsible for names in its region, with queries walking up to the
// common ancestor and back down.  A query returns one or more routes, each
// with attributes (MTU, bandwidth, delay, cost, security) and — when token
// enforcement is on — the per-hop port tokens, "provided by the routing
// directory servers at the time that the source determines the route".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "directory/routes.hpp"
#include "directory/topology.hpp"
#include "tokens/token.hpp"

namespace srp::dir {

/// One region's directory server.  Regions mirror naming domains
/// ("stanford.edu represents both a naming and routing domain").
struct Region {
  std::uint32_t id = 0;
  std::string name;           ///< e.g. "stanford.edu"; root region is ""
  std::uint32_t parent = 0;   ///< root points at itself
  std::vector<std::uint32_t> children;
};

/// Options a client attaches to a query beyond the path constraints.
struct QueryOptions {
  RouteQuery constraints;          ///< from is filled in by query()
  std::uint32_t account = 0;       ///< account to charge via tokens
  std::uint64_t dest_endpoint = 0; ///< endpoint id for the final segment
  std::uint64_t token_byte_limit = 0;  ///< per-hop usage cap (0 = none)
  std::uint32_t token_expiry_sec = 0;  ///< absolute sim-seconds (0 = none)
};

class Directory {
 public:
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t resolve_failures = 0;
    std::uint64_t server_visits = 0;  ///< region servers touched resolving
    std::uint64_t tokens_minted = 0;
  };

  /// @p authority may be null: routes are then issued without tokens.
  explicit Directory(TopologyDb& topo,
                     tokens::TokenAuthority* authority = nullptr)
      : topo_(topo), authority_(authority) {
    regions_.push_back(Region{0, "", 0, {}});  // root
  }

  /// Creates a region under @p parent (0 = root).  Returns the region id.
  std::uint32_t add_region(std::string name, std::uint32_t parent = 0);

  /// Binds a fully qualified name to a topology node within a region.
  void register_name(std::string fqdn, std::uint32_t node_id,
                     std::uint32_t region = 0);

  /// Name to topology node; counts region-server visits walked, modelling
  /// the hierarchy ("each server is responsible for ... higher layer
  /// servers and lower level servers within the same region").
  [[nodiscard]] std::optional<std::uint32_t> resolve(std::string_view fqdn);

  /// The paper's route query: multiple routes, attributes, tokens.
  /// @p from_region is the region whose server the client asks (affects
  /// the server-visit count only; routing data is global in this model).
  std::vector<IssuedRoute> query(std::uint32_t from_node,
                                 std::string_view fqdn,
                                 QueryOptions options);

  /// Load / liveness advisories feed straight into the topology database.
  void report_link_load(std::uint32_t from, std::uint32_t to, double load) {
    topo_.set_link_load(from, to, load);
  }
  void report_link_state(std::uint32_t from, std::uint32_t to, bool up) {
    topo_.set_link_up(from, to, up);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] TopologyDb& topology() { return topo_; }
  [[nodiscard]] tokens::TokenAuthority* authority() { return authority_; }

  /// Region owning @p fqdn, if registered (used by region servers to
  /// decide whether to answer or refer, Singh-style).
  [[nodiscard]] std::optional<std::uint32_t> region_of(
      std::string_view fqdn) const {
    const auto it = names_.find(fqdn);
    if (it == names_.end()) return std::nullopt;
    return it->second.second;
  }

 private:
  void attach_tokens(IssuedRoute& route, const QueryOptions& options);

  TopologyDb& topo_;
  tokens::TokenAuthority* authority_;
  std::vector<Region> regions_;
  std::map<std::string, std::pair<std::uint32_t, std::uint32_t>, std::less<>>
      names_;  // fqdn -> (node id, region id)
  Stats stats_;
};

}  // namespace srp::dir
