#include "directory/routes.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "viper/router.hpp"

namespace srp::dir {
namespace {

bool link_admissible(const TopoLink& link, const RouteQuery& query) {
  if (!link.up && !query.include_down_links) return false;
  if (link.security < query.min_security) return false;
  if (link.bandwidth_bps < query.min_bandwidth_bps) return false;
  return true;
}

double link_weight(const TopoLink& link, RouteMetric metric) {
  switch (metric) {
    case RouteMetric::kDelay:
      // Tiny per-hop epsilon prefers fewer hops among equal-delay paths.
      return sim::to_seconds(link.prop_delay) + 1e-9;
    case RouteMetric::kCost:
      return link.cost;
    case RouteMetric::kHops:
      return 1.0;
    case RouteMetric::kLoadAware:
      return (sim::to_seconds(link.prop_delay) + 1e-9) *
             (1.0 + 4.0 * std::clamp(link.load, 0.0, 1.0));
  }
  return 1.0;
}

/// Dijkstra from query.from to query.to over admissible links, optionally
/// excluding some link indices and some nodes (for Yen's spur paths).
std::optional<std::vector<std::size_t>> shortest_path(
    const TopologyDb& topo, const RouteQuery& query,
    const std::set<std::size_t>& banned_links,
    const std::set<std::uint32_t>& banned_nodes) {
  const std::size_t n = topo.node_count();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> via_link(n, SIZE_MAX);
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[query.from] = 0.0;
  heap.emplace(0.0, query.from);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == query.to) break;
    for (std::size_t li : topo.out_links(u)) {
      if (banned_links.contains(li)) continue;
      const TopoLink& link = topo.links()[li];
      if (banned_nodes.contains(link.to)) continue;
      if (!link_admissible(link, query)) continue;
      const double nd = d + link_weight(link, query.metric);
      if (nd < dist[link.to]) {
        dist[link.to] = nd;
        via_link[link.to] = li;
        heap.emplace(nd, link.to);
      }
    }
  }

  if (via_link[query.to] == SIZE_MAX) {
    return query.from == query.to ? std::optional<std::vector<std::size_t>>{
                                        std::vector<std::size_t>{}}
                                  : std::nullopt;
  }
  std::vector<std::size_t> path;
  for (std::uint32_t v = query.to; v != query.from;) {
    const std::size_t li = via_link[v];
    path.push_back(li);
    v = topo.links()[li].from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ComputedRoute summarize(const TopologyDb& topo,
                        std::vector<std::size_t> path) {
  ComputedRoute route;
  route.bottleneck_bps = std::numeric_limits<double>::infinity();
  route.mtu = std::numeric_limits<std::size_t>::max();
  for (std::size_t li : path) {
    const TopoLink& link = topo.links()[li];
    route.propagation_delay += link.prop_delay;
    route.bottleneck_bps = std::min(route.bottleneck_bps, link.bandwidth_bps);
    route.mtu = std::min(route.mtu, link.mtu);
    route.cost += link.cost;
    route.security_floor = std::min(route.security_floor, link.security);
  }
  route.hops = path.empty() ? 0 : path.size() - 1;  // routers traversed
  route.link_indices = std::move(path);
  return route;
}

}  // namespace

std::vector<ComputedRoute> compute_routes(const TopologyDb& topo,
                                          const RouteQuery& query) {
  std::vector<ComputedRoute> results;
  auto best = shortest_path(topo, query, {}, {});
  if (!best.has_value()) return results;
  results.push_back(summarize(topo, std::move(*best)));
  if (query.count <= 1) return results;

  // Yen's k-shortest paths.
  std::vector<std::vector<std::size_t>> candidates;
  while (results.size() < query.count) {
    const auto& prev = results.back().link_indices;
    for (std::size_t spur = 0; spur < prev.size(); ++spur) {
      const std::uint32_t spur_node =
          spur == 0 ? query.from : topo.links()[prev[spur - 1]].to;
      std::set<std::size_t> banned_links;
      for (const auto& r : results) {
        const auto& p = r.link_indices;
        if (p.size() > spur &&
            std::equal(p.begin(), p.begin() + static_cast<long>(spur),
                       prev.begin())) {
          banned_links.insert(p[spur]);
        }
      }
      std::set<std::uint32_t> banned_nodes;
      std::uint32_t node = query.from;
      for (std::size_t i = 0; i < spur; ++i) {
        banned_nodes.insert(node);
        node = topo.links()[prev[i]].to;
      }
      RouteQuery sub = query;
      sub.from = spur_node;
      const auto tail = shortest_path(topo, sub, banned_links, banned_nodes);
      if (!tail.has_value()) continue;
      std::vector<std::size_t> candidate(prev.begin(),
                                         prev.begin() +
                                             static_cast<long>(spur));
      candidate.insert(candidate.end(), tail->begin(), tail->end());
      if (std::find(candidates.begin(), candidates.end(), candidate) ==
          candidates.end()) {
        bool duplicate = false;
        for (const auto& r : results) {
          if (r.link_indices == candidate) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) candidates.push_back(std::move(candidate));
      }
    }
    if (candidates.empty()) break;
    // Pick the cheapest candidate.
    auto cheapest = candidates.begin();
    auto weight_of = [&](const std::vector<std::size_t>& p) {
      double w = 0.0;
      for (std::size_t li : p) {
        w += link_weight(topo.links()[li], query.metric);
      }
      return w;
    };
    for (auto it = std::next(candidates.begin()); it != candidates.end();
         ++it) {
      if (weight_of(*it) < weight_of(*cheapest)) cheapest = it;
    }
    results.push_back(summarize(topo, std::move(*cheapest)));
    candidates.erase(cheapest);
  }
  return results;
}

IssuedRoute materialize_route(const TopologyDb& topo,
                              const ComputedRoute& computed,
                              std::uint64_t dest_endpoint) {
  IssuedRoute issued;
  issued.propagation_delay = computed.propagation_delay;
  issued.bottleneck_bps = computed.bottleneck_bps;
  issued.mtu = computed.mtu;
  issued.cost = computed.cost;
  issued.security_floor = computed.security_floor;
  issued.hops = computed.hops;

  const auto& links = topo.links();
  for (std::size_t i = 0; i < computed.link_indices.size(); ++i) {
    const TopoLink& link = links[computed.link_indices[i]];
    if (i == 0) {
      issued.host_out_port = link.from_port;
      if (link.lan) {
        issued.first_hop_link = net::EthernetHeader{
            link.to_mac, link.from_mac, net::kEtherTypeSirpent};
      }
      continue;
    }
    issued.router_ids.push_back(link.from);
    core::HeaderSegment seg;
    seg.port = link.from_port;
    if (link.lan) {
      wire::Writer w(net::EthernetHeader::kWireSize);
      net::EthernetHeader{link.to_mac, link.from_mac,
                          net::kEtherTypeSirpent}
          .encode(w);
      seg.port_info = std::move(w).take();
    } else {
      seg.flags.vnt = true;
    }
    issued.route.segments.push_back(std::move(seg));
  }

  core::HeaderSegment local;
  local.port = core::kLocalPort;
  if (dest_endpoint != 0) {
    local.port_info = viper::encode_endpoint_id(dest_endpoint);
  } else {
    local.flags.vnt = true;
  }
  issued.route.segments.push_back(std::move(local));
  return issued;
}

}  // namespace srp::dir
