// The Sirpent header segment and source route (paper §2).
//
// "Each Sirpent packet is structured as a sequence of header segments
// followed by user data, followed by the Sirpent trailer.  Each header
// segment corresponds to a Sirpent router along the route."
//
// These are the decoded, network-independent forms; the concrete octet
// layout is VIPER's (src/viper/codec.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/tos.hpp"
#include "wire/buffer.hpp"

namespace srp::core {

/// VIPER reserves port 0 to mean local delivery ("Reserving 0 as a special
/// port value meaning 'local', the effective number of ports per switch is
/// limited to 255").
inline constexpr std::uint8_t kLocalPort = 0;

/// Route-length bound used by the paper's scaling argument ("a maximum of
/// 48 header segments (expected to be under 500 bytes long)").
inline constexpr std::size_t kMaxSegments = 48;

/// Port value identifying an in-band telemetry record on the trailer
/// (0x54, 'T').  Like the truncation mark, a telemetry record is "not a
/// legal Sirpent header segment": it carries the TRM flag so no router
/// ever routes by it, but unlike the mark it keeps VNT clear so its
/// portInfo — the fixed-size obs::HopTelemetry payload — survives decode.
/// The port value only disambiguates the two record kinds at the sink.
inline constexpr std::uint8_t kTelemetryPort = 0x54;

/// Segment flags (VIPER Flags nibble).  VNT, DIB and RPF are the paper's;
/// TRM is this implementation's concrete encoding of the paper's
/// truncation mark: "a special segment on the trailer (which is not a legal
/// Sirpent header segment) indicating that the packet has been truncated".
struct SegmentFlags {
  bool vnt = false;  ///< VIPER Next Type: portInfo void, next seg is VIPER
  bool dib = false;  ///< Drop If Blocked
  bool rpf = false;  ///< Reverse Path Forwarding (returning a packet)
  bool trm = false;  ///< truncation marker (never legal for routing)

  bool operator==(const SegmentFlags&) const = default;
};

/// One hop of a source route.
///
/// `port_info` is network-specific: on a multi-access network it holds the
/// link header for the next hop (e.g. a 14-byte Ethernet header); on a
/// point-to-point link it is void and `flags.vnt` is set.  A final segment
/// with `port == kLocalPort` may carry an 8-byte local endpoint id in
/// `port_info` ("a Sirpent header segment can be used to designate the port
/// within a host") — the same mechanism as inter-host addressing.
struct HeaderSegment {
  std::uint8_t port = 0;
  TypeOfService tos;
  SegmentFlags flags;
  wire::Bytes token;      ///< portToken: opaque encrypted capability
  wire::Bytes port_info;  ///< network-specific next-hop information

  bool operator==(const HeaderSegment&) const = default;

  /// A routable segment must not carry the truncation mark.
  [[nodiscard]] bool is_legal() const { return !flags.trm; }

  /// The special trailer segment marking a truncated packet.
  static HeaderSegment truncation_marker() {
    HeaderSegment s;
    s.flags.trm = true;
    s.flags.vnt = true;
    return s;
  }

  /// True when this trailer segment is an in-band telemetry record: TRM
  /// set (never routable), VNT clear (portInfo carries the payload), and
  /// the reserved telemetry port.  Distinct from truncation_marker(),
  /// which sets VNT and uses port 0.
  [[nodiscard]] bool is_telemetry_record() const {
    return flags.trm && !flags.vnt && port == kTelemetryPort;
  }
};

/// A complete source route: the segments laid in front of the data.
/// The last segment should address the destination host's local port.
struct SourceRoute {
  std::vector<HeaderSegment> segments;

  bool operator==(const SourceRoute&) const = default;

  [[nodiscard]] bool empty() const { return segments.empty(); }
  [[nodiscard]] std::size_t hops() const { return segments.size(); }

  /// Marks every segment as a reverse-path packet (VIPER RPF flag) —
  /// used when sending along a route recovered from a trailer.
  void set_rpf() {
    for (auto& s : segments) s.flags.rpf = true;
  }
};

}  // namespace srp::core
