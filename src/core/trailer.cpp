#include "core/trailer.hpp"

#include <algorithm>

namespace srp::core {

SourceRoute build_return_route(const std::vector<HeaderSegment>& entries,
                               const wire::Bytes& origin_endpoint) {
  SourceRoute route;
  route.segments.reserve(entries.size() + 1);
  // Last router's entry becomes the first return hop.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    route.segments.push_back(*it);
  }
  HeaderSegment local;
  local.port = kLocalPort;
  local.port_info = origin_endpoint;
  local.flags.vnt = origin_endpoint.empty();
  route.segments.push_back(local);
  route.set_rpf();
  return route;
}

TrailerInfo classify_trailer(std::vector<HeaderSegment> raw_entries) {
  TrailerInfo info;
  for (auto& seg : raw_entries) {
    if (seg.flags.trm) {
      info.truncated = true;
    } else {
      info.entries.push_back(std::move(seg));
    }
  }
  return info;
}

}  // namespace srp::core
