#include "core/trailer.hpp"

#include <algorithm>

#include "check/contract.hpp"

namespace srp::core {

SourceRoute build_return_route(const std::vector<HeaderSegment>& entries,
                               const wire::Bytes& origin_endpoint) {
  // Truncation marks must have been filtered out (classify_trailer): a
  // route built from an illegal segment would be dropped at the first hop.
  SIRPENT_EXPECTS(std::all_of(entries.begin(), entries.end(),
                              [](const HeaderSegment& s) {
                                return s.is_legal();
                              }));
  SourceRoute route;
  route.segments.reserve(entries.size() + 1);
  // Last router's entry becomes the first return hop.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    route.segments.push_back(*it);
  }
  HeaderSegment local;
  local.port = kLocalPort;
  local.port_info = origin_endpoint;
  local.flags.vnt = origin_endpoint.empty();
  route.segments.push_back(local);
  route.set_rpf();
  // Reversal round-trip: hop i of the return route is trailer entry n-1-i
  // with RPF set and everything else (port, token, port_info) verbatim —
  // the paper's "entirely network-independent" reversal.
  SIRPENT_ENSURES(route.segments.size() == entries.size() + 1);
  SIRPENT_ENSURES([&] {
    const std::size_t n = entries.size();
    for (std::size_t i = 0; i < n; ++i) {
      HeaderSegment expect = entries[n - 1 - i];
      expect.flags.rpf = true;
      if (route.segments[i] != expect) return false;
    }
    return route.segments[n].port == kLocalPort &&
           route.segments[n].flags.rpf;
  }());
  return route;
}

void reverse_records_in_place(std::span<std::uint8_t> buf,
                              std::span<const std::size_t> sizes) {
  std::size_t total = 0;
  for (const std::size_t s : sizes) total += s;
  SIRPENT_EXPECTS(total == buf.size());
  // Classic rotate-by-reversal: flip the whole buffer (record order is now
  // reversed but each record's bytes are backwards), then flip each record
  // back in place.  After the outer reversal, record n-1-i starts where the
  // suffix of length sizes[n-1] + ... + sizes[i+1] ends.
  std::reverse(buf.begin(), buf.end());
  std::size_t offset = 0;
  for (std::size_t i = sizes.size(); i-- > 0;) {
    std::reverse(buf.begin() + static_cast<std::ptrdiff_t>(offset),
                 buf.begin() + static_cast<std::ptrdiff_t>(offset + sizes[i]));
    offset += sizes[i];
  }
  SIRPENT_ENSURES(offset == buf.size());
}

TrailerInfo classify_trailer(std::vector<HeaderSegment> raw_entries) {
  TrailerInfo info;
  for (auto& seg : raw_entries) {
    if (seg.is_telemetry_record()) {
      // A telemetry record shares the TRM bit (it must never be routable)
      // but does NOT mean the packet was truncated.
      info.telemetry.push_back(std::move(seg));
    } else if (seg.flags.trm) {
      info.truncated = true;
    } else {
      info.entries.push_back(std::move(seg));
    }
  }
  SIRPENT_ENSURES(std::all_of(info.entries.begin(), info.entries.end(),
                              [](const HeaderSegment& s) {
                                return s.is_legal();
                              }));
  return info;
}

}  // namespace srp::core
