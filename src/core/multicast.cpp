#include "core/multicast.hpp"

namespace srp::core {

wire::Bytes encode_tree_info(const std::vector<wire::Bytes>& subroutes) {
  if (subroutes.empty() || subroutes.size() > 255) {
    throw wire::CodecError("tree info: branch count out of range");
  }
  wire::Writer w;
  w.u8(kTreeInfoTag);
  w.u8(static_cast<std::uint8_t>(subroutes.size()));
  for (const auto& blob : subroutes) {
    if (blob.size() > 0xFFFF) {
      throw wire::CodecError("tree info: subroute too large");
    }
    w.u16(static_cast<std::uint16_t>(blob.size()));
    w.bytes(blob);
  }
  return std::move(w).take();
}

bool is_tree_info(std::span<const std::uint8_t> port_info) {
  return port_info.size() >= 2 && port_info[0] == kTreeInfoTag;
}

std::vector<wire::Bytes> decode_tree_info(const wire::Bytes& port_info) {
  wire::Reader r(port_info);
  if (r.u8() != kTreeInfoTag) {
    throw wire::CodecError("tree info: bad tag");
  }
  const std::uint8_t count = r.u8();
  std::vector<wire::Bytes> out;
  out.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    const std::uint16_t len = r.u16();
    out.push_back(r.bytes(len));
  }
  if (!r.done()) {
    throw wire::CodecError("tree info: trailing bytes");
  }
  return out;
}

wire::Bytes encode_agent_payload(const AgentPayload& payload) {
  if (payload.member_routes.size() > 255) {
    throw wire::CodecError("agent payload: too many members");
  }
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(payload.member_routes.size()));
  for (const auto& blob : payload.member_routes) {
    if (blob.size() > 0xFFFF) {
      throw wire::CodecError("agent payload: route too large");
    }
    w.u16(static_cast<std::uint16_t>(blob.size()));
    w.bytes(blob);
  }
  w.bytes(payload.data);
  return std::move(w).take();
}

AgentPayload decode_agent_payload(const wire::Bytes& bytes) {
  wire::Reader r(bytes);
  AgentPayload p;
  const std::uint8_t count = r.u8();
  p.member_routes.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    const std::uint16_t len = r.u16();
    p.member_routes.push_back(r.bytes(len));
  }
  p.data = r.bytes(r.remaining());
  return p;
}

}  // namespace srp::core
