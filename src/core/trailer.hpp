// Return-route construction from the Sirpent trailer (paper §2).
//
// "To generate the return route, the receiver locates the beginning of the
// trailer of (former) header segments and copies each segment into a
// separate return address area in reverse order ... Because the
// network-specific portions of the header segments have been modified as
// required by the routers along the original route, the reversal process is
// entirely network-independent."
//
// Each router appended an entry whose `port` is the return port through
// that router and whose `port_info` is the (already reversed) link header
// of the network the packet arrived on.  Reversing the entry order
// therefore yields, verbatim, the segments of a route from the receiver
// back to the origin; a final local-delivery segment is appended so the
// origin host's Sirpent module accepts the packet.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/segment.hpp"

namespace srp::core {

/// Trailer inspection results.
struct TrailerInfo {
  std::vector<HeaderSegment> entries;  ///< in append (forward-path) order
  bool truncated = false;              ///< a truncation marker was present
  /// In-band telemetry records (HeaderSegment::is_telemetry_record), in
  /// the order they appeared.  Each record's port_info is one router's
  /// obs::HopTelemetry payload; the hop number inside the payload — not
  /// the position here — orders the path, so this list is valid whether
  /// the trailer was decoded forward or reversed in place.
  std::vector<HeaderSegment> telemetry;
};

/// Builds the return route from the trailer entries of a delivered packet.
///
/// @param entries      trailer entries in the order routers appended them
///                     (first router first); truncation markers must have
///                     been filtered out (see TrailerInfo).
/// @param origin_endpoint  optional 8-byte endpoint id for local delivery
///                     at the origin (e.g. learned from the transport
///                     header); empty means "origin host's dispatcher".
///
/// The result has RPF set on every segment: the paper's "the packet is
/// being returned using the route and tokens supplied in a packet received
/// by the currently sending host".
SourceRoute build_return_route(const std::vector<HeaderSegment>& entries,
                               const wire::Bytes& origin_endpoint = {});

/// Splits decoded trailer segments into routable entries and the truncated
/// flag (truncation markers are recognized and removed).
TrailerInfo classify_trailer(std::vector<HeaderSegment> raw_entries);

/// Reverses the *order* of variable-length records inside @p buf without
/// changing any record's bytes, in O(1) extra space: record i (of size
/// sizes[i], records packed back to back) ends up at the position record
/// n-1-i occupied.  This is the paper's "entirely network-independent"
/// trailer reversal done on the wire image itself — segment reversal is
/// length-preserving, so the buffer size never changes and no copy of the
/// trailer is needed.  @p sizes must sum exactly to buf.size().
void reverse_records_in_place(std::span<std::uint8_t> buf,
                              std::span<const std::size_t> sizes);

}  // namespace srp::core
