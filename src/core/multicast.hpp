// Multicast support (paper §2): three mechanisms.
//
//  1. Reserved multi-port values — a router port id configured to mean a
//     *group* of physical ports; the packet is copied out each one.  (This
//     is router configuration, see viper::ViperRouter::define_logical_port.)
//  2. Tree-structured routes (as proposed with Blazenet) — "multiple header
//     segments specified for a routing point, with each header segment
//     causing a copy of the packet to be routed according to the port it
//     specifies".  Encoded here as a branch block carried in the portInfo
//     of a segment addressed to the branching router.
//  3. Multicast agents — the packet is routed to an agent which "explodes"
//     it to the members; the agent payload layout is defined here.
//
// Both encodings are containers of already-encoded sub-route blobs so that
// this module stays independent of the concrete (VIPER) segment codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wire/buffer.hpp"

namespace srp::core {

/// Magic first byte distinguishing a tree-branch portInfo from a link
/// header (a link header's first byte is a MAC octet; 0x54 'T' is reserved
/// in our deployments' locally-administered plan).
inline constexpr std::uint8_t kTreeInfoTag = 0x54;

/// Encodes branch sub-routes for mechanism 2.  Each blob is the full
/// encoded segment sequence for one subtree.
wire::Bytes encode_tree_info(const std::vector<wire::Bytes>& subroutes);

/// True when a portInfo field carries a tree-branch block.  Takes a view
/// so the batched data plane can ask without materializing the field.
bool is_tree_info(std::span<const std::uint8_t> port_info);

/// Decodes the branch blobs (throws wire::CodecError on malformed input).
std::vector<wire::Bytes> decode_tree_info(const wire::Bytes& port_info);

/// Agent explosion payload (mechanism 3): member route blobs + user data.
struct AgentPayload {
  std::vector<wire::Bytes> member_routes;
  wire::Bytes data;
};

wire::Bytes encode_agent_payload(const AgentPayload& payload);
AgentPayload decode_agent_payload(const wire::Bytes& bytes);

}  // namespace srp::core
