// Type-of-service and priority semantics (paper §2, §5).
//
// The VIPER priority field is 4 bits: "Normal priority is 0 with 7 highest
// priority.  Priorities 6 and 7 preempt the transmission of lower priority
// packets in mid-transmission if necessary.  Values with the high-order bit
// set represent lower priorities, 0xF being the lowest priority."
#pragma once

#include <cstdint>

namespace srp::core {

/// Per-packet handling when blocked at a router: the paper's
/// "preempt, save or drop".  Preemption derives from the priority value;
/// drop is VIPER's DIB (Drop If Blocked) flag; save is the default.
struct TypeOfService {
  std::uint8_t priority = 0;     ///< 4-bit VIPER priority
  bool drop_if_blocked = false;  ///< VIPER DIB flag

  bool operator==(const TypeOfService&) const = default;
};

/// Total order over the 4-bit priority space: returns a rank where higher
/// means served first.  0..7 map to ranks 0..7; 8..15 sit *below* 0 with
/// 0xF lowest (ranks -1..-8).
constexpr int priority_rank(std::uint8_t priority) {
  const std::uint8_t p = priority & 0x0F;
  return p < 8 ? static_cast<int>(p) : 7 - static_cast<int>(p);
}

/// True for the preemptive priorities (6 and 7).
constexpr bool priority_preempts(std::uint8_t priority) {
  const std::uint8_t p = priority & 0x0F;
  return p == 6 || p == 7;
}

inline constexpr std::uint8_t kPriorityNormal = 0;
inline constexpr std::uint8_t kPriorityPreemptLow = 6;
inline constexpr std::uint8_t kPriorityHighest = 7;
inline constexpr std::uint8_t kPriorityLowest = 0x0F;

}  // namespace srp::core
