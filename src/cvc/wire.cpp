#include "cvc/wire.hpp"

namespace srp::cvc {

wire::Bytes encode_frame(const Frame& frame) {
  wire::Writer w(16 + frame.route.size() + frame.payload.size());
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u16(frame.vci);
  if (frame.type == FrameType::kSetup) {
    w.u64(frame.call_id);
    w.u8(static_cast<std::uint8_t>(frame.route.size()));
    w.bytes(frame.route);
  }
  w.bytes(frame.payload);
  return std::move(w).take();
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> bytes) {
  try {
    wire::Reader r(bytes);
    Frame frame;
    const std::uint8_t type = r.u8();
    if (type < 1 || type > 5) return std::nullopt;
    frame.type = static_cast<FrameType>(type);
    frame.vci = r.u16();
    if (frame.type == FrameType::kSetup) {
      frame.call_id = r.u64();
      const std::uint8_t hops = r.u8();
      frame.route.resize(hops);
      const auto v = r.view(hops);
      std::copy(v.begin(), v.end(), frame.route.begin());
    }
    frame.payload = r.bytes(r.remaining());
    return frame;
  } catch (const wire::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace srp::cvc
