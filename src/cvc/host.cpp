#include "cvc/host.hpp"

namespace srp::cvc {

CvcHost::CvcHost(sim::Simulator& sim, std::string name,
                 net::PacketFactory& packets, CvcHostConfig config)
    : net::PortedNode(sim, std::move(name)), packets_(packets),
      config_(config) {}

void CvcHost::transmit(const Frame& frame) {
  net::PacketPtr packet = packets_.make(encode_frame(frame), sim_.now());
  port(1).enqueue(std::move(packet), net::TxMeta{}, 0);
}

void CvcHost::open(const std::vector<std::uint8_t>& switch_ports,
                   OpenCallback callback) {
  ++next_vci_;
  if (next_vci_ == 0) ++next_vci_;
  const std::uint16_t vci = next_vci_;

  Circuit circuit;
  circuit.callback = std::move(callback);
  circuit.timer = sim_.after(config_.setup_timeout, [this, vci] {
    const auto it = circuits_.find(vci);
    if (it == circuits_.end() || it->second.state != CircuitState::kPending) {
      return;
    }
    ++stats_.setup_timeouts;
    OpenCallback cb = std::move(it->second.callback);
    circuits_.erase(it);
    if (cb) cb(std::nullopt);
  });
  circuits_[vci] = std::move(circuit);

  Frame setup;
  setup.type = FrameType::kSetup;
  setup.vci = vci;
  setup.call_id = next_call_++;
  setup.route = switch_ports;
  ++stats_.setups_sent;
  transmit(setup);
}

void CvcHost::send(std::uint16_t circuit,
                   std::span<const std::uint8_t> data) {
  Frame frame;
  frame.type = FrameType::kData;
  frame.vci = circuit;
  frame.payload.assign(data.begin(), data.end());
  ++stats_.data_sent;
  transmit(frame);
}

void CvcHost::close(std::uint16_t circuit) {
  const auto it = circuits_.find(circuit);
  if (it == circuits_.end()) return;
  if (it->second.timer != 0) sim_.cancel(it->second.timer);
  circuits_.erase(it);
  ++stats_.released;
  Frame release;
  release.type = FrameType::kRelease;
  release.vci = circuit;
  transmit(release);
}

void CvcHost::on_arrival(const net::Arrival& arrival) {
  sim_.at(arrival.tail, [this, arrival] { process(arrival); });
}

void CvcHost::process(const net::Arrival& arrival) {
  if (arrival.packet->effectively_truncated()) return;
  const auto frame = decode_frame(arrival.packet->bytes);
  if (!frame.has_value()) return;

  switch (frame->type) {
    case FrameType::kSetup: {
      // Incoming call: the VCI on our link was chosen by the last switch.
      Circuit circuit;
      circuit.state = CircuitState::kEstablished;
      circuits_[frame->vci] = std::move(circuit);
      ++stats_.accepted;
      Frame connect;
      connect.type = FrameType::kConnect;
      connect.vci = frame->vci;
      transmit(connect);
      if (accept_handler_) accept_handler_(frame->vci);
      break;
    }
    case FrameType::kConnect: {
      const auto it = circuits_.find(frame->vci);
      if (it == circuits_.end()) break;
      if (it->second.state == CircuitState::kPending) {
        it->second.state = CircuitState::kEstablished;
        if (it->second.timer != 0) sim_.cancel(it->second.timer);
        ++stats_.connected;
        if (it->second.callback) {
          OpenCallback cb = std::move(it->second.callback);
          cb(frame->vci);
        }
      }
      break;
    }
    case FrameType::kReject: {
      const auto it = circuits_.find(frame->vci);
      if (it == circuits_.end()) break;
      if (it->second.timer != 0) sim_.cancel(it->second.timer);
      OpenCallback cb = std::move(it->second.callback);
      circuits_.erase(it);
      if (cb) cb(std::nullopt);
      break;
    }
    case FrameType::kRelease: {
      circuits_.erase(frame->vci);
      ++stats_.released;
      break;
    }
    case FrameType::kData: {
      const auto it = circuits_.find(frame->vci);
      if (it == circuits_.end() ||
          it->second.state != CircuitState::kEstablished) {
        break;
      }
      ++stats_.data_received;
      if (data_handler_) data_handler_(frame->vci, frame->payload);
      break;
    }
  }
}

}  // namespace srp::cvc
