// Wire format for the concatenated-virtual-circuit (X.75-style) baseline.
//
// The paper's first strawman: "The CVC approach requires a circuit setup
// between endpoints before communication can take place, introducing a
// full roundtrip delay.  It also requires a significant amount of state in
// the gateways."  Frames are label-switched: every frame leads with a type
// byte and the VCI for the link it travels on; SETUP additionally carries
// the remaining source-routed switch ports and an end-to-end call id.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "wire/buffer.hpp"

namespace srp::cvc {

enum class FrameType : std::uint8_t {
  kSetup = 1,    ///< allocates circuit state hop by hop
  kConnect = 2,  ///< confirmation travelling back to the caller
  kReject = 3,   ///< setup failure travelling back
  kRelease = 4,  ///< tears circuit state down
  kData = 5,
};

struct Frame {
  FrameType type = FrameType::kData;
  std::uint16_t vci = 0;  ///< virtual circuit id on the current link

  // kSetup only:
  std::uint64_t call_id = 0;
  std::vector<std::uint8_t> route;  ///< remaining switch output ports

  wire::Bytes payload;  ///< kData: user bytes

  bool operator==(const Frame&) const = default;
};

wire::Bytes encode_frame(const Frame& frame);
std::optional<Frame> decode_frame(std::span<const std::uint8_t> bytes);

}  // namespace srp::cvc
