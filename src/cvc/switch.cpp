#include "cvc/switch.hpp"

#include <algorithm>

namespace srp::cvc {

CvcSwitch::CvcSwitch(sim::Simulator& sim, std::string name,
                     SwitchConfig config)
    : net::PortedNode(sim, std::move(name)), config_(config) {}

std::uint16_t CvcSwitch::allocate_vci(int port_index) {
  std::uint16_t& next = next_vci_[port_index];
  ++next;
  if (next == 0) ++next;  // 0 reserved
  return next;
}

void CvcSwitch::on_arrival(const net::Arrival& arrival) {
  const auto frame = decode_frame(arrival.packet->bytes);
  if (!frame.has_value()) {
    ++stats_.dropped_malformed;
    return;
  }
  const sim::Time proc = frame->type == FrameType::kData
                             ? config_.data_proc
                             : config_.setup_proc;
  // Store-and-forward: act once the whole frame is in, plus processing.
  sim_.at(arrival.tail + proc, [this, arrival] { process(arrival); });
}

void CvcSwitch::process(const net::Arrival& arrival) {
  if (arrival.packet->effectively_truncated()) {
    ++stats_.dropped_malformed;
    return;
  }
  auto frame = decode_frame(arrival.packet->bytes);
  if (!frame.has_value()) {
    ++stats_.dropped_malformed;
    return;
  }

  if (frame->type == FrameType::kSetup) {
    ++stats_.setups;
    const int out_port =
        frame->route.empty() ? 0 : frame->route.front();
    if (out_port <= 0 || out_port > port_count() ||
        out_port == arrival.in_port) {
      // Unroutable call: reject back toward the caller so it learns
      // immediately instead of waiting out the setup timer.
      ++stats_.dropped_malformed;
      Frame reject;
      reject.type = FrameType::kReject;
      reject.vci = frame->vci;
      forward(arrival.in_port, reject, *arrival.packet);
      return;
    }
    const std::uint16_t out_vci = allocate_vci(out_port);
    const Leg in_leg{arrival.in_port, frame->vci};
    const Leg out_leg{out_port, out_vci};
    table_[in_leg] = out_leg;
    table_[out_leg] = in_leg;
    stats_.circuits_active = table_.size() / 2;
    stats_.circuits_peak =
        std::max(stats_.circuits_peak, stats_.circuits_active);

    Frame forward_frame = *frame;
    forward_frame.vci = out_vci;
    forward_frame.route.erase(forward_frame.route.begin());
    forward(out_port, forward_frame, *arrival.packet);
    return;
  }

  // CONNECT / REJECT / RELEASE / DATA all follow the established mapping.
  const auto it = table_.find(Leg{arrival.in_port, frame->vci});
  if (it == table_.end()) {
    ++stats_.dropped_unknown_vci;
    return;
  }
  const Leg out = it->second;
  Frame forward_frame = *frame;
  forward_frame.vci = out.second;
  forward(out.first, forward_frame, *arrival.packet);

  if (frame->type == FrameType::kRelease ||
      frame->type == FrameType::kReject) {
    ++stats_.releases;
    table_.erase(Leg{arrival.in_port, frame->vci});
    table_.erase(out);
    stats_.circuits_active = table_.size() / 2;
  } else if (frame->type == FrameType::kData) {
    ++stats_.data_forwarded;
  }
}

void CvcSwitch::forward(int out_port, const Frame& frame,
                        const net::Packet& origin) {
  net::PacketPtr packet = origin.derive(encode_frame(frame));
  packet->last_in_port = origin.last_in_port;
  port(out_port).enqueue(std::move(packet), net::TxMeta{}, 0);
}

}  // namespace srp::cvc
