// CVC end host: opens circuits (paying the setup round trip), sends data
// frames on them, accepts incoming calls, and releases state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "cvc/wire.hpp"
#include "net/network.hpp"

namespace srp::cvc {

struct CvcHostConfig {
  sim::Time setup_timeout = 200 * sim::kMillisecond;
};

class CvcHost : public net::PortedNode {
 public:
  struct Stats {
    std::uint64_t setups_sent = 0;
    std::uint64_t connected = 0;
    std::uint64_t setup_timeouts = 0;
    std::uint64_t accepted = 0;
    std::uint64_t data_sent = 0;
    std::uint64_t data_received = 0;
    std::uint64_t released = 0;
  };

  /// nullopt = setup failed (timeout / reject); value = local circuit id.
  using OpenCallback =
      std::function<void(std::optional<std::uint16_t> circuit)>;
  using DataHandler =
      std::function<void(std::uint16_t circuit, wire::Bytes data)>;
  using AcceptHandler = std::function<void(std::uint16_t circuit)>;

  CvcHost(sim::Simulator& sim, std::string name, net::PacketFactory& packets,
          CvcHostConfig config = {});

  /// Opens a circuit through the given switch output ports (first entry is
  /// the first switch's port).  The paper's criticism is made measurable:
  /// no data can flow until the CONNECT returns, one full round trip later.
  void open(const std::vector<std::uint8_t>& switch_ports,
            OpenCallback callback);

  void send(std::uint16_t circuit, std::span<const std::uint8_t> data);
  void close(std::uint16_t circuit);

  void set_data_handler(DataHandler handler) {
    data_handler_ = std::move(handler);
  }
  void set_accept_handler(AcceptHandler handler) {
    accept_handler_ = std::move(handler);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  void on_arrival(const net::Arrival& arrival) override;

 private:
  enum class CircuitState { kPending, kEstablished };
  struct Circuit {
    CircuitState state = CircuitState::kPending;
    OpenCallback callback;
    sim::EventId timer = 0;
  };

  void process(const net::Arrival& arrival);
  void transmit(const Frame& frame);

  net::PacketFactory& packets_;
  CvcHostConfig config_;
  std::map<std::uint16_t, Circuit> circuits_;  ///< by VCI on our uplink
  std::uint16_t next_vci_ = 0;
  std::uint64_t next_call_ = 1;
  DataHandler data_handler_;
  AcceptHandler accept_handler_;
  Stats stats_;
};

}  // namespace srp::cvc
