// Virtual-circuit switch for the CVC baseline.
//
// SETUP frames allocate per-circuit state (both directions of the label
// mapping) and pay call-processing time at every switch; DATA frames are
// label-swapped store-and-forward.  The switch counts its peak circuit
// state — the cost the paper holds against the CVC approach.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cvc/wire.hpp"
#include "net/network.hpp"

namespace srp::cvc {

struct SwitchConfig {
  /// Call processing per SETUP/CONNECT/RELEASE (circuit bookkeeping).
  sim::Time setup_proc = 500 * sim::kMicrosecond;
  /// Per-packet label swap + store-and-forward processing.
  sim::Time data_proc = 5 * sim::kMicrosecond;
  /// Memory cost per circuit-table entry, for the state accounting.
  std::size_t bytes_per_entry = 32;
};

class CvcSwitch : public net::PortedNode {
 public:
  struct Stats {
    std::uint64_t setups = 0;
    std::uint64_t releases = 0;
    std::uint64_t data_forwarded = 0;
    std::uint64_t dropped_unknown_vci = 0;
    std::uint64_t dropped_malformed = 0;
    std::size_t circuits_active = 0;   ///< current (in both directions / 2)
    std::size_t circuits_peak = 0;
  };

  CvcSwitch(sim::Simulator& sim, std::string name, SwitchConfig config);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t state_bytes() const {
    return table_.size() * config_.bytes_per_entry;
  }
  [[nodiscard]] std::size_t peak_state_bytes() const {
    return 2 * stats_.circuits_peak * config_.bytes_per_entry;
  }

  void on_arrival(const net::Arrival& arrival) override;

 private:
  using Leg = std::pair<int, std::uint16_t>;  // (port, vci)

  void process(const net::Arrival& arrival);
  void forward(int out_port, const Frame& frame, const net::Packet& origin);
  std::uint16_t allocate_vci(int port_index);

  SwitchConfig config_;
  std::map<Leg, Leg> table_;  ///< both directions present
  std::map<int, std::uint16_t> next_vci_;
  Stats stats_;
};

}  // namespace srp::cvc
