#include "fault/engine.hpp"

#include <algorithm>
#include <utility>

#include "check/analysis.hpp"
#include "check/contract.hpp"

namespace srp::fault {
namespace {

/// FNV-1a over the target name: the per-target seed perturbation.  Names
/// are unique within a simulation (node name + port index), so streams
/// never collide in practice.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

net::PacketPtr clone_packet(const net::Packet& packet) {
  auto copy = std::make_shared<net::Packet>();
  copy->bytes = packet.bytes;
  copy->id = packet.id;
  copy->created = packet.created;
  copy->flow = packet.flow;
  copy->hops = packet.hops;
  copy->truncated = packet.truncated;
  copy->last_in_port = packet.last_in_port;
  copy->feedforward = packet.feedforward;
  copy->recirculations = packet.recirculations;
  copy->trace_id = packet.trace_id;
  copy->route_digest = packet.route_digest;
  copy->telemetry = packet.telemetry;
  copy->parent = packet.parent;
  return copy;
}

FaultEngine::FaultEngine(sim::Simulator& sim, FaultPlan plan,
                         stats::Registry& registry, sim::Trace* trace)
    : sim_(sim), plan_(std::move(plan)), registry_(registry), trace_(trace) {}

sim::Rng FaultEngine::stream_for(const std::string& target_name) const {
  // Seed mixing happens inside Rng (SplitMix64), so XOR is enough to give
  // every target a well-separated stream from the single plan seed.
  return sim::Rng(plan_.seed ^ fnv1a(target_name));
}

void FaultEngine::note(const std::string& target, const char* lane,
                       std::uint64_t detail) {
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->emit(sim_.now(), "fault",
                 target + " " + lane + " id=" + std::to_string(detail));
  }
}

SRP_SIM_VISIBLE void FaultEngine::attach(net::TxPort& port) {
  const LaneConfig& lane = plan_.lane_for(port.name());
  if (!lane.any()) return;

  ports_.emplace_back(&port, lane, stream_for(port.name()));
  PortState& state = ports_.back();
  // Port names contain ':' (e.g. "r1:p2"), which the metric-naming
  // convention forbids; sanitize the instance segment.
  const std::string name = stats::metric_component(port.name());
  state.dropped = &registry_.counter("fault." + name + ".drop");
  state.corrupted = &registry_.counter("fault." + name + ".corrupt");
  state.duplicated = &registry_.counter("fault." + name + ".duplicate");
  state.reordered = &registry_.counter("fault." + name + ".reorder");
  state.jittered = &registry_.counter("fault." + name + ".jitter");
  state.flapped = &registry_.counter("fault." + name + ".flap");

  if (lane.drop_rate > 0 || lane.corrupt_rate > 0 ||
      lane.duplicate_rate > 0 || lane.reorder_rate > 0 ||
      lane.jitter_rate > 0 || !lane.script.empty()) {
    port.fault_hook = [this, &state](net::PacketPtr& packet,
                                     net::TxMeta& meta,
                                     sim::Time& earliest_start) {
      return on_enqueue(state, packet, meta, earliest_start);
    };
  }
  if (lane.flaps_per_second > 0) schedule_next_flap(state);
}

void FaultEngine::attach_all(net::PortedNode& node) {
  for (int i = 1; i <= node.port_count(); ++i) attach(node.port(i));
}

net::FaultVerdict FaultEngine::on_enqueue(PortState& state,
                                          net::PacketPtr& packet,
                                          net::TxMeta& meta,
                                          sim::Time& earliest_start) {
  const LaneConfig& lane = state.lane;
  sim::Rng& rng = state.rng;

  // Scripted lane first: deterministic faults keyed on the packet index,
  // no RNG draw (counterexample replay must not disturb the random
  // streams of any co-configured probabilistic lanes).
  const std::uint64_t index = state.enqueues++;
  for (const ScriptedFault& scripted : lane.script) {
    if (scripted.packet_index != index) continue;
    switch (scripted.action) {
      case ScriptedFault::Action::kDrop:
        state.dropped->add();
        note(state.port->name(), "drop", packet->id);
        return net::FaultVerdict::kDrop;
      case ScriptedFault::Action::kCorrupt: {
        if (packet->bytes.empty()) break;
        net::PacketPtr damaged = clone_packet(*packet);
        // Deterministic damage: invert the leading bytes, which breaks
        // any sane framing the same way every replay.
        for (std::size_t i = 0; i < 4 && i < damaged->bytes.size(); ++i) {
          damaged->bytes[i] ^= 0xFF;
        }
        state.corrupted->add();
        note(state.port->name(), "corrupt", packet->id);
        packet = std::move(damaged);
        break;
      }
      case ScriptedFault::Action::kDuplicate:
        state.duplicated->add();
        note(state.port->name(), "duplicate", packet->id);
        sim_.after(std::max<sim::Time>(scripted.delay, 1),
                   [port = state.port, copy = clone_packet(*packet), meta,
                    earliest_start]() mutable {
                     port->enqueue_unfiltered(std::move(copy), meta,
                                              earliest_start);
                   });
        break;
      case ScriptedFault::Action::kReorder:
        state.reordered->add();
        note(state.port->name(), "reorder", packet->id);
        sim_.after(std::max<sim::Time>(scripted.delay, 1),
                   [port = state.port, held = std::move(packet), meta,
                    earliest_start]() mutable {
                     port->enqueue_unfiltered(std::move(held), meta,
                                              earliest_start);
                   });
        return net::FaultVerdict::kConsume;
    }
  }

  // Lane order is fixed — it is part of the seed-replay contract.
  if (lane.drop_rate > 0 && rng.chance(lane.drop_rate)) {
    state.dropped->add();
    note(state.port->name(), "drop", packet->id);
    return net::FaultVerdict::kDrop;
  }

  if (lane.corrupt_rate > 0 && rng.chance(lane.corrupt_rate) &&
      !packet->bytes.empty()) {
    // Corrupt a private copy: the caller may share this image with an
    // upstream cut-through chain that must keep its own bytes intact.
    net::PacketPtr damaged = clone_packet(*packet);
    corrupt_bytes(state, damaged->bytes);
    state.corrupted->add();
    note(state.port->name(), "corrupt", packet->id);
    packet = std::move(damaged);
  }

  if (lane.duplicate_rate > 0 && rng.chance(lane.duplicate_rate)) {
    const sim::Time lag =
        1 + static_cast<sim::Time>(rng.uniform_int(
                0, static_cast<std::uint64_t>(lane.duplicate_lag_max)));
    state.duplicated->add();
    note(state.port->name(), "duplicate", packet->id);
    sim_.after(lag, [port = state.port, copy = clone_packet(*packet), meta,
                     earliest_start]() mutable {
      port->enqueue_unfiltered(std::move(copy), meta, earliest_start);
    });
  }

  if (lane.reorder_rate > 0 && rng.chance(lane.reorder_rate)) {
    // Hold the packet so traffic behind it overtakes; it re-enters through
    // the unfiltered path (a held packet is not perturbed twice).
    const sim::Time hold =
        1 + static_cast<sim::Time>(rng.uniform_int(
                0, static_cast<std::uint64_t>(lane.reorder_hold_max)));
    state.reordered->add();
    note(state.port->name(), "reorder", packet->id);
    sim_.after(hold, [port = state.port, held = std::move(packet), meta,
                      earliest_start]() mutable {
      port->enqueue_unfiltered(std::move(held), meta, earliest_start);
    });
    return net::FaultVerdict::kConsume;
  }

  if (lane.jitter_rate > 0 && rng.chance(lane.jitter_rate)) {
    const sim::Time jitter = static_cast<sim::Time>(
        rng.uniform_int(1, static_cast<std::uint64_t>(
                               std::max<sim::Time>(lane.jitter_max, 1))));
    state.jittered->add();
    note(state.port->name(), "jitter", packet->id);
    earliest_start = std::max(earliest_start, sim_.now()) + jitter;
  }

  return net::FaultVerdict::kPass;
}

void FaultEngine::corrupt_bytes(PortState& state, wire::Bytes& bytes) {
  SIRPENT_EXPECTS(!bytes.empty());
  sim::Rng& rng = state.rng;
  const std::uint64_t total_bits = bytes.size() * 8;
  const std::uint64_t flips = rng.uniform_int(
      1, static_cast<std::uint64_t>(std::max(state.lane.corrupt_max_bits, 1)));
  if (state.lane.corrupt_burst) {
    // A contiguous run of flipped bits starting anywhere in the image.
    const std::uint64_t start = rng.uniform_int(0, total_bits - 1);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::uint64_t bit = (start + i) % total_bits;
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  } else {
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::uint64_t bit = rng.uniform_int(0, total_bits - 1);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
}

void FaultEngine::schedule_next_flap(PortState& state) {
  const double mean_gap_seconds = 1.0 / state.lane.flaps_per_second;
  const sim::Time gap = state.rng.exp_interval(
      static_cast<sim::Time>(mean_gap_seconds * sim::kSecond));
  const sim::Time down_for = static_cast<sim::Time>(state.rng.uniform_int(
      static_cast<std::uint64_t>(state.lane.flap_down_min),
      static_cast<std::uint64_t>(
          std::max(state.lane.flap_down_max, state.lane.flap_down_min))));
  sim_.after(gap, [this, &state, down_for] {
    state.flapped->add();
    note(state.port->name(), "flap", static_cast<std::uint64_t>(down_for));
    state.port->set_up(false);
    sim_.after(down_for, [this, &state] {
      state.port->set_up(true);
      schedule_next_flap(state);
    });
  });
}

void FaultEngine::schedule_flap(net::TxPort& port, sim::Time down_at,
                                sim::Time down_for) {
  SIRPENT_EXPECTS(down_for > 0);
  stats::Counter& counter =
      registry_.counter("fault." + stats::metric_component(port.name()) +
                        ".flap");
  sim_.at(down_at, [this, &port, &counter, down_for] {
    counter.add();
    note(port.name(), "flap", static_cast<std::uint64_t>(down_for));
    port.set_up(false);
    sim_.after(down_for, [&port] { port.set_up(true); });
  });
}

void FaultEngine::attach_token_cache(const std::string& name,
                                     tokens::TokenCache& cache) {
  const bool scripted = !plan_.scripted_poisons.empty();
  const bool random = plan_.token_poisons_per_second > 0;
  if (!scripted && !random) return;
  stats::Counter& counter =
      registry_.counter("fault." + stats::metric_component(name) +
                        ".token_poison");
  for (const FaultPlan::ScriptedPoison& poison : plan_.scripted_poisons) {
    sim_.at(poison.at, [this, name, &cache, &counter, poison] {
      if (cache.poison(poison.selector, poison.flag) > 0) {
        counter.add();
        note(name, "token_poison", poison.selector);
      }
    });
  }
  if (!random) return;
  schedule_next_poison(name, cache, stream_for(name + "/tokens"), counter);
}

void FaultEngine::schedule_next_poison(const std::string& name,
                                       tokens::TokenCache& cache,
                                       sim::Rng rng,
                                       stats::Counter& counter) {
  const double mean_gap_seconds = 1.0 / plan_.token_poisons_per_second;
  const sim::Time gap =
      rng.exp_interval(static_cast<sim::Time>(mean_gap_seconds * sim::kSecond));
  const std::uint64_t selector = rng.next_u64();
  sim_.after(gap, [this, name, &cache, rng, &counter, selector]() mutable {
    if (cache.poison(selector, plan_.token_poison_flag) > 0) {
      counter.add();
      note(name, "token_poison", selector);
    }
    schedule_next_poison(name, cache, rng, counter);
  });
}

std::uint64_t FaultEngine::count(const std::string& target,
                                 const std::string& lane) const {
  return registry_
      .counter("fault." + stats::metric_component(target) + "." + lane)
      .value();
}

}  // namespace srp::fault
