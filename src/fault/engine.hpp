// Deterministic fault-injection engine: executes a FaultPlan against the
// simulated forwarding plane.
//
// The engine installs a net::TxPort::fault_hook on every attached port and
// drives the schedule-driven lanes (link flaps, token-cache poisoning)
// from simulator events.  Every random decision comes from a per-target
// RNG stream derived from the plan seed and the target's *name* — not
// from attach order — so a topology attached in any order replays
// byte-identically from one seed.
//
// Each lane fires through a stats::Registry counter named
// "fault.<target>.<lane>" and, when a sim::Trace is supplied and enabled,
// leaves a trace record; chaos tests reconcile these counters against the
// end-to-end transport counters to prove every injected fault was either
// absorbed or detected.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "fault/plan.hpp"
#include "net/network.hpp"
#include "net/port.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "stats/registry.hpp"
#include "tokens/cache.hpp"

namespace srp::fault {

class FaultEngine {
 public:
  /// The engine schedules on @p sim and counts through @p registry.
  /// @p trace is optional; records are emitted only while it is enabled.
  FaultEngine(sim::Simulator& sim, FaultPlan plan, stats::Registry& registry,
              sim::Trace* trace = nullptr);

  /// Installs the plan's lane for @p port (by port name).  A port whose
  /// lane can never fire is left untouched — its enqueue path keeps the
  /// single untaken `if (fault_hook)` branch.
  void attach(net::TxPort& port);

  /// Attaches every port of @p node.
  void attach_all(net::PortedNode& node);

  /// Explicit flap window: @p port goes down at @p down_at and recovers
  /// @p down_for later, independent of the lane's flap process.  Packets
  /// queued or transmitting at the moment of failure are lost, exactly as
  /// fabric link failure loses them.
  void schedule_flap(net::TxPort& port, sim::Time down_at,
                     sim::Time down_for);

  /// Subjects @p cache to the plan's token-poisoning process; @p name
  /// keys the counters (use the owning router's name).
  void attach_token_cache(const std::string& name,
                          tokens::TokenCache& cache);

  /// Convenience: value of counter "fault.<target>.<lane>".
  [[nodiscard]] std::uint64_t count(const std::string& target,
                                    const std::string& lane) const;

 private:
  struct PortState {
    net::TxPort* port = nullptr;
    LaneConfig lane;
    sim::Rng rng;
    /// Filtered enqueues seen so far — the packet index the scripted lane
    /// keys on (duplicates and re-held packets bypass the hook and are
    /// not counted, so indices match the model's per-direction ordinals).
    std::uint64_t enqueues = 0;
    stats::Counter* dropped = nullptr;
    stats::Counter* corrupted = nullptr;
    stats::Counter* duplicated = nullptr;
    stats::Counter* reordered = nullptr;
    stats::Counter* jittered = nullptr;
    stats::Counter* flapped = nullptr;

    PortState(net::TxPort* p, LaneConfig l, sim::Rng r)
        : port(p), lane(l), rng(r) {}
  };

  net::FaultVerdict on_enqueue(PortState& state, net::PacketPtr& packet,
                               net::TxMeta& meta, sim::Time& earliest_start);
  void corrupt_bytes(PortState& state, wire::Bytes& bytes);
  void schedule_next_flap(PortState& state);
  void schedule_next_poison(const std::string& name,
                            tokens::TokenCache& cache, sim::Rng rng,
                            stats::Counter& counter);

  /// Independent RNG stream for @p target_name (attach-order free).
  [[nodiscard]] sim::Rng stream_for(const std::string& target_name) const;

  void note(const std::string& target, const char* lane,
            std::uint64_t detail);

  sim::Simulator& sim_;
  FaultPlan plan_;
  stats::Registry& registry_;
  sim::Trace* trace_ = nullptr;
  /// deque: PortState addresses must stay stable — the installed hooks
  /// capture them.
  std::deque<PortState> ports_;
};

/// Deep copy of a packet sharing no mutable state with the original: fresh
/// wire image, identical measurement side-band (same id — duplicates *are*
/// the same packet to the endpoints), same truncation ancestry.
net::PacketPtr clone_packet(const net::Packet& packet);

}  // namespace srp::fault
