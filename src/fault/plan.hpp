// Declarative fault plans for the no-checksum data path.
//
// Sirpent ships packets with no internetwork checksum, no TTL and no
// per-hop verification, betting that end-to-end transport mechanisms catch
// corruption, misdelivery and loss (paper §4).  A FaultPlan states, per
// simplex link, how hard to attack that bet: per-packet lane probabilities
// for drop / corruption / duplication / reordering / delay jitter, a link
// flap process, and a token-cache poisoning process.  The plan itself is
// pure data; src/fault/engine.hpp executes it with RNG streams derived
// deterministically from the single plan seed, so any run — and any
// failure it finds — replays exactly from (plan, seed).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace srp::fault {

/// One deterministic fault applied to the Nth packet enqueued on a port
/// (0-based, counted over the port's whole run, duplicates and re-held
/// packets excluded).  Scripted faults are how model-checker
/// counterexamples (src/mc) replay through the real sim: the explorer's
/// "drop message #3 on the client→server hop" converts mechanically to
/// `{packet_index: 3, action: kDrop}` on that hop's port.  Unlike the
/// probabilistic lanes, scripted faults draw no randomness at all.
struct ScriptedFault {
  enum class Action : std::uint8_t { kDrop, kCorrupt, kDuplicate, kReorder };
  std::uint64_t packet_index = 0;
  Action action = Action::kDrop;
  /// kDuplicate: lag before the clone; kReorder: hold window.
  sim::Time delay = 10 * sim::kMicrosecond;
};

/// Per-lane perturbation parameters for one simplex link.  All `*_rate`
/// fields are per-packet Bernoulli probabilities drawn from the port's
/// private RNG stream; the draw order (drop, corrupt, duplicate, reorder,
/// jitter) is part of the replay contract.
struct LaneConfig {
  // --- drop lane: the packet silently disappears ---
  double drop_rate = 0.0;

  // --- corruption lane: bits flip in the wire image ---
  double corrupt_rate = 0.0;
  /// Bits flipped per corruption event (1..corrupt_max_bits, uniform).
  int corrupt_max_bits = 8;
  /// Flip a contiguous bit run (cable hit) instead of scattered bits.
  bool corrupt_burst = false;

  // --- duplication lane: a clone follows the original ---
  double duplicate_rate = 0.0;
  sim::Time duplicate_lag_max = 20 * sim::kMicrosecond;

  // --- reorder lane: the packet is held so later ones overtake it ---
  double reorder_rate = 0.0;
  sim::Time reorder_hold_max = 50 * sim::kMicrosecond;

  // --- delay lane: extra earliest-start jitter ---
  double jitter_rate = 0.0;
  sim::Time jitter_max = 30 * sim::kMicrosecond;

  // --- link flap lane: the port goes down for a window, then recovers ---
  /// Mean flaps per simulated second (exponential gaps); 0 disables.
  double flaps_per_second = 0.0;
  sim::Time flap_down_min = 100 * sim::kMicrosecond;
  sim::Time flap_down_max = 2 * sim::kMillisecond;

  // --- scripted lane: deterministic faults by packet index ---
  std::vector<ScriptedFault> script;

  /// True if any lane of this config can ever fire.
  [[nodiscard]] bool any() const {
    return drop_rate > 0 || corrupt_rate > 0 || duplicate_rate > 0 ||
           reorder_rate > 0 || jitter_rate > 0 || flaps_per_second > 0 ||
           !script.empty();
  }
};

/// A complete, replayable fault schedule.  `defaults` applies to every
/// attached port; `per_port` overrides by TxPort name (e.g. "r1:p2").
struct FaultPlan {
  std::uint64_t seed = 1;
  LaneConfig defaults;
  std::map<std::string, LaneConfig> per_port;

  // --- token-cache poisoning lane (per attached cache) ---
  /// Mean poisoning events per simulated second; 0 disables.
  double token_poisons_per_second = 0.0;
  /// false: the victim entry is forgotten (re-verified on next use, the
  /// recoverable failure).  true: the entry is marked bad, blocking its
  /// users until the endpoints route around the damage.
  bool token_poison_flag = false;

  /// One deterministic poisoning of every attached cache at a fixed time
  /// (counterexample replay, mirroring ScriptedFault for the wire lanes).
  struct ScriptedPoison {
    sim::Time at = 0;
    bool flag = false;
    std::uint64_t selector = 0;  ///< victim: sorted-key index mod size
  };
  std::vector<ScriptedPoison> scripted_poisons;

  /// The lane config governing @p port_name.
  [[nodiscard]] const LaneConfig& lane_for(
      const std::string& port_name) const {
    const auto it = per_port.find(port_name);
    return it == per_port.end() ? defaults : it->second;
  }

  /// Creates (or returns) the per-port override for @p port_name,
  /// initialized from the defaults.
  LaneConfig& lane(const std::string& port_name) {
    const auto it = per_port.find(port_name);
    if (it != per_port.end()) return it->second;
    return per_port.emplace(port_name, defaults).first->second;
  }
};

}  // namespace srp::fault
