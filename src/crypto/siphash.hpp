// SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
//
// Used as the keyed MAC over encrypted token bodies (forgery resistance)
// and as the hash for the router token cache, which the paper keys by "the
// encrypted value".
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace srp::crypto {

/// 128-bit SipHash key.
using SipKey = std::array<std::uint64_t, 2>;

/// SipHash-2-4 of @p data under @p key.
std::uint64_t siphash24(const SipKey& key, std::span<const std::uint8_t> data);

}  // namespace srp::crypto
