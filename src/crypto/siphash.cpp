#include "crypto/siphash.hpp"

namespace srp::crypto {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

std::uint64_t load_le64(const std::uint8_t* p, std::size_t n) {
  // Loads up to 8 bytes little-endian, zero-padded.
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t siphash24(const SipKey& key,
                        std::span<const std::uint8_t> data) {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ key[0];
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ key[1];
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ key[0];
  std::uint64_t v3 = 0x7465646279746573ULL ^ key[1];

  auto round = [&] {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  };

  const std::size_t len = data.size();
  const std::size_t whole = len / 8 * 8;
  for (std::size_t off = 0; off < whole; off += 8) {
    const std::uint64_t m = load_le64(&data[off], 8);
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t tail =
      whole < len ? load_le64(&data[whole], len - whole) : 0;
  tail |= static_cast<std::uint64_t>(len & 0xff) << 56;
  v3 ^= tail;
  round();
  round();
  v0 ^= tail;

  v2 ^= 0xff;
  round();
  round();
  round();
  round();
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace srp::crypto
