#include "crypto/xtea.hpp"

#include <stdexcept>

namespace srp::crypto {
namespace {

constexpr std::uint32_t kDelta = 0x9E3779B9u;
constexpr int kRounds = 32;  // 32 cycles = 64 Feistel rounds

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void xtea_encrypt_block(const XteaKey& key, std::uint32_t v[2]) {
  std::uint32_t v0 = v[0], v1 = v[1], sum = 0;
  for (int i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  v[0] = v0;
  v[1] = v1;
}

void xtea_decrypt_block(const XteaKey& key, std::uint32_t v[2]) {
  std::uint32_t v0 = v[0], v1 = v[1];
  std::uint32_t sum = kDelta * kRounds;
  for (int i = 0; i < kRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
  }
  v[0] = v0;
  v[1] = v1;
}

std::vector<std::uint8_t> xtea_cbc_encrypt(const XteaKey& key,
                                           std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> buf(in.begin(), in.end());
  buf.resize((buf.size() + 7) / 8 * 8, 0);
  if (buf.empty()) buf.resize(8, 0);

  std::uint32_t prev[2] = {0, 0};  // zero IV (see header for rationale)
  for (std::size_t off = 0; off < buf.size(); off += 8) {
    std::uint32_t v[2] = {load_be32(&buf[off]) ^ prev[0],
                          load_be32(&buf[off + 4]) ^ prev[1]};
    xtea_encrypt_block(key, v);
    store_be32(&buf[off], v[0]);
    store_be32(&buf[off + 4], v[1]);
    prev[0] = v[0];
    prev[1] = v[1];
  }
  return buf;
}

std::vector<std::uint8_t> xtea_cbc_decrypt(const XteaKey& key,
                                           std::span<const std::uint8_t> in) {
  if (in.empty() || in.size() % 8 != 0) {
    throw std::invalid_argument("xtea_cbc_decrypt: size not a multiple of 8");
  }
  std::vector<std::uint8_t> out(in.size());
  std::uint32_t prev[2] = {0, 0};
  for (std::size_t off = 0; off < in.size(); off += 8) {
    const std::uint32_t c0 = load_be32(&in[off]);
    const std::uint32_t c1 = load_be32(&in[off + 4]);
    std::uint32_t v[2] = {c0, c1};
    xtea_decrypt_block(key, v);
    store_be32(&out[off], v[0] ^ prev[0]);
    store_be32(&out[off + 4], v[1] ^ prev[1]);
    prev[0] = c0;
    prev[1] = c1;
  }
  return out;
}

}  // namespace srp::crypto
