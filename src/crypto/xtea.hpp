// XTEA block cipher (Needham & Wheeler, 1997), implemented from scratch.
//
// The paper's port tokens are "encrypted (difficult-to-forge) capabilities"
// that a router may find expensive to verify in real time.  XTEA gives the
// reproduction a real cipher with a tiny footprint: 64-bit blocks, 128-bit
// keys, 64 Feistel rounds.  Tokens are encrypted in CBC mode with a
// SipHash MAC appended (see tokens/token.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace srp::crypto {

/// 128-bit XTEA key.
using XteaKey = std::array<std::uint32_t, 4>;

/// Encrypts one 64-bit block in place (v = {v0, v1}).
void xtea_encrypt_block(const XteaKey& key, std::uint32_t v[2]);

/// Decrypts one 64-bit block in place.
void xtea_decrypt_block(const XteaKey& key, std::uint32_t v[2]);

/// CBC-mode encryption with a fixed all-zero IV and zero padding to an
/// 8-byte multiple.  Token plaintexts carry their own length field, so the
/// padding is unambiguous; a fixed IV is acceptable because every token
/// plaintext begins with a unique serial number.
std::vector<std::uint8_t> xtea_cbc_encrypt(const XteaKey& key,
                                           std::span<const std::uint8_t> in);

/// Inverse of xtea_cbc_encrypt (output retains the zero padding).
/// Input size must be a non-zero multiple of 8.
std::vector<std::uint8_t> xtea_cbc_decrypt(const XteaKey& key,
                                           std::span<const std::uint8_t> in);

}  // namespace srp::crypto
