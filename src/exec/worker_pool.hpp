// Fixed-size worker pool for parallelizable per-packet work.
//
// "Data Path Processing in Fast Programmable Routers" gets to line rate by
// fanning per-packet work across processors; here the candidate work is
// the token decrypt/verify path (tokens/validator.hpp), stats aggregation
// and congestion accounting.  The deterministic discrete-event loop stays
// single-threaded — workers only ever run side-effect-contained jobs
// between well-defined submit / wait_idle (or submit / await) boundaries,
// so simulation results remain reproducible.
//
// Concurrency discipline: all shared state is SRP_GUARDED_BY(mutex_) and
// the public API is SRP_EXCLUDES(mutex_); Clang's -Wthread-safety proves
// the locking statically, and tests/concurrency_test.cpp hammers it under
// TSan dynamically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "check/sync.hpp"

namespace srp::exec {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t inline_runs = 0;  ///< tasks run inline (zero-worker pool)
  };

  /// Starts @p workers threads.  A pool of 0 workers is valid and runs
  /// every task inline on submit() — the serial baseline configuration,
  /// which keeps call sites free of threading special cases.
  explicit WorkerPool(int workers);

  /// Drains the queue, joins the workers.  Pending tasks do run.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues @p task for execution on some worker.  Tasks must not
  /// submit to the pool they run on's sim thread state; they communicate
  /// results through their own annotated/atomic state.
  void submit(Task task) SRP_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no worker is mid-task.  This is
  /// the batch boundary: after wait_idle() returns, every effect of every
  /// submitted task is visible to the calling thread.
  void wait_idle() SRP_EXCLUDES(mutex_);

  [[nodiscard]] int worker_count() const {
    return static_cast<int>(threads_.size());
  }

  [[nodiscard]] Stats stats() const SRP_EXCLUDES(mutex_);

 private:
  void worker_main();

  mutable Mutex mutex_;
  CondVar work_cv_;  ///< signalled on new work / shutdown
  CondVar idle_cv_;  ///< signalled when the pool may have gone idle

  std::deque<Task> queue_ SRP_GUARDED_BY(mutex_);
  int active_ SRP_GUARDED_BY(mutex_) = 0;
  bool stopping_ SRP_GUARDED_BY(mutex_) = false;
  Stats stats_ SRP_GUARDED_BY(mutex_);

  std::vector<std::thread> threads_;  ///< set in ctor, joined in dtor
};

}  // namespace srp::exec
