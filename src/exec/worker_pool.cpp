#include "exec/worker_pool.hpp"

#include <utility>

#include "check/contract.hpp"

namespace srp::exec {

WorkerPool::WorkerPool(int workers) {
  SIRPENT_EXPECTS(workers >= 0);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::submit(Task task) {
  SIRPENT_EXPECTS(task != nullptr);
  if (threads_.empty()) {
    // Serial pool: run inline.  Count under the lock so stats() stays
    // exact even when a zero-worker pool is shared across threads.
    {
      MutexLock lock(mutex_);
      ++stats_.submitted;
      ++stats_.inline_runs;
      ++stats_.executed;
    }
    task();
    return;
  }
  {
    MutexLock lock(mutex_);
    SIRPENT_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
    ++stats_.submitted;
  }
  work_cv_.notify_one();
}

void WorkerPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ > 0) idle_cv_.wait(mutex_);
}

WorkerPool::Stats WorkerPool::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void WorkerPool::worker_main() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) work_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      ++stats_.executed;
      --active_;
      SIRPENT_INVARIANT(active_ >= 0);
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace srp::exec
