// Source-throttle model for the bounded checker (DESIGN.md §10).
//
// Wraps the pure transition core the congestion throttle drives
// (congestion/throttle_core.hpp) in a one-flow world: rate reports,
// packet acquisitions and periodic ramp/expiry ticks interleave freely
// within budgets, with abstract time advancing one ramp interval per
// tick.  Invariants: every throttle reaches expired once reports stop,
// an active entry's rate stays below the release ceiling, and the
// pacing cursor (next_free) never moves backwards.
#pragma once

#include "congestion/throttle_core.hpp"
#include "mc/model.hpp"

namespace srp::mc {

struct ThrottleScenario {
  std::uint8_t report_budget = 2;
  std::uint8_t acquire_budget = 2;
  std::uint8_t tick_budget = 6;
  double report_rate_bps = 1000.0;
  double rate_ceiling_bps = 1500.0;
};

class ThrottleModel : public Model {
 public:
  explicit ThrottleModel(ThrottleScenario scenario = {},
                         cc::ThrottleStepFn step = &cc::throttle_step);

  [[nodiscard]] std::string name() const override { return "throttle"; }
  [[nodiscard]] StateBytes initial() const override;
  void enabled(const StateBytes& state,
               std::vector<Event>* events) const override;
  [[nodiscard]] StateBytes apply(const StateBytes& state,
                                 const Event& event) const override;
  [[nodiscard]] std::string check(const StateBytes& state) const override;
  [[nodiscard]] bool terminal(const StateBytes& state) const override;
  [[nodiscard]] std::uint64_t progress(
      const StateBytes& state) const override;
  [[nodiscard]] std::vector<std::string> invariants() const override;

  // Event codes.
  static constexpr std::uint8_t kReport = 1;
  static constexpr std::uint8_t kAcquire = 2;
  static constexpr std::uint8_t kTick = 3;

 private:
  ThrottleScenario scenario_;
  cc::ThrottleCoreConfig config_;
  cc::ThrottleStepFn step_;
};

}  // namespace srp::mc
