#include "mc/throttle_model.hpp"

#include <bit>

#include "check/contract.hpp"

namespace srp::mc {
namespace {

using cc::ThrottleActions;
using cc::ThrottleEvent;
using cc::ThrottlePhase;
using cc::ThrottleState;

constexpr std::uint8_t kVioNone = 0;
constexpr std::uint8_t kVioNextFree = 1;

struct World {
  ThrottleState core;
  std::int64_t now = 0;
  std::uint8_t report_budget = 0;
  std::uint8_t acquire_budget = 0;
  std::uint8_t tick_budget = 0;
  std::uint8_t violation = kVioNone;
};

World decode(const StateBytes& bytes) {
  CanonicalReader r(bytes);
  World w;
  w.core.phase = static_cast<ThrottlePhase>(r.u8());
  w.core.rate_bps = std::bit_cast<double>(r.u64());
  w.core.next_free = static_cast<std::int64_t>(r.u64());
  w.core.expires = static_cast<std::int64_t>(r.u64());
  w.core.last_report = static_cast<std::int64_t>(r.u64());
  w.now = static_cast<std::int64_t>(r.u64());
  w.report_budget = r.u8();
  w.acquire_budget = r.u8();
  w.tick_budget = r.u8();
  w.violation = r.u8();
  return w;
}

StateBytes encode(const World& w) {
  CanonicalWriter out;
  out.u8(static_cast<std::uint8_t>(w.core.phase));
  out.u64(std::bit_cast<std::uint64_t>(w.core.rate_bps));
  out.u64(static_cast<std::uint64_t>(w.core.next_free));
  out.u64(static_cast<std::uint64_t>(w.core.expires));
  out.u64(static_cast<std::uint64_t>(w.core.last_report));
  out.u64(static_cast<std::uint64_t>(w.now));
  out.u8(w.report_budget);
  out.u8(w.acquire_budget);
  out.u8(w.tick_budget);
  out.u8(w.violation);
  return out.take();
}

}  // namespace

ThrottleModel::ThrottleModel(ThrottleScenario scenario,
                             cc::ThrottleStepFn step)
    : scenario_(scenario), step_(step) {
  config_.ramp_interval = sim::kMillisecond;
  config_.flow_ttl = 2 * config_.ramp_interval;
  config_.ramp_factor = 2.0;
  config_.rate_ceiling_bps = scenario_.rate_ceiling_bps;
}

StateBytes ThrottleModel::initial() const {
  World w;
  w.report_budget = scenario_.report_budget;
  w.acquire_budget = scenario_.acquire_budget;
  w.tick_budget = scenario_.tick_budget;
  return encode(w);
}

void ThrottleModel::enabled(const StateBytes& state,
                            std::vector<Event>* events) const {
  const World w = decode(state);
  if (w.violation != kVioNone) return;
  if (w.report_budget > 0) {
    events->push_back(Event{kReport, 0, 0, 0, "rate-report"});
  }
  if (w.acquire_budget > 0) {
    events->push_back(Event{kAcquire, 0, 0, 0, "acquire"});
  }
  if (w.tick_budget > 0) {
    events->push_back(Event{kTick, 0, 0, 0, "tick"});
  }
}

StateBytes ThrottleModel::apply(const StateBytes& state,
                                const Event& event) const {
  World w = decode(state);
  ThrottleEvent ev;
  switch (event.code) {
    case kReport:
      --w.report_budget;
      ev.type = ThrottleEvent::Type::kReport;
      ev.rate_bps = scenario_.report_rate_bps;
      break;
    case kAcquire:
      --w.acquire_budget;
      ev.type = ThrottleEvent::Type::kAcquire;
      ev.bytes = 125;  // one abstract packet: 1000 bits
      break;
    case kTick:
      --w.tick_budget;
      // The sweep visits once per ramp interval; abstract time advances
      // with it (ticks are the only clock in this world).
      w.now += config_.ramp_interval;
      ev.type = ThrottleEvent::Type::kTick;
      break;
    default:
      SIRPENT_INVARIANT(false);
  }
  ThrottleActions actions;
  const ThrottleState pre = w.core;
  ThrottleState post = step_(config_, pre, ev, w.now, &actions);
  if (actions.erase) post = ThrottleState{};  // driver drops the entry
  if (post.next_free < pre.next_free) {
    // The pacing cursor ran backwards: already-granted send slots would
    // be re-granted, overcommitting the link.
    if (!actions.erase) w.violation = kVioNextFree;
  }
  w.core = post;
  return encode(w);
}

std::string ThrottleModel::check(const StateBytes& state) const {
  const World w = decode(state);
  if (w.violation == kVioNextFree) return "next-free-monotone";
  if (w.core.phase == ThrottlePhase::kActive &&
      w.core.rate_bps >= config_.rate_ceiling_bps) {
    // Ramping past the ceiling must release the flow, not keep policing
    // it at an absurd rate.
    return "rate-below-ceiling";
  }
  if (w.tick_budget == 0 && w.core.phase == ThrottlePhase::kActive &&
      w.now >= w.core.expires) {
    // Enough quiet ticks have passed to cover the TTL, yet the entry is
    // still policing the flow: the throttle never expires.
    return "throttle-expires";
  }
  return "";
}

bool ThrottleModel::terminal(const StateBytes& state) const {
  const World w = decode(state);
  return w.report_budget == 0 && w.acquire_budget == 0 &&
         w.tick_budget == 0;
}

std::uint64_t ThrottleModel::progress(const StateBytes& state) const {
  const World w = decode(state);
  const std::uint64_t consumed =
      (scenario_.report_budget - w.report_budget) +
      (scenario_.acquire_budget - w.acquire_budget) +
      (scenario_.tick_budget - w.tick_budget);
  return consumed * 10 +
         (w.core.phase == ThrottlePhase::kAbsent ? 1 : 0);
}

std::vector<std::string> ThrottleModel::invariants() const {
  return {"throttle-expires", "rate-below-ceiling", "next-free-monotone"};
}

}  // namespace srp::mc
