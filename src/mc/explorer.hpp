// Explicit-state bounded model checker (DESIGN.md §10).
//
// Depth-first enumeration of every interleaving of the events a Model
// enables — message deliveries, losses, duplications, reorderings and
// timer firings — up to a configurable depth.  Visited states are
// deduplicated on their canonical bytes; a state is re-expanded only when
// reached at a strictly shallower depth than before (so the depth bound
// never hides a reachable successor).  Every state is checked against the
// model's invariants the moment it is generated, and cycles that cannot
// escape to higher progress are reported as livelock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/model.hpp"

namespace srp::mc {

struct ExplorerConfig {
  /// Maximum number of events along any single path.
  int max_depth = 8;
  /// Safety valve on total distinct states (0 = unlimited).
  std::size_t max_states = 0;
  /// Report cycles with no progress-increasing escape as "livelock".
  bool detect_livelock = true;
};

/// An invariant violation plus the event path that reaches it.
struct Violation {
  std::string invariant;      ///< violated invariant (or "livelock")
  std::vector<Event> trace;   ///< events from initial() to the bad state
  StateBytes state;           ///< the violating state
};

struct ExploreResult {
  std::size_t states_visited = 0;  ///< distinct canonical states seen
  std::size_t transitions = 0;     ///< apply() calls made
  int depth_reached = 0;           ///< deepest path expanded
  bool truncated = false;          ///< max_states cut the search short
  std::optional<Violation> violation;  ///< first violation found, if any

  [[nodiscard]] bool ok() const { return !violation.has_value(); }
};

/// Exhaustively explores @p model under @p config.  Stops at the first
/// violation (DFS order is deterministic, so the same violation is found
/// every run).
ExploreResult explore(const Model& model, const ExplorerConfig& config);

/// Greedily shrinks @p trace: repeatedly drops events whose removal keeps
/// the trace legal (every remaining event still enabled in sequence) and
/// still ends in a state violating the same invariant.  Returns the
/// minimized violation (state refreshed by replay).
Violation minimize(const Model& model, const Violation& violation);

/// Replays @p trace from initial(), requiring each event to be enabled at
/// its turn.  Returns the final state, or nullopt if the trace is illegal.
std::optional<StateBytes> replay(const Model& model,
                                 const std::vector<Event>& trace);

}  // namespace srp::mc
