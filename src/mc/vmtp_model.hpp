// VMTP transaction model for the bounded checker (DESIGN.md §10).
//
// Wraps the *same* pure cores the runtime endpoint drives
// (transport/txn_core.hpp: txn_step + rx_step) in a two-party world —
// one client transaction against one echo server — and lets the
// environment misbehave: every in-flight packet can be delivered,
// dropped, duplicated or corrupted (within configured budgets), in any
// order, and every armed timer can fire at any moment.  The explorer
// enumerates all interleavings; the invariants assert the end-to-end
// bets the Sirpent paper makes on the transport (§4).
#pragma once

#include "mc/model.hpp"
#include "transport/txn_core.hpp"

namespace srp::mc {

/// World bounds.  Budgets make the exploration finite and *exhaustive
/// within the budget*: "all interleavings of up to drop_budget losses,
/// dup_budget duplications and corrupt_budget corruptions".
struct VmtpScenario {
  std::uint8_t request_parts = 2;   ///< client request packet-group size
  std::uint8_t response_parts = 1;  ///< server response packet-group size
  int max_retries = 1;
  std::uint8_t drop_budget = 2;
  std::uint8_t dup_budget = 1;
  std::uint8_t corrupt_budget = 1;
  std::uint8_t channel_cap = 4;  ///< max in-flight messages (tail-drop)
};

class VmtpModel : public Model {
 public:
  explicit VmtpModel(VmtpScenario scenario = {},
                     vmtp::TxnStepFn txn = &vmtp::txn_step,
                     vmtp::RxStepFn rx = &vmtp::rx_step)
      : scenario_(scenario), txn_(txn), rx_(rx) {}

  [[nodiscard]] std::string name() const override { return "vmtp"; }
  [[nodiscard]] StateBytes initial() const override;
  void enabled(const StateBytes& state,
               std::vector<Event>* events) const override;
  [[nodiscard]] StateBytes apply(const StateBytes& state,
                                 const Event& event) const override;
  [[nodiscard]] std::string check(const StateBytes& state) const override;
  [[nodiscard]] bool terminal(const StateBytes& state) const override;
  [[nodiscard]] std::uint64_t progress(
      const StateBytes& state) const override;
  [[nodiscard]] std::vector<std::string> invariants() const override;

  // Event codes (Event::code).  For packet events, Event::a is the slot
  // in the canonical channel order, Event::b the direction (0 = client to
  // server, 1 = server to client) and Event::c the per-direction send
  // ordinal — exactly the packet index the scripted fault lane keys on.
  static constexpr std::uint8_t kDeliver = 1;
  static constexpr std::uint8_t kDrop = 2;
  static constexpr std::uint8_t kDup = 3;
  static constexpr std::uint8_t kCorrupt = 4;
  static constexpr std::uint8_t kRtoFire = 5;
  static constexpr std::uint8_t kServerGapFire = 6;
  static constexpr std::uint8_t kClientGapFire = 7;

 private:
  VmtpScenario scenario_;
  vmtp::TxnStepFn txn_;
  vmtp::RxStepFn rx_;
};

}  // namespace srp::mc
