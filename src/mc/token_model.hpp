// Token-cache soft-state model for the bounded checker (DESIGN.md §10).
//
// Wraps the pure transition core the router's TokenCache drives
// (tokens/token_core.hpp) in a one-token world: a bounded stream of
// packets arrives at a router under one UncachedPolicy, verification
// completes good or bad at any time relative to them, and the fault
// plane may poison the entry.  Invariants pin down the paper's
// accounting story: a flagged token never charges, charges never exceed
// the byte limit, the optimistic first-packet admit is settled exactly
// once, and the ledger never exceeds what was actually forwarded.
#pragma once

#include "mc/model.hpp"
#include "tokens/cache.hpp"
#include "tokens/token_core.hpp"

namespace srp::mc {

struct TokenScenario {
  tokens::UncachedPolicy policy = tokens::UncachedPolicy::kOptimistic;
  std::uint8_t packets = 3;       ///< packets the source will send
  std::uint8_t byte_limit = 2;    ///< token's byte limit (1 byte/packet)
  std::uint8_t poison_budget = 1;
};

class TokenModel : public Model {
 public:
  explicit TokenModel(TokenScenario scenario = {},
                      tokens::TokenStepFn step = &tokens::token_step)
      : scenario_(scenario), step_(step) {}

  [[nodiscard]] std::string name() const override { return "token"; }
  [[nodiscard]] StateBytes initial() const override;
  void enabled(const StateBytes& state,
               std::vector<Event>* events) const override;
  [[nodiscard]] StateBytes apply(const StateBytes& state,
                                 const Event& event) const override;
  [[nodiscard]] std::string check(const StateBytes& state) const override;
  [[nodiscard]] bool terminal(const StateBytes& state) const override;
  [[nodiscard]] std::uint64_t progress(
      const StateBytes& state) const override;
  [[nodiscard]] std::vector<std::string> invariants() const override;

  // Event codes.
  static constexpr std::uint8_t kPacket = 1;
  static constexpr std::uint8_t kVerifyOk = 2;
  static constexpr std::uint8_t kVerifyBad = 3;
  static constexpr std::uint8_t kPoisonForget = 4;
  static constexpr std::uint8_t kPoisonFlag = 5;

 private:
  TokenScenario scenario_;
  tokens::TokenStepFn step_;
};

}  // namespace srp::mc
