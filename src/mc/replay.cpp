#include "mc/replay.hpp"

#include "mc/token_model.hpp"
#include "mc/vmtp_model.hpp"

namespace srp::mc {

fault::FaultPlan to_fault_plan(const CounterExample& cx,
                               const ReplayBinding& binding) {
  fault::FaultPlan plan;
  plan.seed = binding.seed;
  sim::Time next_poison = binding.poison_at;
  for (const Event& event : cx.events) {
    if (cx.model == "vmtp") {
      const std::string& port = event.b == 0
                                    ? binding.client_to_server_port
                                    : binding.server_to_client_port;
      fault::ScriptedFault scripted;
      scripted.packet_index = event.c;
      switch (event.code) {
        case VmtpModel::kDrop:
          scripted.action = fault::ScriptedFault::Action::kDrop;
          break;
        case VmtpModel::kDup:
          scripted.action = fault::ScriptedFault::Action::kDuplicate;
          break;
        case VmtpModel::kCorrupt:
          scripted.action = fault::ScriptedFault::Action::kCorrupt;
          break;
        default:
          continue;  // deliveries and timer fires replay by themselves
      }
      plan.lane(port).script.push_back(scripted);
    } else if (cx.model == "token") {
      if (event.code != TokenModel::kPoisonForget &&
          event.code != TokenModel::kPoisonFlag) {
        continue;
      }
      fault::FaultPlan::ScriptedPoison poison;
      poison.at = next_poison;
      next_poison += binding.poison_spacing;
      poison.flag = event.code == TokenModel::kPoisonFlag;
      plan.scripted_poisons.push_back(poison);
    }
    // "throttle" events are not wire faults; nothing to script.
  }
  return plan;
}

}  // namespace srp::mc
