// Counterexample traces: serialization and replay metadata (DESIGN.md §10).
//
// Every violation the explorer finds is minimized and frozen as a small
// JSON document.  The documents under tests/mc_regress/ are the repo's
// regression corpus: mc_test replays each through the *real* simulator by
// converting it to a fault::FaultPlan (mc/replay.hpp) and asserting the
// violation reproduces on the mutated core and is absent on the real one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/model.hpp"

namespace srp::mc {

struct CounterExample {
  std::string model;        ///< Model::name()
  std::string mutant;       ///< mc::mutants id that produced it ("" = real)
  std::string invariant;    ///< violated invariant
  std::vector<Event> events;
  std::size_t states_visited = 0;  ///< explorer stats at discovery time
  int depth = 0;                   ///< trace length

  bool operator==(const CounterExample&) const = default;
};

/// Builds a counterexample record from an explorer violation.
CounterExample make_counterexample(const std::string& model_name,
                                   const std::string& mutant_id,
                                   const Violation& violation,
                                   const ExploreResult& result);

/// Serializes to pretty-printed JSON (stable field order, trailing \n).
std::string to_json(const CounterExample& cx);

/// Parses a document produced by to_json (or hand-edited equivalently).
/// Returns nullopt on malformed input.
std::optional<CounterExample> from_json(const std::string& text);

}  // namespace srp::mc
