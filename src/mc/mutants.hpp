// Deliberately broken transition-core variants (DESIGN.md §10).
//
// The model checker's own regression story, following the srp-lint
// `--self-test` idiom: each mutant wraps a real step function from
// transport/txn_core.hpp, tokens/token_core.hpp or
// congestion/throttle_core.hpp and corrupts one protocol decision.  The
// explorer must catch every one with the expected invariant — if a core
// bug of this shape ever ships, the model-check CI job fails.  Because
// mutants share the runtime's function-pointer signatures, the same
// broken core also plugs into the real endpoint / cache / throttle
// (set_core_hooks_for_test / set_step_for_test), which is how the frozen
// counterexamples under tests/mc_regress/ replay in the real sim.
#pragma once

#include <string>
#include <vector>

#include "congestion/throttle_core.hpp"
#include "mc/model.hpp"
#include "tokens/token_core.hpp"
#include "transport/txn_core.hpp"

namespace srp::mc {

struct Mutant {
  std::string id;       ///< stable name, e.g. "vmtp-rx-mask-stuck"
  std::string machine;  ///< "vmtp" | "token" | "throttle"
  /// The invariant the explorer must report for this mutant.
  std::string expect_invariant;
  // Exactly the hooks for `machine` are non-null; null means "real core".
  vmtp::TxnStepFn txn = nullptr;
  vmtp::RxStepFn rx = nullptr;
  tokens::TokenStepFn token = nullptr;
  cc::ThrottleStepFn throttle = nullptr;
};

/// Every registered mutant, in a stable order.
const std::vector<Mutant>& all_mutants();

/// The mutant with @p id; asserts it exists.
const Mutant& mutant(const std::string& id);

}  // namespace srp::mc
