// Model interface for the bounded model checker (DESIGN.md §10).
//
// A Model wraps one protocol state machine — built on the *same* pure
// transition core the runtime drives (transport/txn_core.hpp,
// tokens/token_core.hpp, congestion/throttle_core.hpp) — and exposes it
// to the explorer as a labelled transition system:
//
//   initial()  ->  canonical state bytes
//   enabled()  ->  the events the environment could deliver next
//                  (message deliveries, losses, duplications, timer fires)
//   apply()    ->  successor state for one event
//   check()    ->  name of a violated invariant, or "" if all hold
//   progress() ->  a measure that must be able to grow on some path from
//                  every non-terminal state (livelock detection)
//
// States are *canonical bytes*: every model serializes its world with
// CanonicalWriter so that equal protocol states produce equal strings
// regardless of padding or container layout.  The explorer dedups on
// exactly these bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srp::mc {

/// Canonical state: explicit little-endian field bytes, no padding.
using StateBytes = std::string;

/// One transition label.  The numeric fields identify the event for
/// apply(); the label renders it for humans and for counterexample JSON.
struct Event {
  std::uint8_t code = 0;  ///< model-defined event kind
  std::uint8_t a = 0;     ///< model-defined operand
  std::uint8_t b = 0;     ///< model-defined operand
  std::uint32_t c = 0;    ///< model-defined operand
  std::string label;      ///< human-readable, stable across runs

  bool operator==(const Event& other) const {
    return code == other.code && a == other.a && b == other.b &&
           c == other.c;
  }
};

/// Serializes state fields to canonical bytes.  Always write fields in a
/// fixed order with fixed widths; never memcpy whole structs (padding).
class CanonicalWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] StateBytes take() { return std::move(out_); }

 private:
  StateBytes out_;
};

/// Reads fields back in the same order CanonicalWriter wrote them.
class CanonicalReader {
 public:
  explicit CanonicalReader(const StateBytes& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  bool boolean() { return u8() != 0; }

 private:
  const StateBytes& bytes_;
  std::size_t pos_ = 0;
};

/// One protocol machine presented to the explorer.
class Model {
 public:
  virtual ~Model() = default;

  /// Stable machine name ("vmtp", "token", "throttle").
  [[nodiscard]] virtual std::string name() const = 0;

  /// The single initial state.
  [[nodiscard]] virtual StateBytes initial() const = 0;

  /// Appends every event enabled in @p state to @p events.  Must be
  /// deterministic and ordered (the explorer's DFS order — and therefore
  /// which counterexample is found first — follows it).
  virtual void enabled(const StateBytes& state,
                       std::vector<Event>* events) const = 0;

  /// The successor of @p state under @p event.  Must be deterministic.
  [[nodiscard]] virtual StateBytes apply(const StateBytes& state,
                                         const Event& event) const = 0;

  /// Returns the name of a violated invariant, or "" if all hold.
  [[nodiscard]] virtual std::string check(const StateBytes& state) const = 0;

  /// True when the protocol run is over (no meaningful events remain).
  [[nodiscard]] virtual bool terminal(const StateBytes& state) const = 0;

  /// Monotone progress measure used for livelock detection: a cycle from
  /// which no state can increase it is a livelock.
  [[nodiscard]] virtual std::uint64_t progress(
      const StateBytes& state) const = 0;

  /// Names of every invariant check() can report (for --list output and
  /// mutation-coverage accounting).
  [[nodiscard]] virtual std::vector<std::string> invariants() const = 0;
};

}  // namespace srp::mc
