#include "mc/counterexample.hpp"

#include <cctype>
#include <cstdint>

namespace srp::mc {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(ch);
    }
  }
  out->push_back('"');
}

/// Minimal recursive-descent reader for the counterexample schema:
/// objects, arrays, strings and unsigned integers only.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char ch) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peek(char ch) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == ch;
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (!consume('"')) {
      fail();
      return out;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        ch = esc == 'n' ? '\n' : esc;
      }
      out.push_back(ch);
    }
    if (pos_ >= text_.size()) {
      fail();
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  std::uint64_t number() {
    skip_ws();
    std::uint64_t v = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
      any = true;
    }
    if (!any) fail();
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

CounterExample make_counterexample(const std::string& model_name,
                                   const std::string& mutant_id,
                                   const Violation& violation,
                                   const ExploreResult& result) {
  CounterExample cx;
  cx.model = model_name;
  cx.mutant = mutant_id;
  cx.invariant = violation.invariant;
  cx.events = violation.trace;
  cx.states_visited = result.states_visited;
  cx.depth = static_cast<int>(violation.trace.size());
  return cx;
}

std::string to_json(const CounterExample& cx) {
  std::string out = "{\n  \"model\": ";
  append_escaped(&out, cx.model);
  out += ",\n  \"mutant\": ";
  append_escaped(&out, cx.mutant);
  out += ",\n  \"invariant\": ";
  append_escaped(&out, cx.invariant);
  out += ",\n  \"states_visited\": " + std::to_string(cx.states_visited);
  out += ",\n  \"depth\": " + std::to_string(cx.depth);
  out += ",\n  \"events\": [";
  for (std::size_t i = 0; i < cx.events.size(); ++i) {
    const Event& e = cx.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"code\": " + std::to_string(e.code);
    out += ", \"a\": " + std::to_string(e.a);
    out += ", \"b\": " + std::to_string(e.b);
    out += ", \"c\": " + std::to_string(e.c);
    out += ", \"label\": ";
    append_escaped(&out, e.label);
    out += "}";
  }
  out += cx.events.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::optional<CounterExample> from_json(const std::string& text) {
  Reader r(text);
  CounterExample cx;
  if (!r.consume('{')) return std::nullopt;
  bool first = true;
  while (!r.peek('}')) {
    if (!first && !r.consume(',')) return std::nullopt;
    first = false;
    const std::string key = r.string();
    if (!r.consume(':')) return std::nullopt;
    if (key == "model") {
      cx.model = r.string();
    } else if (key == "mutant") {
      cx.mutant = r.string();
    } else if (key == "invariant") {
      cx.invariant = r.string();
    } else if (key == "states_visited") {
      cx.states_visited = static_cast<std::size_t>(r.number());
    } else if (key == "depth") {
      cx.depth = static_cast<int>(r.number());
    } else if (key == "events") {
      if (!r.consume('[')) return std::nullopt;
      bool first_event = true;
      while (!r.peek(']')) {
        if (!first_event && !r.consume(',')) return std::nullopt;
        first_event = false;
        if (!r.consume('{')) return std::nullopt;
        Event e;
        bool first_field = true;
        while (!r.peek('}')) {
          if (!first_field && !r.consume(',')) return std::nullopt;
          first_field = false;
          const std::string field = r.string();
          if (!r.consume(':')) return std::nullopt;
          if (field == "code") {
            e.code = static_cast<std::uint8_t>(r.number());
          } else if (field == "a") {
            e.a = static_cast<std::uint8_t>(r.number());
          } else if (field == "b") {
            e.b = static_cast<std::uint8_t>(r.number());
          } else if (field == "c") {
            e.c = static_cast<std::uint32_t>(r.number());
          } else if (field == "label") {
            e.label = r.string();
          } else {
            return std::nullopt;
          }
          if (!r.ok()) return std::nullopt;
        }
        if (!r.consume('}')) return std::nullopt;
        cx.events.push_back(std::move(e));
      }
      if (!r.consume(']')) return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (!r.ok()) return std::nullopt;
  }
  if (!r.consume('}')) return std::nullopt;
  return cx;
}

}  // namespace srp::mc
