#include "mc/explorer.hpp"

#include <unordered_map>

#include "check/contract.hpp"

namespace srp::mc {
namespace {

/// One DFS stack entry: a state and the cursor into its enabled events.
struct Frame {
  StateBytes state;
  std::vector<Event> events;
  std::size_t next = 0;
  std::uint64_t progress = 0;
};

/// True when some state of stack[cycle_start..] has a one-step successor
/// with progress strictly above @p floor — i.e. the cycle can escape.
bool cycle_can_escape(const Model& model, const std::vector<Frame>& stack,
                      std::size_t cycle_start, std::uint64_t floor) {
  std::vector<Event> events;
  for (std::size_t i = cycle_start; i < stack.size(); ++i) {
    events.clear();
    model.enabled(stack[i].state, &events);
    for (const Event& e : events) {
      if (model.progress(model.apply(stack[i].state, e)) > floor) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ExploreResult explore(const Model& model, const ExplorerConfig& config) {
  SIRPENT_EXPECTS(config.max_depth > 0);
  ExploreResult result;

  // Min depth at which each canonical state has been expanded; a state is
  // re-expanded when reached strictly shallower so the depth bound never
  // masks successors.
  std::unordered_map<StateBytes, int> visited;
  // Stack position of each state on the current DFS path (cycle check).
  std::unordered_map<StateBytes, std::size_t> on_path;

  const StateBytes root = model.initial();
  {
    const std::string bad = model.check(root);
    if (!bad.empty()) {
      result.states_visited = 1;
      result.violation = Violation{bad, {}, root};
      return result;
    }
  }

  std::vector<Frame> stack;
  std::vector<Event> trace;  // events leading to stack.back()
  auto push = [&](StateBytes state) {
    Frame frame;
    frame.progress = model.progress(state);
    model.enabled(state, &frame.events);
    on_path.emplace(state, stack.size());
    frame.state = std::move(state);
    stack.push_back(std::move(frame));
  };

  visited.emplace(root, 0);
  result.states_visited = 1;
  push(root);

  while (!stack.empty()) {
    Frame& top = stack.back();
    const int depth = static_cast<int>(stack.size()) - 1;
    if (depth > result.depth_reached) result.depth_reached = depth;

    if (top.next >= top.events.size() || depth >= config.max_depth) {
      on_path.erase(top.state);
      stack.pop_back();
      if (!trace.empty()) trace.pop_back();
      continue;
    }

    const Event event = top.events[top.next++];
    StateBytes next = model.apply(top.state, event);
    ++result.transitions;

    const std::string bad = model.check(next);
    if (!bad.empty()) {
      trace.push_back(event);
      result.violation = Violation{bad, trace, std::move(next)};
      return result;
    }

    const auto cycle = on_path.find(next);
    if (cycle != on_path.end()) {
      // Back-edge: the successor is on the current path.  A cycle none of
      // whose states can step to higher progress is a livelock.
      if (config.detect_livelock &&
          !cycle_can_escape(model, stack, cycle->second,
                            model.progress(next))) {
        trace.push_back(event);
        result.violation = Violation{"livelock", trace, std::move(next)};
        return result;
      }
      continue;
    }

    const int next_depth = depth + 1;
    const auto seen = visited.find(next);
    if (seen != visited.end()) {
      if (seen->second <= next_depth) continue;  // already expanded deeper
      seen->second = next_depth;
    } else {
      if (config.max_states != 0 &&
          result.states_visited >= config.max_states) {
        result.truncated = true;
        continue;
      }
      visited.emplace(next, next_depth);
      ++result.states_visited;
    }
    trace.push_back(event);
    push(std::move(next));
  }
  return result;
}

std::optional<StateBytes> replay(const Model& model,
                                 const std::vector<Event>& trace) {
  StateBytes state = model.initial();
  std::vector<Event> events;
  for (const Event& step : trace) {
    events.clear();
    model.enabled(state, &events);
    bool legal = false;
    for (const Event& e : events) {
      if (e == step) {
        legal = true;
        break;
      }
    }
    if (!legal) return std::nullopt;
    state = model.apply(state, step);
  }
  return state;
}

Violation minimize(const Model& model, const Violation& violation) {
  Violation best = violation;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < best.trace.size(); ++i) {
      std::vector<Event> candidate = best.trace;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      const auto end = replay(model, candidate);
      if (!end.has_value()) continue;
      if (model.check(*end) != best.invariant) continue;
      best.trace = std::move(candidate);
      best.state = *end;
      shrunk = true;
      break;  // restart scan: indices shifted
    }
  }
  return best;
}

}  // namespace srp::mc
