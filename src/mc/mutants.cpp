#include "mc/mutants.hpp"

#include "check/contract.hpp"

namespace srp::mc {
namespace {

using cc::ThrottleActions;
using cc::ThrottleCoreConfig;
using cc::ThrottleEvent;
using cc::ThrottlePhase;
using cc::ThrottleState;
using tokens::ChargeResult;
using tokens::EntryPhase;
using tokens::TokenActions;
using tokens::TokenCoreState;
using tokens::TokenEvent;
using vmtp::RxActions;
using vmtp::RxEvent;
using vmtp::RxState;
using vmtp::TxnActions;
using vmtp::TxnConfig;
using vmtp::TxnEvent;
using vmtp::TxnState;

// --- vmtp mutants ---

/// Loses the mask update: parts are "accepted" but never recorded, so
/// groups can never complete.
RxState rx_mask_stuck(RxState state, const RxEvent& event,
                      RxActions* actions) {
  const RxState post = vmtp::rx_step(state, event, actions);
  if (event.type == RxEvent::Type::kPart && actions->accept) {
    RxState stuck = post;
    stuck.mask = state.mask;
    return stuck;
  }
  return post;
}

/// Ignores the selective mask and retransmits the whole group on NACK.
TxnState nack_resend_all(const TxnConfig& config, TxnState state,
                         const TxnEvent& event, TxnActions* actions) {
  const TxnState post = vmtp::txn_step(config, state, event, actions);
  if (event.type == TxnEvent::Type::kNack) {
    actions->resend_mask = vmtp::full_mask(event.group_size);
  }
  return post;
}

/// Treats damaged parts as clean — the checksum-less fast path the paper
/// explicitly bets against.
RxState accept_corrupted(RxState state, const RxEvent& event,
                         RxActions* actions) {
  RxEvent laundered = event;
  laundered.corrupted = false;
  return vmtp::rx_step(state, laundered, actions);
}

/// Completes the response group but forgets to hand it to the caller.
TxnState deliver_lost(const TxnConfig& config, TxnState state,
                      const TxnEvent& event, TxnActions* actions) {
  const TxnState post = vmtp::txn_step(config, state, event, actions);
  if (event.type == TxnEvent::Type::kResponseComplete) {
    actions->deliver = false;
  }
  return post;
}

// --- token mutants ---

/// Charges packets against a token that verified bad.
TokenCoreState flagged_charge(TokenCoreState state, const TokenEvent& event,
                              TokenActions* actions) {
  const TokenCoreState post = tokens::token_step(state, event, actions);
  if (event.type == TokenEvent::Type::kCharge &&
      state.phase == EntryPhase::kFlagged) {
    actions->charge_result = ChargeResult::kCharged;
    actions->ledger_charge = true;
  }
  return post;
}

/// Keeps charging past the token's byte limit.
TokenCoreState limit_ignore(TokenCoreState state, const TokenEvent& event,
                            TokenActions* actions) {
  TokenCoreState post = tokens::token_step(state, event, actions);
  if (event.type == TokenEvent::Type::kCharge &&
      actions->charge_result == ChargeResult::kLimitExhausted) {
    post.bytes_charged = state.bytes_charged + event.bytes;
    actions->charge_result = ChargeResult::kCharged;
    actions->ledger_charge = true;
  }
  return post;
}

/// Drops the settle obligation: the optimistic first packet is neither
/// charged nor written off.
TokenCoreState forget_settle(TokenCoreState state, const TokenEvent& event,
                             TokenActions* actions) {
  if (event.type == TokenEvent::Type::kVerifyOk && event.settle_bytes > 0) {
    TokenEvent amnesiac = event;
    amnesiac.settle_bytes = 0;
    return tokens::token_step(state, amnesiac, actions);
  }
  return tokens::token_step(state, event, actions);
}

/// Settles the optimistic admit twice.
TokenCoreState double_settle(TokenCoreState state, const TokenEvent& event,
                             TokenActions* actions) {
  TokenCoreState post = tokens::token_step(state, event, actions);
  if (actions->settle_charged > 0) {
    post.bytes_charged += actions->settle_charged;
    actions->settle_charged *= 2;
  }
  return post;
}

// --- throttle mutants ---

/// The sweep never expires or ramps anything: flows are policed forever.
ThrottleState no_decay(const ThrottleCoreConfig& config, ThrottleState state,
                       const ThrottleEvent& event, sim::Time now,
                       ThrottleActions* actions) {
  if (event.type == ThrottleEvent::Type::kTick) {
    *actions = ThrottleActions{};
    return state;
  }
  return cc::throttle_step(config, state, event, now, actions);
}

/// Ramps the rate without the ceiling release: the entry stays active at
/// ever-growing rates instead of being dropped.
ThrottleState eternal_ramp(const ThrottleCoreConfig& config,
                           ThrottleState state, const ThrottleEvent& event,
                           sim::Time now, ThrottleActions* actions) {
  ThrottleState post = cc::throttle_step(config, state, event, now, actions);
  if (event.type == ThrottleEvent::Type::kTick &&
      state.phase == ThrottlePhase::kActive && now < state.expires &&
      actions->erase) {
    // The real core released at the ceiling; keep policing instead.
    *actions = ThrottleActions{};
    post = state;
    post.rate_bps = state.rate_bps * config.ramp_factor;
  }
  return post;
}

std::vector<Mutant> build_registry() {
  std::vector<Mutant> mutants;
  auto add = [&](Mutant m) { mutants.push_back(std::move(m)); };
  add({.id = "vmtp-rx-mask-stuck",
       .machine = "vmtp",
       .expect_invariant = "part-recorded",
       .rx = &rx_mask_stuck});
  add({.id = "vmtp-nack-resend-all",
       .machine = "vmtp",
       .expect_invariant = "retransmit-only-missing",
       .txn = &nack_resend_all});
  add({.id = "vmtp-accept-corrupted",
       .machine = "vmtp",
       .expect_invariant = "no-corrupted-accept",
       .rx = &accept_corrupted});
  add({.id = "vmtp-deliver-lost",
       .machine = "vmtp",
       .expect_invariant = "response-delivered",
       .txn = &deliver_lost});
  add({.id = "token-flagged-charge",
       .machine = "token",
       .expect_invariant = "flagged-never-charged",
       .token = &flagged_charge});
  add({.id = "token-limit-ignore",
       .machine = "token",
       .expect_invariant = "charge-within-limit",
       .token = &limit_ignore});
  add({.id = "token-forget-settle",
       .machine = "token",
       .expect_invariant = "optimistic-settled",
       .token = &forget_settle});
  add({.id = "token-double-settle",
       .machine = "token",
       .expect_invariant = "no-double-charge",
       .token = &double_settle});
  add({.id = "throttle-no-decay",
       .machine = "throttle",
       .expect_invariant = "throttle-expires",
       .throttle = &no_decay});
  add({.id = "throttle-eternal-ramp",
       .machine = "throttle",
       .expect_invariant = "rate-below-ceiling",
       .throttle = &eternal_ramp});
  return mutants;
}

}  // namespace

const std::vector<Mutant>& all_mutants() {
  static const std::vector<Mutant>* registry =
      new std::vector<Mutant>(build_registry());
  return *registry;
}

const Mutant& mutant(const std::string& id) {
  for (const Mutant& m : all_mutants()) {
    if (m.id == id) return m;
  }
  SIRPENT_INVARIANT(false && "unknown mutant id");
  return all_mutants().front();
}

}  // namespace srp::mc
