// Counterexample → FaultPlan conversion (DESIGN.md §10).
//
// A VMTP counterexample's fault events carry everything a deterministic
// replay needs: the direction of the affected packet (Event::b) and its
// per-direction send ordinal (Event::c) — exactly the packet index the
// fault engine's scripted lane counts.  The conversion is mechanical:
//
//   drop c2s req[1] #3   ->  lane("client→server port").script +=
//                              {packet_index: 3, action: kDrop}
//
// Delivery and timer events need no scripting — the sim delivers and
// fires timers on its own; only the *faults* must be reproduced.  Token
// counterexamples map their poison events onto scripted cache poisons.
// Throttle counterexamples contain no wire faults at all; tests replay
// them by driving the SourceThrottle directly.
#pragma once

#include <string>

#include "fault/plan.hpp"
#include "mc/counterexample.hpp"

namespace srp::mc {

/// Names the real-topology objects the model's abstract world maps onto.
struct ReplayBinding {
  /// TxPort carrying client→server traffic (model direction 0).
  std::string client_to_server_port;
  /// TxPort carrying server→client traffic (model direction 1).
  std::string server_to_client_port;
  /// When scripted token poisons fire (successive poisons step by
  /// @p poison_spacing).
  sim::Time poison_at = sim::kMillisecond;
  sim::Time poison_spacing = sim::kMillisecond;
  /// Base seed of the produced plan (no randomness is drawn for the
  /// scripted faults themselves).
  std::uint64_t seed = 1;
};

/// Converts @p cx into a deterministic FaultPlan per @p binding.
fault::FaultPlan to_fault_plan(const CounterExample& cx,
                               const ReplayBinding& binding);

}  // namespace srp::mc
