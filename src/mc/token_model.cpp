#include "mc/token_model.hpp"

#include "check/contract.hpp"

namespace srp::mc {
namespace {

using tokens::ChargeResult;
using tokens::EntryPhase;
using tokens::TokenActions;
using tokens::TokenCoreState;
using tokens::TokenEvent;
using tokens::UncachedPolicy;

constexpr std::uint8_t kVioNone = 0;
constexpr std::uint8_t kVioFlaggedCharged = 1;
constexpr std::uint8_t kVioOverLimit = 2;
constexpr std::uint8_t kVioUnsettled = 3;

const char* violation_name(std::uint8_t code) {
  switch (code) {
    case kVioFlaggedCharged:
      return "flagged-never-charged";
    case kVioOverLimit:
      return "charge-within-limit";
    case kVioUnsettled:
      return "optimistic-settled";
    default:
      return "";
  }
}

struct World {
  std::uint8_t phase = 0;  ///< EntryPhase of the cache entry
  std::uint8_t bytes_charged = 0;
  std::uint8_t verify_pending = 0;
  std::uint8_t optimistic_outstanding = 0;  ///< unsettled admit (0/1)
  std::uint8_t held = 0;       ///< packets parked by the blocking policy
  std::uint8_t packets_left = 0;
  std::uint8_t poison_budget = 0;
  std::uint8_t ledger = 0;     ///< bytes charged to the account
  std::uint8_t forwarded = 0;  ///< bytes actually forwarded
  std::uint8_t violation = kVioNone;
};

World decode(const StateBytes& bytes) {
  CanonicalReader r(bytes);
  World w;
  w.phase = r.u8();
  w.bytes_charged = r.u8();
  w.verify_pending = r.u8();
  w.optimistic_outstanding = r.u8();
  w.held = r.u8();
  w.packets_left = r.u8();
  w.poison_budget = r.u8();
  w.ledger = r.u8();
  w.forwarded = r.u8();
  w.violation = r.u8();
  return w;
}

StateBytes encode(const World& w) {
  CanonicalWriter out;
  out.u8(w.phase);
  out.u8(w.bytes_charged);
  out.u8(w.verify_pending);
  out.u8(w.optimistic_outstanding);
  out.u8(w.held);
  out.u8(w.packets_left);
  out.u8(w.poison_budget);
  out.u8(w.ledger);
  out.u8(w.forwarded);
  out.u8(w.violation);
  return out.take();
}

}  // namespace

StateBytes TokenModel::initial() const {
  World w;
  w.phase = static_cast<std::uint8_t>(EntryPhase::kAbsent);
  w.packets_left = scenario_.packets;
  w.poison_budget = scenario_.poison_budget;
  return encode(w);
}

void TokenModel::enabled(const StateBytes& state,
                         std::vector<Event>* events) const {
  const World w = decode(state);
  if (w.violation != kVioNone) return;
  if (w.packets_left > 0) {
    events->push_back(Event{kPacket, 0, 0, 0, "packet-arrives"});
  }
  if (w.verify_pending != 0) {
    events->push_back(Event{kVerifyOk, 0, 0, 0, "verify-ok"});
    events->push_back(Event{kVerifyBad, 0, 0, 0, "verify-bad"});
  }
  const bool entry_cached =
      w.phase == static_cast<std::uint8_t>(EntryPhase::kValid) ||
      w.phase == static_cast<std::uint8_t>(EntryPhase::kFlagged);
  if (w.poison_budget > 0 && entry_cached) {
    events->push_back(Event{kPoisonForget, 0, 0, 0, "poison-forget"});
    events->push_back(Event{kPoisonFlag, 0, 0, 0, "poison-flag"});
  }
}

StateBytes TokenModel::apply(const StateBytes& state,
                             const Event& event) const {
  World w = decode(state);

  auto core_of = [&] {
    TokenCoreState core;
    core.phase = static_cast<EntryPhase>(w.phase);
    core.bytes_charged = w.bytes_charged;
    core.byte_limit = scenario_.byte_limit;
    return core;
  };
  auto write_back = [&](const TokenCoreState& core) {
    w.phase = static_cast<std::uint8_t>(core.phase);
    w.bytes_charged = static_cast<std::uint8_t>(core.bytes_charged);
  };

  // One packet attempts to pass the router's charge path (1 byte each);
  // models TokenCache::charge plus the ledger coupling.
  auto charge_one = [&] {
    TokenEvent ev;
    ev.type = TokenEvent::Type::kCharge;
    ev.bytes = 1;
    TokenActions actions;
    const TokenCoreState pre = core_of();
    const TokenCoreState post = step_(pre, ev, &actions);
    if (actions.charge_result == ChargeResult::kCharged &&
        pre.phase == EntryPhase::kFlagged) {
      w.violation = kVioFlaggedCharged;
      return;
    }
    write_back(post);
    if (actions.charge_result == ChargeResult::kCharged) {
      ++w.forwarded;
      if (actions.ledger_charge) ++w.ledger;
    }
  };

  switch (event.code) {
    case kPacket: {
      --w.packets_left;
      const bool entry_cached =
          w.phase == static_cast<std::uint8_t>(EntryPhase::kValid) ||
          w.phase == static_cast<std::uint8_t>(EntryPhase::kFlagged);
      if (entry_cached) {
        charge_one();
        break;
      }
      // Cache miss: verification starts (or is already in flight) and the
      // packet's fate follows the uncached policy (paper §2.1).
      const bool first_miss = w.verify_pending == 0;
      w.verify_pending = 1;
      switch (scenario_.policy) {
        case UncachedPolicy::kOptimistic:
          ++w.forwarded;
          // Only the first packet's bytes enter the settle obligation
          // (viper::Router records first_packet_bytes once).
          if (first_miss) w.optimistic_outstanding = 1;
          break;
        case UncachedPolicy::kBlocking:
          if (w.held < 2) ++w.held;
          break;
        case UncachedPolicy::kDrop:
          break;
      }
      break;
    }
    case kVerifyOk:
    case kVerifyBad: {
      const bool good = event.code == kVerifyOk;
      w.verify_pending = 0;
      TokenEvent ev;
      ev.type = good ? TokenEvent::Type::kVerifyOk
                     : TokenEvent::Type::kVerifyBad;
      ev.byte_limit = scenario_.byte_limit;
      ev.settle_bytes = w.optimistic_outstanding;
      TokenActions actions;
      const TokenCoreState post = step_(core_of(), ev, &actions);
      write_back(post);
      if (w.optimistic_outstanding != 0) {
        if (!good && actions.settle_charged > 0) {
          // Settling an admit against a token that verified bad charges
          // an account that authorized nothing.
          w.violation = kVioFlaggedCharged;
          break;
        }
        if (actions.settle_charged == 0 && !actions.settle_dropped) {
          // The obligation evaporated: neither charged nor written off.
          w.violation = kVioUnsettled;
          break;
        }
        w.ledger = static_cast<std::uint8_t>(
            w.ledger + (actions.ledger_charge ? actions.settle_charged : 0));
        w.optimistic_outstanding = 0;
      }
      // Blocking policy: held packets re-enter the admit path and charge
      // against the now-cached entry.
      while (w.held > 0 && w.violation == kVioNone) {
        --w.held;
        charge_one();
      }
      break;
    }
    case kPoisonForget:
    case kPoisonFlag: {
      --w.poison_budget;
      TokenEvent ev;
      ev.type = event.code == kPoisonForget
                    ? TokenEvent::Type::kPoisonForget
                    : TokenEvent::Type::kPoisonFlag;
      TokenActions actions;
      const TokenCoreState post = step_(core_of(), ev, &actions);
      if (actions.erase) {
        w.phase = static_cast<std::uint8_t>(EntryPhase::kAbsent);
        w.bytes_charged = 0;
      } else {
        write_back(post);
      }
      break;
    }
    default:
      SIRPENT_INVARIANT(false);
  }
  return encode(w);
}

std::string TokenModel::check(const StateBytes& state) const {
  const World w = decode(state);
  if (w.violation != kVioNone) return violation_name(w.violation);
  if (w.phase == static_cast<std::uint8_t>(tokens::EntryPhase::kValid) &&
      w.bytes_charged > scenario_.byte_limit) {
    return "charge-within-limit";
  }
  if (w.ledger > w.forwarded) return "no-double-charge";
  return "";
}

bool TokenModel::terminal(const StateBytes& state) const {
  const World w = decode(state);
  return w.packets_left == 0 && w.verify_pending == 0 && w.held == 0 &&
         w.poison_budget == 0;
}

std::uint64_t TokenModel::progress(const StateBytes& state) const {
  const World w = decode(state);
  // Consumed budgets only ever grow.
  return static_cast<std::uint64_t>(scenario_.packets - w.packets_left) *
             10 +
         (scenario_.poison_budget - w.poison_budget) * 10 + w.forwarded +
         w.ledger;
}

std::vector<std::string> TokenModel::invariants() const {
  return {"flagged-never-charged", "charge-within-limit",
          "optimistic-settled", "no-double-charge"};
}

}  // namespace srp::mc
