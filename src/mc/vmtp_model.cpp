#include "mc/vmtp_model.hpp"

#include <algorithm>
#include <bit>
#include <tuple>

#include "check/contract.hpp"

namespace srp::mc {
namespace {

using vmtp::RxActions;
using vmtp::RxEvent;
using vmtp::RxState;
using vmtp::TxnActions;
using vmtp::TxnConfig;
using vmtp::TxnEvent;
using vmtp::TxnPhase;
using vmtp::TxnState;

// Message kinds on the wire.
constexpr std::uint8_t kReqPart = 0;
constexpr std::uint8_t kRespPart = 1;
constexpr std::uint8_t kNackMsg = 2;

// Violation codes stored in World::violation.
constexpr std::uint8_t kVioNone = 0;
constexpr std::uint8_t kVioPartRecorded = 1;
constexpr std::uint8_t kVioResendMissing = 2;
constexpr std::uint8_t kVioCorruptAccept = 3;
constexpr std::uint8_t kVioDeliverLost = 4;

const char* violation_name(std::uint8_t code) {
  switch (code) {
    case kVioPartRecorded:
      return "part-recorded";
    case kVioResendMissing:
      return "retransmit-only-missing";
    case kVioCorruptAccept:
      return "no-corrupted-accept";
    case kVioDeliverLost:
      return "response-delivered";
    default:
      return "";
  }
}

struct Msg {
  std::uint8_t dir = 0;   ///< 0 = client->server, 1 = server->client
  std::uint8_t kind = kReqPart;
  std::uint8_t index = 0;
  std::uint8_t corrupted = 0;
  std::uint32_t mask = 0;  ///< kNackMsg: sender's received mask
  std::uint8_t seq = 0;    ///< per-direction send ordinal (packet index)

  [[nodiscard]] auto key() const {
    return std::tie(dir, kind, index, corrupted, mask, seq);
  }
};

struct World {
  std::uint8_t phase = 0;  ///< TxnPhase of the client transaction
  std::uint8_t retries = 0;
  RxState client_rx;  ///< response reassembly at the client
  RxState server_rx;  ///< request reassembly at the server
  std::uint8_t responded = 0;
  std::uint8_t rto_armed = 1;
  std::uint8_t sgap_armed = 0;
  std::uint8_t cgap_armed = 0;
  std::uint8_t drop_budget = 0;
  std::uint8_t dup_budget = 0;
  std::uint8_t corrupt_budget = 0;
  std::uint8_t cs_sent = 0;  ///< client->server packets sent (saturating)
  std::uint8_t sc_sent = 0;
  std::uint8_t violation = kVioNone;
  std::vector<Msg> msgs;   ///< kept canonically sorted
};

World decode(const StateBytes& bytes) {
  CanonicalReader r(bytes);
  World w;
  w.phase = r.u8();
  w.retries = r.u8();
  w.client_rx.group_size = r.u8();
  w.client_rx.mask = r.u32();
  w.server_rx.group_size = r.u8();
  w.server_rx.mask = r.u32();
  w.responded = r.u8();
  w.rto_armed = r.u8();
  w.sgap_armed = r.u8();
  w.cgap_armed = r.u8();
  w.drop_budget = r.u8();
  w.dup_budget = r.u8();
  w.corrupt_budget = r.u8();
  w.cs_sent = r.u8();
  w.sc_sent = r.u8();
  w.violation = r.u8();
  const std::uint8_t n = r.u8();
  w.msgs.resize(n);
  for (Msg& m : w.msgs) {
    m.dir = r.u8();
    m.kind = r.u8();
    m.index = r.u8();
    m.corrupted = r.u8();
    m.mask = r.u32();
    m.seq = r.u8();
  }
  return w;
}

StateBytes encode(World w) {
  std::sort(w.msgs.begin(), w.msgs.end(),
            [](const Msg& a, const Msg& b) { return a.key() < b.key(); });
  CanonicalWriter out;
  out.u8(w.phase);
  out.u8(w.retries);
  out.u8(w.client_rx.group_size);
  out.u32(w.client_rx.mask);
  out.u8(w.server_rx.group_size);
  out.u32(w.server_rx.mask);
  out.u8(w.responded);
  out.u8(w.rto_armed);
  out.u8(w.sgap_armed);
  out.u8(w.cgap_armed);
  out.u8(w.drop_budget);
  out.u8(w.dup_budget);
  out.u8(w.corrupt_budget);
  out.u8(w.cs_sent);
  out.u8(w.sc_sent);
  out.u8(w.violation);
  out.u8(static_cast<std::uint8_t>(w.msgs.size()));
  for (const Msg& m : w.msgs) {
    out.u8(m.dir);
    out.u8(m.kind);
    out.u8(m.index);
    out.u8(m.corrupted);
    out.u32(m.mask);
    out.u8(m.seq);
  }
  return out.take();
}

constexpr std::uint8_t kSeqSaturate = 200;

std::uint8_t bump(std::uint8_t& counter) {
  const std::uint8_t seq = counter;
  if (counter < kSeqSaturate) ++counter;
  return seq;
}

void push(World& w, std::uint8_t cap, Msg msg) {
  // Tail-drop beyond the channel cap: the world stays bounded; the send
  // ordinal was still consumed (the wire saw the packet).
  if (w.msgs.size() < cap) w.msgs.push_back(msg);
}

const char* dir_name(std::uint8_t dir) {
  return dir == 0 ? "c2s" : "s2c";
}

const char* kind_name(std::uint8_t kind) {
  switch (kind) {
    case kReqPart:
      return "req";
    case kRespPart:
      return "resp";
    default:
      return "nack";
  }
}

std::string msg_label(const char* verb, const Msg& m) {
  std::string label = verb;
  label += ' ';
  label += dir_name(m.dir);
  label += ' ';
  label += kind_name(m.kind);
  if (m.kind != kNackMsg) {
    label += '[';
    label += std::to_string(m.index);
    label += ']';
  }
  label += " #";
  label += std::to_string(m.seq);
  return label;
}

}  // namespace

StateBytes VmtpModel::initial() const {
  World w;
  w.phase = static_cast<std::uint8_t>(TxnPhase::kAwaitingResponse);
  w.drop_budget = scenario_.drop_budget;
  w.dup_budget = scenario_.dup_budget;
  w.corrupt_budget = scenario_.corrupt_budget;
  // invoke(): the whole request group goes out and the RTO is armed.
  for (std::uint8_t i = 0; i < scenario_.request_parts; ++i) {
    Msg m;
    m.dir = 0;
    m.kind = kReqPart;
    m.index = i;
    m.seq = bump(w.cs_sent);
    push(w, scenario_.channel_cap, m);
  }
  w.rto_armed = 1;
  return encode(w);
}

void VmtpModel::enabled(const StateBytes& state,
                        std::vector<Event>* events) const {
  const World w = decode(state);
  if (w.violation != kVioNone) return;
  for (std::size_t i = 0; i < w.msgs.size(); ++i) {
    const Msg& m = w.msgs[i];
    const std::uint8_t slot = static_cast<std::uint8_t>(i);
    events->push_back(
        Event{kDeliver, slot, m.dir, m.seq, msg_label("deliver", m)});
    if (w.drop_budget > 0) {
      events->push_back(
          Event{kDrop, slot, m.dir, m.seq, msg_label("drop", m)});
    }
    if (w.dup_budget > 0 && m.corrupted == 0) {
      events->push_back(
          Event{kDup, slot, m.dir, m.seq, msg_label("dup", m)});
    }
    if (w.corrupt_budget > 0 && m.corrupted == 0 && m.kind != kNackMsg) {
      events->push_back(
          Event{kCorrupt, slot, m.dir, m.seq, msg_label("corrupt", m)});
    }
  }
  if (w.rto_armed != 0 &&
      w.phase == static_cast<std::uint8_t>(TxnPhase::kAwaitingResponse)) {
    events->push_back(Event{kRtoFire, 0, 0, 0, "rto-fire"});
  }
  if (w.sgap_armed != 0) {
    events->push_back(Event{kServerGapFire, 0, 0, 0, "server-gap-fire"});
  }
  if (w.cgap_armed != 0) {
    events->push_back(Event{kClientGapFire, 0, 0, 0, "client-gap-fire"});
  }
}

StateBytes VmtpModel::apply(const StateBytes& state,
                            const Event& event) const {
  World w = decode(state);
  const TxnConfig config{scenario_.max_retries};
  const std::uint8_t awaiting =
      static_cast<std::uint8_t>(TxnPhase::kAwaitingResponse);

  // Server-side send of the full response group (fresh or duplicate).
  auto send_response = [&](World& world) {
    for (std::uint8_t i = 0; i < scenario_.response_parts; ++i) {
      Msg m;
      m.dir = 1;
      m.kind = kRespPart;
      m.index = i;
      m.seq = bump(world.sc_sent);
      push(world, scenario_.channel_cap, m);
    }
  };

  // Shared reassembly step with its transition invariants.
  auto run_rx = [&](RxState& rx, const Msg& m, std::uint8_t group,
                    RxActions* actions) {
    RxEvent ev;
    ev.type = RxEvent::Type::kPart;
    ev.index = m.index;
    ev.group_size = group;
    ev.corrupted = m.corrupted != 0;
    const RxState pre = rx;
    const RxState post = rx_(pre, ev, actions);
    if (m.corrupted != 0) {
      // The no-ack-for-corrupted-request bet: damaged parts must be
      // dropped, never recorded or acknowledged.
      if (actions->part_ok || actions->accept || actions->complete) {
        w.violation = kVioCorruptAccept;
      }
      return;  // discard: the runtime's decoder never admits these
    }
    if (actions->accept &&
        post.mask != (pre.mask | (1u << m.index))) {
      w.violation = kVioPartRecorded;
    }
    rx = post;
  };

  switch (event.code) {
    case kDrop: {
      w.msgs.erase(w.msgs.begin() + event.a);
      --w.drop_budget;
      break;
    }
    case kDup: {
      const Msg copy = w.msgs[event.a];
      --w.dup_budget;
      push(w, scenario_.channel_cap, copy);
      break;
    }
    case kCorrupt: {
      w.msgs[event.a].corrupted = 1;
      --w.corrupt_budget;
      break;
    }
    case kDeliver: {
      const Msg m = w.msgs[event.a];
      w.msgs.erase(w.msgs.begin() + event.a);
      if (m.dir == 0) {
        // --- at the server ---
        if (m.kind == kNackMsg) {
          // Client wants missing response parts; stateless served-memory
          // path using the shared missing-bitmask helper.
          if (w.responded != 0) {
            const std::uint32_t missing =
                vmtp::missing_mask(m.mask, scenario_.response_parts);
            for (std::uint8_t i = 0; i < scenario_.response_parts; ++i) {
              if ((missing & (1u << i)) == 0) continue;
              Msg part;
              part.dir = 1;
              part.kind = kRespPart;
              part.index = i;
              part.seq = bump(w.sc_sent);
              push(w, scenario_.channel_cap, part);
            }
          }
          break;
        }
        if (m.corrupted != 0) {
          RxActions actions;
          run_rx(w.server_rx, m, scenario_.request_parts, &actions);
          break;
        }
        if (w.responded != 0) {
          // Duplicate of a served request: re-send the response.
          send_response(w);
          break;
        }
        RxActions actions;
        run_rx(w.server_rx, m, scenario_.request_parts, &actions);
        if (w.violation != kVioNone) break;
        if (actions.complete) {
          w.responded = 1;
          w.sgap_armed = 0;
          w.server_rx = RxState{};  // inbound_ entry erased
          send_response(w);
        } else if (actions.arm_gap) {
          w.sgap_armed = 1;
        }
        break;
      }
      // --- at the client ---
      if (w.phase != awaiting) break;  // transaction already finished
      if (m.kind == kNackMsg) {
        TxnEvent ev;
        ev.type = TxnEvent::Type::kNack;
        ev.group_size = scenario_.request_parts;
        ev.mask = m.mask;
        TxnActions actions;
        const TxnState post =
            txn_(config, TxnState{TxnPhase::kAwaitingResponse, w.retries},
                 ev, &actions);
        w.retries = static_cast<std::uint8_t>(post.retries);
        // Selective retransmission must never resend acknowledged parts
        // nor invent parts outside the group.
        if ((actions.resend_mask & m.mask) != 0 ||
            (actions.resend_mask &
             ~vmtp::full_mask(scenario_.request_parts)) != 0) {
          w.violation = kVioResendMissing;
          break;
        }
        for (std::uint8_t i = 0; i < scenario_.request_parts; ++i) {
          if ((actions.resend_mask & (1u << i)) == 0) continue;
          Msg part;
          part.dir = 0;
          part.kind = kReqPart;
          part.index = i;
          part.seq = bump(w.cs_sent);
          push(w, scenario_.channel_cap, part);
        }
        break;
      }
      // Response part.
      RxActions actions;
      run_rx(w.client_rx, m, scenario_.response_parts, &actions);
      if (w.violation != kVioNone) break;
      if (m.corrupted != 0) break;
      if (actions.complete) {
        TxnEvent done;
        done.type = TxnEvent::Type::kResponseComplete;
        TxnActions txn_actions;
        const TxnState post =
            txn_(config, TxnState{TxnPhase::kAwaitingResponse, w.retries},
                 done, &txn_actions);
        if (!txn_actions.deliver) {
          w.violation = kVioDeliverLost;
          break;
        }
        w.phase = static_cast<std::uint8_t>(post.phase);
        w.retries = static_cast<std::uint8_t>(post.retries);
        w.rto_armed = 0;
        w.cgap_armed = 0;
        w.client_rx = RxState{};
      } else if (actions.arm_gap) {
        w.cgap_armed = 1;
      }
      break;
    }
    case kRtoFire: {
      w.rto_armed = 0;
      TxnEvent ev;
      ev.type = TxnEvent::Type::kRtoFire;
      ev.group_size = scenario_.request_parts;
      TxnActions actions;
      const TxnState post =
          txn_(config, TxnState{TxnPhase::kAwaitingResponse, w.retries}, ev,
               &actions);
      w.retries = static_cast<std::uint8_t>(post.retries);
      if (actions.fail) {
        w.phase = static_cast<std::uint8_t>(TxnPhase::kFailed);
        w.cgap_armed = 0;  // finish() cancels the response gap timer
        break;
      }
      for (std::uint8_t i = 0; i < scenario_.request_parts; ++i) {
        if ((actions.resend_mask & (1u << i)) == 0) continue;
        Msg part;
        part.dir = 0;
        part.kind = kReqPart;
        part.index = i;
        part.seq = bump(w.cs_sent);
        push(w, scenario_.channel_cap, part);
      }
      if (actions.arm_rto) w.rto_armed = 1;
      break;
    }
    case kServerGapFire: {
      w.sgap_armed = 0;
      RxEvent ev;
      ev.type = RxEvent::Type::kGapFire;
      RxActions actions;
      rx_(w.server_rx, ev, &actions);
      if (actions.send_nack) {
        Msg nack;
        nack.dir = 1;
        nack.kind = kNackMsg;
        nack.mask = actions.nack_mask;
        nack.seq = bump(w.sc_sent);
        push(w, scenario_.channel_cap, nack);
        if (actions.arm_gap) w.sgap_armed = 1;
      }
      break;
    }
    case kClientGapFire: {
      w.cgap_armed = 0;
      RxEvent ev;
      ev.type = RxEvent::Type::kGapFire;
      RxActions actions;
      rx_(w.client_rx, ev, &actions);
      if (actions.send_nack) {
        Msg nack;
        nack.dir = 0;
        nack.kind = kNackMsg;
        nack.mask = actions.nack_mask;
        nack.seq = bump(w.cs_sent);
        push(w, scenario_.channel_cap, nack);
        if (actions.arm_gap) w.cgap_armed = 1;
      }
      break;
    }
    default:
      SIRPENT_INVARIANT(false);
  }
  return encode(std::move(w));
}

std::string VmtpModel::check(const StateBytes& state) const {
  const World w = decode(state);
  if (w.violation != kVioNone) return violation_name(w.violation);
  // Every started transaction terminates: while awaiting, some event
  // must remain possible — at minimum the RTO.  A quiescent awaiting
  // state is a stuck transaction.
  if (w.phase == static_cast<std::uint8_t>(TxnPhase::kAwaitingResponse) &&
      w.msgs.empty() && w.rto_armed == 0 && w.sgap_armed == 0 &&
      w.cgap_armed == 0) {
    return "transaction-terminates";
  }
  return "";
}

bool VmtpModel::terminal(const StateBytes& state) const {
  const World w = decode(state);
  return w.phase !=
             static_cast<std::uint8_t>(TxnPhase::kAwaitingResponse) &&
         w.msgs.empty() && w.sgap_armed == 0 && w.cgap_armed == 0;
}

std::uint64_t VmtpModel::progress(const StateBytes& state) const {
  const World w = decode(state);
  std::uint64_t p = 0;
  if (w.phase != static_cast<std::uint8_t>(TxnPhase::kAwaitingResponse)) {
    p += 1000;
  }
  p += 50 * w.responded;
  p += 10 * static_cast<std::uint64_t>(std::popcount(w.server_rx.mask));
  p += 10 * static_cast<std::uint64_t>(std::popcount(w.client_rx.mask));
  p += w.cs_sent;
  p += w.sc_sent;
  return p;
}

std::vector<std::string> VmtpModel::invariants() const {
  return {"part-recorded", "retransmit-only-missing", "no-corrupted-accept",
          "response-delivered", "transaction-terminates", "livelock"};
}

}  // namespace srp::mc
