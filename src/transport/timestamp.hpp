// Transport-layer creation timestamps (paper §4.2).
//
// Sirpent has no TTL: "we require that the transport layer include a
// creation timestamp in every transport protocol packet and require that
// the sender and receiver have roughly synchronized clocks."  VMTP's
// format: "a 32-bit timestamp ... the time in milliseconds since January
// 1, 1970, modulo 2^32", wrapping in roughly a month; "a timestamp value
// of 0 is reserved to mean that the timestamp is invalid".
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace srp::vmtp {

/// Reserved invalid timestamp ("for use by query operations when a machine
/// is booting before it knows the current time accurately").
inline constexpr std::uint32_t kInvalidTimestamp = 0;

/// Signed difference a - b on the 2^32 ring, in milliseconds.  Handles
/// wraparound: values within half the ring of each other compare sanely.
constexpr std::int64_t timestamp_diff_ms(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

/// A host's view of wall-clock time: simulated time plus a per-host offset
/// modelling imperfect clock synchronization (the paper's WWV-style
/// synchronization is "coarse", multiple seconds of skew are tolerated).
class HostClock {
 public:
  HostClock(sim::Simulator& sim, sim::Time offset = 0)
      : sim_(sim), offset_(offset) {}

  void set_offset(sim::Time offset) { offset_ = offset; }
  [[nodiscard]] sim::Time offset() const { return offset_; }

  /// Current 32-bit millisecond timestamp; never returns the reserved 0.
  [[nodiscard]] std::uint32_t now_ms() const {
    const auto ms = static_cast<std::uint64_t>(
        (sim_.now() + offset_) / sim::kMillisecond);
    const auto wrapped = static_cast<std::uint32_t>(ms);
    return wrapped == kInvalidTimestamp ? 1 : wrapped;
  }

  /// Age of @p stamp as seen by this clock (negative = from the future,
  /// i.e. the sender's clock runs ahead of ours).
  [[nodiscard]] std::int64_t age_ms(std::uint32_t stamp) const {
    return timestamp_diff_ms(now_ms(), stamp);
  }

 private:
  sim::Simulator& sim_;
  sim::Time offset_;
};

}  // namespace srp::vmtp
