// Pure transition cores for the VMTP transaction machinery.
//
// The runtime driver (transport/vmtp.hpp) and the bounded model checker
// (src/mc) share these step functions, so the retransmission protocol the
// checker enumerates is — by construction — the one the endpoints run
// (DESIGN.md §10).  Two cores:
//
//   rx_step   Packet-group reassembly: the received-bitmask logic shared
//             by the server's request buffer and the client's response
//             buffer, including the gap-timeout selective-NACK decision
//             ("selective retransmission", paper §4.3).
//
//   txn_step  The client transaction lifecycle: one outstanding
//             request/response exchange from invoke to delivered/failed,
//             driven by response completion, NACKs and RTO firings.
//
// Both are side-effect free: no simulator, no allocation, no ambient
// state.  The driver interprets the emitted actions (send packets, arm
// timers, run callbacks) in a fixed order so the refactor stays
// byte-identical on the wire.
#pragma once

#include <cstdint>

namespace srp::vmtp {

/// Bitmask with one bit per packet of a @p group_size-packet group.
constexpr std::uint32_t full_mask(std::uint8_t group_size) {
  return group_size >= 32 ? 0xFFFFFFFFu : (1u << group_size) - 1u;
}

/// The parts a receiver reporting @p received_mask still needs.
constexpr std::uint32_t missing_mask(std::uint32_t received_mask,
                                     std::uint8_t group_size) {
  return ~received_mask & full_mask(group_size);
}

// ---------------------------------------------------------------------------
// Reassembly core

/// Reassembly soft state for one incoming packet group (the core slice of
/// the driver's GroupRx, which additionally buffers payload bytes).
struct RxState {
  std::uint8_t group_size = 0;  ///< 0 until the first packet arrives
  std::uint32_t mask = 0;       ///< bit i = part i received
};

struct RxEvent {
  enum class Type : std::uint8_t {
    kPart,     ///< a group packet arrived
    kGapFire,  ///< the gap timer expired
  };
  Type type = Type::kPart;
  std::uint8_t index = 0;       ///< kPart: position within the group
  std::uint8_t group_size = 0;  ///< kPart: group size stamped on the packet
  /// kPart, model only: the wire image was damaged.  The runtime never
  /// sees this (decode already dropped the packet); the checker uses it
  /// to prove the "no ack for a corrupted request" invariant.
  bool corrupted = false;
};

struct RxActions {
  bool part_ok = false;       ///< the part belongs to this group
  bool accept = false;        ///< first copy of the part: store its payload
  bool complete = false;      ///< group fully received: hand the data up
  bool arm_gap = false;       ///< (re)arm the gap timer
  bool send_nack = false;     ///< gap expired with parts missing
  std::uint32_t nack_mask = 0;  ///< received mask to report in the NACK
  bool drop_corrupt = false;  ///< damaged part discarded (model only)
};

/// Applies @p event to @p state.  Pure; @p actions is fully overwritten.
RxState rx_step(RxState state, const RxEvent& event, RxActions* actions);

// ---------------------------------------------------------------------------
// Client transaction core

struct TxnConfig {
  int max_retries = 5;
};

enum class TxnPhase : std::uint8_t {
  kAwaitingResponse,  ///< request sent, outcome open
  kDelivered,         ///< full response handed to the caller
  kFailed,            ///< abandoned after max_retries timeouts
};

/// Lifecycle state of one outstanding transaction (the core slice of the
/// driver's TxState, which additionally owns routes, buffers and timers).
struct TxnState {
  TxnPhase phase = TxnPhase::kAwaitingResponse;
  int retries = 0;
};

struct TxnEvent {
  enum class Type : std::uint8_t {
    kResponseComplete,  ///< reassembly finished the response group
    kNack,              ///< server reported missing request parts
    kRtoFire,           ///< retransmission timeout expired
  };
  Type type = Type::kRtoFire;
  std::uint8_t group_size = 0;  ///< kNack: NACK's group; kRtoFire: request group
  std::uint32_t mask = 0;       ///< kNack: server's received mask
};

struct TxnActions {
  bool deliver = false;           ///< run the callback with the response
  bool fail = false;              ///< run the callback with an error
  bool count_timeout = false;     ///< an RTO fired (stats/observability)
  std::uint32_t resend_mask = 0;  ///< request parts to retransmit
  bool arm_rto = false;           ///< rearm the retransmission timer
};

/// Applies @p event to @p state.  Pure; @p actions is fully overwritten.
TxnState txn_step(const TxnConfig& config, TxnState state,
                  const TxnEvent& event, TxnActions* actions);

/// Signatures shared by the real cores and the deliberately broken
/// variants in mc::mutants (model-checker self-test).
using RxStepFn = RxState (*)(RxState, const RxEvent&, RxActions*);
using TxnStepFn = TxnState (*)(const TxnConfig&, TxnState, const TxnEvent&,
                               TxnActions*);

}  // namespace srp::vmtp
