#include "transport/vmtp.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "check/contract.hpp"

// full_mask / missing_mask and both step functions now live in
// transport/txn_core.hpp so the model checker shares them (DESIGN.md §10).
namespace srp::vmtp {

VmtpEndpoint::VmtpEndpoint(sim::Simulator& sim, viper::ViperHost& host,
                           std::uint64_t entity_id, VmtpConfig config)
    : sim_(sim), host_(host), entity_(entity_id), config_(config),
      clock_(sim, config.clock_offset) {
  host_.bind(entity_,
             [this](const viper::Delivery& d) { on_delivery(d); });
}

VmtpEndpoint::~VmtpEndpoint() {
  host_.unbind(entity_);
  for (auto& [txn, state] : outstanding_) {
    if (state.rto_timer != 0) sim_.cancel(state.rto_timer);
    if (state.response.gap_timer != 0) sim_.cancel(state.response.gap_timer);
  }
  for (auto& [key, rx] : inbound_) {
    if (rx.gap_timer != 0) sim_.cancel(rx.gap_timer);
  }
}

void VmtpEndpoint::set_observer(const obs::Observer& observer) {
  if (observer.has_metrics()) {
    const std::string base = "vmtp." + stats::metric_component(host_.name());
    obs_rtt_ = &observer.registry->histogram(base + ".rtt_ps");
    obs_timeouts_ = &observer.registry->counter(base + ".timeouts");
    obs_failures_ = &observer.registry->counter(base + ".failures");
    obs_retransmits_ = &observer.registry->counter(base + ".retransmits");
  }
  obs_recorder_ = observer.recorder;
}

std::vector<wire::Bytes> VmtpEndpoint::split(
    std::span<const std::uint8_t> data) const {
  std::vector<wire::Bytes> parts;
  if (data.empty()) {
    parts.emplace_back();
    return parts;
  }
  for (std::size_t off = 0; off < data.size();
       off += config_.max_data_per_packet) {
    const std::size_t len =
        std::min(config_.max_data_per_packet, data.size() - off);
    const auto piece = data.subspan(off, len);
    parts.emplace_back(piece.begin(), piece.end());
  }
  if (parts.size() > config_.max_group) {
    throw std::invalid_argument(
        "VMTP: message exceeds one packet group (" +
        std::to_string(parts.size()) + " > " +
        std::to_string(config_.max_group) + " packets)");
  }
  return parts;
}

void VmtpEndpoint::invoke(const dir::IssuedRoute& route,
                          std::uint64_t server_entity,
                          std::span<const std::uint8_t> request,
                          ResponseCallback callback) {
  const std::uint32_t txn = next_transaction_++;
  TxState state;
  state.route = route;
  state.server = server_entity;
  state.request_parts = split(request);
  state.callback = std::move(callback);
  state.started = sim_.now();
  auto [it, inserted] = outstanding_.emplace(txn, std::move(state));
  SIRPENT_INVARIANT(inserted);
  ++stats_.requests_sent;

  Header base;
  base.src_entity = entity_;
  base.dst_entity = server_entity;
  base.transaction = txn;
  base.type = PacketType::kRequest;
  base.group_size = static_cast<std::uint8_t>(it->second.request_parts.size());
  base.timestamp = clock_.now_ms();
  send_group(base, it->second.request_parts, full_mask(base.group_size),
             &it->second.route, nullptr);
  arm_rto(txn);
}

void VmtpEndpoint::send_group(const Header& base,
                              const std::vector<wire::Bytes>& parts,
                              std::uint32_t mask,
                              const dir::IssuedRoute* route,
                              const viper::Delivery* reply_via) {
  sim::Time t = sim_.now();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    Header h = base;
    h.index = static_cast<std::uint8_t>(i);
    const std::size_t wire_size = Header::kWireSize + parts[i].size();
    if (throttle_ != nullptr && route != nullptr &&
        !route->router_ids.empty()) {
      const cc::FlowKey key{route->router_ids.front(),
                            route->route.segments.front().port};
      t = std::max(t, throttle_->acquire(key, wire_size));
    }
    send_one(h, parts[i], route, reply_via, t);
    ++stats_.data_packets_sent;
    if (config_.send_rate_bps > 0.0) {
      // "rate-based flow control is used between packets within a packet
      // group to avoid overruns" (§4.3).
      t += sim::from_seconds(static_cast<double>(wire_size) * 8.0 /
                             config_.send_rate_bps);
    }
  }
}

void VmtpEndpoint::send_one(const Header& header, const wire::Bytes& payload,
                            const dir::IssuedRoute* route,
                            const viper::Delivery* reply_via,
                            sim::Time when) {
  wire::Bytes packet = encode_transport_packet(header, payload);
  if (route != nullptr) {
    core::SourceRoute source_route = route->route;
    viper::SendOptions options;
    options.tos.priority = config_.priority;
    options.flow = header.transaction;
    options.out_port = route->host_out_port;
    options.link = route->first_hop_link;
    auto do_send = [this, source_route = std::move(source_route),
                    packet = std::move(packet), options] {
      host_.send(source_route, packet, options);
    };
    if (when <= sim_.now()) {
      do_send();
    } else {
      sim_.at(when, std::move(do_send));
    }
    return;
  }
  SIRPENT_INVARIANT(reply_via != nullptr);
  viper::Delivery via = *reply_via;
  // Address the reply to the peer's transport entity: Sirpent's local
  // port-0 segment doubles as intra-host addressing (§2.2), so the entity
  // id is the endpoint id at the peer host.
  if (!via.return_route.segments.empty()) {
    core::HeaderSegment& last = via.return_route.segments.back();
    last.port_info = viper::encode_endpoint_id(header.dst_entity);
    last.flags.vnt = false;
  }
  core::TypeOfService tos;
  tos.priority = config_.priority;
  auto do_send = [this, via = std::move(via), packet = std::move(packet),
                  tos] { host_.reply(via, packet, tos); };
  if (when <= sim_.now()) {
    do_send();
  } else {
    sim_.at(when, std::move(do_send));
  }
}

bool VmtpEndpoint::lifetime_ok(const Header& header) {
  if (header.timestamp == kInvalidTimestamp) return true;
  const std::int64_t age = clock_.age_ms(header.timestamp);
  if (age > config_.mpl_ms || age < -config_.future_skew_ms) {
    ++stats_.mpl_discards;
    return false;
  }
  return true;
}

void VmtpEndpoint::on_delivery(const viper::Delivery& delivery) {
  const auto packet = decode_transport_packet(delivery.data);
  if (!packet.has_value()) {
    // Damaged (e.g. header corruption somewhere upstream, or truncation):
    // Sirpent carries no network checksum, so this is where it shows up.
    ++stats_.checksum_drops;
    return;
  }
  if (packet->header.dst_entity != entity_) {
    // Misdelivery: the 64-bit transport id is "unique independent of the
    // (inter)network layer addressing" and catches it (§4.1).
    ++stats_.misdeliveries;
    return;
  }
  if (!lifetime_ok(packet->header)) return;

  switch (packet->header.type) {
    case PacketType::kRequest:
      handle_request_packet(*packet, delivery);
      break;
    case PacketType::kResponse:
      handle_response_packet(*packet, delivery);
      break;
    case PacketType::kNack:
      handle_nack(*packet, delivery);
      break;
  }
}

void VmtpEndpoint::arm_gap_timer(GroupRx& rx, std::uint64_t peer,
                                 std::uint32_t transaction, PacketType kind) {
  if (rx.gap_timer != 0) return;
  rx.gap_timer = sim_.after(config_.gap_timeout, [this, peer, transaction,
                                                  kind] {
    GroupRx* rx_now = nullptr;
    if (kind == PacketType::kRequest) {
      const auto it = inbound_.find({peer, transaction});
      if (it != inbound_.end()) rx_now = &it->second;
    } else {
      const auto it = outstanding_.find(transaction);
      if (it != outstanding_.end()) rx_now = &it->second.response;
    }
    if (rx_now == nullptr) return;
    rx_now->gap_timer = 0;
    RxEvent event;
    event.type = RxEvent::Type::kGapFire;
    RxActions actions;
    hooks_.rx(RxState{rx_now->group_size, rx_now->received_mask}, event,
              &actions);
    if (!actions.send_nack) return;  // group completed in the meantime
    if (!rx_now->reply_via.has_value()) return;
    // Selective retransmission: tell the sender what we have (§4.3).
    Header nack;
    nack.src_entity = entity_;
    nack.dst_entity = peer;
    nack.transaction = transaction;
    nack.type = PacketType::kNack;
    nack.group_size = rx_now->group_size;
    nack.mask = actions.nack_mask;
    nack.timestamp = clock_.now_ms();
    ++stats_.nacks_sent;
    send_one(nack, {}, nullptr, &*rx_now->reply_via, sim_.now());
    if (actions.arm_gap) arm_gap_timer(*rx_now, peer, transaction, kind);
  });
}

void VmtpEndpoint::handle_request_packet(const TransportPacket& packet,
                                         const viper::Delivery& delivery) {
  const Header& h = packet.header;
  const auto key = std::make_pair(h.src_entity, h.transaction);

  const auto done = served_.find(key);
  if (done != served_.end()) {
    // Duplicate of a completed transaction: re-send the response.
    ++stats_.duplicate_requests;
    Header base;
    base.src_entity = entity_;
    base.dst_entity = h.src_entity;
    base.transaction = h.transaction;
    base.type = PacketType::kResponse;
    base.group_size =
        static_cast<std::uint8_t>(done->second.response_parts.size());
    base.flags = kFlagRetransmission;
    base.timestamp = clock_.now_ms();
    send_group(base, done->second.response_parts, full_mask(base.group_size),
               nullptr, &delivery);
    return;
  }

  GroupRx& rx = inbound_[key];
  RxEvent event;
  event.type = RxEvent::Type::kPart;
  event.index = h.index;
  event.group_size = h.group_size;
  RxActions actions;
  const RxState core =
      hooks_.rx(RxState{rx.group_size, rx.received_mask}, event, &actions);
  if (!actions.part_ok) return;  // malformed or mixed group
  if (rx.parts.empty()) {
    rx.parts.resize(core.group_size);
    rx.first_at = sim_.now();
  }
  rx.group_size = core.group_size;
  rx.received_mask = core.mask;
  if (actions.accept) {
    rx.parts[h.index].assign(packet.payload.begin(), packet.payload.end());
  }
  rx.reply_via = delivery;

  if (actions.complete) {
    if (rx.gap_timer != 0) sim_.cancel(rx.gap_timer);
    complete_request(h.src_entity, h.transaction, rx);
    inbound_.erase(key);
    return;
  }
  if (actions.arm_gap) {
    arm_gap_timer(rx, h.src_entity, h.transaction, PacketType::kRequest);
  }
}

void VmtpEndpoint::complete_request(std::uint64_t peer,
                                    std::uint32_t transaction,
                                    const GroupRx& rx) {
  wire::Bytes request;
  for (const auto& part : rx.parts) {
    request.insert(request.end(), part.begin(), part.end());
  }
  ++stats_.requests_served;
  const viper::Delivery& via = *rx.reply_via;
  wire::Bytes response =
      handler_ ? handler_(request, via) : wire::Bytes{};
  std::vector<wire::Bytes> parts = split(response);

  Header base;
  base.src_entity = entity_;
  base.dst_entity = peer;
  base.transaction = transaction;
  base.type = PacketType::kResponse;
  base.group_size = static_cast<std::uint8_t>(parts.size());
  base.timestamp = clock_.now_ms();

  served_[{peer, transaction}] = Served{parts};
  served_order_.emplace_back(peer, transaction);
  constexpr std::size_t kServedCap = 4096;
  while (served_order_.size() > kServedCap) {
    served_.erase(served_order_.front());
    served_order_.pop_front();
  }

  send_group(base, parts, full_mask(base.group_size), nullptr, &via);
}

void VmtpEndpoint::handle_response_packet(const TransportPacket& packet,
                                          const viper::Delivery& delivery) {
  const Header& h = packet.header;
  const auto it = outstanding_.find(h.transaction);
  if (it == outstanding_.end()) return;  // late duplicate
  TxState& st = it->second;
  if (h.src_entity != st.server) {
    ++stats_.misdeliveries;
    return;
  }
  GroupRx& rx = st.response;
  RxEvent event;
  event.type = RxEvent::Type::kPart;
  event.index = h.index;
  event.group_size = h.group_size;
  RxActions actions;
  const RxState core =
      hooks_.rx(RxState{rx.group_size, rx.received_mask}, event, &actions);
  if (!actions.part_ok) return;
  if (rx.parts.empty()) {
    rx.parts.resize(core.group_size);
    rx.first_at = sim_.now();
  }
  rx.group_size = core.group_size;
  rx.received_mask = core.mask;
  if (actions.accept) {
    rx.parts[h.index].assign(packet.payload.begin(), packet.payload.end());
  }
  rx.reply_via = delivery;

  if (actions.complete) {
    TxnEvent done;
    done.type = TxnEvent::Type::kResponseComplete;
    TxnActions txn_actions;
    const TxnState txn =
        hooks_.txn(TxnConfig{config_.max_retries},
                   TxnState{TxnPhase::kAwaitingResponse, st.retries}, done,
                   &txn_actions);
    st.retries = txn.retries;
    if (!txn_actions.deliver) return;
    Result result;
    result.ok = true;
    for (const auto& part : rx.parts) {
      result.response.insert(result.response.end(), part.begin(),
                             part.end());
    }
    result.rtt = sim_.now() - st.started;
    result.retransmissions = st.retries;
    observe_rtt(result.rtt);
    if (on_rtt_) on_rtt_(result.rtt);
    ++stats_.responses_received;
    finish(h.transaction, std::move(result));
    return;
  }
  if (actions.arm_gap) {
    arm_gap_timer(rx, st.server, h.transaction, PacketType::kResponse);
  }
}

void VmtpEndpoint::handle_nack(const TransportPacket& packet,
                               const viper::Delivery& delivery) {
  const Header& h = packet.header;
  ++stats_.nacks_received;

  // Client side: peer wants missing request packets.
  const auto out = outstanding_.find(h.transaction);
  if (out != outstanding_.end() && out->second.server == h.src_entity) {
    TxState& st = out->second;
    TxnEvent event;
    event.type = TxnEvent::Type::kNack;
    event.group_size = h.group_size;
    event.mask = h.mask;
    TxnActions actions;
    const TxnState txn =
        hooks_.txn(TxnConfig{config_.max_retries},
                   TxnState{TxnPhase::kAwaitingResponse, st.retries}, event,
                   &actions);
    st.retries = txn.retries;
    Header base;
    base.src_entity = entity_;
    base.dst_entity = st.server;
    base.transaction = h.transaction;
    base.type = PacketType::kRequest;
    base.group_size = static_cast<std::uint8_t>(st.request_parts.size());
    base.flags = kFlagRetransmission;
    base.timestamp = clock_.now_ms();
    stats_.retransmitted_packets +=
        static_cast<std::uint64_t>(std::popcount(actions.resend_mask));
    if (obs_retransmits_ != nullptr) {
      obs_retransmits_->add(
          static_cast<std::uint64_t>(std::popcount(actions.resend_mask)));
    }
    send_group(base, st.request_parts, actions.resend_mask, &st.route,
               nullptr);
    return;
  }

  // Server side: peer wants missing response packets (stateless: the
  // served memory plus the shared missing-bitmask helper decide).
  const std::uint32_t missing = missing_mask(h.mask, h.group_size);
  const auto done = served_.find({h.src_entity, h.transaction});
  if (done != served_.end()) {
    Header base;
    base.src_entity = entity_;
    base.dst_entity = h.src_entity;
    base.transaction = h.transaction;
    base.type = PacketType::kResponse;
    base.group_size =
        static_cast<std::uint8_t>(done->second.response_parts.size());
    base.flags = kFlagRetransmission;
    base.timestamp = clock_.now_ms();
    stats_.retransmitted_packets +=
        static_cast<std::uint64_t>(std::popcount(missing));
    if (obs_retransmits_ != nullptr) {
      obs_retransmits_->add(static_cast<std::uint64_t>(std::popcount(missing)));
    }
    send_group(base, done->second.response_parts, missing, nullptr,
               &delivery);
  }
}

void VmtpEndpoint::arm_rto(std::uint32_t transaction) {
  const auto it = outstanding_.find(transaction);
  if (it == outstanding_.end()) return;
  it->second.rto_timer =
      sim_.after(rto(), [this, transaction] { on_rto(transaction); });
}

void VmtpEndpoint::on_rto(std::uint32_t transaction) {
  const auto it = outstanding_.find(transaction);
  if (it == outstanding_.end()) return;
  TxState& st = it->second;
  st.rto_timer = 0;
  TxnEvent event;
  event.type = TxnEvent::Type::kRtoFire;
  event.group_size = static_cast<std::uint8_t>(st.request_parts.size());
  TxnActions actions;
  const TxnState txn =
      hooks_.txn(TxnConfig{config_.max_retries},
                 TxnState{TxnPhase::kAwaitingResponse, st.retries}, event,
                 &actions);
  st.retries = txn.retries;
  if (actions.count_timeout) {
    ++stats_.timeouts;
    if (obs_timeouts_ != nullptr) obs_timeouts_->add(1);
  }
  if (actions.fail) {
    ++stats_.failures;
    if (obs_failures_ != nullptr) obs_failures_->add(1);
    if (on_failure_) on_failure_();
    Result result;
    result.ok = false;
    result.retransmissions = st.retries - 1;
    result.error = "transaction timed out";
    finish(transaction, std::move(result));
    return;
  }
  if (actions.resend_mask != 0) {
    Header base;
    base.src_entity = entity_;
    base.dst_entity = st.server;
    base.transaction = transaction;
    base.type = PacketType::kRequest;
    base.group_size = static_cast<std::uint8_t>(st.request_parts.size());
    base.flags = kFlagRetransmission;
    base.timestamp = clock_.now_ms();
    stats_.retransmitted_packets +=
        static_cast<std::uint64_t>(std::popcount(actions.resend_mask));
    if (obs_retransmits_ != nullptr) {
      obs_retransmits_->add(
          static_cast<std::uint64_t>(std::popcount(actions.resend_mask)));
    }
    send_group(base, st.request_parts, actions.resend_mask, &st.route,
               nullptr);
  }
  if (actions.arm_rto) arm_rto(transaction);
}

void VmtpEndpoint::finish(std::uint32_t transaction, Result result) {
  const auto it = outstanding_.find(transaction);
  if (it == outstanding_.end()) return;
  TxState& st = it->second;
  if (st.rto_timer != 0) sim_.cancel(st.rto_timer);
  if (st.response.gap_timer != 0) sim_.cancel(st.response.gap_timer);
  if (obs_recorder_ != nullptr) {
    obs::SpanRecord span;
    span.trace_id = transaction;
    span.hop = static_cast<std::uint32_t>(st.retries);
    span.kind = obs::SpanKind::kTxn;
    span.start = st.started;
    span.decision = st.started;
    span.end = sim_.now();
    span.set_component(host_.name());
    obs_recorder_->record(span);
  }
  ResponseCallback callback = std::move(st.callback);
  outstanding_.erase(it);
  if (callback) callback(std::move(result));
}

void VmtpEndpoint::observe_rtt(sim::Time rtt) {
  srtt_ = srtt_ == 0 ? rtt : (7 * srtt_ + rtt) / 8;
  if (obs_rtt_ != nullptr) obs_rtt_->record(static_cast<std::uint64_t>(rtt));
}

sim::Time VmtpEndpoint::rto() const {
  return std::max(config_.min_rto, 3 * srtt_);
}

}  // namespace srp::vmtp
