// VMTP-style request/response transport over Sirpent (paper §4).
//
// Implements the transport functions the paper relocates out of the
// internetwork layer:
//   * misdelivery detection via 64-bit entity ids "unique independent of
//     the (inter)network layer addressing" (§4.1),
//   * maximum-packet-lifetime enforcement via creation timestamps and
//     roughly synchronized clocks, replacing IP's TTL (§4.2),
//   * large logical packets as *packet groups* with rate-based pacing
//     between packets and selective retransmission, replacing
//     fragmentation/reassembly (§4.3).
//
// Responses travel on the return route recovered from the request packet's
// trailer, exercising Sirpent's core mechanism end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "congestion/throttle.hpp"
#include "directory/routes.hpp"
#include "sim/simulator.hpp"
#include "transport/header.hpp"
#include "transport/timestamp.hpp"
#include "transport/txn_core.hpp"
#include "viper/host.hpp"

namespace srp::vmtp {

struct VmtpConfig {
  /// Data bytes per packet ("roughly 1 kilobyte transport packet", §5).
  std::size_t max_data_per_packet = 1024;
  /// Packets per packet group.
  std::size_t max_group = 16;
  /// Pacing rate between packets of a group; 0 = unpaced.
  double send_rate_bps = 0.0;
  /// Initial / minimum retransmission timeout.
  sim::Time min_rto = 2 * sim::kMillisecond;
  /// Gap timeout: partial group triggers a selective NACK after this.
  sim::Time gap_timeout = sim::kMillisecond;
  int max_retries = 5;
  /// Maximum acceptable packet age (§4.2); generous by default.
  std::int64_t mpl_ms = 30'000;
  /// Clock-skew tolerance for packets stamped "in the future".
  std::int64_t future_skew_ms = 5'000;
  /// This host's clock offset from true time (skew injection).
  sim::Time clock_offset = 0;
  std::uint8_t priority = 0;
};

/// Outcome handed to the invoke() callback.
struct Result {
  bool ok = false;
  wire::Bytes response;
  sim::Time rtt = 0;
  int retransmissions = 0;
  std::string error;  ///< empty on success
};

class VmtpEndpoint {
 public:
  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t responses_received = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t data_packets_sent = 0;
    std::uint64_t retransmitted_packets = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;       ///< transactions abandoned
    std::uint64_t mpl_discards = 0;   ///< too-old packets rejected
    std::uint64_t checksum_drops = 0;
    std::uint64_t misdeliveries = 0;  ///< wrong dst_entity
    std::uint64_t duplicate_requests = 0;
  };

  using RequestHandler = std::function<wire::Bytes(
      std::span<const std::uint8_t> request, const viper::Delivery& from)>;
  using ResponseCallback = std::function<void(Result)>;
  /// Invoked on hard transaction failure so the caller can tell its
  /// RouteCache (dir::RouteCache::report_failure) and retry elsewhere.
  using FailureHook = std::function<void()>;
  /// Invoked with each successful RTT sample (for RouteCache::report_rtt).
  using RttHook = std::function<void(sim::Time)>;

  VmtpEndpoint(sim::Simulator& sim, viper::ViperHost& host,
               std::uint64_t entity_id, VmtpConfig config = {});

  /// Unbinds the entity from its host (supporting migration: a new
  /// incarnation may bind the same id elsewhere, §4.1).  Destroying an
  /// endpoint with transactions still outstanding cancels their timers.
  ~VmtpEndpoint();
  VmtpEndpoint(const VmtpEndpoint&) = delete;
  VmtpEndpoint& operator=(const VmtpEndpoint&) = delete;

  /// Serves requests addressed to this entity.
  void serve(RequestHandler handler) { handler_ = std::move(handler); }

  /// Issues a request along @p route to @p server_entity.
  void invoke(const dir::IssuedRoute& route, std::uint64_t server_entity,
              std::span<const std::uint8_t> request,
              ResponseCallback callback);

  /// Wires congestion pacing: packets consult the throttle keyed by the
  /// first-hop (router, port) of the route being used.
  void set_throttle(cc::SourceThrottle* throttle) { throttle_ = throttle; }

  void set_failure_hook(FailureHook hook) { on_failure_ = std::move(hook); }
  void set_rtt_hook(RttHook hook) { on_rtt_ = std::move(hook); }

  /// Wires the endpoint to an observability sink: a
  /// `vmtp.<host>.rtt_ps` histogram plus `.timeouts` / `.failures` /
  /// `.retransmits` counters, and — with a recorder — one kTxn span per
  /// completed client transaction (invoke to response/failure).
  void set_observer(const obs::Observer& observer);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t entity_id() const { return entity_; }
  [[nodiscard]] HostClock& clock() { return clock_; }
  [[nodiscard]] sim::Time smoothed_rtt() const { return srtt_; }

  /// The pure transition cores this endpoint drives (txn_core.hpp).  All
  /// protocol decisions — reassembly masks, NACK contents, retry/failure —
  /// flow through these function pointers; the endpoint itself only
  /// interprets the returned actions.
  struct CoreHooks {
    TxnStepFn txn = &txn_step;
    RxStepFn rx = &rx_step;
  };

  /// Model-checker regression hook (tests/mc_regress): replaces the
  /// transition cores with deliberately broken variants from mc::mutants
  /// so counterexamples found by the explorer replay in the real sim.
  void set_core_hooks_for_test(const CoreHooks& hooks) { hooks_ = hooks; }

 private:
  /// Reassembly buffer for one incoming packet group.
  struct GroupRx {
    std::vector<wire::Bytes> parts;
    std::uint32_t received_mask = 0;
    std::uint8_t group_size = 0;
    sim::Time first_at = 0;
    std::optional<viper::Delivery> reply_via;  ///< latest packet's delivery
    sim::EventId gap_timer = 0;
  };

  /// Sender state for one outstanding transaction (client side).
  struct TxState {
    dir::IssuedRoute route;
    std::uint64_t server = 0;
    std::vector<wire::Bytes> request_parts;
    ResponseCallback callback;
    sim::Time started = 0;
    int retries = 0;
    sim::EventId rto_timer = 0;
    GroupRx response;
    bool response_started = false;
  };

  /// Server-side memory of a completed transaction, for duplicate
  /// suppression and response retransmission.
  struct Served {
    std::vector<wire::Bytes> response_parts;
  };

  void on_delivery(const viper::Delivery& delivery);
  void handle_request_packet(const TransportPacket& packet,
                             const viper::Delivery& delivery);
  void handle_response_packet(const TransportPacket& packet,
                              const viper::Delivery& delivery);
  void handle_nack(const TransportPacket& packet,
                   const viper::Delivery& delivery);

  bool lifetime_ok(const Header& header);

  /// Splits @p data into group payload parts.
  std::vector<wire::Bytes> split(std::span<const std::uint8_t> data) const;

  /// Sends the group packets selected by @p mask (bit i => send part i)
  /// with rate pacing, via direct route or reply path.
  void send_group(const Header& base, const std::vector<wire::Bytes>& parts,
                  std::uint32_t mask, const dir::IssuedRoute* route,
                  const viper::Delivery* reply_via);

  void send_one(const Header& header, const wire::Bytes& payload,
                const dir::IssuedRoute* route,
                const viper::Delivery* reply_via, sim::Time when);

  void arm_rto(std::uint32_t transaction);
  void on_rto(std::uint32_t transaction);
  void arm_gap_timer(GroupRx& rx, std::uint64_t peer,
                     std::uint32_t transaction, PacketType kind);
  void complete_request(std::uint64_t peer, std::uint32_t transaction,
                        const GroupRx& rx);
  void finish(std::uint32_t transaction, Result result);

  void observe_rtt(sim::Time rtt);
  [[nodiscard]] sim::Time rto() const;

  sim::Simulator& sim_;
  viper::ViperHost& host_;
  std::uint64_t entity_;
  VmtpConfig config_;
  CoreHooks hooks_;
  HostClock clock_;
  cc::SourceThrottle* throttle_ = nullptr;

  RequestHandler handler_;
  FailureHook on_failure_;
  RttHook on_rtt_;

  std::uint32_t next_transaction_ = 1;
  std::map<std::uint32_t, TxState> outstanding_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, GroupRx> inbound_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, Served> served_;
  std::deque<std::pair<std::uint64_t, std::uint32_t>> served_order_;

  sim::Time srtt_ = 0;
  Stats stats_;

  // Observability handles, resolved once by set_observer(); null = off.
  stats::Histogram* obs_rtt_ = nullptr;
  stats::Counter* obs_timeouts_ = nullptr;
  stats::Counter* obs_failures_ = nullptr;
  stats::Counter* obs_retransmits_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace srp::vmtp
