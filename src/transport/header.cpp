#include "transport/header.hpp"

#include "wire/checksum.hpp"

namespace srp::vmtp {

wire::Bytes encode_transport_packet(const Header& header,
                                    std::span<const std::uint8_t> payload) {
  wire::Writer w(Header::kWireSize + payload.size());
  w.u64(header.src_entity);
  w.u64(header.dst_entity);
  w.u32(header.transaction);
  w.u8(static_cast<std::uint8_t>(header.type));
  w.u8(header.group_size);
  w.u8(header.index);
  w.u8(header.flags);
  w.u32(header.timestamp);
  w.u32(header.mask);
  const std::size_t checksum_offset = w.size();
  w.u16(0);
  w.bytes(payload);
  wire::Bytes bytes = std::move(w).take();
  const std::uint16_t checksum = wire::internet_checksum(bytes);
  bytes[checksum_offset] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[checksum_offset + 1] = static_cast<std::uint8_t>(checksum);
  return bytes;
}

std::optional<TransportPacket> decode_transport_packet(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < Header::kWireSize) return std::nullopt;
  if (!wire::internet_checksum_ok(bytes)) return std::nullopt;
  wire::Reader r(bytes);
  TransportPacket packet;
  Header& h = packet.header;
  h.src_entity = r.u64();
  h.dst_entity = r.u64();
  h.transaction = r.u32();
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 3) return std::nullopt;
  h.type = static_cast<PacketType>(type);
  h.group_size = r.u8();
  h.index = r.u8();
  h.flags = r.u8();
  h.timestamp = r.u32();
  h.mask = r.u32();
  r.skip(2);  // checksum (already verified)
  if (h.group_size == 0 || h.group_size > 32 || h.index >= h.group_size) {
    return std::nullopt;
  }
  packet.payload = bytes.subspan(Header::kWireSize);
  return packet;
}

}  // namespace srp::vmtp
