#include "transport/txn_core.hpp"

#include "check/contract.hpp"

namespace srp::vmtp {

RxState rx_step(RxState state, const RxEvent& event, RxActions* actions) {
  SIRPENT_EXPECTS(actions != nullptr);
  *actions = RxActions{};
  switch (event.type) {
    case RxEvent::Type::kPart: {
      if (event.corrupted) {
        // The runtime's decoder already discarded damaged packets; the
        // model routes them here to prove no ack/progress results.
        actions->drop_corrupt = true;
        return state;
      }
      if (state.group_size == 0) {
        // First packet of the group fixes its size.
        state.group_size = event.group_size;
      } else if (event.group_size != state.group_size) {
        // Inconsistent duplicate (e.g. corrupted header): ignore it.
        return state;
      }
      actions->part_ok = true;
      const std::uint32_t bit = 1u << event.index;
      if ((state.mask & bit) == 0) {
        state.mask |= bit;
        actions->accept = true;
      }
      if (state.mask == full_mask(state.group_size)) {
        actions->complete = true;
      } else {
        actions->arm_gap = true;
      }
      return state;
    }
    case RxEvent::Type::kGapFire: {
      if (state.mask == full_mask(state.group_size)) return state;
      // Parts still missing: request selective retransmission by
      // reporting what we *have*, then keep watching for the rest.
      actions->send_nack = true;
      actions->nack_mask = state.mask;
      actions->arm_gap = true;
      return state;
    }
  }
  return state;
}

TxnState txn_step(const TxnConfig& config, TxnState state,
                  const TxnEvent& event, TxnActions* actions) {
  SIRPENT_EXPECTS(actions != nullptr);
  *actions = TxnActions{};
  // Delivered / failed are terminal: late packets and stale timers for a
  // finished transaction must not resurrect it.
  if (state.phase != TxnPhase::kAwaitingResponse) return state;
  switch (event.type) {
    case TxnEvent::Type::kResponseComplete:
      state.phase = TxnPhase::kDelivered;
      actions->deliver = true;
      return state;
    case TxnEvent::Type::kNack:
      // Selective retransmission: resend exactly the parts the server
      // reports missing, never the ones it already holds.
      actions->resend_mask = missing_mask(event.mask, event.group_size);
      return state;
    case TxnEvent::Type::kRtoFire:
      actions->count_timeout = true;
      if (++state.retries > config.max_retries) {
        state.phase = TxnPhase::kFailed;
        actions->fail = true;
        return state;
      }
      // Coarse recovery: resend the whole request group and rearm.
      actions->resend_mask = full_mask(event.group_size);
      actions->arm_rto = true;
      return state;
  }
  return state;
}

}  // namespace srp::vmtp
