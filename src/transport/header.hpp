// VMTP-style transport packet header.
//
// Carries everything the end-to-end argument moves out of the internetwork
// layer (paper §4): 64-bit entity identifiers that are unique independent
// of network addresses (misdelivery detection), the creation timestamp
// (packet lifetime), group/index/mask fields (packet groups + selective
// retransmission), and an end-to-end checksum (Sirpent routers keep none).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "wire/buffer.hpp"

namespace srp::vmtp {

enum class PacketType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kNack = 3,  ///< selective-retransmission status: mask = packets received
};

inline constexpr std::uint8_t kFlagRetransmission = 0x01;

struct Header {
  std::uint64_t src_entity = 0;
  std::uint64_t dst_entity = 0;
  std::uint32_t transaction = 0;
  PacketType type = PacketType::kRequest;
  std::uint8_t group_size = 1;  ///< packets in this packet group
  std::uint8_t index = 0;       ///< this packet's position in the group
  std::uint8_t flags = 0;
  std::uint32_t timestamp = 0;  ///< creation time, ms ring
  std::uint32_t mask = 0;       ///< NACK: bitmap of received indices

  static constexpr std::size_t kWireSize = 8 + 8 + 4 + 1 + 1 + 1 + 1 + 4 +
                                           4 + 2;

  bool operator==(const Header&) const = default;
};

/// Encodes header + payload with the trailing end-to-end checksum filled in.
wire::Bytes encode_transport_packet(const Header& header,
                                    std::span<const std::uint8_t> payload);

/// Decoded packet; `payload` views into the caller's buffer.
struct TransportPacket {
  Header header;
  std::span<const std::uint8_t> payload;
};

/// Decodes and verifies the checksum; nullopt on damage (the transport's
/// answer to Sirpent's checksum-free network layer).
std::optional<TransportPacket> decode_transport_packet(
    std::span<const std::uint8_t> bytes);

}  // namespace srp::vmtp
