#include "health/monitor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <string_view>
#include <utility>

#include "check/contract.hpp"
#include "flow/plane.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"

namespace srp::health {
namespace {

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view name, std::string_view prefix) {
  return name.substr(0, prefix.size()) == prefix;
}

/// Second dot-segment of a metric name ("viper.r2.token_rejected" -> "r2").
std::string instance_segment(std::string_view metric) {
  const auto first = metric.find('.');
  if (first == std::string_view::npos) return std::string(metric);
  const auto second = metric.find('.', first + 1);
  const auto len =
      second == std::string_view::npos ? std::string_view::npos
                                       : second - first - 1;
  return std::string(metric.substr(first + 1, len));
}

void append_fmt(std::string& out, const char* fmt, auto... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

}  // namespace

HealthMonitor::HealthMonitor(sim::Simulator& sim, stats::Registry& registry,
                             HealthConfig config)
    : sim_(sim),
      registry_(registry),
      config_(config),
      series_(config.series),
      engine_(config.policy) {
  windows_counter_ = &registry_.counter("health.monitor.windows");
  transitions_counter_ = &registry_.counter("health.monitor.transitions");
  rules_gauge_ = &registry_.gauge("health.monitor.rules");
  firing_gauge_ = &registry_.gauge("health.monitor.alerts_firing");
}

void HealthMonitor::map_router(std::uint32_t id, std::string name) {
  router_names_[id] = std::move(name);
}

void HealthMonitor::watch_link(net::TxPort& port, std::string owner) {
  LinkProbe probe;
  probe.port = &port;
  probe.owner = owner;
  probe.instance = stats::metric_component(port.name());
  instance_owner_[probe.instance] = owner;
  instance_port_[probe.instance] = port.name();
  probes_.push_back(std::move(probe));
}

void HealthMonitor::start() {
  if (started_) return;
  started_ = true;
  auto tick_fn = std::make_shared<std::function<void()>>();
  // Weak self-capture (the enable_load_reporting idiom): the only strong
  // reference lives in the pending event, so the chain is reclaimed with
  // the event queue.
  *tick_fn = [this, weak = std::weak_ptr(tick_fn)] {
    tick();
    sim_.after(config_.series.window, [self = weak.lock()] { (*self)(); });
  };
  sim_.after(config_.series.window, [tick_fn] { (*tick_fn)(); });
}

void HealthMonitor::publish_probe_mirrors() {
  for (LinkProbe& probe : probes_) {
    const net::TxPort::Stats& s = probe.port->stats();
    const net::TxPort::Stats& p = probe.prev;
    const std::uint64_t outstanding =
        probe.port->queue_packets() + (probe.port->busy() ? 1 : 0);

    const std::uint64_t d_enqueued = s.enqueued - p.enqueued;
    const std::uint64_t d_cleared =
        (s.sent - p.sent) + (s.preempt_aborts - p.preempt_aborts);
    const std::uint64_t d_down = s.dropped_down - p.dropped_down;
    const std::uint64_t d_local = (s.dropped_full - p.dropped_full) +
                                  (s.dropped_blocked - p.dropped_blocked) +
                                  (s.deflected - p.deflected);
    const auto d_outstanding = static_cast<std::int64_t>(outstanding) -
                               static_cast<std::int64_t>(probe.prev_outstanding);

    // The conservation residue: what entered minus every explained exit
    // minus the change in what is still inside.  Exact at tick instants —
    // any positive residue is loss the device cannot account for.
    const auto residue = static_cast<std::int64_t>(d_enqueued) -
                         static_cast<std::int64_t>(d_cleared + d_down +
                                                   d_local) -
                         d_outstanding;
    const std::uint64_t wire_loss =
        residue > 0 ? static_cast<std::uint64_t>(residue) : 0;
    probe.wire_loss_total += wire_loss;
    probe.prev = s;
    probe.prev_outstanding = outstanding;

    const std::string& inst = probe.instance;
    registry_.counter("port." + inst + ".handed").add(d_enqueued);
    registry_.counter("port." + inst + ".cleared").add(d_cleared);
    registry_.counter("port." + inst + ".down_drops").add(d_down);
    registry_.counter("port." + inst + ".local_drops").add(d_local);
    registry_.counter("port." + inst + ".wire_loss").add(wire_loss);
    registry_.gauge("port." + inst + ".link_up")
        .set(probe.port->is_up() ? 1 : 0);
  }
}

void HealthMonitor::instantiate_rules(const stats::MetricsSnapshot& snap) {
  const auto add_rule = [&](const std::string& metric, std::string alert,
                            Reading reading, DetectorKind kind,
                            auto detector) {
    AlertLabels labels;
    labels.alert = std::move(alert);
    labels.metric = metric;
    labels.detector = kind;
    const auto instance = instance_segment(metric);
    labels.component = owner_of(metric);
    if (const auto it = instance_port_.find(instance);
        it != instance_port_.end()) {
      labels.port = it->second;
    }
    rules_.push_back(Rule{metric, reading, engine_.add_rule(std::move(labels)),
                          std::move(detector)});
  };

  const auto consider = [&](const std::string& name, bool histogram) {
    if (ruled_metrics_.contains(name)) return;
    ruled_metrics_[name] = true;
    if (!histogram) {
      if (starts_with(name, "port.") && ends_with(name, ".wire_loss")) {
        add_rule(name, "LinkWireLoss", Reading::kCounterRate,
                 DetectorKind::kThreshold,
                 ThresholdDetector({.limit = config_.loss_limit,
                                    .clear_limit = 0.0}));
      } else if (starts_with(name, "port.") &&
                 ends_with(name, ".down_drops")) {
        add_rule(name, "LinkDownDrops", Reading::kCounterRate,
                 DetectorKind::kThreshold,
                 ThresholdDetector({.limit = config_.loss_limit,
                                    .clear_limit = 0.0}));
      } else if (starts_with(name, "port.") && ends_with(name, ".link_up")) {
        add_rule(name, "LinkDown", Reading::kGaugeInverted,
                 DetectorKind::kThreshold,
                 ThresholdDetector({.limit = 1.0, .clear_limit = 0.0}));
      } else if (starts_with(name, "viper.") &&
                 ends_with(name, ".token_rejected")) {
        add_rule(name, "TokenRejects", Reading::kCounterRate,
                 DetectorKind::kThreshold,
                 ThresholdDetector({.limit = config_.reject_limit,
                                    .clear_limit = 0.0}));
      } else if (starts_with(name, "viper.") &&
                 (ends_with(name, ".token_miss_optimistic") ||
                  ends_with(name, ".token_miss_blocking") ||
                  ends_with(name, ".token_miss_drop"))) {
        add_rule(name, "TokenMissSurge", Reading::kCounterRate,
                 DetectorKind::kEwma, EwmaDetector(config_.rate_ewma));
      } else if (starts_with(name, "vmtp.") &&
                 ends_with(name, ".retransmits")) {
        add_rule(name, "RetransmitSurge", Reading::kCounterRate,
                 DetectorKind::kEwma, EwmaDetector(config_.rate_ewma));
      }
      return;
    }
    if (starts_with(name, "port.") && ends_with(name, ".queue_wait_ps")) {
      add_rule(name, "QueueWaitSurge", Reading::kHistogramP99,
               DetectorKind::kEwma, EwmaDetector(config_.latency_ewma));
    } else if (starts_with(name, "vmtp.") && ends_with(name, ".rtt_ps")) {
      add_rule(name, "RttSurge", Reading::kHistogramP99, DetectorKind::kEwma,
               EwmaDetector(config_.latency_ewma));
    } else if (starts_with(name, "host.") &&
               ends_with(name, ".e2e_latency_ps")) {
      add_rule(name, "SloBurnRate", Reading::kHistogramBurn,
               DetectorKind::kBurnRate,
               BurnRateDetector({.objective = config_.slo_objective_ps,
                                 .error_budget = config_.slo_error_budget,
                                 .burn_limit = config_.slo_burn_limit,
                                 .clear_burn = config_.slo_clear_burn,
                                 .min_samples = config_.slo_min_samples}));
    }
  };

  for (const auto& [name, value] : snap.counters) consider(name, false);
  for (const auto& [name, value] : snap.gauges) consider(name, false);
  for (const auto& [name, hist] : snap.histograms) consider(name, true);
}

void HealthMonitor::evaluate_rules() {
  const sim::Time now = sim_.now();
  for (Rule& rule : rules_) {
    Verdict verdict;
    switch (rule.reading) {
      case Reading::kCounterRate: {
        const auto rate = series_.counter_rate(rule.metric);
        if (!rate.has_value()) continue;
        if (auto* d = std::get_if<ThresholdDetector>(&rule.detector)) {
          verdict = d->evaluate(*rate);
        } else {
          verdict = std::get<EwmaDetector>(rule.detector).evaluate(*rate);
        }
        break;
      }
      case Reading::kGaugeInverted: {
        const auto level = series_.gauge_level(rule.metric);
        if (!level.has_value()) continue;
        verdict = std::get<ThresholdDetector>(rule.detector)
                      .evaluate(1.0 - *level);
        break;
      }
      case Reading::kHistogramP99: {
        const auto* window = series_.histogram_window(rule.metric);
        // An empty window is no evidence either way: keep state, do not
        // teach the baseline that "no traffic" means "zero latency".
        if (window == nullptr || window->count == 0) continue;
        verdict = std::get<EwmaDetector>(rule.detector)
                      .evaluate(static_cast<double>(window->percentile(0.99)));
        break;
      }
      case Reading::kHistogramBurn: {
        const auto* window = series_.histogram_window(rule.metric);
        if (window == nullptr) continue;
        verdict = std::get<BurnRateDetector>(rule.detector).evaluate(*window);
        break;
      }
    }
    if (engine_.observe(rule.handle, now, verdict)) {
      on_transition(engine_.alert(rule.handle));
    }
  }
}

void HealthMonitor::tick() {
  publish_probe_mirrors();
  const auto snap = registry_.full_snapshot();
  series_.roll(sim_.now(), snap);
  instantiate_rules(snap);
  evaluate_rules();
  windows_counter_->add(1);
  rules_gauge_->set(static_cast<std::int64_t>(rules_.size()));
  firing_gauge_->set(static_cast<std::int64_t>(engine_.firing().size()));
}

void HealthMonitor::on_transition(const Alert& alert) {
  transitions_counter_->add(1);
  if (!config_.emit_spans || recorder_ == nullptr) return;
  obs::SpanRecord span;
  span.kind = obs::SpanKind::kAlert;
  span.start = span.decision = span.end = sim_.now();
  span.set_component(alert.labels.alert);
  // Reuse the hop field to carry the lifecycle state into the trace args.
  span.hop = static_cast<std::uint32_t>(alert.state);
  recorder_->record(span);
}

std::string HealthMonitor::owner_of(const std::string& metric) const {
  const auto instance = instance_segment(metric);
  if (const auto it = instance_owner_.find(instance);
      it != instance_owner_.end()) {
    return it->second;
  }
  return instance;
}

RootCause HealthMonitor::diagnose(const Alert& alert) const {
  RootCause cause;
  cause.router = alert.labels.component;
  cause.port = alert.labels.port;
  append_fmt(cause.reason, "%s (%s on %s): %s", alert.labels.alert.c_str(),
             std::string(to_string(alert.labels.detector)).c_str(),
             alert.labels.metric.c_str(),
             std::string(to_string(alert.state)).c_str());
  append_fmt(cause.reason, ", peak score %.2f over %" PRIu64 " windows",
             alert.peak_score, alert.breach_windows);

  const auto corroborate = [&](const std::string& line) {
    if (!cause.evidence.empty()) cause.evidence += "; ";
    cause.evidence += line;
  };

  if (collector_ != nullptr) {
    // In-band path telemetry localizes end-to-end drops to the last good
    // hop; agreement with the suspect is strong corroboration.
    const auto& drops = collector_->drops_after_router();
    std::uint32_t worst_id = 0;
    std::uint64_t worst = 0;
    for (const auto& [router, count] : drops) {
      if (count > worst) {
        worst = count;
        worst_id = router;
      }
    }
    if (worst > 0) {
      const auto it = router_names_.find(worst_id);
      const std::string name = it != router_names_.end()
                                   ? it->second
                                   : std::to_string(worst_id);
      std::string line;
      append_fmt(line, "path telemetry: %" PRIu64 " drops after %s", worst,
                 name.c_str());
      if (name == cause.router) line += " (matches suspect)";
      corroborate(line);
    }
  }

  if (flow_ != nullptr && !cause.router.empty()) {
    if (const flow::FlowObserver* obs = flow_->observer(cause.router)) {
      const auto top = obs->table().top(1);
      if (!top.empty()) {
        std::string line;
        append_fmt(line,
                   "heaviest flow at %s: account %u, %" PRIu64
                   " bytes via out port %u",
                   cause.router.c_str(), top[0].key.account, top[0].bytes,
                   top[0].last_out_port);
        corroborate(line);
      }
    }
  }
  return cause;
}

}  // namespace srp::health
