#include "health/detector.hpp"

#include <algorithm>
#include <cmath>

#include "check/contract.hpp"
#include "health/series.hpp"

namespace srp::health {

std::string_view to_string(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kThreshold: return "threshold";
    case DetectorKind::kEwma: return "ewma";
    case DetectorKind::kBurnRate: return "burn_rate";
  }
  return "?";
}

ThresholdDetector::ThresholdDetector(ThresholdConfig config)
    : config_(config) {
  SIRPENT_EXPECTS(config_.clear_limit <= config_.limit);
}

Verdict ThresholdDetector::evaluate(double value) {
  if (breached_) {
    if (value <= config_.clear_limit) breached_ = false;
  } else {
    if (value >= config_.limit) breached_ = true;
  }
  return {breached_, value, value};
}

EwmaDetector::EwmaDetector(EwmaConfig config) : config_(config) {
  SIRPENT_EXPECTS(config_.alpha > 0.0 && config_.alpha <= 1.0);
  SIRPENT_EXPECTS(config_.clear_sigmas <= config_.sigmas);
  SIRPENT_EXPECTS(config_.min_sigma > 0.0);
}

double EwmaDetector::sigma() const {
  return std::max(std::sqrt(variance_), config_.min_sigma);
}

Verdict EwmaDetector::evaluate(double value) {
  if (seen_ < config_.warmup) {
    // Cold start: seed the baseline without scoring.  The first sample
    // initialises the mean outright so warmup does not drag it up from 0.
    if (seen_ == 0) {
      mean_ = value;
    } else {
      mean_ += config_.alpha * (value - mean_);
      variance_ += config_.alpha * ((value - mean_) * (value - mean_) -
                                    variance_);
    }
    ++seen_;
    return {false, value, 0.0};
  }

  const double deviation = value - mean_;
  const double z = deviation / sigma();
  const double magnitude = config_.one_sided ? z : std::abs(z);

  if (breached_) {
    if (magnitude <= config_.clear_sigmas) breached_ = false;
  } else {
    breached_ = magnitude >= config_.sigmas &&
                std::abs(deviation) >= config_.min_deviation;
  }

  // Fold the sample into the baseline only while healthy: a sustained
  // fault must stay anomalous instead of becoming the new normal.
  if (!breached_) {
    const double err = value - mean_;
    mean_ += config_.alpha * err;
    variance_ += config_.alpha * (err * err - variance_);
    ++seen_;
  }
  return {breached_, value, magnitude};
}

BurnRateDetector::BurnRateDetector(BurnRateConfig config) : config_(config) {
  SIRPENT_EXPECTS(config_.objective > 0);
  SIRPENT_EXPECTS(config_.error_budget > 0.0);
  SIRPENT_EXPECTS(config_.clear_burn <= config_.burn_limit);
}

Verdict BurnRateDetector::evaluate(const stats::HistogramSnapshot& window) {
  if (window.count < config_.min_samples) {
    return {breached_, 0.0, 0.0};
  }
  const double over = fraction_above(window, config_.objective);
  const double burn = over / config_.error_budget;
  if (breached_) {
    if (burn <= config_.clear_burn) breached_ = false;
  } else {
    if (burn >= config_.burn_limit) breached_ = true;
  }
  return {breached_, over, burn};
}

}  // namespace srp::health
