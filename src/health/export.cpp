#include "health/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace srp::health {
namespace {

void append_fmt(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::vector<const Alert*> label_sorted(const AlertEngine& engine,
                                       bool active_only) {
  std::vector<const Alert*> out;
  for (const auto& cell : engine.cells()) {
    const bool active = cell.state == AlertState::kPending ||
                        cell.state == AlertState::kFiring;
    if (active_only ? active : !cell.events.empty()) out.push_back(&cell);
  }
  std::sort(out.begin(), out.end(), [](const Alert* a, const Alert* b) {
    if (a->labels.alert != b->labels.alert) {
      return a->labels.alert < b->labels.alert;
    }
    return a->labels.metric < b->labels.metric;
  });
  return out;
}

void append_labels(std::string& out, const Alert& alert,
                   std::string_view state) {
  append_fmt(out, "{alertname=\"%s\",alertstate=\"%s\"",
             alert.labels.alert.c_str(), std::string(state).c_str());
  append_fmt(out, ",component=\"%s\"", alert.labels.component.c_str());
  if (!alert.labels.port.empty()) {
    append_fmt(out, ",port=\"%s\"", alert.labels.port.c_str());
  }
  append_fmt(out, ",metric=\"%s\",detector=\"%s\"}",
             alert.labels.metric.c_str(),
             std::string(to_string(alert.labels.detector)).c_str());
}

}  // namespace

std::string to_prometheus_alerts(const AlertEngine& engine) {
  std::string out = "# TYPE ALERTS gauge\n";
  const auto active = label_sorted(engine, /*active_only=*/true);
  for (const Alert* alert : active) {
    const auto state = to_string(alert->state);
    out += "ALERTS";
    append_labels(out, *alert, state);
    out += " 1\n";
  }
  out += "# TYPE ALERTS_FOR_STATE gauge\n";
  for (const Alert* alert : active) {
    out += "ALERTS_FOR_STATE";
    append_labels(out, *alert, to_string(alert->state));
    append_fmt(out, " %.6f\n",
               static_cast<double>(alert->pending_since) /
                   static_cast<double>(sim::kSecond));
  }
  return out;
}

std::string to_alerts_json(const HealthMonitor& monitor) {
  const auto episodes = label_sorted(monitor.engine(), /*active_only=*/false);
  std::string out = "{\n  \"alerts\": [";
  const char* sep = "";
  for (const Alert* alert : episodes) {
    out += sep;
    sep = ",";
    out += "\n    {";
    append_fmt(out, "\"alert\": \"%s\"",
               json_escape(alert->labels.alert).c_str());
    append_fmt(out, ", \"state\": \"%s\"",
               std::string(to_string(alert->state)).c_str());
    append_fmt(out, ", \"component\": \"%s\"",
               json_escape(alert->labels.component).c_str());
    append_fmt(out, ", \"port\": \"%s\"",
               json_escape(alert->labels.port).c_str());
    append_fmt(out, ", \"metric\": \"%s\"",
               json_escape(alert->labels.metric).c_str());
    append_fmt(out, ", \"detector\": \"%s\"",
               std::string(to_string(alert->labels.detector)).c_str());
    append_fmt(out, ",\n     \"pending_since_ps\": %" PRId64,
               alert->pending_since);
    append_fmt(out, ", \"firing_since_ps\": %" PRId64, alert->firing_since);
    append_fmt(out, ", \"resolved_at_ps\": %" PRId64, alert->resolved_at);
    append_fmt(out, ", \"breach_windows\": %" PRIu64, alert->breach_windows);
    append_fmt(out, ", \"peak_score\": %.3f", alert->peak_score);
    out += ",\n     \"events\": [";
    const char* esep = "";
    for (const auto& event : alert->events) {
      append_fmt(out, "%s{\"state\": \"%s\", \"at_ps\": %" PRId64
                      ", \"value\": %.3f, \"score\": %.3f}",
                 esep, std::string(to_string(event.state)).c_str(), event.at,
                 event.value, event.score);
      esep = ", ";
    }
    out += "]";
    if (alert->firing_since != 0) {
      const RootCause cause = monitor.diagnose(*alert);
      out += ",\n     \"root_cause\": {";
      append_fmt(out, "\"router\": \"%s\"",
                 json_escape(cause.router).c_str());
      append_fmt(out, ", \"port\": \"%s\"", json_escape(cause.port).c_str());
      append_fmt(out, ", \"reason\": \"%s\"",
                 json_escape(cause.reason).c_str());
      append_fmt(out, ", \"evidence\": \"%s\"",
                 json_escape(cause.evidence).c_str());
      out += "}";
    }
    out += "}";
  }
  out += episodes.empty() ? "],\n" : "\n  ],\n";
  append_fmt(out, "  \"windows\": %" PRIu64 ",\n", monitor.series().windows());
  append_fmt(out, "  \"rules\": %zu\n", monitor.engine().rules());
  out += "}\n";
  return out;
}

}  // namespace srp::health
