// Windowed time-series over a stats::Registry.
//
// The registry's counters and histograms are cumulative — perfect for
// exporters, useless for "is the fabric degrading *right now*".  A
// SeriesStore closes one fixed sim-time window at a time: roll() diffs a
// fresh MetricsSnapshot against the previous one and appends the per-window
// *delta* — a counter's rate, a gauge's level, a histogram's within-window
// sample set — to a bounded ring per metric, so detectors see "packets
// lost this 10 ms" and "queue-wait p99 of this window's transmissions"
// instead of run-lifetime totals.
//
// roll() runs on the sim thread at window boundaries (a batch boundary,
// where registry snapshots are consistent); nothing here touches the
// per-packet path.  A metric first seen in window W diffs against zero —
// cold-start spikes are the detectors' problem (EWMA warmup), not hidden
// by the store.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "sim/time.hpp"
#include "stats/registry.hpp"

namespace srp::health {

/// Fraction of @p window's samples whose value exceeds @p threshold,
/// interpolating pro-rata within the straddling log2 bucket (the same
/// within-bucket uniform assumption as HistogramSnapshot::percentile).
/// 0 for an empty window.
[[nodiscard]] double fraction_above(const stats::HistogramSnapshot& window,
                                    std::uint64_t threshold);

struct SeriesConfig {
  sim::Time window = 10 * sim::kMillisecond;  ///< fixed window length
  std::size_t capacity = 128;                 ///< windows retained per metric
};

/// Bounded per-metric rings of windowed deltas.  Everything is keyed by the
/// registry metric name; reads address windows as "ago" (0 = the most
/// recently closed window).
class SeriesStore {
 public:
  explicit SeriesStore(SeriesConfig config = {});

  /// Closes the window ending at @p now against @p snap.  Counters append
  /// value - previous (clamped at 0 against resets), gauges append the
  /// instantaneous level, histograms append the bucket-wise delta.
  void roll(sim::Time now, const stats::MetricsSnapshot& snap);

  [[nodiscard]] const SeriesConfig& config() const { return config_; }
  /// Windows closed so far.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// End time of the most recently closed window (0 before the first).
  [[nodiscard]] sim::Time last_roll() const { return last_roll_; }

  /// Counter delta in the window @p ago windows back; nullopt when the
  /// metric or the window is unknown.
  [[nodiscard]] std::optional<double> counter_rate(const std::string& name,
                                                   std::size_t ago = 0) const;

  /// Gauge level at the close of the window @p ago windows back.
  [[nodiscard]] std::optional<double> gauge_level(const std::string& name,
                                                  std::size_t ago = 0) const;

  /// Histogram delta (count/sum/buckets restricted to the window) @p ago
  /// windows back; nullptr when unknown.
  [[nodiscard]] const stats::HistogramSnapshot* histogram_window(
      const std::string& name, std::size_t ago = 0) const;

  /// Number of retained windows for @p name (0 when never seen).
  [[nodiscard]] std::size_t depth(const std::string& name) const;

 private:
  template <typename T>
  struct Ring {
    std::deque<T> values;  ///< newest at the back
    void push(T v, std::size_t capacity) {
      values.push_back(std::move(v));
      if (values.size() > capacity) values.pop_front();
    }
    [[nodiscard]] const T* at(std::size_t ago) const {
      if (ago >= values.size()) return nullptr;
      return &values[values.size() - 1 - ago];
    }
  };

  struct CounterSeries {
    std::uint64_t previous = 0;
    Ring<double> deltas;
  };
  struct GaugeSeries {
    Ring<double> levels;
  };
  struct HistogramSeries {
    stats::HistogramSnapshot previous;
    Ring<stats::HistogramSnapshot> windows;
  };

  SeriesConfig config_;
  std::uint64_t windows_ = 0;
  sim::Time last_roll_ = 0;
  std::map<std::string, CounterSeries> counters_;
  std::map<std::string, GaugeSeries> gauges_;
  std::map<std::string, HistogramSeries> histograms_;
};

}  // namespace srp::health
