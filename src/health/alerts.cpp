#include "health/alerts.hpp"

#include <algorithm>

#include "check/contract.hpp"

namespace srp::health {

std::string_view to_string(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

AlertEngine::AlertEngine(AlertPolicy policy) : policy_(policy) {
  SIRPENT_EXPECTS(policy_.for_windows >= 1);
  SIRPENT_EXPECTS(policy_.clear_windows >= 1);
}

std::size_t AlertEngine::add_rule(AlertLabels labels) {
  Alert cell;
  cell.labels = std::move(labels);
  cells_.push_back(std::move(cell));
  streaks_.push_back(0);
  return cells_.size() - 1;
}

const Alert& AlertEngine::alert(std::size_t rule) const {
  SIRPENT_EXPECTS(rule < cells_.size());
  return cells_[rule];
}

bool AlertEngine::observe(std::size_t rule, sim::Time now,
                          const Verdict& verdict) {
  SIRPENT_EXPECTS(rule < cells_.size());
  Alert& cell = cells_[rule];
  auto& streak = streaks_[rule];

  const auto transition = [&](AlertState next) {
    cell.state = next;
    cell.events.push_back({next, now, verdict.value, verdict.score});
  };

  if (verdict.breach) {
    cell.breach_windows += 1;
    cell.peak_score = std::max(cell.peak_score, verdict.score);
  }

  switch (cell.state) {
    case AlertState::kInactive:
    case AlertState::kResolved:
      if (verdict.breach) {
        // A resolved episode archives itself lazily: a fresh breach
        // restarts the arc in the same cell, keeping the event log.
        cell.pending_since = now;
        if (policy_.for_windows == 1) {
          streak = 0;  // reuse as the clear streak while firing
          cell.firing_since = now;
          fired_order_.push_back(rule);
          transition(AlertState::kFiring);
        } else {
          streak = 1;
          transition(AlertState::kPending);
        }
        return true;
      }
      return false;
    case AlertState::kPending:
      if (verdict.breach) {
        streak += 1;
        if (streak >= policy_.for_windows) {
          streak = 0;  // reuse as the clear streak while firing
          cell.firing_since = now;
          fired_order_.push_back(rule);
          transition(AlertState::kFiring);
          return true;
        }
        return false;
      }
      // A pending alert that stops breaching never fired: fold back to
      // inactive silently (no paging noise for sub-debounce blips).
      streak = 0;
      transition(AlertState::kInactive);
      return true;
    case AlertState::kFiring:
      if (verdict.breach) {
        streak = 0;  // reset the clear streak
        return false;
      }
      streak += 1;
      if (streak >= policy_.clear_windows) {
        streak = 0;
        cell.resolved_at = now;
        transition(AlertState::kResolved);
        return true;
      }
      return false;
  }
  return false;
}

std::vector<const Alert*> AlertEngine::firing() const {
  std::vector<const Alert*> out;
  for (const auto& cell : cells_) {
    if (cell.state == AlertState::kFiring) out.push_back(&cell);
  }
  return out;
}

std::vector<const Alert*> AlertEngine::fired() const {
  std::vector<const Alert*> out;
  out.reserve(fired_order_.size());
  for (const auto rule : fired_order_) out.push_back(&cells_[rule]);
  return out;
}

}  // namespace srp::health
