// Alert lifecycle: debounced rule state machines over detector verdicts.
//
// An AlertRule binds one detector to one metric reading and a set of
// labels (alert name, component, port, metric).  The engine folds one
// Verdict per rule per window and runs the Prometheus-style lifecycle:
//
//    inactive --breach--> pending --for_windows breaches--> firing
//    firing  --clear_windows clears--> resolved --> inactive
//
// "pending" is the for-duration debounce: a rule must breach in
// for_windows consecutive windows before it pages, so a single noisy
// window never fires.  Symmetrically a firing alert needs clear_windows
// consecutive healthy windows to resolve, so one lucky window mid-fault
// does not flap it.  Every transition is appended to an event log with
// the window close time; the engine never drops events (chaos runs are
// bounded), and fired alerts keep their history through resolution for
// post-run scoring against fault-engine ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "health/detector.hpp"
#include "sim/time.hpp"

namespace srp::health {

enum class AlertState : std::uint8_t {
  kInactive,
  kPending,   // breaching, debounce not yet satisfied
  kFiring,
  kResolved,  // terminal for the episode; next breach starts a new one
};

[[nodiscard]] std::string_view to_string(AlertState state);

/// Identity of an alert, Prometheus-label style.  component/port locate
/// the monitored entity ("r2", "r2:p1"); metric is the registry series
/// the detector reads.
struct AlertLabels {
  std::string alert;      ///< rule name, e.g. "LinkWireLoss"
  std::string component;  ///< owning device, e.g. "r2"
  std::string port;       ///< port instance when applicable, else ""
  std::string metric;     ///< registry metric evaluated
  DetectorKind detector = DetectorKind::kThreshold;
};

/// One lifecycle transition.
struct AlertEvent {
  AlertState state = AlertState::kInactive;
  sim::Time at = 0;       ///< close time of the window that transitioned
  double value = 0.0;     ///< windowed reading at the transition
  double score = 0.0;     ///< detector score at the transition
};

/// One alert episode (pending/firing/resolution arc) plus its rule labels.
struct Alert {
  AlertLabels labels;
  AlertState state = AlertState::kInactive;
  sim::Time pending_since = 0;
  sim::Time firing_since = 0;
  sim::Time resolved_at = 0;
  double peak_score = 0.0;
  std::uint64_t breach_windows = 0;  ///< total breaching windows observed
  std::vector<AlertEvent> events;
};

struct AlertPolicy {
  std::uint32_t for_windows = 2;    ///< consecutive breaches to fire
  std::uint32_t clear_windows = 2;  ///< consecutive clears to resolve
};

/// Folds verdicts into alert state.  Rules are registered once (index is
/// the rule handle); observe() is called once per rule per window.
class AlertEngine {
 public:
  explicit AlertEngine(AlertPolicy policy = {});

  /// Registers a rule; returns its handle.
  std::size_t add_rule(AlertLabels labels);

  /// Folds one window's verdict for rule @p rule at window-close @p now.
  /// Returns true when the rule's state changed this window.
  bool observe(std::size_t rule, sim::Time now, const Verdict& verdict);

  [[nodiscard]] const AlertPolicy& policy() const { return policy_; }
  [[nodiscard]] std::size_t rules() const { return cells_.size(); }
  [[nodiscard]] const Alert& alert(std::size_t rule) const;

  /// Alerts currently in kFiring.
  [[nodiscard]] std::vector<const Alert*> firing() const;
  /// Alerts that fired at least once (firing or resolved), episode order.
  [[nodiscard]] std::vector<const Alert*> fired() const;
  /// All rule cells (inactive ones included).
  [[nodiscard]] const std::vector<Alert>& cells() const { return cells_; }

 private:
  AlertPolicy policy_;
  std::vector<Alert> cells_;
  std::vector<std::uint32_t> streaks_;      // consecutive breaches/clears
  std::vector<std::size_t> fired_order_;    // cells that reached kFiring
};

}  // namespace srp::health
