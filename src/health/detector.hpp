// Per-window anomaly detectors over SeriesStore readings.
//
// Three families, matching what a fabric operator actually pages on:
//
//  * Threshold — "this should be (near) zero": wire loss, link-down drops,
//    token rejects.  Static bound with hysteresis (breach at >= limit,
//    clear at <= clear_limit) so a value oscillating on the line does not
//    flap the alert.
//  * EWMA — "this is far from its own recent past": queue-wait p99, RTT,
//    token-miss rate.  Tracks an exponentially-weighted mean and variance
//    of the windowed series and scores each new window as a z-score
//    against the *pre-breach* baseline: while breached the baseline is
//    frozen, so a sustained fault cannot teach the detector that broken
//    is normal.  A min_deviation floor keeps near-zero-variance baselines
//    (e.g. a counter that is always 0) from paging on the first blip a
//    sane operator would ignore, and warmup windows absorb cold-start.
//  * Burn rate — "the SLO budget is being spent too fast": fraction of a
//    window's delivery-latency samples over the objective, divided by the
//    allowed error budget.  Burn 1.0 = exactly on budget; paging at
//    burn >= N means the monthly budget would be gone in 1/N of the month.
//
// Detectors are pure per-window state machines: evaluate(value) folds one
// window and returns a Verdict.  They know nothing about alerts, labels,
// or time — that is the alert engine's job (health/alerts.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "stats/registry.hpp"

namespace srp::health {

enum class DetectorKind : std::uint8_t {
  kThreshold,  // static bound with hysteresis
  kEwma,       // z-score against an EWMA mean/variance baseline
  kBurnRate,   // SLO error-budget burn rate
};

[[nodiscard]] std::string_view to_string(DetectorKind kind);

/// One window's evaluation.  score is detector-specific: threshold -> the
/// value itself, EWMA -> |z|, burn rate -> the burn multiple.
struct Verdict {
  bool breach = false;
  double value = 0.0;  ///< the windowed reading that was evaluated
  double score = 0.0;
};

struct ThresholdConfig {
  double limit = 1.0;        ///< breach when value >= limit
  double clear_limit = 0.0;  ///< clear when value <= clear_limit
};

class ThresholdDetector {
 public:
  explicit ThresholdDetector(ThresholdConfig config);
  Verdict evaluate(double value);

 private:
  ThresholdConfig config_;
  bool breached_ = false;
};

struct EwmaConfig {
  double alpha = 0.3;          ///< smoothing weight for mean and variance
  double sigmas = 4.0;         ///< breach when |z| >= sigmas
  double clear_sigmas = 2.0;   ///< clear when |z| <= clear_sigmas
  double min_deviation = 1.0;  ///< absolute deviation floor to breach
  double min_sigma = 0.5;      ///< variance floor used in the z-score
  std::size_t warmup = 3;      ///< windows absorbed before scoring
  bool one_sided = true;       ///< only deviations above baseline breach
};

class EwmaDetector {
 public:
  explicit EwmaDetector(EwmaConfig config);
  Verdict evaluate(double value);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sigma() const;

 private:
  EwmaConfig config_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  std::size_t seen_ = 0;
  bool breached_ = false;
};

struct BurnRateConfig {
  std::uint64_t objective = 0;   ///< latency objective (histogram units)
  double error_budget = 0.001;   ///< allowed fraction of samples over it
  double burn_limit = 10.0;      ///< breach when burn >= limit
  double clear_burn = 1.0;       ///< clear when burn <= clear_burn
  std::uint64_t min_samples = 8; ///< windows with fewer samples are skipped
};

class BurnRateDetector {
 public:
  explicit BurnRateDetector(BurnRateConfig config);

  [[nodiscard]] const BurnRateConfig& config() const { return config_; }

  /// Evaluates one window of the objective histogram.  Windows with fewer
  /// than min_samples samples keep the previous breach state (a quiet
  /// window is not evidence of recovery or of burn).
  Verdict evaluate(const stats::HistogramSnapshot& window);

 private:
  BurnRateConfig config_;
  bool breached_ = false;
};

}  // namespace srp::health
