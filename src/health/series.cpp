#include "health/series.hpp"

#include "check/contract.hpp"

namespace srp::health {

double fraction_above(const stats::HistogramSnapshot& window,
                      std::uint64_t threshold) {
  if (window.count == 0) return 0.0;
  std::uint64_t above = 0;
  double partial = 0.0;
  for (std::size_t i = 0; i < window.kBuckets; ++i) {
    if (window.buckets[i] == 0) continue;
    const auto low = stats::Histogram::bucket_low(i);
    const auto high = stats::Histogram::bucket_high(i);
    if (low > threshold) {
      above += window.buckets[i];
    } else if (high > threshold) {
      // Straddling bucket: pro-rata share of samples above the threshold
      // under the within-bucket uniform assumption.
      const double width = static_cast<double>(high - low) + 1.0;
      const double over = static_cast<double>(high - threshold);
      partial += static_cast<double>(window.buckets[i]) * over / width;
    }
  }
  return (static_cast<double>(above) + partial) /
         static_cast<double>(window.count);
}

SeriesStore::SeriesStore(SeriesConfig config) : config_(config) {
  SIRPENT_EXPECTS(config_.window > 0);
  SIRPENT_EXPECTS(config_.capacity > 0);
}

void SeriesStore::roll(sim::Time now, const stats::MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    auto& series = counters_[name];
    const auto delta = value >= series.previous ? value - series.previous : 0;
    series.previous = value;
    series.deltas.push(static_cast<double>(delta), config_.capacity);
  }
  for (const auto& [name, value] : snap.gauges) {
    gauges_[name].levels.push(static_cast<double>(value), config_.capacity);
  }
  for (const auto& [name, hist] : snap.histograms) {
    auto& series = histograms_[name];
    stats::HistogramSnapshot window;
    for (std::size_t i = 0; i < hist.kBuckets; ++i) {
      const auto prev = series.previous.buckets[i];
      window.buckets[i] = hist.buckets[i] >= prev ? hist.buckets[i] - prev : 0;
    }
    window.count =
        hist.count >= series.previous.count ? hist.count - series.previous.count
                                            : 0;
    window.sum =
        hist.sum >= series.previous.sum ? hist.sum - series.previous.sum : 0;
    series.previous = hist;
    series.windows.push(window, config_.capacity);
  }
  ++windows_;
  last_roll_ = now;
}

std::optional<double> SeriesStore::counter_rate(const std::string& name,
                                                std::size_t ago) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  const double* v = it->second.deltas.at(ago);
  if (v == nullptr) return std::nullopt;
  return *v;
}

std::optional<double> SeriesStore::gauge_level(const std::string& name,
                                               std::size_t ago) const {
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  const double* v = it->second.levels.at(ago);
  if (v == nullptr) return std::nullopt;
  return *v;
}

const stats::HistogramSnapshot* SeriesStore::histogram_window(
    const std::string& name, std::size_t ago) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return nullptr;
  return it->second.windows.at(ago);
}

std::size_t SeriesStore::depth(const std::string& name) const {
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second.deltas.values.size();
  }
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second.levels.values.size();
  }
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second.windows.values.size();
  }
  return 0;
}

}  // namespace srp::health
