// Health-plane exports: Prometheus ALERTS-style series and an alerts JSON
// document (lifecycle history plus root-cause hints) for offline scoring.
#pragma once

#include <string>

#include "health/alerts.hpp"
#include "health/monitor.hpp"

namespace srp::health {

/// Prometheus convention: one `ALERTS{alertname=...,alertstate=...} 1`
/// sample per currently pending/firing alert, plus an `ALERTS_FOR_STATE`
/// sample carrying the pending-since time (seconds).  Label-sorted for
/// byte-stable output across reruns.
[[nodiscard]] std::string to_prometheus_alerts(const AlertEngine& engine);

/// Every rule cell that left kInactive, with its labels, episode times,
/// full transition log and — when scored through @p monitor — the
/// root-cause diagnosis.  Deterministic ordering and formatting.
[[nodiscard]] std::string to_alerts_json(const HealthMonitor& monitor);

}  // namespace srp::health
