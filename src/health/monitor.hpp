// HealthMonitor: the health plane's tick loop and rule book.
//
// One monitor owns a SeriesStore, an AlertEngine and a set of link probes.
// Every `window` of sim time it:
//
//  1. Reads each watched TxPort's Stats struct (plain struct reads — the
//     per-packet data path is untouched) and mirrors them into registry
//     counters, including the one number no counter reports directly:
//     *unexplained wire loss*.  A healthy port satisfies the conservation
//     identity
//
//        enqueued = sent + preempt_aborts + dropped_down + dropped_full
//                 + dropped_blocked + deflected + outstanding
//
//     (outstanding = still queued or on the wire), so per window
//
//        wire_loss = Δenqueued − Δexplained − Δoutstanding
//
//     is exactly the packets that vanished without a device-side excuse —
//     injected loss — computed purely from honest device counters.  The
//     monitor never reads dropped_injected or any `fault.*` metric; the
//     fault engine's own books are ground truth for scoring, not input.
//
//  2. Rolls the registry snapshot into the SeriesStore (windowed deltas).
//
//  3. Auto-instantiates rules from the built-in template table the first
//     time a matching metric appears (a fabric's metric population is not
//     known until traffic flows), then evaluates every rule and folds the
//     verdicts through the AlertEngine's pending→firing→resolved
//     lifecycle.  Transitions emit kAlert instants into the flight
//     recorder and bump `health.monitor.*` self-metrics.
//
// diagnose() turns a fired alert into a RootCause: the suspect device and
// port from the rule labels, corroborated — when the fabric wired them in —
// by obs::PathCollector drop localization and the suspect's heaviest flow.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "health/alerts.hpp"
#include "health/detector.hpp"
#include "health/series.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"
#include "stats/registry.hpp"

namespace srp::flow {
class FlowPlane;
}  // namespace srp::flow
namespace srp::obs {
class FlightRecorder;
class PathCollector;
}  // namespace srp::obs

namespace srp::health {

struct HealthConfig {
  SeriesConfig series;  ///< window length + retained depth
  AlertPolicy policy;   ///< for-duration / clear debounce

  /// Delivery-latency SLO, applied to every `host.*.e2e_latency_ps`
  /// histogram: at most `slo_error_budget` of deliveries may exceed the
  /// objective; the SloBurnRate alert fires when the budget burns at
  /// `slo_burn_limit`x or faster.
  std::uint64_t slo_objective_ps = 5 * sim::kMillisecond;
  double slo_error_budget = 0.01;
  double slo_burn_limit = 10.0;
  double slo_clear_burn = 1.0;
  std::uint64_t slo_min_samples = 8;

  /// Baseline-deviation templates: latency_ewma scores windowed p99s
  /// (queue wait, RTT); rate_ewma scores windowed counter rates (token
  /// misses, retransmits).  min_deviation floors are in histogram units
  /// (picoseconds) and events/window respectively.
  EwmaConfig latency_ewma{.alpha = 0.3,
                          .sigmas = 4.0,
                          .clear_sigmas = 2.0,
                          .min_deviation = 50.0 * sim::kMicrosecond,
                          .min_sigma = 10.0 * sim::kMicrosecond,
                          .warmup = 3,
                          .one_sided = true};
  EwmaConfig rate_ewma{.alpha = 0.3,
                       .sigmas = 4.0,
                       .clear_sigmas = 2.0,
                       .min_deviation = 8.0,
                       .min_sigma = 2.0,
                       .warmup = 3,
                       .one_sided = true};

  /// Wire-loss / reject thresholds, in events per window.
  double loss_limit = 1.0;
  double reject_limit = 1.0;

  bool emit_spans = true;  ///< kAlert instants on every transition
};

/// Localized explanation of a fired alert.
struct RootCause {
  std::string router;    ///< suspect device ("" when not localizable)
  std::string port;      ///< suspect port name, e.g. "r2:p1" ("" unknown)
  std::string reason;    ///< one-line diagnosis
  std::string evidence;  ///< corroborating observations, "; "-joined
};

class HealthMonitor {
 public:
  HealthMonitor(sim::Simulator& sim, stats::Registry& registry,
                HealthConfig config = {});

  // --- optional corroboration sinks (null = feature off) ---
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }
  void set_flow_plane(const flow::FlowPlane* plane) { flow_ = plane; }
  void set_path_collector(const obs::PathCollector* collector) {
    collector_ = collector;
  }
  /// Teaches diagnose() the VIPER id -> device-name mapping used by
  /// PathCollector drop localization.
  void map_router(std::uint32_t id, std::string name);

  /// Registers a link probe.  @p owner is the device the port belongs to
  /// ("r2"); alerts on this port's series carry it as their component.
  void watch_link(net::TxPort& port, std::string owner);

  /// Begins the periodic window tick (one sim event per window).
  void start();

  /// Closes one window now: probe mirrors, series roll, rule evaluation.
  /// start() calls this on its schedule; tests may drive it manually.
  void tick();

  [[nodiscard]] const HealthConfig& config() const { return config_; }
  [[nodiscard]] const SeriesStore& series() const { return series_; }
  [[nodiscard]] const AlertEngine& engine() const { return engine_; }
  [[nodiscard]] std::size_t probes() const { return probes_.size(); }

  /// Root-cause hint for @p alert (normally one that fired).
  [[nodiscard]] RootCause diagnose(const Alert& alert) const;

 private:
  /// How a rule reads its windowed value from the SeriesStore.
  enum class Reading : std::uint8_t {
    kCounterRate,    // counter delta per window
    kGaugeInverted,  // 1 - gauge level (for link_up-style booleans)
    kHistogramP99,   // windowed p99; empty windows are skipped
    kHistogramBurn,  // whole windowed histogram -> BurnRateDetector
  };

  struct Rule {
    std::string metric;
    Reading reading;
    std::size_t handle = 0;  // AlertEngine rule index
    std::variant<ThresholdDetector, EwmaDetector, BurnRateDetector> detector;
  };

  void publish_probe_mirrors();
  void instantiate_rules(const stats::MetricsSnapshot& snap);
  void evaluate_rules();
  void on_transition(const Alert& alert);
  /// Owner device of a metric instance ("r2_p1" -> "r2" via probes,
  /// else the instance segment itself).
  [[nodiscard]] std::string owner_of(const std::string& metric) const;

  struct LinkProbe {
    net::TxPort* port = nullptr;
    std::string owner;
    std::string instance;  // metric_component(port->name())
    net::TxPort::Stats prev{};
    std::uint64_t prev_outstanding = 0;
    std::uint64_t wire_loss_total = 0;
  };

  sim::Simulator& sim_;
  stats::Registry& registry_;
  HealthConfig config_;
  SeriesStore series_;
  AlertEngine engine_;
  std::vector<LinkProbe> probes_;
  std::vector<Rule> rules_;
  std::map<std::string, bool> ruled_metrics_;  // metric -> rules created
  std::map<std::string, std::string> instance_owner_;  // "r2_p1" -> "r2"
  std::map<std::string, std::string> instance_port_;   // "r2_p1" -> "r2:p1"
  std::map<std::uint32_t, std::string> router_names_;
  obs::FlightRecorder* recorder_ = nullptr;
  const flow::FlowPlane* flow_ = nullptr;
  const obs::PathCollector* collector_ = nullptr;
  bool started_ = false;

  // Self metrics.
  stats::Counter* windows_counter_ = nullptr;
  stats::Counter* transitions_counter_ = nullptr;
  stats::Gauge* rules_gauge_ = nullptr;
  stats::Gauge* firing_gauge_ = nullptr;
};

}  // namespace srp::health
