#include "tokens/cache.hpp"

#include <algorithm>
#include <vector>

#include "check/analysis.hpp"
#include "check/contract.hpp"

namespace srp::tokens {

SRP_HOT_PATH std::optional<TokenCache::Entry> TokenCache::lookup(
    std::span<const std::uint8_t> token) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key_of(token));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second.hits;
  // A cached entry is always a completed verification: exactly one of
  // valid / flagged ("subsequent packets using this token are blocked").
  SIRPENT_ENSURES(it->second.valid != it->second.flagged);
  return it->second;
}

TokenCache::Entry TokenCache::store(std::span<const std::uint8_t> token,
                                    std::optional<TokenBody> body) {
  MutexLock lock(mutex_);
  Entry& e = entries_[key_of(token)];
  if (body.has_value()) {
    e.valid = true;
    e.flagged = false;
    e.body = *body;
  } else {
    e.valid = false;
    e.flagged = true;
  }
  SIRPENT_ENSURES(e.valid != e.flagged);
  update_gauge();
  return e;
}

SRP_HOT_PATH TokenCache::ChargeResult TokenCache::charge(
    std::span<const std::uint8_t> token, std::uint64_t bytes,
    Ledger& ledger) {
  std::uint32_t account = 0;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(key_of(token));
    if (it == entries_.end()) return ChargeResult::kUnknown;
    Entry& entry = it->second;
    if (entry.flagged) {
      ++stats_.flagged_rejects;
      return ChargeResult::kFlagged;
    }
    SIRPENT_EXPECTS(entry.valid);
    if (entry.body.byte_limit != 0 &&
        entry.bytes_charged + bytes > entry.body.byte_limit) {
      ++stats_.limit_rejects;
      return ChargeResult::kLimitExhausted;
    }
    entry.bytes_charged += bytes;
    // Charged usage never exceeds the minted limit (token-cache
    // consistency).
    SIRPENT_ENSURES(entry.body.byte_limit == 0 ||
                    entry.bytes_charged <= entry.body.byte_limit);
    account = entry.body.account;
  }
  // The ledger has its own monitor; charging outside our lock keeps the
  // critical section minimal and the lock order acyclic.
  ledger.charge(account, bytes);
  return ChargeResult::kCharged;
}

std::size_t TokenCache::poison(std::uint64_t selector, bool flag) {
  MutexLock lock(mutex_);
  if (entries_.empty()) return 0;
  // Select the victim by sorted key, not by unordered_map iteration
  // order: the bucket walk varies across standard libraries and hash
  // seeds, which would make fault scenarios replay differently on
  // different toolchains (srp-lint determinism pass).
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  // SRP_ORDER_OK(keys are sorted below before any order-dependent use)
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const auto it = entries_.find(keys[selector % keys.size()]);
  if (flag) {
    it->second.valid = false;
    it->second.flagged = true;
    SIRPENT_ENSURES(it->second.valid != it->second.flagged);
  } else {
    entries_.erase(it);
  }
  update_gauge();
  return 1;
}

TokenCache::Stats TokenCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t TokenCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void TokenCache::set_occupancy_gauge(stats::Gauge* gauge) {
  MutexLock lock(mutex_);
  occupancy_gauge_ = gauge;
  update_gauge();
}

}  // namespace srp::tokens
