#include "tokens/cache.hpp"

#include <algorithm>
#include <vector>

#include "check/analysis.hpp"
#include "check/contract.hpp"

namespace srp::tokens {

SRP_HOT_PATH std::optional<TokenCache::Entry> TokenCache::lookup(
    std::span<const std::uint8_t> token) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key_of(token));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second.hits;
  // A cached entry is always a completed verification: exactly one of
  // valid / flagged ("subsequent packets using this token are blocked").
  SIRPENT_ENSURES(it->second.valid != it->second.flagged);
  return it->second;
}

SRP_HOT_PATH bool TokenCache::probe(
    std::span<const std::uint8_t> token) const {
  MutexLock lock(mutex_);
  return entries_.find(key_of(token)) != entries_.end();
}

TokenCache::Entry TokenCache::store(std::span<const std::uint8_t> token,
                                    std::optional<TokenBody> body) {
  return store_and_settle(token, std::move(body), 0, nullptr).entry;
}

TokenCache::SettleOutcome TokenCache::store_and_settle(
    std::span<const std::uint8_t> token, std::optional<TokenBody> body,
    std::uint64_t optimistic_bytes, Ledger* ledger) {
  SIRPENT_EXPECTS(optimistic_bytes == 0 || ledger != nullptr);
  SettleOutcome outcome;
  std::uint32_t account = 0;
  bool ledger_charge = false;
  {
    MutexLock lock(mutex_);
    Entry& e = entries_[key_of(token)];
    TokenEvent event;
    event.type = body.has_value() ? TokenEvent::Type::kVerifyOk
                                  : TokenEvent::Type::kVerifyBad;
    event.byte_limit = body.has_value() ? body->byte_limit : 0;
    event.settle_bytes = optimistic_bytes;
    TokenActions actions;
    // An entry fresh from operator[] is neither valid nor flagged; the
    // store transition overwrites the phase either way, so mapping it
    // through kValid-or-kFlagged via core_of would be wrong only for the
    // untouched default — hand the core the absent phase explicitly.
    TokenCoreState core =
        (e.valid || e.flagged) ? core_of(e) : TokenCoreState{};
    core = step_(core, event, &actions);
    apply_core(e, core);
    if (body.has_value()) e.body = *body;
    SIRPENT_ENSURES(e.valid != e.flagged);
    if (actions.settle_charged > 0) {
      account = e.body.account;
      ledger_charge = actions.ledger_charge;
      outcome.settled = true;
    } else if (actions.settle_dropped && e.valid) {
      // The optimistic admit hit the byte limit: written off, counted
      // exactly as the packet-path reject would have been.
      ++stats_.limit_rejects;
    }
    update_gauge();
    outcome.entry = e;
  }
  // The ledger has its own monitor; charging outside our lock keeps the
  // critical section minimal and the lock order acyclic.
  if (ledger_charge) ledger->charge(account, optimistic_bytes);
  return outcome;
}

SRP_HOT_PATH TokenCache::ChargeResult TokenCache::charge(
    std::span<const std::uint8_t> token, std::uint64_t bytes,
    Ledger& ledger) {
  std::uint32_t account = 0;
  bool ledger_charge = false;
  ChargeResult result = ChargeResult::kUnknown;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(key_of(token));
    if (it == entries_.end()) return ChargeResult::kUnknown;
    Entry& entry = it->second;
    SIRPENT_EXPECTS(entry.valid != entry.flagged);
    TokenEvent event;
    event.type = TokenEvent::Type::kCharge;
    event.bytes = bytes;
    TokenActions actions;
    const TokenCoreState core = step_(core_of(entry), event, &actions);
    apply_core(entry, core);
    result = actions.charge_result;
    switch (result) {
      case ChargeResult::kFlagged:
        ++stats_.flagged_rejects;
        break;
      case ChargeResult::kLimitExhausted:
        ++stats_.limit_rejects;
        break;
      case ChargeResult::kCharged:
        account = entry.body.account;
        ledger_charge = actions.ledger_charge;
        break;
      case ChargeResult::kUnknown:
        break;
    }
  }
  // The ledger has its own monitor; charging outside our lock keeps the
  // critical section minimal and the lock order acyclic.
  if (ledger_charge) ledger.charge(account, bytes);
  return result;
}

std::size_t TokenCache::poison(std::uint64_t selector, bool flag) {
  MutexLock lock(mutex_);
  if (entries_.empty()) return 0;
  // Select the victim by sorted key, not by unordered_map iteration
  // order: the bucket walk varies across standard libraries and hash
  // seeds, which would make fault scenarios replay differently on
  // different toolchains (srp-lint determinism pass).
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  // SRP_ORDER_OK(keys are sorted below before any order-dependent use)
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const auto it = entries_.find(keys[selector % keys.size()]);
  TokenEvent event;
  event.type = flag ? TokenEvent::Type::kPoisonFlag
                    : TokenEvent::Type::kPoisonForget;
  TokenActions actions;
  const TokenCoreState core = step_(core_of(it->second), event, &actions);
  if (actions.erase) {
    entries_.erase(it);
  } else {
    apply_core(it->second, core);
    SIRPENT_ENSURES(it->second.valid != it->second.flagged);
  }
  update_gauge();
  return 1;
}

TokenCache::Stats TokenCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t TokenCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void TokenCache::set_occupancy_gauge(stats::Gauge* gauge) {
  MutexLock lock(mutex_);
  occupancy_gauge_ = gauge;
  update_gauge();
}

void TokenCache::set_step_for_test(TokenStepFn step) {
  MutexLock lock(mutex_);
  step_ = step;
}

}  // namespace srp::tokens
