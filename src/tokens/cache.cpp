#include "tokens/cache.hpp"

#include "check/contract.hpp"

namespace srp::tokens {

TokenCache::Entry* TokenCache::find(std::span<const std::uint8_t> token) {
  const auto it = entries_.find(key_of(token));
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  ++it->second.hits;
  // A cached entry is always a completed verification: exactly one of
  // valid / flagged ("subsequent packets using this token are blocked").
  SIRPENT_ENSURES(it->second.valid != it->second.flagged);
  return &it->second;
}

TokenCache::Entry& TokenCache::store(std::span<const std::uint8_t> token,
                                     std::optional<TokenBody> body) {
  Entry& e = entries_[key_of(token)];
  if (body.has_value()) {
    e.valid = true;
    e.flagged = false;
    e.body = *body;
  } else {
    e.valid = false;
    e.flagged = true;
  }
  SIRPENT_ENSURES(e.valid != e.flagged);
  return e;
}

bool TokenCache::charge(Entry& entry, std::uint64_t bytes, Ledger& ledger) {
  if (entry.flagged) {
    ++stats_.flagged_rejects;
    return false;
  }
  SIRPENT_EXPECTS(entry.valid);
  if (entry.body.byte_limit != 0 &&
      entry.bytes_charged + bytes > entry.body.byte_limit) {
    ++stats_.limit_rejects;
    return false;
  }
  entry.bytes_charged += bytes;
  ledger.charge(entry.body.account, bytes);
  // Charged usage never exceeds the minted limit (token-cache consistency).
  SIRPENT_ENSURES(entry.body.byte_limit == 0 ||
                  entry.bytes_charged <= entry.body.byte_limit);
  return true;
}

}  // namespace srp::tokens
