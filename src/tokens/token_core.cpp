#include "tokens/token_core.hpp"

#include "check/contract.hpp"

namespace srp::tokens {
namespace {

/// Charge @p bytes against @p state if the byte limit allows.  Shared by
/// the packet path (kCharge) and optimistic settlement (kVerifyOk).
bool charge_within_limit(TokenCoreState& state, std::uint64_t bytes) {
  if (state.byte_limit != 0 &&
      state.bytes_charged + bytes > state.byte_limit) {
    return false;
  }
  state.bytes_charged += bytes;
  // Charged usage never exceeds the minted limit (token-cache
  // consistency).
  SIRPENT_ENSURES(state.byte_limit == 0 ||
                  state.bytes_charged <= state.byte_limit);
  return true;
}

}  // namespace

TokenCoreState token_step(TokenCoreState state, const TokenEvent& event,
                          TokenActions* actions) {
  *actions = TokenActions{};
  switch (event.type) {
    case TokenEvent::Type::kBeginVerify:
      if (state.phase == EntryPhase::kAbsent) {
        state.phase = EntryPhase::kPending;
      }
      return state;

    case TokenEvent::Type::kVerifyOk:
      // A completed verification overwrites whatever was there; charges
      // already accumulated against this key are preserved (a re-verify
      // of a known token must not reset its spend).
      state.phase = EntryPhase::kValid;
      state.byte_limit = event.byte_limit;
      if (event.settle_bytes > 0) {
        // The optimistically forwarded first packet is charged now —
        // exactly once — or written off if the limit is already gone.
        if (charge_within_limit(state, event.settle_bytes)) {
          actions->settle_charged = event.settle_bytes;
          actions->ledger_charge = true;
        } else {
          actions->settle_dropped = true;
        }
      }
      return state;

    case TokenEvent::Type::kVerifyBad:
      state.phase = EntryPhase::kFlagged;
      // An optimistic admit of a bad token is written off: the packet
      // already flew (the paper's accepted exposure), but nothing is
      // charged and subsequent users are blocked.
      if (event.settle_bytes > 0) actions->settle_dropped = true;
      return state;

    case TokenEvent::Type::kCharge:
      switch (state.phase) {
        case EntryPhase::kAbsent:
        case EntryPhase::kPending:
          actions->charge_result = ChargeResult::kUnknown;
          return state;
        case EntryPhase::kFlagged:
          actions->charge_result = ChargeResult::kFlagged;
          return state;
        case EntryPhase::kValid:
          if (!charge_within_limit(state, event.bytes)) {
            actions->charge_result = ChargeResult::kLimitExhausted;
            return state;
          }
          actions->charge_result = ChargeResult::kCharged;
          actions->ledger_charge = true;
          return state;
      }
      return state;

    case TokenEvent::Type::kPoisonForget:
      // The entry is forgotten wholesale — including its spend history.
      // The next user takes a miss and re-verifies (recoverable fault).
      actions->erase = true;
      return TokenCoreState{};

    case TokenEvent::Type::kPoisonFlag:
      state.phase = EntryPhase::kFlagged;
      return state;
  }
  return state;
}

}  // namespace srp::tokens
