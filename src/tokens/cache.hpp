// Router-side token cache and accounting (paper §2.1–2.2).
//
// "Because the token is an encrypted capability that may be difficult to
// fully decrypt and check in real time before the packet is forwarded, the
// router retains a cached version of the token such that it can check and
// authorize packet forwarding in real time from the cached version."
// Cache entries are keyed by a hash of the encrypted value, hold the
// decoded authorization, are flagged on invalid tokens ("subsequent packets
// using this token are then blocked"), and accumulate the per-account
// packet/byte counts the paper charges through them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/siphash.hpp"
#include "tokens/token.hpp"

namespace srp::tokens {

/// Uncached-token handling policies (paper §2.1): optimistic forwards the
/// first packet while verification completes; blocking holds the packet for
/// the verification time; drop discards it.
enum class UncachedPolicy { kOptimistic, kBlocking, kDrop };

/// Per-account usage totals.
struct AccountUsage {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Accounting ledger: account id -> usage.  Shared by the routers of one
/// administrative domain.
class Ledger {
 public:
  void charge(std::uint32_t account, std::uint64_t bytes) {
    auto& u = usage_[account];
    ++u.packets;
    u.bytes += bytes;
  }

  [[nodiscard]] AccountUsage usage(std::uint32_t account) const {
    const auto it = usage_.find(account);
    return it == usage_.end() ? AccountUsage{} : it->second;
  }

  [[nodiscard]] const std::map<std::uint32_t, AccountUsage>& all() const {
    return usage_;
  }

 private:
  std::map<std::uint32_t, AccountUsage> usage_;
};

/// One router's token cache.
class TokenCache {
 public:
  struct Entry {
    bool valid = false;      ///< token verified good
    bool flagged = false;    ///< token verified *bad*: block its users
    TokenBody body;          ///< meaningful only when valid
    std::uint64_t bytes_charged = 0;  ///< against body.byte_limit
    std::uint64_t hits = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flagged_rejects = 0;
    std::uint64_t limit_rejects = 0;
  };

  /// Cache key: hash of the encrypted token bytes (paper: "using the
  /// encrypted value as the key").
  static std::uint64_t key_of(std::span<const std::uint8_t> token) {
    return crypto::siphash24({0x53697270656e7421ULL, 0x5669706572546f6bULL},
                             token);
  }

  /// Looks up a token; counts hit/miss.
  Entry* find(std::span<const std::uint8_t> token);

  /// Records the outcome of a (slow) verification.  nullopt body = invalid
  /// token: the entry is flagged so subsequent users are blocked.
  Entry& store(std::span<const std::uint8_t> token,
               std::optional<TokenBody> body);

  /// Charges @p bytes against the entry and its account.  Returns false
  /// when the token's byte limit is exhausted (reject the packet).
  bool charge(Entry& entry, std::uint64_t bytes, Ledger& ledger);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace srp::tokens
