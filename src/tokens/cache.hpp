// Router-side token cache and accounting (paper §2.1–2.2).
//
// "Because the token is an encrypted capability that may be difficult to
// fully decrypt and check in real time before the packet is forwarded, the
// router retains a cached version of the token such that it can check and
// authorize packet forwarding in real time from the cached version."
// Cache entries are keyed by a hash of the encrypted value, hold the
// decoded authorization, are flagged on invalid tokens ("subsequent packets
// using this token are then blocked"), and accumulate the per-account
// packet/byte counts the paper charges through them.
//
// Thread safety: cache and ledger are capability-annotated monitors —
// every shared field is SRP_GUARDED_BY an internal srp::Mutex and the API
// traffics in value snapshots, never references into guarded state, so
// the token-validation workers (tokens/validator.hpp) and the sim thread
// can touch them concurrently.  Clang -Wthread-safety proves the locking;
// tests/concurrency_test.cpp stresses it under TSan.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>

#include "check/sync.hpp"
#include "crypto/siphash.hpp"
#include "stats/registry.hpp"
#include "tokens/token.hpp"
#include "tokens/token_core.hpp"

namespace srp::tokens {

/// Uncached-token handling policies (paper §2.1): optimistic forwards the
/// first packet while verification completes; blocking holds the packet for
/// the verification time; drop discards it.
enum class UncachedPolicy { kOptimistic, kBlocking, kDrop };

/// Per-account usage totals.
struct AccountUsage {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  bool operator==(const AccountUsage&) const = default;
};

/// Accounting ledger: account id -> usage.  Shared by the routers of one
/// administrative domain (and, once validation fans out, by their worker
/// threads — hence the internal mutex).
class Ledger {
 public:
  void charge(std::uint32_t account, std::uint64_t bytes)
      SRP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto& u = usage_[account];
    ++u.packets;
    u.bytes += bytes;
  }

  [[nodiscard]] AccountUsage usage(std::uint32_t account) const
      SRP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = usage_.find(account);
    return it == usage_.end() ? AccountUsage{} : it->second;
  }

  [[nodiscard]] std::map<std::uint32_t, AccountUsage> all() const
      SRP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return usage_;
  }

 private:
  mutable srp::Mutex mutex_;
  std::map<std::uint32_t, AccountUsage> usage_ SRP_GUARDED_BY(mutex_);
};

/// One router's token cache.
class TokenCache {
 public:
  struct Entry {
    bool valid = false;      ///< token verified good
    bool flagged = false;    ///< token verified *bad*: block its users
    TokenBody body;          ///< meaningful only when valid
    std::uint64_t bytes_charged = 0;  ///< against body.byte_limit
    std::uint64_t hits = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flagged_rejects = 0;
    std::uint64_t limit_rejects = 0;
  };

  /// Outcome of charge().  The enum itself lives in token_core.hpp (the
  /// pure transition core shared with the model checker); this alias
  /// keeps the historical `TokenCache::ChargeResult` spelling valid.
  using ChargeResult = tokens::ChargeResult;

  /// Cache key: hash of the encrypted token bytes (paper: "using the
  /// encrypted value as the key").
  static std::uint64_t key_of(std::span<const std::uint8_t> token) {
    return crypto::siphash24({0x53697270656e7421ULL, 0x5669706572546f6bULL},
                             token);
  }

  /// Looks up a token; counts hit/miss.  Returns a snapshot of the entry
  /// (not a reference: the entry may be mutated concurrently).
  std::optional<Entry> lookup(std::span<const std::uint8_t> token)
      SRP_EXCLUDES(mutex_);

  /// Existence check that mutates *nothing* — no hit/miss counting.  The
  /// batched forward path probes before prefetch-submitting verifications
  /// so the later lookup() still counts exactly one miss per packet, the
  /// same as the per-packet path.
  [[nodiscard]] bool probe(std::span<const std::uint8_t> token) const
      SRP_EXCLUDES(mutex_);

  /// Records the outcome of a (slow) verification.  nullopt body = invalid
  /// token: the entry is flagged so subsequent users are blocked.  Returns
  /// a snapshot of the stored entry.
  Entry store(std::span<const std::uint8_t> token,
              std::optional<TokenBody> body) SRP_EXCLUDES(mutex_);

  struct SettleOutcome {
    Entry entry;           ///< snapshot after the store
    bool settled = false;  ///< the optimistic admit was charged
  };

  /// store() plus settlement of an optimistic admit in one atomic step:
  /// when @p optimistic_bytes > 0 and the token verified good, the
  /// optimistically forwarded first packet is charged — exactly once —
  /// against the entry and @p ledger, or written off if the byte limit is
  /// already exhausted (counted as a limit reject).  The router's
  /// verification-completion path uses this so the charge cannot race a
  /// concurrent packet between store and settle.
  SettleOutcome store_and_settle(std::span<const std::uint8_t> token,
                                 std::optional<TokenBody> body,
                                 std::uint64_t optimistic_bytes,
                                 Ledger* ledger) SRP_EXCLUDES(mutex_);

  /// Atomically charges @p bytes against the token's entry, then (on
  /// success) its account in @p ledger.  kCharged means the packet may be
  /// forwarded; every other result rejects it.
  ChargeResult charge(std::span<const std::uint8_t> token,
                      std::uint64_t bytes, Ledger& ledger)
      SRP_EXCLUDES(mutex_);

  /// Fault injection (src/fault): perturbs the cache entry selected by
  /// @p selector (an arbitrary 64-bit draw; the entry at selector mod size
  /// is hit).  With @p flag false the entry is forgotten — the next user of
  /// that token takes a miss and re-verifies; with @p flag true the entry
  /// is marked bad, blocking subsequent users until end-to-end recovery
  /// reroutes around this router.  Returns the number of entries affected
  /// (0 when the cache is empty).
  std::size_t poison(std::uint64_t selector, bool flag)
      SRP_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const SRP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const SRP_EXCLUDES(mutex_);

  /// Mirrors the entry count into @p gauge on every mutation (observability
  /// layer; typically `tokens.<router>.cache_entries`).  nullptr detaches.
  /// The gauge is lock-free, so updating it under our mutex is cheap and
  /// keeps it exact at batch boundaries.
  void set_occupancy_gauge(stats::Gauge* gauge) SRP_EXCLUDES(mutex_);

  /// Model-checker regression hook (tests/mc_regress): replaces the
  /// transition core with a deliberately broken variant from mc::mutants
  /// so counterexamples found by the explorer replay in the real sim.
  void set_step_for_test(TokenStepFn step) SRP_EXCLUDES(mutex_);

 private:
  /// The core-state view of @p entry (entries in the map have completed
  /// verification: exactly one of valid / flagged).
  static TokenCoreState core_of(const Entry& entry) {
    TokenCoreState core;
    core.phase = entry.flagged ? EntryPhase::kFlagged : EntryPhase::kValid;
    core.bytes_charged = entry.bytes_charged;
    core.byte_limit = entry.body.byte_limit;
    return core;
  }

  /// Writes the core-state slice back into @p entry.
  static void apply_core(Entry& entry, const TokenCoreState& core) {
    entry.valid = core.phase == EntryPhase::kValid;
    entry.flagged = core.phase == EntryPhase::kFlagged;
    entry.bytes_charged = core.bytes_charged;
  }

  void update_gauge() SRP_REQUIRES(mutex_) {
    if (occupancy_gauge_ != nullptr) {
      occupancy_gauge_->set(static_cast<std::int64_t>(entries_.size()));
    }
  }

  mutable srp::Mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_ SRP_GUARDED_BY(mutex_);
  Stats stats_ SRP_GUARDED_BY(mutex_);
  stats::Gauge* occupancy_gauge_ SRP_GUARDED_BY(mutex_) = nullptr;
  TokenStepFn step_ SRP_GUARDED_BY(mutex_) = &token_step;
};

}  // namespace srp::tokens
