// Deterministic parallel token validation (paper §2.2).
//
// Full token verification — XTEA-CBC decrypt plus SipHash MAC check — is
// the one per-packet cost the paper concedes is "difficult to fully
// decrypt and check in real time".  Routers hide it behind the cache and
// the optimistic policy, but the verifications themselves are pure
// functions of (router_id, token bytes) against an immutable
// TokenAuthority, which makes them the ideal work to fan across the
// exec::WorkerPool: any schedule computes the same results, so the sim's
// event loop stays deterministic as long as results are *consumed* at the
// event times the serial code used — which is exactly what submit/await
// gives us.  ViperRouter submits at cache-miss time and awaits inside the
// verify-completion event it already scheduled; by then the worker has
// usually finished and await() costs a lock acquisition.
//
// The engine is itself a capability-annotated monitor; Clang
// -Wthread-safety proves the slot bookkeeping, TSan stresses it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "check/sync.hpp"
#include "exec/worker_pool.hpp"
#include "tokens/token.hpp"
#include "wire/buffer.hpp"

namespace srp::tokens {

class ValidationEngine {
 public:
  /// Handle for one submitted verification.
  using Ticket = std::uint64_t;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;   ///< awaited by the consumer
    std::uint64_t batches = 0;     ///< validate_batch() calls
  };

  /// @p pool may be nullptr: verifications then run inline at submit
  /// time, which is the serial reference behaviour the determinism tests
  /// compare against.  @p authority must outlive the engine and is only
  /// used through its const (pure) open() — safe from many threads.
  explicit ValidationEngine(const TokenAuthority& authority,
                            exec::WorkerPool* pool = nullptr);

  ValidationEngine(const ValidationEngine&) = delete;
  ValidationEngine& operator=(const ValidationEngine&) = delete;

  /// Destructor requires every submitted ticket to have been awaited (or
  /// the pool drained); ViperRouter guarantees this by awaiting in the
  /// verify event it schedules for every submit.
  ~ValidationEngine();

  /// Starts verifying @p token for @p router_id on the pool (or inline
  /// without one).  Returns the ticket to pass to await().
  Ticket submit(std::uint32_t router_id, wire::Bytes token)
      SRP_EXCLUDES(mutex_);

  /// Blocks until the ticket's verification finishes and returns its
  /// result, releasing the ticket.  Each ticket is awaited exactly once.
  std::optional<TokenBody> await(Ticket ticket) SRP_EXCLUDES(mutex_);

  /// Convenience for batch workloads (bench, tests): verifies every token
  /// and returns results in input order — byte-identical to a serial loop
  /// over TokenAuthority::open regardless of worker count.
  std::vector<std::optional<TokenBody>> validate_batch(
      std::uint32_t router_id, const std::vector<wire::Bytes>& batch)
      SRP_EXCLUDES(mutex_);

  /// Batch ticket submission for the batched forward path: one submission
  /// per distinct uncached token of a burst, issued before the per-packet
  /// admission pass so the workers overlap the whole burst.  Appends one
  /// ticket per input token to @p out, in input order; each ticket follows
  /// the usual await-exactly-once contract.
  void submit_batch(std::uint32_t router_id,
                    std::span<const std::span<const std::uint8_t>> tokens,
                    std::vector<Ticket>& out) SRP_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const SRP_EXCLUDES(mutex_);
  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }

 private:
  struct Slot {
    bool done = false;
    std::optional<TokenBody> result;
  };

  void finish(Ticket ticket, std::optional<TokenBody> result)
      SRP_EXCLUDES(mutex_);

  const TokenAuthority& authority_;
  exec::WorkerPool* pool_;

  mutable srp::Mutex mutex_;
  CondVar done_cv_;
  Ticket next_ticket_ SRP_GUARDED_BY(mutex_) = 1;
  std::unordered_map<Ticket, Slot> slots_ SRP_GUARDED_BY(mutex_);
  Stats stats_ SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::tokens
