// Pure transition core for one token-cache entry's soft state.
//
// The runtime driver (tokens/cache.hpp) and the bounded model checker
// (src/mc) share this step function: the UncachedPolicy × ChargeResult
// lifecycle the checker enumerates is — by construction — the one the
// router's token cache runs (DESIGN.md §10).  The core is side-effect
// free: byte counts in, byte counts and verdicts out.
//
// Lifecycle of one token (keyed by the hash of its encrypted value):
//
//             kBeginVerify                 kVerifyOk
//   kAbsent ---------------> kPending ----------------> kValid
//      ^                        |                       |    |
//      |                        | kVerifyBad   kPoisonFlag   | kCharge
//      |                        v                       v    v (limit ok)
//      +---- kPoisonForget --- kFlagged <---------------+  charged
//
// kVerifyOk may carry the optimistically forwarded first packet's bytes
// (`settle_bytes`): under UncachedPolicy::kOptimistic that packet flew
// before verification finished and is charged — exactly once — when the
// verification lands, or written off if the byte limit is already gone.
// "No double-charge" and "optimistic admits are eventually charged or
// dropped" are checked invariants over this core (src/mc/token_model).
#pragma once

#include <cstdint>

namespace srp::tokens {

/// Outcome of a charge attempt (kCharged forwards the packet; every other
/// result rejects it).  Historically nested in TokenCache — the alias
/// there keeps `TokenCache::ChargeResult` spelling valid.
enum class ChargeResult : std::uint8_t {
  kCharged,         ///< usage recorded on entry and ledger
  kUnknown,         ///< no completed verification for this token
  kFlagged,         ///< token verified bad; packet must be blocked
  kLimitExhausted,  ///< byte limit would be exceeded; packet rejected
};

enum class EntryPhase : std::uint8_t {
  kAbsent,   ///< never seen (or forgotten): next use takes a miss
  kPending,  ///< verification in flight (router-side bookkeeping)
  kValid,    ///< verified good: charges admitted up to the byte limit
  kFlagged,  ///< verified bad: "subsequent packets ... are then blocked"
};

/// The accounting-relevant slice of one cache entry.
struct TokenCoreState {
  EntryPhase phase = EntryPhase::kAbsent;
  std::uint64_t bytes_charged = 0;
  std::uint64_t byte_limit = 0;  ///< 0 = unlimited
};

struct TokenEvent {
  enum class Type : std::uint8_t {
    kBeginVerify,   ///< first uncached use: slow verification starts
    kVerifyOk,      ///< verification landed: token is good
    kVerifyBad,     ///< verification landed: token is forged/expired
    kCharge,        ///< a packet asks to be charged against the token
    kPoisonForget,  ///< fault injection: the entry is forgotten
    kPoisonFlag,    ///< fault injection: the entry is marked bad
  };
  Type type = Type::kCharge;
  std::uint64_t byte_limit = 0;   ///< kVerifyOk: minted limit (0 = none)
  std::uint64_t bytes = 0;        ///< kCharge: packet size
  std::uint64_t settle_bytes = 0; ///< kVerifyOk/kVerifyBad: optimistic debt
};

struct TokenActions {
  /// kCharge verdict (kUnknown for every other event type).
  ChargeResult charge_result = ChargeResult::kUnknown;
  /// The charge (or settlement) must also land on the account ledger.
  bool ledger_charge = false;
  /// kVerifyOk: optimistic bytes charged now (0 = none were pending).
  std::uint64_t settle_charged = 0;
  /// The optimistic debt was written off (token bad, or limit exhausted).
  bool settle_dropped = false;
  /// The entry leaves the cache (poison-forget).
  bool erase = false;
};

/// Applies @p event to @p state.  Pure: equal inputs give equal outputs.
/// @p actions is always fully overwritten.
TokenCoreState token_step(TokenCoreState state, const TokenEvent& event,
                          TokenActions* actions);

/// Signature shared by the real core and the deliberately broken variants
/// in mc::mutants (model-checker self-test).
using TokenStepFn = TokenCoreState (*)(TokenCoreState, const TokenEvent&,
                                       TokenActions*);

}  // namespace srp::tokens
