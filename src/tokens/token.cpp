#include "tokens/token.hpp"

namespace srp::tokens {
namespace {

// Fixed 31-byte plaintext layout (padded to 32 by XTEA-CBC).
wire::Bytes encode_body(const TokenBody& b) {
  wire::Writer w(32);
  w.u64(b.serial);
  w.u32(b.router_id);
  w.u8(b.port);
  w.u8(b.max_priority);
  w.u8(b.reverse_ok ? 1 : 0);
  w.u32(b.account);
  w.u64(b.byte_limit);
  w.u32(b.expiry_sec);
  return std::move(w).take();
}

TokenBody decode_body(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  TokenBody b;
  b.serial = r.u64();
  b.router_id = r.u32();
  b.port = r.u8();
  b.max_priority = r.u8();
  b.reverse_ok = r.u8() != 0;
  b.account = r.u32();
  b.byte_limit = r.u64();
  b.expiry_sec = r.u32();
  return b;
}

std::uint64_t derive(std::uint64_t secret, std::uint32_t router_id,
                     std::uint64_t purpose) {
  // SipHash as a KDF over (router_id, purpose) under the master secret.
  std::uint8_t msg[12];
  for (int i = 0; i < 4; ++i) {
    msg[i] = static_cast<std::uint8_t>(router_id >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    msg[4 + i] = static_cast<std::uint8_t>(purpose >> (8 * i));
  }
  return crypto::siphash24({secret, ~secret}, msg);
}

}  // namespace

crypto::XteaKey TokenAuthority::cipher_key(std::uint32_t router_id) const {
  const std::uint64_t a = derive(master_secret_, router_id, 1);
  const std::uint64_t b = derive(master_secret_, router_id, 2);
  return crypto::XteaKey{
      static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(a >> 32),
      static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32)};
}

crypto::SipKey TokenAuthority::mac_key(std::uint32_t router_id) const {
  return crypto::SipKey{derive(master_secret_, router_id, 3),
                        derive(master_secret_, router_id, 4)};
}

wire::Bytes TokenAuthority::mint(TokenBody body) {
  body.serial = next_serial_++;
  auto cipher = crypto::xtea_cbc_encrypt(cipher_key(body.router_id),
                                         encode_body(body));
  const std::uint64_t mac = crypto::siphash24(mac_key(body.router_id), cipher);
  wire::Writer w(kTokenWireSize);
  w.bytes(cipher);
  w.u64(mac);
  return std::move(w).take();
}

std::optional<TokenBody> TokenAuthority::open(
    std::uint32_t router_id, std::span<const std::uint8_t> token) const {
  if (token.size() != kTokenWireSize) return std::nullopt;
  const auto cipher = token.first(32);
  wire::Reader mac_reader(token.subspan(32));
  const std::uint64_t mac = mac_reader.u64();
  if (crypto::siphash24(mac_key(router_id), cipher) != mac) {
    return std::nullopt;
  }
  const auto plain = crypto::xtea_cbc_decrypt(cipher_key(router_id), cipher);
  TokenBody body;
  try {
    body = decode_body(plain);
  } catch (const wire::CodecError&) {
    return std::nullopt;
  }
  if (body.router_id != router_id) return std::nullopt;
  return body;
}

}  // namespace srp::tokens
