#include "tokens/validator.hpp"

#include <utility>

#include "check/contract.hpp"
#include "stats/registry.hpp"

namespace srp::tokens {

ValidationEngine::ValidationEngine(const TokenAuthority& authority,
                                   exec::WorkerPool* pool)
    : authority_(authority), pool_(pool) {}

ValidationEngine::~ValidationEngine() {
  // Workers capture `this`; a live task past destruction would be a
  // use-after-free.  Every router/bench flow awaits each ticket, so the
  // slot table is empty here; the pool drain covers the pathological
  // case of a submit with no await.
  if (pool_ != nullptr) pool_->wait_idle();
}

ValidationEngine::Ticket ValidationEngine::submit(std::uint32_t router_id,
                                                  wire::Bytes token) {
  Ticket ticket = 0;
  {
    MutexLock lock(mutex_);
    ticket = next_ticket_++;
    slots_.emplace(ticket, Slot{});
    ++stats_.submitted;
  }
  if (pool_ == nullptr) {
    finish(ticket, authority_.open(router_id, token));
    return ticket;
  }
  pool_->submit([this, router_id, token = std::move(token), ticket] {
    // Pure function of immutable inputs: same result on any thread at
    // any time, which is what keeps the sim deterministic.
    finish(ticket, authority_.open(router_id, token));
  });
  return ticket;
}

std::optional<TokenBody> ValidationEngine::await(Ticket ticket) {
  MutexLock lock(mutex_);
  auto it = slots_.find(ticket);
  SIRPENT_EXPECTS(it != slots_.end());  // unknown or double-awaited ticket
  while (!it->second.done) {
    done_cv_.wait(mutex_);
    it = slots_.find(ticket);
    SIRPENT_INVARIANT(it != slots_.end());
  }
  std::optional<TokenBody> result = std::move(it->second.result);
  slots_.erase(it);
  ++stats_.completed;
  return result;
}

std::vector<std::optional<TokenBody>> ValidationEngine::validate_batch(
    std::uint32_t router_id, const std::vector<wire::Bytes>& batch) {
  {
    MutexLock lock(mutex_);
    ++stats_.batches;
  }
  std::vector<Ticket> tickets;
  tickets.reserve(batch.size());
  for (const auto& token : batch) {
    tickets.push_back(submit(router_id, token));
  }
  std::vector<std::optional<TokenBody>> results;
  results.reserve(batch.size());
  // Await in submission order: results land in input order no matter how
  // the pool interleaved the work.
  for (const Ticket t : tickets) results.push_back(await(t));
  stats::Registry::global()
      .counter(pool_ == nullptr ? "tokens.engine.validated_serial"
                                : "tokens.engine.validated_parallel")
      .add(batch.size());
  return results;
}

void ValidationEngine::submit_batch(
    std::uint32_t router_id,
    std::span<const std::span<const std::uint8_t>> tokens,
    std::vector<Ticket>& out) {
  if (tokens.empty()) return;
  {
    MutexLock lock(mutex_);
    ++stats_.batches;
  }
  for (const auto token : tokens) {
    out.push_back(submit(router_id, wire::Bytes(token.begin(), token.end())));
  }
}

ValidationEngine::Stats ValidationEngine::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void ValidationEngine::finish(Ticket ticket,
                              std::optional<TokenBody> result) {
  {
    MutexLock lock(mutex_);
    auto it = slots_.find(ticket);
    SIRPENT_INVARIANT(it != slots_.end());
    it->second.done = true;
    it->second.result = std::move(result);
  }
  done_cv_.notify_all();
}

}  // namespace srp::tokens
