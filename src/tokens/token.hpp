// Port tokens: encrypted capabilities for authorization and accounting
// (paper §2.2).
//
// "Each token is an encrypted (difficult-to-forge) capability that
// identifies the port and type of service that it authorizes, the account
// to which usage is to be charged, optionally a limit on resource usage
// authorized by this token, and whether reverse route charging is
// authorized."
//
// Wire form: XTEA-CBC ciphertext of the fixed-size body, followed by a
// SipHash-2-4 MAC over the ciphertext.  Keys are derived per router id by
// the administrative domain's TokenAuthority, so a token minted for router
// R verifies only at R.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/siphash.hpp"
#include "crypto/xtea.hpp"
#include "wire/buffer.hpp"

namespace srp::tokens {

/// Decrypted token contents.
struct TokenBody {
  std::uint64_t serial = 0;      ///< unique per mint; randomizes ciphertext
  std::uint32_t router_id = 0;   ///< router this token is valid at
  std::uint8_t port = 0;         ///< output port it authorizes
  std::uint8_t max_priority = 0; ///< highest priority it authorizes (rank)
  bool reverse_ok = false;       ///< authorizes the return route too
  std::uint32_t account = 0;     ///< account charged for usage
  std::uint64_t byte_limit = 0;  ///< 0 = unlimited
  std::uint32_t expiry_sec = 0;  ///< sim-seconds; 0 = no expiry

  bool operator==(const TokenBody&) const = default;
};

/// Encrypted token size on the wire: 32-byte ciphertext + 8-byte MAC.
inline constexpr std::size_t kTokenWireSize = 40;

/// Mints and opens tokens for every router in one administrative domain.
/// The directory service holds one of these per region (paper §3: tokens
/// "are provided by the routing directory servers at the time that the
/// source determines the route").
class TokenAuthority {
 public:
  explicit TokenAuthority(std::uint64_t master_secret)
      : master_secret_(master_secret) {}

  /// Encrypts and MACs @p body; assigns the next serial number.
  wire::Bytes mint(TokenBody body);

  /// Decrypts and verifies a token for @p router_id.  Returns nullopt on
  /// MAC failure, malformed size, or router-id mismatch — the paper's
  /// "if the token is invalid".
  [[nodiscard]] std::optional<TokenBody> open(
      std::uint32_t router_id, std::span<const std::uint8_t> token) const;

 private:
  [[nodiscard]] crypto::XteaKey cipher_key(std::uint32_t router_id) const;
  [[nodiscard]] crypto::SipKey mac_key(std::uint32_t router_id) const;

  std::uint64_t master_secret_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace srp::tokens
