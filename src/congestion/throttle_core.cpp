#include "congestion/throttle_core.hpp"

#include <algorithm>

namespace srp::cc {

ThrottleState throttle_step(const ThrottleCoreConfig& config,
                            ThrottleState state, const ThrottleEvent& event,
                            sim::Time now, ThrottleActions* actions) {
  *actions = ThrottleActions{};
  switch (event.type) {
    case ThrottleEvent::Type::kReport:
      // A report (re)activates the flow; pacing debt (next_free) carries
      // over so a rate refresh never releases a burst.
      state.phase = ThrottlePhase::kActive;
      state.rate_bps = event.rate_bps;
      state.expires = now + config.flow_ttl;
      state.last_report = now;
      state.next_free = std::max(state.next_free, now);
      return state;

    case ThrottleEvent::Type::kTick:
      if (state.phase != ThrottlePhase::kActive) return state;
      if (now >= state.expires) {
        // Soft state: no refresh within the TTL means the congestion is
        // gone; the flow returns to unlimited.
        state.phase = ThrottlePhase::kExpired;
        actions->erase = true;
      } else if (now - state.last_report >= config.ramp_interval) {
        // Quiet interval: probe upward until a new report or the ceiling.
        state.rate_bps *= config.ramp_factor;
        if (state.rate_bps >= config.rate_ceiling_bps) {
          state.phase = ThrottlePhase::kExpired;
          actions->erase = true;
        }
      }
      return state;

    case ThrottleEvent::Type::kAcquire: {
      if (state.phase != ThrottlePhase::kActive) {
        // Unlimited: send immediately, book nothing.
        actions->send_at = now;
        return state;
      }
      const sim::Time start = std::max(now, state.next_free);
      state.next_free =
          start + sim::from_seconds(static_cast<double>(event.bytes) * 8.0 /
                                    std::max(state.rate_bps, 1.0));
      actions->delayed = start > now;
      actions->send_at = start;
      return state;
    }
  }
  return state;
}

}  // namespace srp::cc
