#include "congestion/throttle.hpp"

#include <algorithm>
#include <limits>

namespace srp::cc {

SourceThrottle::SourceThrottle(sim::Simulator& sim, viper::ViperHost& host,
                               ThrottleConfig config)
    : sim_(sim), config_(config) {
  host.set_control_handler(
      [this](wire::Bytes payload, int) { on_control(std::move(payload)); });
  sim_.after(config_.ramp_interval, [this] { tick(); });
}

void SourceThrottle::on_control(wire::Bytes payload) {
  const auto report = decode_rate_report(payload);
  if (!report.has_value()) return;
  apply_report(*report);
}

void SourceThrottle::apply_report(const RateReport& report) {
  ++stats_.reports_received;
  State& s = states_[FlowKey{report.router_id, report.port}];
  s.rate_bps = report.rate_bps;
  s.expires = sim_.now() + config_.flow_ttl;
  s.last_report = sim_.now();
  s.next_free = std::max(s.next_free, sim_.now());
}

double SourceThrottle::rate(const FlowKey& key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? std::numeric_limits<double>::infinity()
                             : it->second.rate_bps;
}

sim::Time SourceThrottle::acquire(const FlowKey& key, std::size_t bytes) {
  const auto it = states_.find(key);
  if (it == states_.end()) return sim_.now();
  State& s = it->second;
  const sim::Time start = std::max(sim_.now(), s.next_free);
  s.next_free =
      start + sim::from_seconds(static_cast<double>(bytes) * 8.0 /
                                std::max(s.rate_bps, 1.0));
  if (start > sim_.now()) ++stats_.sends_delayed;
  return start;
}

void SourceThrottle::tick() {
  for (auto it = states_.begin(); it != states_.end();) {
    State& s = it->second;
    bool erase = false;
    if (sim_.now() >= s.expires) {
      erase = true;
    } else if (sim_.now() - s.last_report >= config_.ramp_interval) {
      s.rate_bps *= config_.ramp_factor;
      if (s.rate_bps >= config_.rate_ceiling_bps) erase = true;
    }
    it = erase ? states_.erase(it) : std::next(it);
  }
  sim_.after(config_.ramp_interval, [this] { tick(); });
}

}  // namespace srp::cc
