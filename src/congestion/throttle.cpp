#include "congestion/throttle.hpp"

#include <limits>

namespace srp::cc {

SourceThrottle::SourceThrottle(sim::Simulator& sim, viper::ViperHost& host,
                               ThrottleConfig config)
    : sim_(sim), config_(config),
      core_config_{config.flow_ttl, config.ramp_factor, config.ramp_interval,
                   config.rate_ceiling_bps} {
  host.set_control_handler(
      [this](wire::Bytes payload, int) { on_control(std::move(payload)); });
  sim_.after(config_.ramp_interval, [this] { tick(); });
}

void SourceThrottle::on_control(wire::Bytes payload) {
  const auto report = decode_rate_report(payload);
  if (!report.has_value()) return;
  apply_report(*report);
}

void SourceThrottle::apply_report(const RateReport& report) {
  ++stats_.reports_received;
  ThrottleState& s = states_[FlowKey{report.router_id, report.port}];
  ThrottleEvent event;
  event.type = ThrottleEvent::Type::kReport;
  event.rate_bps = report.rate_bps;
  ThrottleActions actions;
  s = step_(core_config_, s, event, sim_.now(), &actions);
}

double SourceThrottle::rate(const FlowKey& key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? std::numeric_limits<double>::infinity()
                             : it->second.rate_bps;
}

sim::Time SourceThrottle::acquire(const FlowKey& key, std::size_t bytes) {
  const auto it = states_.find(key);
  if (it == states_.end()) return sim_.now();
  ThrottleEvent event;
  event.type = ThrottleEvent::Type::kAcquire;
  event.bytes = bytes;
  ThrottleActions actions;
  it->second = step_(core_config_, it->second, event, sim_.now(), &actions);
  if (actions.delayed) ++stats_.sends_delayed;
  return actions.send_at;
}

void SourceThrottle::tick() {
  ThrottleEvent event;
  event.type = ThrottleEvent::Type::kTick;
  for (auto it = states_.begin(); it != states_.end();) {
    ThrottleActions actions;
    it->second = step_(core_config_, it->second, event, sim_.now(), &actions);
    it = actions.erase ? states_.erase(it) : std::next(it);
  }
  sim_.after(config_.ramp_interval, [this] { tick(); });
}

}  // namespace srp::cc
