// Source-host end of rate-based congestion control.
//
// Rate reports that propagate all the way back reach the sending hosts
// ("the rate-limiting information builds up back from the point of
// congestion to the sources").  A SourceThrottle receives them via the
// host's control endpoint and paces the host's transmissions toward each
// congested downstream queue; rate-based transports (VMTP-style) consult
// it before scheduling each packet.
//
// The per-flow state machine itself lives in congestion/throttle_core.hpp
// — a pure step function shared with the bounded model checker (src/mc)
// so the verified model and the shipping code cannot drift.  This class
// is the thin driver: it owns the flow table, the control-packet plumbing
// and the tick timer, and routes every transition through the core.
#pragma once

#include <cstdint>
#include <map>

#include "congestion/messages.hpp"
#include "congestion/throttle_core.hpp"
#include "sim/simulator.hpp"
#include "viper/host.hpp"

namespace srp::cc {

struct ThrottleConfig {
  sim::Time flow_ttl = 50 * sim::kMillisecond;
  double ramp_factor = 1.4;
  sim::Time ramp_interval = 2 * sim::kMillisecond;
  /// Rates at or above this are treated as "unlimited" and dropped.
  double rate_ceiling_bps = 1e12;
};

class SourceThrottle {
 public:
  struct Stats {
    std::uint64_t reports_received = 0;
    std::uint64_t sends_delayed = 0;
  };

  SourceThrottle(sim::Simulator& sim, viper::ViperHost& host,
                 ThrottleConfig config = {});

  /// Books a packet of @p bytes toward @p key and returns the earliest
  /// time it may be transmitted (== now when unlimited).
  sim::Time acquire(const FlowKey& key, std::size_t bytes);

  /// Currently granted rate toward @p key; +inf when unlimited.
  [[nodiscard]] double rate(const FlowKey& key) const;

  /// Applies a rate report directly (the control-packet path calls this;
  /// exposed for tests and for transports with their own signalling).
  void apply_report(const RateReport& report);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Number of flows currently throttled (soft state not yet expired).
  [[nodiscard]] std::size_t active_flows() const { return states_.size(); }

  /// Model-checker regression hook (tests/mc_regress): replaces the
  /// transition core with a deliberately broken variant from mc::mutants
  /// so counterexamples found by the explorer replay in the real sim.
  void set_step_for_test(ThrottleStepFn step) { step_ = step; }

 private:
  void on_control(wire::Bytes payload);
  void tick();

  sim::Simulator& sim_;
  ThrottleConfig config_;
  ThrottleCoreConfig core_config_;
  ThrottleStepFn step_ = &throttle_step;
  std::map<FlowKey, ThrottleState> states_;
  Stats stats_;
};

}  // namespace srp::cc
