// Source-host end of rate-based congestion control.
//
// Rate reports that propagate all the way back reach the sending hosts
// ("the rate-limiting information builds up back from the point of
// congestion to the sources").  A SourceThrottle receives them via the
// host's control endpoint and paces the host's transmissions toward each
// congested downstream queue; rate-based transports (VMTP-style) consult
// it before scheduling each packet.
#pragma once

#include <cstdint>
#include <map>

#include "congestion/messages.hpp"
#include "sim/simulator.hpp"
#include "viper/host.hpp"

namespace srp::cc {

struct ThrottleConfig {
  sim::Time flow_ttl = 50 * sim::kMillisecond;
  double ramp_factor = 1.4;
  sim::Time ramp_interval = 2 * sim::kMillisecond;
  /// Rates at or above this are treated as "unlimited" and dropped.
  double rate_ceiling_bps = 1e12;
};

class SourceThrottle {
 public:
  struct Stats {
    std::uint64_t reports_received = 0;
    std::uint64_t sends_delayed = 0;
  };

  SourceThrottle(sim::Simulator& sim, viper::ViperHost& host,
                 ThrottleConfig config = {});

  /// Books a packet of @p bytes toward @p key and returns the earliest
  /// time it may be transmitted (== now when unlimited).
  sim::Time acquire(const FlowKey& key, std::size_t bytes);

  /// Currently granted rate toward @p key; +inf when unlimited.
  [[nodiscard]] double rate(const FlowKey& key) const;

  /// Applies a rate report directly (the control-packet path calls this;
  /// exposed for tests and for transports with their own signalling).
  void apply_report(const RateReport& report);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct State {
    double rate_bps = 0.0;
    sim::Time next_free = 0;
    sim::Time expires = 0;
    sim::Time last_report = 0;
  };

  void on_control(wire::Bytes payload);
  void tick();

  sim::Simulator& sim_;
  ThrottleConfig config_;
  std::map<FlowKey, State> states_;
  Stats stats_;
};

}  // namespace srp::cc
