#include "congestion/messages.hpp"

#include <bit>

namespace srp::cc {

wire::Bytes encode_rate_report(const RateReport& report) {
  wire::Writer w(14);
  w.u8(kTagRateReport);
  w.u32(report.router_id);
  w.u8(report.port);
  w.u64(std::bit_cast<std::uint64_t>(report.rate_bps));
  return std::move(w).take();
}

std::optional<RateReport> decode_rate_report(
    std::span<const std::uint8_t> payload) {
  try {
    wire::Reader r(payload);
    if (r.u8() != kTagRateReport) return std::nullopt;
    RateReport report;
    report.router_id = r.u32();
    report.port = r.u8();
    report.rate_bps = std::bit_cast<double>(r.u64());
    if (!(report.rate_bps > 0.0)) return std::nullopt;
    return report;
  } catch (const wire::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace srp::cc
