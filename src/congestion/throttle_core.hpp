// Pure transition core for one source-throttle flow entry.
//
// The runtime driver (congestion/throttle.hpp) and the bounded model
// checker (src/mc) share this step function, so the state machine the
// checker verifies is — by construction — the one the shipping code runs
// (DESIGN.md §10).  The core is side-effect free: it never touches the
// simulator, allocates, or reads ambient state; time is a parameter.
//
// Lifecycle of one (router, port) entry:
//
//   kAbsent --report--> kActive --tick(ttl elapsed)-----------> kExpired
//                        |  ^---report (refresh)                   ^
//                        +--tick (quiet): rate *= ramp_factor -----+
//                                          (erased at the ceiling)
//
// kExpired is sticky: the driver erases the entry from its table when a
// step reports `actions.erase`, which is exactly the transition into
// kExpired.  "Every throttle reaches expired" is a checked invariant:
// from any reachable state, a ticks-only closure must erase the entry.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace srp::cc {

/// The subset of ThrottleConfig the transition core depends on.
struct ThrottleCoreConfig {
  sim::Time flow_ttl = 50 * sim::kMillisecond;
  double ramp_factor = 1.4;
  sim::Time ramp_interval = 2 * sim::kMillisecond;
  double rate_ceiling_bps = 1e12;
};

enum class ThrottlePhase : std::uint8_t { kAbsent, kActive, kExpired };

/// One flow entry.  kAbsent is the before-first-report (and after-erase)
/// state; the driver's table simply has no entry then.
struct ThrottleState {
  ThrottlePhase phase = ThrottlePhase::kAbsent;
  double rate_bps = 0.0;
  sim::Time next_free = 0;
  sim::Time expires = 0;
  sim::Time last_report = 0;
};

struct ThrottleEvent {
  enum class Type : std::uint8_t {
    kReport,   ///< a rate report arrived for this flow
    kTick,     ///< the periodic ramp/expiry sweep visited the entry
    kAcquire,  ///< the transport books a packet toward this flow
  };
  Type type = Type::kTick;
  double rate_bps = 0.0;    ///< kReport: the granted rate
  std::size_t bytes = 0;    ///< kAcquire: packet size on the wire
};

struct ThrottleActions {
  bool erase = false;     ///< entry leaves the table (reached kExpired)
  bool delayed = false;   ///< kAcquire: the send was pushed past now
  sim::Time send_at = 0;  ///< kAcquire: granted transmission time
};

/// Applies @p event to @p state at time @p now.  Pure: equal inputs give
/// equal outputs.  @p actions is always fully overwritten.
ThrottleState throttle_step(const ThrottleCoreConfig& config,
                            ThrottleState state, const ThrottleEvent& event,
                            sim::Time now, ThrottleActions* actions);

/// Signature shared by the real core and the deliberately broken variants
/// in mc::mutants (model-checker self-test).
using ThrottleStepFn = ThrottleState (*)(const ThrottleCoreConfig&,
                                         ThrottleState,
                                         const ThrottleEvent&, sim::Time,
                                         ThrottleActions*);

}  // namespace srp::cc
