#include "congestion/controller.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace srp::cc {

CongestionController::CongestionController(sim::Simulator& sim,
                                           viper::ViperRouter& router,
                                           ControllerConfig config)
    : sim_(sim), router_(router), config_(config) {
  router_.set_shaper([this](int out_port, std::uint8_t next_port,
                            net::PacketPtr packet, net::TxMeta meta,
                            sim::Time earliest) {
    return shape(out_port, next_port, std::move(packet), meta, earliest);
  });
  router_.set_control_handler(
      [this](const core::HeaderSegment& seg, wire::Bytes payload,
             int in_port) { on_control(seg, std::move(payload), in_port); });
  sim_.after(config_.interval, [this] { tick(); });
}

void CongestionController::monitor_port(int port_index) {
  monitored_ports_.push_back(port_index);
  PortMonitor& monitor = monitors_[port_index];
  if (config_.feed_forward) {
    router_.port(port_index).on_enqueue = [this, &monitor](
                                              const net::Packet& p) {
      monitor.feedforward_seen += p.feedforward;
    };
  }
}

void CongestionController::set_neighbor(int port_index,
                                        std::uint32_t neighbor_router_id) {
  neighbors_[port_index] = neighbor_router_id;
}

void CongestionController::set_observer(const obs::Observer& observer) {
  if (observer.registry != nullptr) {
    const auto instance = stats::metric_component(router_.name());
    obs_flows_ = &observer.registry->gauge("cc." + instance + ".flows");
    obs_reports_sent_ =
        &observer.registry->counter("cc." + instance + ".reports_sent");
    obs_reports_received_ =
        &observer.registry->counter("cc." + instance + ".reports_received");
    obs_shaped_ = &observer.registry->counter("cc." + instance + ".shaped");
    update_flows_gauge();
  } else {
    obs_flows_ = nullptr;
    obs_reports_sent_ = nullptr;
    obs_reports_received_ = nullptr;
    obs_shaped_ = nullptr;
  }
  obs_recorder_ = observer.recorder;
  // Same scoped observer as the router (shared by name): the feeder
  // aggregates the router publishes are what feeders_toward() reads back.
  obs_flow_ = observer.flow != nullptr
                  ? &observer.flow->scoped(router_.name())
                  : nullptr;
}

std::vector<CongestionController::FlowSnapshot>
CongestionController::flow_snapshots() const {
  std::vector<FlowSnapshot> out;
  out.reserve(flows_.size());
  for (const auto& [key, flow] : flows_) {
    out.push_back(FlowSnapshot{key, flow.rate_bps, flow.held.size(),
                               flow.held_bytes, flow.expires});
  }
  return out;  // flows_ is a std::map: already FlowKey-ordered
}

double CongestionController::granted_rate(const FlowKey& key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? std::numeric_limits<double>::infinity()
                            : it->second.rate_bps;
}

std::size_t CongestionController::held_packets() const {
  std::size_t n = 0;
  for (const auto& [key, flow] : flows_) n += flow.held.size();
  return n;
}

void CongestionController::refill(FlowState& flow) {
  const sim::Time now = sim_.now();
  if (now > flow.last_refill) {
    flow.bucket_bits += flow.rate_bps * sim::to_seconds(now -
                                                        flow.last_refill);
    flow.bucket_bits = std::min(flow.bucket_bits, flow.bucket_cap_bits);
    flow.last_refill = now;
  }
}

bool CongestionController::shape(int out_port, std::uint8_t next_port,
                                 net::PacketPtr packet, net::TxMeta meta,
                                 sim::Time earliest) {
  const auto neighbor = neighbors_.find(out_port);
  if (neighbor == neighbors_.end()) return false;
  const FlowKey key{neighbor->second, next_port};
  const auto it = flows_.find(key);
  if (it == flows_.end()) return false;  // no limit toward that queue

  FlowState& flow = it->second;
  refill(flow);
  const double need = static_cast<double>(packet->size()) * 8.0;
  if (flow.held.empty() && flow.bucket_bits >= need) {
    flow.bucket_bits -= need;
    return false;  // inside the granted rate: pass through untouched
  }

  ++stats_.packets_shaped;
  if (obs_shaped_ != nullptr) obs_shaped_->add();
  if (obs_recorder_ != nullptr && packet->trace_id != 0) {
    // Throttle events render as instants: the shaper held this packet.
    obs::SpanRecord span;
    span.trace_id = packet->trace_id;
    span.hop = packet->hops;
    span.kind = obs::SpanKind::kThrottle;
    span.out_port = static_cast<std::uint16_t>(out_port);
    span.start = sim_.now();
    span.decision = sim_.now();
    span.end = sim_.now();
    span.set_component(router_.name());
    obs_recorder_->record(span);
  }
  flow.held_bytes += packet->size();
  flow.held.push_back(Held{std::move(packet), meta, out_port, earliest});
  flow.out_port = out_port;
  schedule_release(key);
  if (flow.held_bytes > config_.backlog_watermark_bytes) {
    report_backlog(key, flow);
  }
  return true;
}

void CongestionController::schedule_release(const FlowKey& key) {
  FlowState& flow = flows_.at(key);
  if (flow.release_scheduled || flow.held.empty()) return;
  refill(flow);
  const double need = static_cast<double>(flow.held.front().packet->size()) *
                      8.0;
  sim::Time when = sim_.now();
  if (flow.bucket_bits < need && flow.rate_bps > 0.0) {
    when += sim::from_seconds((need - flow.bucket_bits) / flow.rate_bps);
  }
  flow.release_scheduled = true;
  sim_.at(std::max(when, sim_.now() + 1),
          [this, key] { release_ready(key); });
}

void CongestionController::release_ready(const FlowKey& key) {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;  // flow expired; flush() already emitted
  FlowState& flow = it->second;
  flow.release_scheduled = false;
  refill(flow);
  while (!flow.held.empty()) {
    const double need =
        static_cast<double>(flow.held.front().packet->size()) * 8.0;
    if (flow.bucket_bits < need) break;
    flow.bucket_bits -= need;
    Held h = std::move(flow.held.front());
    flow.held.pop_front();
    flow.held_bytes -= h.packet->size();
    if (config_.feed_forward) {
      // Stamp the backlog behind this packet (paper's feed-forward info).
      h.packet->feedforward =
          static_cast<std::uint32_t>(flow.held.size());
    }
    router_.emit_to_port(h.out_port, std::move(h.packet), h.meta,
                         std::max(h.earliest, sim_.now()));
  }
  schedule_release(key);
}

void CongestionController::flush(FlowState& flow) {
  while (!flow.held.empty()) {
    Held h = std::move(flow.held.front());
    flow.held.pop_front();
    router_.emit_to_port(h.out_port, std::move(h.packet), h.meta,
                         std::max(h.earliest, sim_.now()));
  }
  flow.held_bytes = 0;
}

void CongestionController::on_control(const core::HeaderSegment&,
                                      wire::Bytes payload, int) {
  const auto report = decode_rate_report(payload);
  if (!report.has_value()) return;
  ++stats_.reports_received;
  if (obs_reports_received_ != nullptr) obs_reports_received_->add();
  const FlowKey key{report->router_id, report->port};
  auto [it, inserted] = flows_.try_emplace(key);
  FlowState& flow = it->second;
  if (inserted) {
    ++stats_.flows_created;
    update_flows_gauge();
    flow.last_refill = sim_.now();
  } else {
    refill(flow);
  }
  flow.rate_bps = report->rate_bps;
  // Allow ~2 report intervals of burst so shaping does not starve the link.
  flow.bucket_cap_bits =
      report->rate_bps * 2.0 * sim::to_seconds(config_.interval);
  flow.bucket_bits = std::min(flow.bucket_bits, flow.bucket_cap_bits);
  flow.expires = sim_.now() + config_.flow_ttl;
  flow.last_report = sim_.now();
}

void CongestionController::report_port_congestion(int port_index) {
  const net::TxPort& out = router_.port(port_index);
  PortMonitor& monitor = monitors_[port_index];
  const std::uint64_t ff_pressure = monitor.feedforward_seen;
  monitor.feedforward_seen = 0;

  if (out.queue_bytes() <= config_.queue_watermark_bytes) {
    // Feed-forward: feeders still report backlog behind their packets, so
    // renew the previous grants instead of letting the limits ramp away —
    // the queue drained because the control worked, not because the
    // demand vanished.
    if (config_.feed_forward && ff_pressure > 0 &&
        monitor.last_share_bps > 0.0 && !monitor.last_feeders.empty()) {
      const RateReport report{router_.router_id(),
                              static_cast<std::uint8_t>(port_index),
                              monitor.last_share_bps};
      const wire::Bytes payload = encode_rate_report(report);
      for (int feeder : monitor.last_feeders) {
        router_.send_control(feeder, payload);
        ++stats_.reports_sent;
        if (obs_reports_sent_ != nullptr) obs_reports_sent_->add();
      }
    }
    return;
  }

  // "Because the congested router has access to the source route, it can
  // easily determine the upstream routers feeding the queue."  With flow
  // accounting on, the answer comes from the router's flow aggregates (an
  // O(feeders) map walk over the last interval) instead of rescanning the
  // whole output queue packet by packet.
  std::set<int> feeders;
  if (obs_flow_ != nullptr) {
    std::vector<int> fed;
    obs_flow_->feeders_toward(port_index, sim_.now() - config_.interval,
                              fed);
    feeders.insert(fed.begin(), fed.end());
  } else {
    for (const auto& queued : out.queue()) {
      if (queued.packet->last_in_port > 0) {
        feeders.insert(queued.packet->last_in_port);
      }
    }
  }
  if (feeders.empty()) return;

  const double share = out.config().rate_bps * config_.target_utilization /
                       static_cast<double>(feeders.size());
  monitor.last_share_bps = share;
  monitor.last_feeders.assign(feeders.begin(), feeders.end());
  const RateReport report{router_.router_id(),
                          static_cast<std::uint8_t>(port_index), share};
  const wire::Bytes payload = encode_rate_report(report);
  for (int feeder : feeders) {
    router_.send_control(feeder, payload);
    ++stats_.reports_sent;
    if (obs_reports_sent_ != nullptr) obs_reports_sent_->add();
  }
}

void CongestionController::report_backlog(const FlowKey& key,
                                          FlowState& flow) {
  // Recursive backpressure: our shaping queue for this flow is itself
  // congested, so grant our feeders shares of *our* granted rate.
  (void)key;
  std::set<int> feeders;
  for (const auto& held : flow.held) {
    if (held.packet->last_in_port > 0) {
      feeders.insert(held.packet->last_in_port);
    }
  }
  if (feeders.empty()) return;
  const double share =
      flow.rate_bps / static_cast<double>(feeders.size());
  const RateReport report{router_.router_id(),
                          static_cast<std::uint8_t>(flow.out_port), share};
  const wire::Bytes payload = encode_rate_report(report);
  for (int feeder : feeders) {
    router_.send_control(feeder, payload);
    ++stats_.reports_sent;
    if (obs_reports_sent_ != nullptr) obs_reports_sent_->add();
  }
}

void CongestionController::tick() {
  for (int port_index : monitored_ports_) {
    report_port_congestion(port_index);
  }

  // Soft-state maintenance: expire dead limits, ramp quiet ones back up.
  for (auto it = flows_.begin(); it != flows_.end();) {
    FlowState& flow = it->second;
    const double capacity =
        flow.out_port > 0 ? router_.port(flow.out_port).config().rate_bps
                          : std::numeric_limits<double>::infinity();
    bool erase = false;
    if (sim_.now() >= flow.expires) {
      ++stats_.flows_expired;
      erase = true;
    } else if (sim_.now() - flow.last_report >= 2 * config_.interval) {
      // No fresh report: push the authorized rate up (network slow-start).
      flow.rate_bps *= config_.ramp_factor;
      flow.bucket_cap_bits =
          flow.rate_bps * 2.0 * sim::to_seconds(config_.interval);
      if (flow.rate_bps >= capacity) {
        ++stats_.flows_ramped_out;
        erase = true;
      }
    }
    if (erase) {
      flush(flow);
      it = flows_.erase(it);
      update_flows_gauge();
    } else {
      ++it;
    }
  }

  sim_.after(config_.interval, [this] { tick(); });
}

}  // namespace srp::cc
