// Control messages for rate-based congestion control (paper §2.2).
//
// A congested router sends RateReports *upstream* to the routers (and
// source hosts) feeding the congested output queue; each report names the
// congested (router, port) queue — the flow key — and the per-feeder rate
// being granted.  Reports ride as ordinary VIPER packets addressed to the
// neighbour's local control endpoint.
#pragma once

#include <cstdint>
#include <optional>

#include "wire/buffer.hpp"

namespace srp::cc {

/// First byte of every control payload.
inline constexpr std::uint8_t kTagRateReport = 0x01;

/// "signals to those upstream routers feeding this queue to reduce their
/// rate of packets being transmitted to this queue."
struct RateReport {
  std::uint32_t router_id = 0;  ///< the congested router
  std::uint8_t port = 0;        ///< its congested output port
  double rate_bps = 0.0;        ///< rate granted to the receiving feeder

  bool operator==(const RateReport& o) const {
    return router_id == o.router_id && port == o.port &&
           rate_bps == o.rate_bps;
  }
};

wire::Bytes encode_rate_report(const RateReport& report);

/// Decodes a control payload; nullopt when it is not a rate report.
std::optional<RateReport> decode_rate_report(
    std::span<const std::uint8_t> payload);

/// The queue a packet is heading for: the flow key of the paper's dynamic
/// soft state ("the rate-limiting information builds up back from the
/// point of congestion to the sources, dynamically generating soft state
/// on flows").
struct FlowKey {
  std::uint32_t router_id = 0;
  std::uint8_t port = 0;

  bool operator==(const FlowKey&) const = default;
  auto operator<=>(const FlowKey&) const = default;
};

}  // namespace srp::cc
