// Router-side rate-based congestion control (paper §2.2).
//
// One CongestionController attaches to one ViperRouter and plays both
// roles:
//
//  * Congestion point: it watches the router's output queues.  When a
//    queue exceeds the watermark it identifies the upstream feeders from
//    the queued packets and sends each a RateReport granting a fair share
//    of the link ("the router signals to those upstream routers feeding
//    this queue to reduce their rate").
//
//  * Upstream feeder: through the router's shaper hook it rate-limits
//    packets heading for a congested downstream queue (identified by
//    peeking the packet's next segment — "because the upstream routers
//    have access to the source route on each packet, they can determine
//    the packets destined for this queue").  Limits are token buckets held
//    as *soft state*: they expire, and quiet flows ramp their rate back up
//    ("similar to Jacobson's slow start ... applied at the network layer").
//    If its own shaping backlog grows it recursively reports further
//    upstream.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "congestion/messages.hpp"
#include "sim/simulator.hpp"
#include "viper/router.hpp"

namespace srp::cc {

struct ControllerConfig {
  /// Monitoring / reporting period.
  sim::Time interval = sim::kMillisecond;
  /// Output queue depth that declares congestion.
  std::size_t queue_watermark_bytes = 24'000;
  /// Fraction of link capacity shared out to feeders when congested.
  double target_utilization = 0.9;
  /// Soft-state lifetime of a rate limit with no fresh reports.
  sim::Time flow_ttl = 50 * sim::kMillisecond;
  /// Multiplicative rate increase per quiet interval (network slow-start).
  double ramp_factor = 1.4;
  /// Shaping backlog that triggers recursive upstream reports.
  std::size_t backlog_watermark_bytes = 24'000;
  /// Paper §2.2 ("we are also exploring providing feed forward load
  /// information on packets transiting rate-controlled links"): shaped
  /// packets carry their queue backlog downstream, and a congested router
  /// keeps its rate grants alive while feeders still signal backlog even
  /// if its own queue momentarily drains — damping the ramp oscillation.
  bool feed_forward = false;
};

class CongestionController {
 public:
  struct Stats {
    std::uint64_t reports_sent = 0;
    std::uint64_t reports_received = 0;
    std::uint64_t packets_shaped = 0;   ///< packets held at least briefly
    std::uint64_t flows_created = 0;
    std::uint64_t flows_expired = 0;
    std::uint64_t flows_ramped_out = 0; ///< limits removed by ramp-up
  };

  CongestionController(sim::Simulator& sim, viper::ViperRouter& router,
                       ControllerConfig config);

  /// Enables congestion detection on one of the router's output ports.
  void monitor_port(int port_index);

  /// Declares the router id reachable behind an output port, so shaped
  /// packets can be keyed to the downstream queue they will feed.
  void set_neighbor(int port_index, std::uint32_t neighbor_router_id);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Wires the controller to an observability sink: a `cc.<router>.flows`
  /// gauge (throttle-table size), `cc.<router>.reports_*` / `.shaped`
  /// counters, and — with a recorder — a kThrottle instant span whenever a
  /// traced packet is held by the shaper.  With a flow sink present the
  /// controller shares the router's scoped flow observer and identifies a
  /// congested port's feeders from its aggregates (feeders_toward) instead
  /// of rescanning the output queue.
  void set_observer(const obs::Observer& observer);

  /// Currently granted rate toward @p key; +inf when unlimited.
  [[nodiscard]] double granted_rate(const FlowKey& key) const;

  /// Number of packets currently held by shaping queues.
  [[nodiscard]] std::size_t held_packets() const;

  /// One rate limit's soft state, for live introspection.
  struct FlowSnapshot {
    FlowKey key;                  ///< downstream (router id, port) queue
    double rate_bps = 0.0;        ///< granted rate
    std::size_t held_packets = 0; ///< packets currently held by the shaper
    std::size_t held_bytes = 0;
    sim::Time expires = 0;        ///< soft-state expiry
  };

  /// Every active rate limit in deterministic (FlowKey) order.
  [[nodiscard]] std::vector<FlowSnapshot> flow_snapshots() const;

 private:
  struct Held {
    net::PacketPtr packet;
    net::TxMeta meta;
    int out_port = 0;
    sim::Time earliest = 0;
  };

  struct FlowState {
    double rate_bps = 0.0;
    double bucket_bits = 0.0;
    double bucket_cap_bits = 0.0;
    sim::Time last_refill = 0;
    sim::Time expires = 0;
    sim::Time last_report = 0;
    std::deque<Held> held;
    std::size_t held_bytes = 0;
    bool release_scheduled = false;
    int out_port = 0;  ///< the local port this flow leaves through
  };

  void tick();
  bool shape(int out_port, std::uint8_t next_port, net::PacketPtr packet,
             net::TxMeta meta, sim::Time earliest);
  void on_control(const core::HeaderSegment& segment, wire::Bytes payload,
                  int in_port);
  void refill(FlowState& flow);
  void schedule_release(const FlowKey& key);
  void release_ready(const FlowKey& key);
  void flush(FlowState& flow);
  void report_port_congestion(int port_index);
  void report_backlog(const FlowKey& key, FlowState& flow);

  struct PortMonitor {
    std::uint64_t feedforward_seen = 0;  ///< sum over the current interval
    double last_share_bps = 0.0;         ///< most recent grant per feeder
    std::vector<int> last_feeders;
  };

  sim::Simulator& sim_;
  viper::ViperRouter& router_;
  ControllerConfig config_;
  std::vector<int> monitored_ports_;
  std::map<int, PortMonitor> monitors_;     // monitored port state
  std::map<int, std::uint32_t> neighbors_;  // out port -> router id
  std::map<FlowKey, FlowState> flows_;
  Stats stats_;

  // Observability handles, resolved once by set_observer(); null = off.
  stats::Gauge* obs_flows_ = nullptr;
  stats::Counter* obs_reports_sent_ = nullptr;
  stats::Counter* obs_reports_received_ = nullptr;
  stats::Counter* obs_shaped_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
  obs::FlowSink* obs_flow_ = nullptr;  // shared with the router by name

  void update_flows_gauge() {
    if (obs_flows_ != nullptr) {
      obs_flows_->set(static_cast<std::int64_t>(flows_.size()));
    }
  }
};

}  // namespace srp::cc
