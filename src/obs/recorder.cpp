#include "obs/recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace srp::obs {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kHop: return "hop";
    case SpanKind::kTx: return "tx";
    case SpanKind::kThrottle: return "throttle";
    case SpanKind::kVerify: return "verify";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kTxn: return "txn";
    case SpanKind::kSample: return "sample";
    case SpanKind::kIntHop: return "int_hop";
    case SpanKind::kAlert: return "alert";
  }
  return "?";
}

std::string_view to_string(TokenOutcome outcome) {
  switch (outcome) {
    case TokenOutcome::kNone: return "none";
    case TokenOutcome::kHit: return "hit";
    case TokenOutcome::kMissOptimistic: return "miss_optimistic";
    case TokenOutcome::kMissBlocking: return "miss_blocking";
    case TokenOutcome::kMissDrop: return "miss_drop";
    case TokenOutcome::kRejected: return "rejected";
  }
  return "?";
}

void SpanRecord::set_component(std::string_view name) {
  const auto n = std::min(name.size(), component.size() - 1);
  std::memcpy(component.data(), name.data(), n);
  component[n] = '\0';
}

std::string_view SpanRecord::component_view() const {
  return {component.data(), std::strlen(component.data())};
}

void SpanRecord::set_excerpt(std::span<const std::uint8_t> header) {
  const auto n = std::min(header.size(), excerpt.size());
  if (n != 0) std::memcpy(excerpt.data(), header.data(), n);
  excerpt_len = static_cast<std::uint8_t>(n);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
      mask_(ring_.size() - 1) {}

std::vector<SpanRecord> FlightRecorder::spans() const {
  const auto n = head_.load(std::memory_order_relaxed);
  std::vector<SpanRecord> out;
  if (n == 0) return out;
  const auto retained = n < ring_.size() ? static_cast<std::size_t>(n)
                                         : ring_.size();
  out.reserve(retained);
  for (std::size_t i = 0; i < retained; ++i) {
    out.push_back(ring_[(n - retained + i) & mask_]);
  }
  return out;
}

void FlightRecorder::clear() {
  head_.store(0, std::memory_order_relaxed);
  for (auto& slot : ring_) slot = SpanRecord{};
}

}  // namespace srp::obs
