#include "obs/telemetry.hpp"

#include <algorithm>
#include <limits>

#include "check/contract.hpp"
#include "core/segment.hpp"
#include "viper/codec.hpp"

namespace srp::obs {
namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v >> 32));
  put_u32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) << 32 | get_u32(p + 4);
}

constexpr std::uint8_t kFlagCutThrough = 0x01;
constexpr std::uint8_t kFlagEgressDown = 0x02;

/// Largest TokenOutcome enumerator: decode rejects anything beyond it.
constexpr std::uint8_t kMaxOutcome =
    static_cast<std::uint8_t>(TokenOutcome::kRejected);

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(v >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace

SRP_HOT_PATH void HopTelemetry::encode(std::span<std::uint8_t> out) const {
  SIRPENT_EXPECTS(out.size() == kHopTelemetryWire);
  std::uint8_t* p = out.data();
  put_u32(p, router_id);
  p[4] = hop;
  p[5] = egress_port;
  p[6] = static_cast<std::uint8_t>(token);
  p[7] = static_cast<std::uint8_t>((cut_through ? kFlagCutThrough : 0) |
                                   (egress_down ? kFlagEgressDown : 0));
  put_u64(p + 8, arrival_ps);
  put_u64(p + 16, depart_ps);
  put_u32(p + 24, queue_wait_ps);
  put_u16(p + 28, queue_depth);
  put_u16(p + 30, in_port);
}

std::optional<HopTelemetry> decode_hop_telemetry(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != kHopTelemetryWire) return std::nullopt;
  const std::uint8_t* p = payload.data();
  if (p[6] > kMaxOutcome) return std::nullopt;
  if ((p[7] & ~(kFlagCutThrough | kFlagEgressDown)) != 0) return std::nullopt;
  HopTelemetry t;
  t.router_id = get_u32(p);
  t.hop = p[4];
  t.egress_port = p[5];
  t.token = static_cast<TokenOutcome>(p[6]);
  t.cut_through = (p[7] & kFlagCutThrough) != 0;
  t.egress_down = (p[7] & kFlagEgressDown) != 0;
  t.arrival_ps = get_u64(p + 8);
  t.depart_ps = get_u64(p + 16);
  t.queue_wait_ps = get_u32(p + 24);
  t.queue_depth = get_u16(p + 28);
  t.in_port = get_u16(p + 30);
  return t;
}

std::optional<HopTelemetry> last_postcard(
    std::span<const std::uint8_t> bytes) {
  // The record's segment prefix is four fixed octets: portInfo length 32,
  // token length 0, the reserved telemetry port, and a flags/priority
  // octet that is exactly TRM<<4 (VNT clear, priority 0).  Scan for the
  // last occurrence followed by a whole payload that decodes.
  static constexpr std::size_t kRecordWire = 4 + kHopTelemetryWire;
  if (bytes.size() < kRecordWire) return std::nullopt;
  const std::uint8_t kPrefix[4] = {
      static_cast<std::uint8_t>(kHopTelemetryWire), 0, core::kTelemetryPort,
      static_cast<std::uint8_t>(viper::kFlagTrm << 4)};
  for (std::size_t i = bytes.size() - kRecordWire + 1; i-- > 0;) {
    if (bytes[i] != kPrefix[0] || bytes[i + 1] != kPrefix[1] ||
        bytes[i + 2] != kPrefix[2] || bytes[i + 3] != kPrefix[3]) {
      continue;
    }
    const auto decoded =
        decode_hop_telemetry(bytes.subspan(i + 4, kHopTelemetryWire));
    if (decoded.has_value()) return decoded;
  }
  return std::nullopt;
}

std::uint64_t path_digest(std::span<const HopTelemetry> hops) {
  // FNV-1a over the realized (router, in-port, out-port) sequence: the
  // same discipline as flow::fnv1a, path-identifying but timing-blind.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const HopTelemetry& hop : hops) {
    mix(hop.router_id);
    mix(static_cast<std::uint64_t>(hop.in_port) << 16 | hop.egress_port);
  }
  return h;
}

sim::Time PathRecord::stamped_latency() const {
  sim::Time total = 0;
  for (const HopTelemetry& hop : hops) total += hop.hop_latency();
  return total;
}

PathCollector::PathCollector(stats::Registry* registry,
                             FlightRecorder* recorder,
                             PathCollectorConfig config)
    : config_(std::move(config)), registry_(registry), recorder_(recorder) {
  if (config_.max_records == 0) config_.max_records = 1;
  if (registry_ == nullptr) return;
  const std::string inst = stats::metric_component(config_.instance);
  m_packets_ = &registry_->counter("int." + inst + ".packets");
  m_hops_stamped_ = &registry_->counter("int." + inst + ".hops_stamped");
  m_truncated_ = &registry_->counter("int." + inst + ".truncated");
  m_decode_errors_ = &registry_->counter("int." + inst + ".decode_errors");
  m_drops_localized_ = &registry_->counter("int." + inst + ".drops_localized");
  m_paths_overflow_ = &registry_->counter("int." + inst + ".paths_overflow");
  m_paths_ = &registry_->gauge("int." + inst + ".paths");
  m_hop_latency_ = &registry_->histogram("int." + inst + ".hop_latency_ps");
  m_queue_depth_ = &registry_->histogram("int." + inst + ".queue_depth");
  m_queue_wait_ = &registry_->histogram("int." + inst + ".queue_wait_ps");
  m_e2e_ = &registry_->histogram("int." + inst + ".e2e_ps");
  m_residual_ = &registry_->histogram("int." + inst + ".residual_ps");
  m_drop_last_hop_ = &registry_->histogram("int." + inst + ".drop_last_hop");
}

PathCollector::PathSeries& PathCollector::series_for(std::uint64_t digest) {
  const auto it = series_.find(digest);
  if (it != series_.end()) return it->second;
  PathSeries series;
  if (registry_ != nullptr && series_.size() < config_.max_paths) {
    const std::string path = "p" + hex16(digest);
    series.packets = &registry_->counter("int." + path + ".packets");
    series.e2e_ps = &registry_->histogram("int." + path + ".e2e_ps");
  } else if (series_.size() >= config_.max_paths) {
    totals_.paths_overflow += 1;
    if (m_paths_overflow_ != nullptr) m_paths_overflow_->add();
  }
  totals_.paths = series_.size() + 1;
  if (m_paths_ != nullptr) {
    m_paths_->set(static_cast<std::int64_t>(totals_.paths));
  }
  return series_.emplace(digest, series).first->second;
}

void PathCollector::localize(const HopTelemetry& postcard) {
  totals_.drops_localized += 1;
  drops_after_router_[postcard.router_id] += 1;
  if (m_drops_localized_ != nullptr) m_drops_localized_->add();
  if (m_drop_last_hop_ != nullptr) m_drop_last_hop_->record(postcard.hop);
}

void PathCollector::on_delivery(const DeliveredTelemetry& delivered,
                                std::vector<HopTelemetry> hops,
                                std::size_t decode_errors) {
  // The in-place trailer reversal hands records newest-first, the
  // reference decode oldest-first: hop order makes both canonical, so the
  // collector state is byte-path independent (the batch-equivalence
  // contract extends through reconstruction).
  std::sort(hops.begin(), hops.end(),
            [](const HopTelemetry& a, const HopTelemetry& b) {
              return a.hop < b.hop;
            });

  totals_.packets += 1;
  totals_.hops_stamped += hops.size();
  totals_.decode_errors += decode_errors;
  if (m_packets_ != nullptr) m_packets_->add();
  if (m_hops_stamped_ != nullptr) m_hops_stamped_->add(hops.size());
  if (m_decode_errors_ != nullptr && decode_errors > 0) {
    m_decode_errors_->add(decode_errors);
  }

  PathRecord record;
  record.trace_id = delivered.trace_id;
  record.packet_id = delivered.packet_id;
  record.sent_at = delivered.sent_at;
  record.delivered_at = delivered.delivered_at;
  record.truncated = delivered.truncated;
  record.hops = std::move(hops);
  record.digest = path_digest(record.hops);

  for (const HopTelemetry& hop : record.hops) {
    if (m_hop_latency_ != nullptr) {
      m_hop_latency_->record(static_cast<std::uint64_t>(hop.hop_latency()));
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->record(hop.queue_depth);
    if (m_queue_wait_ != nullptr) m_queue_wait_->record(hop.queue_wait_ps);
    if (recorder_ != nullptr && record.trace_id != 0) {
      // The reconstructed hop as a child slice under the packet's trace:
      // Perfetto shows it nested beside the router's own kHop span, which
      // the chaos harness proves it agrees with.
      SpanRecord span;
      span.trace_id = record.trace_id;
      span.hop = hop.hop;
      span.kind = SpanKind::kIntHop;
      span.token = hop.token;
      span.cut_through = hop.cut_through;
      span.in_port = hop.in_port;
      span.out_port = hop.egress_port;
      span.start = static_cast<sim::Time>(hop.arrival_ps);
      span.decision = static_cast<sim::Time>(hop.arrival_ps);
      span.end = static_cast<sim::Time>(hop.depart_ps);
      span.queue_delay = hop.queue_wait_ps;
      span.set_component("int.r" + std::to_string(hop.router_id));
      recorder_->record(span);
    }
  }

  const auto e2e =
      static_cast<std::uint64_t>(record.delivered_at - record.sent_at);
  if (m_e2e_ != nullptr) m_e2e_->record(e2e);
  if (m_residual_ != nullptr) {
    m_residual_->record(static_cast<std::uint64_t>(record.residual_latency()));
  }
  PathSeries& series = series_for(record.digest);
  if (series.packets != nullptr) series.packets->add();
  if (series.e2e_ps != nullptr) series.e2e_ps->record(e2e);

  if (record.truncated) {
    totals_.truncated += 1;
    if (m_truncated_ != nullptr) m_truncated_->add();
    // A truncated arrival is a partial loss: the newest surviving record
    // names the last router the trailer cleared intact.
    if (!record.hops.empty()) localize(record.hops.back());
  }

  if (records_.size() < config_.max_records) {
    records_.push_back(std::move(record));
  } else {
    records_[next_record_] = std::move(record);
    next_record_ = (next_record_ + 1) % config_.max_records;
  }
}

void PathCollector::on_malformed_arrival(
    std::span<const std::uint8_t> bytes) {
  const auto postcard = last_postcard(bytes);
  if (!postcard.has_value()) return;
  localize(*postcard);
}

}  // namespace srp::obs
