// Flow-accounting sink interface: the seam between the data path and the
// flow measurement plane (src/flow).
//
// Sirpent's routers can aggregate traffic by source route and by account —
// tokens name the account to charge and the congestion controller reads
// the source routes sitting in its queues (paper §2.2).  The FlowSink is
// how an instrumented component reports those aggregates without depending
// on the flow subsystem: ViperRouter publishes one FlowSample per forward
// and one on_charge() per ledger charge; the congestion controller reads
// feeder aggregates back instead of rescanning its output queues.
//
// Cost contract (same as the rest of the obs layer): components resolve a
// scoped sink once at set_observer() time and keep a raw pointer; with no
// flow sink wired the per-packet price is one untaken null-pointer branch.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace srp::obs {

/// One forwarded packet, as the flow-accounting plane sees it.  The header
/// span points into the caller's buffer and is valid only for the duration
/// of the on_forward() call (sinks copy the excerpt they keep).
struct FlowSample {
  std::uint64_t route_digest = 0;  ///< whole-route identity (0 = unknown)
  std::uint64_t packet_id = 0;
  std::uint64_t trace_id = 0;      ///< nonzero when the packet is traced
  std::uint32_t account = 0;       ///< from the validated token (0 = none)
  std::uint8_t tos_class = 0;      ///< type-of-service priority field
  bool cut_through = false;        ///< vs store-and-forward for this hop
  std::uint16_t in_port = 0;
  std::uint16_t out_port = 0;
  std::uint32_t bytes = 0;         ///< wire bytes admitted (= bytes charged)
  sim::Time now = 0;
  /// Link header + first VIPER segment as received — the excerpt source
  /// for sampled-packet capture.
  std::span<const std::uint8_t> header;
};

/// Abstract flow-accounting sink.  Implemented by flow::FlowObserver (one
/// component's tables) and flow::FlowPlane (a fabric-wide factory of them);
/// defined here so the data path (viper, congestion) needs only srp_obs.
class FlowSink {
 public:
  virtual ~FlowSink() = default;

  /// The sink a component named @p component should publish into.  Called
  /// once at set_observer() time; the returned reference stays valid for
  /// the sink's lifetime.  Components sharing a name (a router and its
  /// congestion controller) resolve to the same scoped sink, which is what
  /// lets the controller read back the router's feeder aggregates.
  virtual FlowSink& scoped(std::string_view /*component*/) { return *this; }

  /// One packet forwarded by the component.  Hot path: called per packet
  /// whenever a flow sink is wired.
  virtual void on_forward(const FlowSample& sample) = 0;

  /// Batch-pass variant: all samples of one forward burst, in forward
  /// order.  Semantically identical to calling on_forward() per sample —
  /// the default does exactly that — but lets an implementation amortize
  /// its synchronization across the burst (flow::FlowObserver takes its
  /// mutex once).  Header spans are valid for the duration of the call.
  virtual void on_forward_burst(std::span<const FlowSample> samples) {
    for (const FlowSample& sample : samples) on_forward(sample);
  }

  /// One tokens::Ledger charge made by the component, reported with the
  /// same account and byte count — the exact mirror that makes per-account
  /// roll-ups reconcile with the ledger.
  virtual void on_charge(std::uint32_t account, std::uint64_t bytes) = 0;

  /// Appends to @p out the input ports that forwarded traffic toward
  /// @p out_port at or after @p since — the congestion controller's feeder
  /// set, answered from flow state instead of a queue scan.
  virtual void feeders_toward(int out_port, sim::Time since,
                              std::vector<int>& out) const = 0;
};

}  // namespace srp::obs
