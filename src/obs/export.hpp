// Exporters for metrics snapshots and flight-recorder spans.
//
// Three text formats, all deterministic for a given input (maps are
// name-sorted, floats printed with fixed precision) so golden-output
// tests can freeze them:
//
//   to_prometheus  Prometheus text exposition (dots become underscores;
//                  histograms emit cumulative le-buckets + _sum/_count),
//   to_json        one JSON object {counters, gauges, histograms} with
//                  derived mean/p50/p99 per histogram,
//   to_chrome_trace  Chrome trace-event JSON (ph:"X" complete events,
//                  microsecond timestamps) loadable in Perfetto or
//                  chrome://tracing; one track (tid) per trace id.
#pragma once

#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "stats/registry.hpp"

namespace srp::obs {

[[nodiscard]] std::string to_prometheus(const stats::MetricsSnapshot& snap);

[[nodiscard]] std::string to_json(const stats::MetricsSnapshot& snap);

[[nodiscard]] std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

}  // namespace srp::obs
