// In-band path telemetry (INT riding the Sirpent trailer).
//
// The trailer already makes every packet a path recorder: each router
// moves the consumed header segment to the tail, so the sink sees where
// the packet went (paper §2).  Path telemetry extends that record with
// *what happened* at each hop: a telemetry-marked packet (sampled at the
// origin host, flow::TelemetryMarker) additionally receives one fixed-size
// HopTelemetry record per router, appended right after the hop's reversed
// return entry.  On the wire a record is a pseudo-segment that is "not a
// legal Sirpent header segment" — TRM set, like the truncation mark — so
// no router ever routes by it, and it shares the trailer's truncation
// semantics: an MTU cut may slice through the newest record exactly as it
// slices any trailer bytes.
//
// At the sink, PathCollector turns the records back into a per-hop
// latency/queue profile: hop spans (SpanKind::kIntHop) under the packet's
// trace id, `int.*` histograms/counters in the stats::Registry, an
// end-to-end latency attribution (per-hop switch time vs residual
// wire/propagation time), and drop localization — a malformed or
// truncated arrival still carries the last hop that stamped it, the
// "postcard" naming where the packet last was intact.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/analysis.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"
#include "stats/registry.hpp"

namespace srp::obs {

/// Encoded HopTelemetry payload size: the portInfo of a telemetry
/// pseudo-segment is exactly this long, making the whole record
/// 4 (segment prefix) + 32 bytes per hop on the wire.
inline constexpr std::size_t kHopTelemetryWire = 32;

/// Stamping stops once a packet has traversed this many hops — the same
/// bound as core::kMaxSegments, so a telemetry trailer can never outgrow
/// the route that produced it.  Routers count the skip
/// (Stats::telemetry_overflow) instead of stamping.
inline constexpr std::uint32_t kMaxTelemetryHops = 48;

/// One router's in-band record.  Fixed-size, trivially copyable; encoded
/// big-endian into exactly kHopTelemetryWire octets:
///
///   [0..4)   router_id        [4] hop          [5]  egress_port
///   [6]      token outcome    [7] flag bits (0: cut-through, 1: egress
///                                 port down at stamp time)
///   [8..16)  arrival_ps       [16..24) depart_ps
///   [24..28) queue_wait_ps    [28..30) queue_depth   [30..32) in_port
struct HopTelemetry {
  std::uint32_t router_id = 0;
  std::uint8_t hop = 0;           ///< Packet::hops at the stamping router
  std::uint8_t egress_port = 0;
  TokenOutcome token = TokenOutcome::kNone;
  bool cut_through = false;
  bool egress_down = false;       ///< link-flap bit: out port was down
  std::uint64_t arrival_ps = 0;   ///< head arrival at the router
  std::uint64_t depart_ps = 0;    ///< earliest forward (decision + setup)
  std::uint32_t queue_wait_ps = 0;  ///< est. drain time of queued-ahead
                                    ///  bytes on the egress port, clamped
  std::uint16_t queue_depth = 0;  ///< packets queued on the egress port
  std::uint16_t in_port = 0;

  bool operator==(const HopTelemetry&) const = default;

  /// Per-hop router latency this record witnesses.
  [[nodiscard]] sim::Time hop_latency() const {
    return static_cast<sim::Time>(depart_ps) -
           static_cast<sim::Time>(arrival_ps);
  }

  /// Encodes into exactly kHopTelemetryWire bytes at @p out.data().
  /// Allocation-free: the router stamps through a stack buffer.
  SRP_HOT_PATH void encode(std::span<std::uint8_t> out) const;
};

/// Decodes one payload; nullopt unless it is exactly kHopTelemetryWire
/// bytes with a representable token outcome.
[[nodiscard]] std::optional<HopTelemetry> decode_hop_telemetry(
    std::span<const std::uint8_t> payload);

/// Scans @p bytes for the *last* telemetry pseudo-segment (4-byte prefix
/// [32][0][core::kTelemetryPort][TRM<<4] followed by a whole payload) —
/// the postcard a damaged or truncated packet still carries from the
/// last router that stamped it.  Byte-signature scan, not a parse: it
/// works on images whose framing no longer decodes.
[[nodiscard]] std::optional<HopTelemetry> last_postcard(
    std::span<const std::uint8_t> bytes);

/// Stable digest of the *realized* path a record list witnesses — the
/// (router_id, in_port, egress_port) sequence in hop order.  Packets that
/// took the same physical path hash identically; the collector keys its
/// per-path series on this.
[[nodiscard]] std::uint64_t path_digest(
    std::span<const HopTelemetry> hops);

struct PathCollectorConfig {
  /// Metric instance: everything lands under `int.<instance>.*`.
  std::string instance = "path";
  /// Distinct realized paths given their own `int.p<digest>.*` series;
  /// beyond this, packets still aggregate but count paths_overflow.
  std::size_t max_paths = 32;
  /// Reconstructed PathRecords retained for inspection (ring; oldest out).
  std::size_t max_records = 1024;
};

/// One reconstructed packet journey.
struct PathRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t packet_id = 0;
  std::uint64_t digest = 0;       ///< path_digest() of `hops`
  sim::Time sent_at = 0;
  sim::Time delivered_at = 0;
  bool truncated = false;
  std::vector<HopTelemetry> hops;  ///< ascending hop order

  /// Sum of the per-hop router latencies the records witness.
  [[nodiscard]] sim::Time stamped_latency() const;
  /// End-to-end minus stamped: wire, propagation and host share.
  [[nodiscard]] sim::Time residual_latency() const {
    const sim::Time e2e = delivered_at - sent_at;
    const sim::Time stamped = stamped_latency();
    return e2e > stamped ? e2e - stamped : 0;
  }
};

/// Delivery-side metadata handed to the collector by the sink host.
struct DeliveredTelemetry {
  std::uint64_t trace_id = 0;
  std::uint64_t packet_id = 0;
  sim::Time sent_at = 0;
  sim::Time delivered_at = 0;
  bool truncated = false;
};

/// Sink-side reconstruction.  One collector serves a whole fabric: every
/// host feeds its marked deliveries (and malformed arrivals) here.  All
/// observability handles are resolved once at construction; a collector
/// built with null sinks still reconstructs records for inspection.
class PathCollector {
 public:
  struct Totals {
    std::uint64_t packets = 0;        ///< marked deliveries reconstructed
    std::uint64_t hops_stamped = 0;   ///< telemetry records decoded
    std::uint64_t truncated = 0;      ///< marked deliveries cut in flight
    std::uint64_t decode_errors = 0;  ///< malformed telemetry payloads
    std::uint64_t drops_localized = 0;  ///< postcards recovered from
                                        ///  malformed/truncated arrivals
    std::uint64_t paths = 0;            ///< distinct realized paths
    std::uint64_t paths_overflow = 0;   ///< beyond config.max_paths
  };

  PathCollector(stats::Registry* registry, FlightRecorder* recorder,
                PathCollectorConfig config = {});

  /// A marked packet was delivered: @p hops are its decoded telemetry
  /// records (any order; re-sorted by hop number), @p decode_errors the
  /// records whose payload did not decode.  Emits kIntHop spans, feeds
  /// the `int.*` metrics and retains a PathRecord.
  void on_delivery(const DeliveredTelemetry& delivered,
                   std::vector<HopTelemetry> hops,
                   std::size_t decode_errors = 0);

  /// A marked packet arrived too damaged to parse: recover the last
  /// postcard from the raw image and localize where it was last intact.
  void on_malformed_arrival(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const Totals& totals() const { return totals_; }
  /// Reconstructed journeys, oldest first (bounded by max_records).
  [[nodiscard]] const std::vector<PathRecord>& records() const {
    return records_;
  }
  /// Postcard count by last-stamping router id — the drop-localization
  /// verdict: packets damaged *after* that router.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>&
  drops_after_router() const {
    return drops_after_router_;
  }
  [[nodiscard]] const PathCollectorConfig& config() const { return config_; }

 private:
  struct PathSeries {
    stats::Counter* packets = nullptr;
    stats::Histogram* e2e_ps = nullptr;
  };
  PathSeries& series_for(std::uint64_t digest);
  void localize(const HopTelemetry& postcard);

  PathCollectorConfig config_;
  stats::Registry* registry_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  Totals totals_;
  std::vector<PathRecord> records_;
  std::size_t next_record_ = 0;  ///< ring cursor once max_records reached
  std::map<std::uint64_t, PathSeries> series_;
  std::map<std::uint32_t, std::uint64_t> drops_after_router_;

  // Aggregate handles, resolved at construction; null = metrics off.
  stats::Counter* m_packets_ = nullptr;
  stats::Counter* m_hops_stamped_ = nullptr;
  stats::Counter* m_truncated_ = nullptr;
  stats::Counter* m_decode_errors_ = nullptr;
  stats::Counter* m_drops_localized_ = nullptr;
  stats::Counter* m_paths_overflow_ = nullptr;
  stats::Gauge* m_paths_ = nullptr;
  stats::Histogram* m_hop_latency_ = nullptr;
  stats::Histogram* m_queue_depth_ = nullptr;
  stats::Histogram* m_queue_wait_ = nullptr;
  stats::Histogram* m_e2e_ = nullptr;
  stats::Histogram* m_residual_ = nullptr;
  stats::Histogram* m_drop_last_hop_ = nullptr;
};

}  // namespace srp::obs
