#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string_view>

namespace srp::obs {
namespace {

// ts/dur in the Chrome trace format are microseconds; sim::Time is
// picoseconds, so six decimal places preserve full resolution.
constexpr double kPsPerUs = 1e6;

std::string prom_name(std::string_view metric) {
  std::string out;
  out.reserve(metric.size());
  for (char c : metric) out.push_back((c == '.' || c == '-') ? '_' : c);
  return out;
}

void append_fmt(std::string& out, const char* fmt, auto... args) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::size_t highest_nonzero_bucket(const stats::HistogramSnapshot& h) {
  std::size_t highest = 0;
  for (std::size_t i = 0; i < h.kBuckets; ++i) {
    if (h.buckets[i] != 0) highest = i;
  }
  return highest;
}

std::string_view span_category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kHop: return "viper";
    case SpanKind::kTx: return "net";
    case SpanKind::kThrottle: return "cc";
    case SpanKind::kVerify: return "tokens";
    case SpanKind::kDeliver: return "host";
    case SpanKind::kTxn: return "vmtp";
    case SpanKind::kSample: return "flow";
    case SpanKind::kIntHop: return "int";
    case SpanKind::kAlert: return "health";
  }
  return "?";
}

}  // namespace

std::string to_prometheus(const stats::MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const auto n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    append_fmt(out, "%s %" PRIu64 "\n", n.c_str(), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    const auto n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    append_fmt(out, "%s %" PRId64 "\n", n.c_str(), value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    const auto n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    if (hist.count != 0) {
      const auto highest = highest_nonzero_bucket(hist);
      for (std::size_t i = 0; i <= highest; ++i) {
        cumulative += hist.buckets[i];
        append_fmt(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                   n.c_str(), stats::Histogram::bucket_high(i), cumulative);
      }
    }
    append_fmt(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", n.c_str(),
               hist.count);
    append_fmt(out, "%s_sum %" PRIu64 "\n", n.c_str(), hist.sum);
    append_fmt(out, "%s_count %" PRIu64 "\n", n.c_str(), hist.count);
  }
  return out;
}

std::string to_json(const stats::MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, value] : snap.counters) {
    append_fmt(out, "%s\n    \"%s\": %" PRIu64, sep,
               json_escape(name).c_str(), value);
    sep = ",";
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  sep = "";
  for (const auto& [name, value] : snap.gauges) {
    append_fmt(out, "%s\n    \"%s\": %" PRId64, sep,
               json_escape(name).c_str(), value);
    sep = ",";
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  sep = "";
  for (const auto& [name, hist] : snap.histograms) {
    append_fmt(out, "%s\n    \"%s\": {", sep, json_escape(name).c_str());
    append_fmt(out, "\"count\": %" PRIu64 ", \"sum\": %" PRIu64, hist.count,
               hist.sum);
    append_fmt(out, ", \"mean\": %.3f", hist.mean());
    append_fmt(out, ", \"p50\": %" PRIu64 ", \"p99\": %" PRIu64, hist.p50(),
               hist.p99());
    out += ", \"buckets\": [";
    const char* bsep = "";
    for (std::size_t i = 0; i < hist.kBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      append_fmt(out, "%s[%" PRIu64 ", %" PRIu64 ", %" PRIu64 "]", bsep,
                 stats::Histogram::bucket_low(i),
                 stats::Histogram::bucket_high(i), hist.buckets[i]);
      bsep = ", ";
    }
    out += "]}";
    sep = ",";
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  const char* sep = "";
  std::map<std::uint64_t, bool> seen_tids;
  for (const auto& span : spans) {
    seen_tids.emplace(span.trace_id, true);
    const double ts = static_cast<double>(span.start) / kPsPerUs;
    out += sep;
    sep = ",";
    out += "\n{";
    append_fmt(out, "\"name\":\"%s %s\",",
               std::string(to_string(span.kind)).c_str(),
               json_escape(span.component_view()).c_str());
    append_fmt(out, "\"cat\":\"%s\",",
               std::string(span_category(span.kind)).c_str());
    if (span.kind == SpanKind::kThrottle || span.kind == SpanKind::kSample ||
        span.kind == SpanKind::kAlert) {
      append_fmt(out, "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.6f,", ts);
    } else {
      const double dur =
          static_cast<double>(span.end - span.start) / kPsPerUs;
      append_fmt(out, "\"ph\":\"X\",\"ts\":%.6f,\"dur\":%.6f,", ts, dur);
    }
    append_fmt(out, "\"pid\":1,\"tid\":%" PRIu64 ",", span.trace_id);
    out += "\"args\":{";
    append_fmt(out, "\"hop\":%u", span.hop);
    append_fmt(out, ",\"token\":\"%s\"",
               std::string(to_string(span.token)).c_str());
    append_fmt(out, ",\"cut_through\":%s",
               span.cut_through ? "true" : "false");
    append_fmt(out, ",\"in_port\":%u,\"out_port\":%u", span.in_port,
               span.out_port);
    append_fmt(out, ",\"queue_delay_ps\":%" PRId64, span.queue_delay);
    append_fmt(out, ",\"decision_us\":%.6f",
               static_cast<double>(span.decision) / kPsPerUs);
    if (span.excerpt_len != 0) {
      out += ",\"excerpt\":\"";
      for (std::uint8_t i = 0; i < span.excerpt_len; ++i) {
        append_fmt(out, "%02x", span.excerpt[i]);
      }
      out += "\"";
    }
    out += "}}";
  }
  for (const auto& [tid, unused] : seen_tids) {
    (void)unused;
    out += sep;
    sep = ",";
    append_fmt(out,
               "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":%" PRIu64 ",\"args\":{\"name\":\"trace %" PRIu64
               "\"}}",
               tid, tid);
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace srp::obs
