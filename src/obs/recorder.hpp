// Per-packet hop tracing: spans and the bounded flight recorder.
//
// A traced packet carries a trace id (Packet::trace_id, minted by the
// sending host); every instrumented component appends one SpanRecord per
// observed event to a FlightRecorder — a bounded ring that overwrites its
// oldest entries, so tracing can stay on for arbitrarily long soak runs
// with a fixed memory footprint.  Spans are fixed-size PODs (no heap on
// the record path) and export to Chrome trace-event JSON (obs/export.hpp)
// for viewing in Perfetto.
//
// Threading contract: record() is lock-free (one relaxed fetch_add plus a
// plain slot write) and may be called from any thread; spans() is a
// quiescent read, valid at batch boundaries (sim thread idle, worker pool
// drained).  Concurrent writers race on a slot only if the recorder wraps
// more than once within one batch — size the capacity for the batch
// volume (the default holds 16Ki spans).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace srp::stats {
class Registry;
}  // namespace srp::stats

namespace srp::obs {

enum class SpanKind : std::uint8_t {
  kHop,       // one VIPER router traversal (arrival -> forward decision)
  kTx,        // one port transmission (queue wait + wire time)
  kThrottle,  // congestion shaper held or paced a packet (instant)
  kVerify,    // token-cache miss verification window
  kDeliver,   // end-to-end delivery at the destination host
  kTxn,       // one VMTP request/response transaction
  kSample,    // flow sampler captured this packet (instant, with excerpt)
  kIntHop,    // in-band telemetry hop, reconstructed at the sink from the
              // packet's trailer (obs::PathCollector)
  kAlert,     // health-plane alert transition (instant; src/health)
};

/// How the router's token admission resolved for this hop.
enum class TokenOutcome : std::uint8_t {
  kNone,            // enforcement off / no token consulted
  kHit,             // cache hit, forwarded immediately
  kMissOptimistic,  // miss, forwarded while verifying
  kMissBlocking,    // miss, held until verification finished
  kMissDrop,        // miss, dropped per policy
  kRejected,        // flagged/expired/port-mismatch reject
};

[[nodiscard]] std::string_view to_string(SpanKind kind);
[[nodiscard]] std::string_view to_string(TokenOutcome outcome);

/// One traced event.  Fixed size, trivially copyable; the component name
/// is truncated into an inline buffer so recording never allocates.
struct SpanRecord {
  /// Header-excerpt capacity for kSample spans (enough for a link header
  /// plus the fixed part of a VIPER segment).
  static constexpr std::size_t kExcerptSize = 16;

  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;  // position along the route (Packet::hops)
  SpanKind kind = SpanKind::kHop;
  TokenOutcome token = TokenOutcome::kNone;
  bool cut_through = false;
  std::uint16_t in_port = 0;
  std::uint16_t out_port = 0;
  sim::Time start = 0;        // e.g. head arrival time
  sim::Time decision = 0;     // when the switch decision was made
  sim::Time end = 0;          // e.g. earliest forward / departure time
  sim::Time queue_delay = 0;  // time spent queued, when known
  std::array<char, 24> component{};  // NUL-terminated node/port name
  std::uint8_t excerpt_len = 0;      // kSample: captured header bytes
  std::array<std::uint8_t, kExcerptSize> excerpt{};

  void set_component(std::string_view name);
  [[nodiscard]] std::string_view component_view() const;
  /// Copies up to kExcerptSize bytes of @p header into the span.
  void set_excerpt(std::span<const std::uint8_t> header);
};

/// Bounded lock-free span ring ("flight recorder").  Capacity is rounded
/// up to a power of two; once full, new spans overwrite the oldest and
/// dropped() counts the overwrites.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const SpanRecord& span) {
    const auto seq = head_.fetch_add(1, std::memory_order_relaxed);
    ring_[seq & mask_] = span;
  }

  /// Batch-pass variant: one ring reservation for the whole burst, spans
  /// landing in input order.
  void record_burst(std::span<const SpanRecord> spans) {
    const auto base =
        head_.fetch_add(spans.size(), std::memory_order_relaxed);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      ring_[(base + i) & mask_] = spans[i];
    }
  }

  /// Total spans ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Spans lost to ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const {
    const auto n = recorded();
    return n > ring_.size() ? n - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Retained spans, oldest first.  Quiescent read: call at a batch
  /// boundary only.
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  /// Forgets all spans (counts included).  Quiescent only.
  void clear();

 private:
  std::vector<SpanRecord> ring_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

class FlowSink;  // obs/flow_sink.hpp

/// The sinks a component needs to be observable.  Any pointer may be null
/// (metrics without tracing, tracing without flow accounting, ...);
/// components cache the handles they need at set_observer() time so the
/// per-packet cost of a disabled observer is one branch on a null pointer.
struct Observer {
  stats::Registry* registry = nullptr;
  FlightRecorder* recorder = nullptr;
  FlowSink* flow = nullptr;  ///< flow accounting plane (obs/flow_sink.hpp)

  [[nodiscard]] bool has_metrics() const { return registry != nullptr; }
  [[nodiscard]] bool has_tracing() const { return recorder != nullptr; }
  [[nodiscard]] bool has_flow() const { return flow != nullptr; }
};

}  // namespace srp::obs
