#include "stats/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace srp::stats {

Table& Table::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

std::string Table::num(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit_row(out, header_);
    out << "|";
    for (auto w : widths) out << std::string(w + 2, '-') << "|";
    out << "\n";
  }
  for (const auto& r : rows_) emit_row(out, r);
  for (const auto& n : notes_) out << "  " << n << "\n";
  return out.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace srp::stats
