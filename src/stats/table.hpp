// ASCII table printer — every bench prints its paper-table reproduction
// through this so EXPERIMENTS.md rows can be pasted verbatim.
#pragma once

#include <string>
#include <vector>

namespace srp::stats {

/// Column-aligned ASCII table with an optional title and per-table notes
/// (used for the "paper:" annotation lines giving the published value).
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);
  Table& note(std::string text);

  /// Formats a double with @p precision significant decimal places.
  static std::string num(double v, int precision = 3);

  [[nodiscard]] std::string render() const;
  /// render() to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace srp::stats
