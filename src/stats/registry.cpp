#include "stats/registry.hpp"

#include <cmath>

#include "check/contract.hpp"

namespace srp::stats {
namespace {

bool is_segment_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                  const std::string& name) {
  auto& slot = map[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return *slot;
}

}  // namespace

bool is_valid_metric_name(std::string_view name) {
  constexpr int kMinSegments = 2;
  constexpr int kMaxSegments = 5;
  int segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;  // leading dot or empty segment
      ++segments;
      seg_len = 0;
    } else if (is_segment_char(c)) {
      ++seg_len;
    } else {
      return false;
    }
  }
  if (seg_len == 0) return false;  // empty name or trailing dot
  ++segments;
  return segments >= kMinSegments && segments <= kMaxSegments;
}

std::string metric_component(std::string_view raw) {
  if (raw.empty()) return "_";
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) out.push_back(is_segment_char(c) ? c : '_');
  return out;
}

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      // Interpolate within bucket i at the unbiased plotting position:
      // the p-th of the bucket's c samples sits at quantile (2p-1)/(2c)
      // of [low, high] under a within-bucket uniform assumption.  The
      // estimate stays inside the bucket by construction, so the worst
      // case error is one bucket width (an octave) — same hard bound as
      // the old upper-bound rule, without its systematic 2x overshoot.
      const std::uint64_t low = Histogram::bucket_low(i);
      const std::uint64_t high = Histogram::bucket_high(i);
      const double p = static_cast<double>(rank - cumulative);
      const double c = static_cast<double>(buckets[i]);
      const double width = static_cast<double>(high - low);
      const double offset = width * (2.0 * p - 1.0) / (2.0 * c);
      const auto value =
          low + static_cast<std::uint64_t>(std::llround(offset));
      return std::min(value, high);
    }
    cumulative += buckets[i];
  }
  return Histogram::bucket_high(kBuckets - 1);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = counts_[i].load(std::memory_order_relaxed);
  }
  // Read the dedicated total, not a sum over the bucket reads: the
  // exporters publish count/sum as the authoritative pair, and recomputing
  // count from racing per-bucket loads could disagree with sum.
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Counter& Registry::counter(const std::string& name) {
  SIRPENT_EXPECTS(is_valid_metric_name(name));
  MutexLock lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  SIRPENT_EXPECTS(is_valid_metric_name(name));
  MutexLock lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  SIRPENT_EXPECTS(is_valid_metric_name(name));
  MutexLock lock(mutex_);
  return find_or_create(histograms_, name);
}

std::map<std::string, std::uint64_t> Registry::snapshot() const {
  MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->value());
  }
  return out;
}

MetricsSnapshot Registry::full_snapshot() const {
  MetricsSnapshot out;
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace(name, histogram->snapshot());
  }
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace srp::stats
