#include "stats/registry.hpp"

namespace srp::stats {

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

std::map<std::string, std::uint64_t> Registry::snapshot() const {
  MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->value());
  }
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace srp::stats
