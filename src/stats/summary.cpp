#include "stats/summary.hpp"

namespace srp::stats {

double Samples::percentile(double p) {
  if (data_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  if (p <= 0) return data_.front();
  if (p >= 100) return data_.back();
  const double rank = p / 100.0 * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= data_.size()) return data_.back();
  return data_[lo] * (1.0 - frac) + data_[lo + 1] * frac;
}

void TimeWeighted::update(double t, double value) {
  if (started_ && t > last_t_) {
    weighted_sum_ += last_value_ * (t - last_t_);
    total_time_ += t - last_t_;
  }
  started_ = true;
  last_t_ = t;
  last_value_ = value;
  max_value_ = std::max(max_value_, value);
}

void TimeWeighted::finish(double t_end) {
  if (started_ && t_end > last_t_) {
    weighted_sum_ += last_value_ * (t_end - last_t_);
    total_time_ += t_end - last_t_;
    last_t_ = t_end;
  }
}

}  // namespace srp::stats
