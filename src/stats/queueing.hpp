// Analytic queueing formulas from the paper's Section 6.1.
//
// The paper sizes Sirpent's blocking delay with an M/D/1 model: "with
// reasonable load (up to about 70 percent utilization), M/D/1 modeling of
// the queue suggests an average queue length of approximately one packet or
// less" and "the average queuing delay is then approximately the
// transmission time for half of an average packet".  bench_queueing checks
// the simulated forwarding plane against these closed forms.
#pragma once

namespace srp::stats {

/// Mean number in system (waiting + in service) for M/D/1 at utilization
/// @p rho in [0,1):  L = rho + rho^2 / (2 (1 - rho))   (Pollaczek–Khinchine
/// with zero service variance).
double md1_mean_in_system(double rho);

/// Mean number waiting in queue (excluding the packet in service).
double md1_mean_in_queue(double rho);

/// Mean waiting time (before service starts) in units of one service time:
/// Wq = rho / (2 (1 - rho)).
double md1_mean_wait_service_units(double rho);

/// M/M/1 mean number in system: rho / (1 - rho); baseline comparison.
double mm1_mean_in_system(double rho);

/// M/M/1 mean wait in service-time units: rho / (1 - rho).
double mm1_mean_wait_service_units(double rho);

/// M/G/1 mean wait (service-time units) for service-time coefficient of
/// variation @p cv (cv = stddev / mean): Wq = rho (1 + cv^2) / (2 (1-rho)).
double mg1_mean_wait_service_units(double rho, double cv);

}  // namespace srp::stats
