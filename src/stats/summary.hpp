// Streaming scalar statistics used by every experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace srp::stats {

/// Streaming mean/variance/min/max via Welford's algorithm — O(1) memory,
/// numerically stable for the long runs the congestion benches do.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample for exact percentiles; used where sample counts are
/// modest (latency distributions per experiment cell).
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
    summary_.add(x);
  }

  [[nodiscard]] const Summary& summary() const { return summary_; }
  [[nodiscard]] std::uint64_t count() const { return summary_.count(); }
  [[nodiscard]] double mean() const { return summary_.mean(); }

  /// Exact percentile by linear interpolation; @p p in [0, 100].
  [[nodiscard]] double percentile(double p);

  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double p99() { return percentile(99.0); }

 private:
  std::vector<double> data_;
  Summary summary_;
  bool sorted_ = false;
};

/// Time-weighted average of a step function (e.g. queue length over time).
/// Call update(t, value) at every change; the value holds until the next
/// update.  finish(t_end) closes the last interval.
class TimeWeighted {
 public:
  void update(double t, double value);
  void finish(double t_end);

  [[nodiscard]] double average() const {
    return total_time_ > 0 ? weighted_sum_ / total_time_ : 0.0;
  }
  [[nodiscard]] double max_value() const { return max_value_; }

 private:
  bool started_ = false;
  double last_t_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
  double max_value_ = 0.0;
};

}  // namespace srp::stats
