// Fixed-bin histogram for distribution shapes (queue lengths, delays).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srp::stats {

/// Linear-bin histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Fraction of samples at or below @p x (empirical CDF, bin resolution).
  [[nodiscard]] double cdf(double x) const;

  /// Multi-line ASCII rendering (for bench output / debugging).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace srp::stats
