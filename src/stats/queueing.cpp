#include "stats/queueing.hpp"

#include <limits>
#include <stdexcept>

namespace srp::stats {
namespace {

void check_rho(double rho) {
  if (rho < 0.0) throw std::invalid_argument("utilization < 0");
}

double guard(double rho) {
  return rho >= 1.0 ? std::numeric_limits<double>::infinity() : rho;
}

}  // namespace

double md1_mean_in_system(double rho) {
  check_rho(rho);
  if (guard(rho) >= 1.0) return std::numeric_limits<double>::infinity();
  return rho + rho * rho / (2.0 * (1.0 - rho));
}

double md1_mean_in_queue(double rho) {
  check_rho(rho);
  if (guard(rho) >= 1.0) return std::numeric_limits<double>::infinity();
  return rho * rho / (2.0 * (1.0 - rho));
}

double md1_mean_wait_service_units(double rho) {
  check_rho(rho);
  if (guard(rho) >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (2.0 * (1.0 - rho));
}

double mm1_mean_in_system(double rho) {
  check_rho(rho);
  if (guard(rho) >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (1.0 - rho);
}

double mm1_mean_wait_service_units(double rho) {
  check_rho(rho);
  if (guard(rho) >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (1.0 - rho);
}

double mg1_mean_wait_service_units(double rho, double cv) {
  check_rho(rho);
  if (guard(rho) >= 1.0) return std::numeric_limits<double>::infinity();
  return rho * (1.0 + cv * cv) / (2.0 * (1.0 - rho));
}

}  // namespace srp::stats
