// Named-counter registry safe to write from worker threads.
//
// The single-threaded harnesses read component stats structs directly;
// once work fans across the exec::WorkerPool those structs cannot be
// bumped from workers without racing.  Components that run on the pool
// count through here instead: counters are lock-free atomics, and only
// the name -> counter map is guarded.  Counter references are stable for
// the registry's lifetime (std::map node stability), so the hot path is a
// single relaxed fetch_add with no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "check/sync.hpp"

namespace srp::stats {

/// One monotonically increasing counter.  Relaxed ordering: totals are
/// read at batch boundaries (after WorkerPool::wait_idle), which already
/// orders the memory.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The counter named @p name, created on first use.  The returned
  /// reference stays valid for the registry's lifetime and may be cached
  /// and bumped from any thread.
  Counter& counter(const std::string& name) SRP_EXCLUDES(mutex_);

  /// Point-in-time copy of every counter value.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const
      SRP_EXCLUDES(mutex_);

  /// Process-wide registry for components without an obvious owner.
  static Registry& global();

 private:
  mutable srp::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::stats
