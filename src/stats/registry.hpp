// Named-metric registry safe to write from worker threads.
//
// The single-threaded harnesses read component stats structs directly;
// once work fans across the exec::WorkerPool those structs cannot be
// bumped from workers without racing.  Components that run on the pool
// count through here instead.  Three metric kinds share one contract:
//
//   Counter    monotonically increasing event count,
//   Gauge      instantaneous level (queue depth, cache occupancy),
//   Histogram  fixed log2-bucket distribution (latencies, sizes).
//
// Creation/lookup takes the name-map lock once; the returned reference is
// stable for the registry's lifetime (std::map node stability) and may be
// cached, so every hot-path update is a handful of relaxed atomics with no
// lock.  Snapshots are consistent at batch boundaries (the sim thread
// between events, or after WorkerPool::wait_idle), which is when the
// harnesses and exporters read them.
//
// Naming convention: `component.instance.metric` — 2 to 5 non-empty
// segments of [A-Za-z0-9_-] joined by single dots, nothing else.  The
// accessors enforce it with a debug-build contract; metric_component()
// sanitizes free-form instance names (port names contain ':', host names
// may contain '.').
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "check/analysis.hpp"
#include "check/sync.hpp"

namespace srp::stats {

/// True if @p name follows the `component.instance.metric` convention
/// (2–5 dot-separated segments of [A-Za-z0-9_-]).
[[nodiscard]] bool is_valid_metric_name(std::string_view name);

/// Sanitizes one free-form name into a legal metric segment: every
/// character outside [A-Za-z0-9_-] becomes '_' ("h0.prop:p1" ->
/// "h0_prop_p1"); an empty input becomes "_".
[[nodiscard]] std::string metric_component(std::string_view raw);

/// One monotonically increasing counter.  Relaxed ordering: totals are
/// read at batch boundaries (after WorkerPool::wait_idle), which already
/// orders the memory.
class Counter {
 public:
  SRP_HOT_PATH void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// An instantaneous level that can move both ways (queue depth, token-cache
/// occupancy, throttle-table size).  Same relaxed-at-batch-boundary
/// contract as Counter.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d = 1) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d = 1) { value_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of one Histogram, with the percentile math.  Bucket i
/// covers [Histogram::bucket_low(i), Histogram::bucket_high(i)]; percentile
/// estimates locate the bucket holding the ranked sample and interpolate
/// linearly within it at the unbiased plotting position (2p-1)/(2c) for the
/// p-th of the bucket's c samples.  Error bound: the estimate always lies
/// inside the sample's own bucket, so it is never more than one octave off
/// (worst-case relative error < 2x, and exact for the value 0); under a
/// within-bucket uniform distribution the interpolated estimate is
/// unbiased, where the old upper-bound rule systematically overstated
/// p50/p99 by up to 2x.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimate of the ceil(q * count)-th smallest sample (q in [0, 1]),
  /// interpolated within its log2 bucket; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const;
  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }
};

/// Lock-free fixed log2-bucket histogram.  record() is two relaxed
/// fetch_adds — safe from any thread, cheap enough for per-packet latency
/// samples.  Bucket 0 holds the value 0; bucket i (1..64) holds values
/// whose bit width is i, i.e. [2^(i-1), 2^i - 1].  Values are unit-free;
/// by convention the metric name carries the unit suffix (e.g. "_ps").
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  [[nodiscard]] static std::uint64_t bucket_low(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  [[nodiscard]] static std::uint64_t bucket_high(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  SRP_HOT_PATH void record(std::uint64_t value) {
    counts_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t p50() const { return snapshot().p50(); }
  [[nodiscard]] std::uint64_t p99() const { return snapshot().p99(); }

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Every metric of one registry, copied at a batch boundary.  The maps are
/// name-sorted, so exporters iterating them emit deterministic output.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The counter named @p name, created on first use.  The returned
  /// reference stays valid for the registry's lifetime and may be cached
  /// and bumped from any thread.  @p name must satisfy
  /// is_valid_metric_name() (contract-checked in debug builds).
  Counter& counter(const std::string& name) SRP_EXCLUDES(mutex_);

  /// The gauge named @p name; same lifetime and naming contract.
  Gauge& gauge(const std::string& name) SRP_EXCLUDES(mutex_);

  /// The histogram named @p name; same lifetime and naming contract.
  Histogram& histogram(const std::string& name) SRP_EXCLUDES(mutex_);

  /// Point-in-time copy of every counter value.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const
      SRP_EXCLUDES(mutex_);

  /// Point-in-time copy of every metric (counters, gauges, histograms) —
  /// what the exporters consume.  Consistent at batch boundaries.
  [[nodiscard]] MetricsSnapshot full_snapshot() const SRP_EXCLUDES(mutex_);

  /// Process-wide registry for components without an obvious owner.
  static Registry& global();

 private:
  mutable srp::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SRP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SRP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SRP_GUARDED_BY(mutex_);
};

}  // namespace srp::stats
