#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace srp::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("LinearHistogram: invalid range or bin count");
  }
}

void LinearHistogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / bin_width_);
  i = std::min(i, counts_.size() - 1);
  counts_[i] += weight;
}

double LinearHistogram::bin_low(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width_;
}

double LinearHistogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_low(i) + bin_width_ > x) break;
    acc += counts_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string LinearHistogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bin_low(i) << ", " << bin_low(i) + bin_width_ << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ || overflow_) {
    out << "underflow=" << underflow_ << " overflow=" << overflow_ << "\n";
  }
  return out.str();
}

}  // namespace srp::stats
