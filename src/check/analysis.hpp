// Annotation vocabulary for srp-lint (scripts/srp_lint.py).
//
// The linter enforces the three contracts no off-the-shelf tool checks —
// sim determinism, hot-path allocation freedom, and the lock/metric
// discipline — by reading these markers out of the source.  The macros
// deliberately compile to (almost) nothing: under Clang the function
// markers lower to [[clang::annotate]] so an AST frontend can see them
// too; under GCC they vanish.  The wrapper markers are plain expression
// passthroughs.  Either way the *lexical* form is the contract: srp-lint
// matches the macro names, so they must be spelled out, never hidden
// behind further macros.
//
//   SRP_SIM_VISIBLE   function outside the default sim-visible directory
//                     set whose behavior nevertheless feeds simulation
//                     state (scheduling decisions, packet contents,
//                     exported snapshots).  The determinism pass applies.
//
//   SRP_HOT_PATH      function on the per-packet forward path.  The
//                     allocation pass forbids operator new / malloc /
//                     allocating std container calls in its body unless
//                     the site is wrapped in SRP_ALLOC_OK(...).  This is
//                     the baseline the batched zero-copy refactor
//                     (ROADMAP item 1) will tighten: every blessed site
//                     is a known, counted allocation, pinned at runtime
//                     by tests/alloc_budget_test.cpp.
//
//   SRP_ALLOC_OK(...) expression/declaration passthrough blessing the
//                     allocation(s) inside it within an SRP_HOT_PATH
//                     body.  Use it to make a deliberate slow-path or
//                     per-packet allocation explicit and reviewable.
//
//   SRP_ORDER_OK(...) expression passthrough blessing iteration over an
//                     unordered container (or another order-dependent
//                     read) in sim-visible code: the author asserts the
//                     result does not leak iteration order into sim
//                     state or exported data (e.g. the values are
//                     accumulated commutatively or sorted afterwards).
//
// DESIGN.md §9 documents the passes, their guarantees, and when
// suppression is acceptable.
#pragma once

#if defined(__clang__)
#define SRP_ANALYSIS_ANNOTATE_(text) __attribute__((annotate(text)))
#else
#define SRP_ANALYSIS_ANNOTATE_(text)  // GCC: lexical marker only
#endif

#define SRP_SIM_VISIBLE SRP_ANALYSIS_ANNOTATE_("srp::sim_visible")
#define SRP_HOT_PATH SRP_ANALYSIS_ANNOTATE_("srp::hot_path")

#define SRP_ALLOC_OK(...) __VA_ARGS__
#define SRP_ORDER_OK(...) __VA_ARGS__
