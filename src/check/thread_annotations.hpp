// Clang thread-safety (capability) annotations for the Sirpent tree.
//
// The concurrency discipline mirrors the contract discipline in
// contract.hpp: invariants are stated in the source and machine-checked.
// Here the invariant is "this field is only touched while that mutex is
// held", expressed with Clang's capability attributes and enforced at
// compile time by -Wthread-safety (the lint.sh pass and the
// clang-thread-safety CI job promote it to an error).  Under GCC — which
// has no equivalent analysis — every macro expands to nothing, so the
// annotations are free documentation there and a hard gate under Clang.
//
// Usage (see sync.hpp for the annotated srp::Mutex these attach to):
//
//   srp::Mutex mutex_;
//   int shared_ SRP_GUARDED_BY(mutex_);
//   void helper() SRP_REQUIRES(mutex_);   // caller must hold mutex_
//   void api()    SRP_EXCLUDES(mutex_);   // caller must NOT hold mutex_
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SRP_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SRP_THREAD_ANNOTATION_
#define SRP_THREAD_ANNOTATION_(x)  // no-op: GCC / MSVC / old Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define SRP_CAPABILITY(x) SRP_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SRP_SCOPED_CAPABILITY SRP_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding @p x.
#define SRP_GUARDED_BY(x) SRP_THREAD_ANNOTATION_(guarded_by(x))

/// Pointed-to data may only be accessed while holding @p x.
#define SRP_PT_GUARDED_BY(x) SRP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define SRP_REQUIRES(...) \
  SRP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held *shared* on entry.
#define SRP_REQUIRES_SHARED(...) \
  SRP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability; it must not be held on entry.
#define SRP_ACQUIRE(...) \
  SRP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability; it must be held on entry.
#define SRP_RELEASE(...) \
  SRP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns @p ret (first arg).
#define SRP_TRY_ACQUIRE(...) \
  SRP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define SRP_EXCLUDES(...) SRP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SRP_RETURN_CAPABILITY(x) SRP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch; every use must carry a comment justifying it.
#define SRP_NO_THREAD_SAFETY_ANALYSIS \
  SRP_THREAD_ANNOTATION_(no_thread_safety_analysis)
