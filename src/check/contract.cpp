#include "check/contract.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace srp::check {
namespace {

[[noreturn]] void default_handler(const Violation& v) {
  std::fprintf(stderr, "sirpent contract violation: %s(%s) at %s:%d in %s\n",
               v.kind, v.condition, v.file, v.line, v.function);
  std::abort();
}

// Atomic so contracts may fire from worker-pool threads while a test
// fixture swaps handlers on the main thread; a plain pointer here was a
// data race the moment src/exec landed.
std::atomic<ViolationHandler> g_handler{nullptr};

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void violation(const Violation& v) {
  ViolationHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) handler(v);
  default_handler(v);
}

}  // namespace srp::check
