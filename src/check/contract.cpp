#include "check/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace srp::check {
namespace {

[[noreturn]] void default_handler(const Violation& v) {
  std::fprintf(stderr, "sirpent contract violation: %s(%s) at %s:%d in %s\n",
               v.kind, v.condition, v.file, v.line, v.function);
  std::abort();
}

ViolationHandler g_handler = nullptr;

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  ViolationHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

void violation(const Violation& v) {
  if (g_handler != nullptr) g_handler(v);
  default_handler(v);
}

}  // namespace srp::check
