// Contract checking for the Sirpent data path.
//
// Sirpent deliberately carries no internetwork checksum or hop count; the
// implementation's defense against corrupted headers, bad trailer reversal
// and token misuse is the code itself being provably well-behaved.  These
// macros state the invariants the paper relies on, machine-checked in Debug
// and sanitizer builds and compiled to nothing in Release:
//
//   SIRPENT_EXPECTS(cond)    precondition at function entry
//   SIRPENT_ENSURES(cond)    postcondition before returning
//   SIRPENT_INVARIANT(cond)  internal consistency mid-function
//
// Checking is controlled by SIRPENT_CONTRACTS_ENABLED, which the build
// system defines to 1 for Debug and sanitizer builds and 0 otherwise (see
// the SIRPENT_CONTRACTS CMake option).  When disabled the condition is not
// evaluated — contract expressions must therefore be side-effect free.
//
// A violated contract calls the installed violation handler (default:
// print and abort).  Tests install a throwing handler to assert that
// contracts actually fire; see tests/contract_test.cpp.
#pragma once

#ifndef SIRPENT_CONTRACTS_ENABLED
#ifdef NDEBUG
#define SIRPENT_CONTRACTS_ENABLED 0
#else
#define SIRPENT_CONTRACTS_ENABLED 1
#endif
#endif

namespace srp::check {

/// What a violated contract reports to the handler.
struct Violation {
  const char* kind;       ///< "EXPECTS", "ENSURES" or "INVARIANT"
  const char* condition;  ///< stringized condition text
  const char* file;
  int line;
  const char* function;
};

/// Handler invoked on contract violation.  Must not return normally: it
/// either terminates the process (the default) or throws (test harnesses).
using ViolationHandler = void (*)(const Violation&);

/// Installs @p handler, returning the previous one.  Passing nullptr
/// restores the default abort handler.  Thread-safe (the handler slot is
/// a std::atomic): contracts may fire from worker-pool threads while a
/// fixture installs or restores handlers on the main thread.
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Reports a violation to the current handler and terminates the process
/// if the handler improperly returns.
[[noreturn]] void violation(const Violation& v);

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* condition,
                              const char* file, int line,
                              const char* function) {
  violation(Violation{kind, condition, file, line, function});
}

}  // namespace detail
}  // namespace srp::check

#if SIRPENT_CONTRACTS_ENABLED

#define SIRPENT_CONTRACT_CHECK_(kind, cond)                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::srp::check::detail::fail(kind, #cond, __FILE__, __LINE__, __func__); \
    }                                                                        \
  } while (false)

#define SIRPENT_EXPECTS(cond) SIRPENT_CONTRACT_CHECK_("EXPECTS", cond)
#define SIRPENT_ENSURES(cond) SIRPENT_CONTRACT_CHECK_("ENSURES", cond)
#define SIRPENT_INVARIANT(cond) SIRPENT_CONTRACT_CHECK_("INVARIANT", cond)

#else

#define SIRPENT_EXPECTS(cond) static_cast<void>(0)
#define SIRPENT_ENSURES(cond) static_cast<void>(0)
#define SIRPENT_INVARIANT(cond) static_cast<void>(0)

#endif
