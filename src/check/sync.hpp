// Capability-annotated synchronization primitives.
//
// Thin wrappers over the std primitives whose only job is to carry the
// Clang thread-safety attributes from thread_annotations.hpp: code that
// locks an srp::Mutex and touches an SRP_GUARDED_BY field is checked at
// compile time under -Wthread-safety.  The wrappers add no state and no
// overhead beyond std::mutex / std::condition_variable_any.
//
// Discipline (DESIGN.md "Concurrency model"):
//   * every shared field is SRP_GUARDED_BY a named srp::Mutex;
//   * public methods of a thread-safe component are SRP_EXCLUDES(mutex_)
//     and take an srp::MutexLock internally;
//   * private helpers that expect the lock held are SRP_REQUIRES(mutex_).
#pragma once

#include <condition_variable>
#include <mutex>

#include "check/contract.hpp"
#include "check/lock_order.hpp"
#include "check/thread_annotations.hpp"

// In contract-enabled builds (Debug and every sanitizer lane) each
// srp::Mutex acquisition feeds the global lock-order tracker
// (check/lock_order.hpp): an acquisition that inverts the recorded order
// reports a LOCK_ORDER contract violation before blocking, turning
// potential deadlocks into immediate, attributable failures.  Release
// builds compile the hooks away entirely.
#if SIRPENT_CONTRACTS_ENABLED
#define SRP_LOCK_ORDER_HOOK_(call) ::srp::check::lockorder::call
#else
#define SRP_LOCK_ORDER_HOOK_(call) static_cast<void>(0)
#endif

namespace srp {

/// Annotated exclusive mutex.  Prefer MutexLock over manual lock/unlock.
class SRP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { SRP_LOCK_ORDER_HOOK_(on_destroy(this)); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SRP_ACQUIRE() {
    SRP_LOCK_ORDER_HOOK_(on_acquire(this));
    m_.lock();
  }
  void unlock() SRP_RELEASE() {
    m_.unlock();
    SRP_LOCK_ORDER_HOOK_(on_release(this));
  }
  bool try_lock() SRP_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    SRP_LOCK_ORDER_HOOK_(on_try_acquire(this));
    return true;
  }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over an srp::Mutex (scoped capability).
class SRP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SRP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SRP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable usable with srp::Mutex.  wait() atomically releases
/// and reacquires the mutex; annotated SRP_REQUIRES so callers provably
/// hold it across the wait (the analysis treats the lock as continuously
/// held, which matches the caller-visible contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// No predicate overload on purpose: a predicate lambda is analyzed as
  /// its own function and would need annotations of its own.  Write the
  /// standard `while (!condition) cv.wait(mutex);` loop instead — the loop
  /// body is then checked against the enclosing function's capabilities.
  void wait(Mutex& mutex) SRP_REQUIRES(mutex) {
    // The wait releases and reacquires the mutex: mirror that in the
    // lock-order tracker so held-set bookkeeping stays exact.
    SRP_LOCK_ORDER_HOOK_(on_release(&mutex));
    std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
    SRP_LOCK_ORDER_HOOK_(on_acquire(&mutex));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace srp
