// Runtime lock-order tracking: the enforcement twin of srp-lint's static
// lock-hygiene pass (scripts/srp_lint.py pass 3).
//
// The static pass extracts the srp::Mutex acquisition graph it can see
// lexically — nested MutexLock scopes inside one function — and fails on
// cycles.  It cannot see acquisitions that nest through calls (e.g. a
// monitor method invoking a callback that takes another monitor's lock).
// This tracker closes that gap at runtime in contract-enabled builds
// (Debug and sanitizer CI lanes): every srp::Mutex acquisition is
// recorded against the thread's currently-held set, building the global
// acquisition graph incrementally; an acquisition that would close a
// cycle — the classic AB/BA inversion, or any longer loop — reports a
// LOCK_ORDER contract violation *before* blocking, so the test catches
// the inversion instead of deadlocking on it.
//
// Cost model: acquiring with no lock held (the overwhelmingly common
// monitor pattern in this tree) touches only a thread-local vector.
// Graph work happens only while nesting, and the graph mutex is a plain
// std::mutex so the tracker never traces itself.  In Release builds the
// hooks are never called (see sync.hpp) and the tracker costs nothing.
//
// Exercised by tests/concurrency_test.cpp (deliberate inversion).
#pragma once

#include <cstddef>

namespace srp::check::lockorder {

/// Records that the current thread is about to block on @p mutex.  Adds
/// held->mutex edges to the acquisition graph; if any edge would close a
/// cycle, reports a LOCK_ORDER violation through the installed contract
/// violation handler (default: print and abort) without recording the
/// acquisition.  Call BEFORE the underlying lock so inversions are
/// caught instead of deadlocking.
void on_acquire(const void* mutex);

/// Records a successful non-blocking acquisition (try_lock).  A try_lock
/// cannot contribute to a deadlock cycle — it never blocks — so the
/// acquisition is pushed on the held set without edge checks.
void on_try_acquire(const void* mutex);

/// Records that the current thread released @p mutex.
void on_release(const void* mutex);

/// Purges every graph edge involving @p mutex (its address may be
/// reused by a future mutex with an unrelated role).
void on_destroy(const void* mutex);

/// Number of distinct acquisition-order edges recorded so far
/// (test/introspection aid).
std::size_t edge_count();

/// Locks @p mutex currently held by the calling thread (test aid).
std::size_t held_depth();

}  // namespace srp::check::lockorder
