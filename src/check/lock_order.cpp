#include "check/lock_order.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "check/contract.hpp"

namespace srp::check::lockorder {
namespace {

// Guards the acquisition graph.  Deliberately a raw std::mutex: the
// tracker must never recurse into itself through an srp::Mutex.  The
// graph state is intentionally immortal (never destroyed): mutexes with
// static storage duration may be destroyed after any function-local
// static here, and their ~Mutex still calls on_destroy().
std::mutex& graph_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

// Directed acquisition-order edges: succ[a] holds every mutex acquired
// at least once while a was held.  std::map keeps iteration valid across
// inserts and needs no pointer hashing.
using Graph = std::map<const void*, std::set<const void*>>;

Graph& graph() {
  static Graph* g = new Graph;
  return *g;
}

std::size_t& edge_total() {
  static std::size_t* n = new std::size_t(0);
  return *n;
}

// The calling thread's currently-held srp::Mutexes, in acquisition
// order.  Function-local so first use from any thread constructs it.
std::vector<const void*>& held() {
  thread_local std::vector<const void*> h;
  return h;
}

/// True when @p target is reachable from @p from over recorded edges.
bool reachable(const Graph& g, const void* from, const void* target) {
  if (from == target) return true;
  std::vector<const void*> stack{from};
  std::set<const void*> seen;
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    const auto it = g.find(node);
    if (it == g.end()) continue;
    for (const void* next : it->second) {
      if (next == target) return true;
      stack.push_back(next);
    }
  }
  return false;
}

[[noreturn]] void report(const char* what, const void* held_mutex,
                         const void* acquiring) {
  // The handler may throw (test harnesses) — the buffer must outlive this
  // frame, hence thread_local static.
  thread_local static char message[160];
  std::snprintf(message, sizeof(message),
                "%s: acquiring mutex %p while holding %p inverts the "
                "recorded acquisition order",
                what, acquiring, held_mutex);
  violation(Violation{"LOCK_ORDER", message, "srp::Mutex", 0, "lock"});
}

}  // namespace

void on_acquire(const void* mutex) {
  std::vector<const void*>& h = held();
  if (!h.empty()) {
    std::unique_lock<std::mutex> lock(graph_mutex());
    Graph& g = graph();
    for (const void* held_mutex : h) {
      if (held_mutex == mutex) {
        lock.unlock();
        report("recursive acquisition", held_mutex, mutex);
      }
      if (g[held_mutex].contains(mutex)) continue;  // edge already proven
      if (reachable(g, mutex, held_mutex)) {
        // held -> ... -> mutex is recorded; taking mutex -> held now
        // would close the cycle.  Report before blocking.
        lock.unlock();
        report("lock-order inversion", held_mutex, mutex);
      }
      g[held_mutex].insert(mutex);
      ++edge_total();
    }
  }
  h.push_back(mutex);
}

void on_try_acquire(const void* mutex) { held().push_back(mutex); }

void on_release(const void* mutex) {
  std::vector<const void*>& h = held();
  // Releases are usually LIFO (MutexLock), but CondVar::wait and manual
  // unlock may release out of order: erase the most recent match.
  const auto it = std::find(h.rbegin(), h.rend(), mutex);
  if (it != h.rend()) h.erase(std::next(it).base());
}

void on_destroy(const void* mutex) {
  std::unique_lock<std::mutex> lock(graph_mutex());
  Graph& g = graph();
  const auto it = g.find(mutex);
  if (it != g.end()) {
    edge_total() -= it->second.size();
    g.erase(it);
  }
  for (auto& [from, successors] : g) {
    edge_total() -= successors.erase(mutex);
  }
}

std::size_t edge_count() {
  std::unique_lock<std::mutex> lock(graph_mutex());
  return edge_total();
}

std::size_t held_depth() { return held().size(); }

}  // namespace srp::check::lockorder
