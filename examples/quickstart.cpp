// Quickstart: build a small Sirpent internetwork, get a source route from
// the directory, send a packet, and answer it over the return route the
// trailer accumulated — the paper's core mechanism, end to end.
//
//   alice --- r1 --- r2 --- bob        (1 Gb/s point-to-point links)
//
// Run: ./quickstart
#include <cstdio>

#include "directory/fabric.hpp"
#include "viper/host.hpp"

int main() {
  using namespace srp;

  // 1. A simulator and a fabric (simulated nodes + directory database).
  sim::Simulator sim;
  dir::Fabric fabric(sim);

  // 2. Topology: two hosts, two routers, three links.
  auto& alice = fabric.add_host("alice.example");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& bob = fabric.add_host("bob.example");
  fabric.connect(alice, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, bob);

  // 3. Ask the directory for a route to bob by name.  The paper's
  // directory returns the route *and* its attributes (MTU, delay, ...).
  const auto routes =
      fabric.directory().query(fabric.id_of(alice), "bob.example", {});
  if (routes.empty()) {
    std::puts("no route to bob.example");
    return 1;
  }
  const dir::IssuedRoute& route = routes.front();
  std::printf("directory returned a %zu-hop route, mtu %zu, base one-way "
              "%.1f us\n",
              route.hops, route.mtu,
              sim::to_micros(route.propagation_delay));

  // 4. Bob answers everything using the return route built from the
  // trailer — no routing tables, no addresses.
  bob.set_default_handler([&](const viper::Delivery& d) {
    std::printf("[%8.2f us] bob got %zu bytes after %u hops: \"%.*s\"\n",
                sim::to_micros(d.delivered_at), d.data.size(), d.hops,
                static_cast<int>(d.data.size()),
                reinterpret_cast<const char*>(d.data.data()));
    std::printf("             trailer gave a %zu-segment return route\n",
                d.return_route.segments.size());
    const char reply[] = "hi alice, got it";
    bob.reply(d, std::span(reinterpret_cast<const std::uint8_t*>(reply),
                           sizeof(reply) - 1));
  });

  alice.set_default_handler([&](const viper::Delivery& d) {
    std::printf("[%8.2f us] alice got the reply: \"%.*s\"\n",
                sim::to_micros(d.delivered_at),
                static_cast<int>(d.data.size()),
                reinterpret_cast<const char*>(d.data.data()));
    std::printf("             round trip %.2f us, no connection setup, no "
                "router tables\n",
                sim::to_micros(d.delivered_at));
  });

  // 5. Send and run the simulation.
  const char message[] = "hello bob";
  viper::SendOptions options;
  options.out_port = route.host_out_port;
  options.link = route.first_hop_link;
  alice.send(route.route,
             std::span(reinterpret_cast<const std::uint8_t*>(message),
                       sizeof(message) - 1),
             options);
  sim.run();

  std::printf("router r1 forwarded %llu packet(s); no per-flow state held\n",
              static_cast<unsigned long long>(r1.stats().forwarded));
  (void)r2;
  return 0;
}
