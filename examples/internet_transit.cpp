// Sirpent across the Internet (paper §2.3).
//
// "A Sirpent packet can view the Internet as providing one logical hop
// across its internetwork ... In this sense, all existing networks (and
// internetworks) can be incorporated into the Sirpent approach."
//
// Two Sirpent campuses are joined by an IP backbone running its own
// distance-vector routing.  A single tunnel segment carries the VIPER
// packet across the backbone as an IP datagram; the return route works
// because the egress gateway's trailer entry records the ingress
// gateway's IP address.  We also shrink the backbone MTU to show IP
// fragmentation working transparently underneath the tunnel.
//
// Run: ./internet_transit
#include <cstdio>
#include <memory>
#include <optional>

#include "interop/ip_gateway.hpp"
#include "ip/builder.hpp"
#include "net/network.hpp"
#include "viper/host.hpp"
#include "viper/router.hpp"

int main() {
  using namespace srp;

  sim::Simulator sim;
  net::Network net(sim);

  // --- Campus A (Sirpent) ---
  auto& alice = net.add<viper::ViperHost>("alice", net.packets());
  auto& gw_west = net.add<viper::ViperRouter>("gw-west",
                                              viper::RouterConfig{});
  // --- Campus B (Sirpent) ---
  auto& gw_east = net.add<viper::ViperRouter>("gw-east",
                                              viper::RouterConfig{});
  auto& bob = net.add<viper::ViperHost>("bob", net.packets());

  // --- The IP backbone between them (its own world) ---
  constexpr ip::Addr kWestAddr = 0x0A010001, kEastAddr = 0x0A020001;
  auto& west_ip = net.add<ip::IpHost>(
      "gw-west-ip", net.packets(),
      ip::IpHostConfig{kWestAddr, 500 * sim::kMillisecond, 64, 64});
  auto& east_ip = net.add<ip::IpHost>(
      "gw-east-ip", net.packets(),
      ip::IpHostConfig{kEastAddr, 500 * sim::kMillisecond, 64, 64});
  auto& backbone1 = net.add<ip::IpRouter>("bb1", net.packets(),
                                          ip::IpRouterConfig{0x0A0100FE});
  auto& backbone2 = net.add<ip::IpRouter>("bb2", net.packets(),
                                          ip::IpRouterConfig{0x0A0200FE});

  const net::LinkConfig campus{1e9, 5 * sim::kMicrosecond, 1500};
  const net::LinkConfig wan{1e9, 10 * sim::kMillisecond, 576};  // small MTU!
  net.duplex(alice, gw_west, campus);
  net.duplex(gw_east, bob, campus);
  net.duplex(west_ip, backbone1, wan);
  net.duplex(backbone1, backbone2, wan);
  net.duplex(backbone2, east_ip, wan);
  backbone1.add_connected(kWestAddr, 1);
  backbone1.table()[kEastAddr] = ip::RouteEntry{2, 2, true, 0};
  backbone2.table()[kWestAddr] = ip::RouteEntry{1, 2, true, 0};
  backbone2.add_connected(kEastAddr, 2);

  // --- Bind each gateway router to its co-located IP host ---
  constexpr std::uint8_t kTunnel = 200;
  interop::IpTunnel west_tunnel(gw_west, west_ip, kTunnel);
  interop::IpTunnel east_tunnel(gw_east, east_ip, kTunnel);

  // Alice's source route: one tunnel segment for the whole backbone.
  core::SourceRoute route;
  core::HeaderSegment across_the_internet;
  across_the_internet.port = kTunnel;
  across_the_internet.port_info = interop::encode_tunnel_info(kEastAddr);
  core::HeaderSegment to_bob;
  to_bob.port = 1;  // gw-east port 1 leads to bob
  to_bob.flags.vnt = true;
  core::HeaderSegment local;
  local.port = core::kLocalPort;
  local.flags.vnt = true;
  route.segments = {across_the_internet, to_bob, local};

  std::printf("alice's route: %zu Sirpent segments (the whole IP backbone "
              "is ONE logical hop)\n",
              route.segments.size());

  bob.set_default_handler([&](const viper::Delivery& d) {
    std::printf("[%7.2f ms] bob got %zu bytes after %u Sirpent hops\n",
                sim::to_millis(d.delivered_at), d.data.size(), d.hops);
    for (const auto& seg : d.return_route.segments) {
      if (auto far = interop::decode_tunnel_info(seg.port_info)) {
        std::printf("            return route tunnels back via gateway "
                    "10.%u.0.%u\n",
                    (*far >> 16) & 0xFF, *far & 0xFF);
      }
    }
    bob.reply(d, wire::Bytes{0xCA, 0xFE});
  });
  alice.set_default_handler([&](const viper::Delivery& d) {
    std::printf("[%7.2f ms] alice got bob's %zu-byte reply — round trip "
                "across two stacks\n",
                sim::to_millis(d.delivered_at), d.data.size());
  });

  // A 1200-byte payload will not fit the backbone's 576-byte MTU: the IP
  // substrate fragments and reassembles under the tunnel.
  alice.send(route, wire::Bytes(1200, 0xAB));
  sim.run();

  std::printf("\nbackbone fragmented the tunneled packet %llu times; the "
              "far IP host reassembled %llu datagram(s)\n",
              static_cast<unsigned long long>(
                  backbone1.stats().fragments_created),
              static_cast<unsigned long long>(
                  east_ip.stats().reassembled));
  std::printf("tunnels: west encapsulated %llu / decapsulated %llu, east "
              "encapsulated %llu / decapsulated %llu\n",
              static_cast<unsigned long long>(
                  west_tunnel.stats().encapsulated),
              static_cast<unsigned long long>(
                  west_tunnel.stats().decapsulated),
              static_cast<unsigned long long>(
                  east_tunnel.stats().encapsulated),
              static_cast<unsigned long long>(
                  east_tunnel.stats().decapsulated));
  return 0;
}
