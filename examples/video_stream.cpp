// Real-time traffic with preemptive priorities (paper §2.1, §8).
//
// "The type of service field allows the network to support a variety of
// types of traffic ranging from real-time video to file transfer ...
// priorities 6 and 7 preempt the transmission of lower priority packets in
// mid-transmission if necessary."  And the §8 future-work idea: "'jitter'
// is handled by selectively delaying data delivery to recreate the
// original packet transmission spacing, possibly using the VMTP timestamp".
//
// A CBR video source shares a 100 Mb/s link with a bulk file transfer.
// We stream once at normal priority and once at preemptive priority 6,
// then replay the received stream through a timestamp-driven playout
// buffer, comparing jitter before and after.
//
// Run: ./video_stream
#include <cstdio>
#include <memory>
#include <optional>

#include "directory/fabric.hpp"
#include "stats/summary.hpp"
#include "transport/timestamp.hpp"
#include "workload/sources.hpp"

namespace {

using namespace srp;

struct StreamStats {
  stats::Samples interarrival_us;  ///< raw network inter-arrival gaps
  stats::Samples playout_us;       ///< gaps after the playout buffer
  int received = 0;
  int bulk_delivered = 0;
  std::uint64_t preempt_aborts = 0;
};

StreamStats run(std::uint8_t video_priority) {
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& camera = fabric.add_host("camera.example");
  auto& uploader = fabric.add_host("uploader.example");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& viewer = fabric.add_host("viewer.example");
  auto& archive = fabric.add_host("archive.example");
  dir::LinkParams edge;
  edge.rate_bps = 1e9;
  dir::LinkParams shared;
  shared.rate_bps = 1e8;  // the contended 100 Mb/s trunk
  fabric.connect(camera, r1, edge);
  fabric.connect(uploader, r1, edge);
  fabric.connect(r1, r2, shared);
  fabric.connect(r2, viewer, edge);
  fabric.connect(r2, archive, edge);

  auto route_via = [&](std::uint8_t exit_port, std::uint8_t priority) {
    core::SourceRoute route;
    core::HeaderSegment trunk;
    trunk.port = 3;  // r1 port 3 = the shared trunk
    trunk.tos.priority = priority;
    trunk.flags.vnt = true;
    core::HeaderSegment exit;
    exit.port = exit_port;
    exit.tos.priority = priority;
    exit.flags.vnt = true;
    core::HeaderSegment local;
    local.port = core::kLocalPort;
    local.flags.vnt = true;
    route.segments = {trunk, exit, local};
    return route;
  };
  const auto video_route = route_via(2, video_priority);  // r2 p2 -> viewer
  const auto bulk_route = route_via(3, 0);                // r2 p3 -> archive

  StreamStats result;

  // Viewer measures inter-arrival gaps and replays via a playout buffer
  // keyed on the sender's millisecond timestamps carried in the payload.
  vmtp::HostClock camera_clock(sim, 0);
  std::optional<sim::Time> last_arrival;
  std::optional<sim::Time> playout_origin;
  std::optional<std::uint32_t> first_stamp;
  std::optional<sim::Time> last_playout;
  const sim::Time playout_delay = 5 * sim::kMillisecond;
  viewer.set_default_handler([&](const viper::Delivery& d) {
    ++result.received;
    if (last_arrival.has_value()) {
      result.interarrival_us.add(
          sim::to_micros(d.delivered_at - *last_arrival));
    }
    last_arrival = d.delivered_at;
    // Recreate the original spacing: play at origin + (stamp - first).
    wire::Reader r(d.data);
    const std::uint32_t stamp = r.u32();
    if (!playout_origin.has_value()) {
      playout_origin = d.delivered_at + playout_delay;
      first_stamp = stamp;
    }
    const sim::Time target =
        *playout_origin +
        vmtp::timestamp_diff_ms(stamp, *first_stamp) * sim::kMillisecond;
    const sim::Time play_at = std::max(target, sim.now());
    sim.at(play_at, [&, play_at] {
      if (last_playout.has_value()) {
        result.playout_us.add(sim::to_micros(play_at - *last_playout));
      }
      last_playout = play_at;
    });
  });
  archive.set_default_handler(
      [&](const viper::Delivery&) { ++result.bulk_delivered; });

  // Video: 30 fps, one 1000-byte packet per frame (timestamped).
  auto video = std::make_unique<wl::CbrSource>(
      sim, 33 * sim::kMillisecond / 10, [&] {  // ~3.3 ms -> 300 pkt/s
        wire::Writer w(1000);
        w.u32(camera_clock.now_ms());
        w.zeros(996);
        viper::SendOptions options;
        options.tos.priority = video_priority;
        camera.send(video_route, std::move(w).take(), options);
      });
  // Bulk: uploader blasts 1400-byte packets as fast as it can.
  auto bulk = std::make_unique<wl::CbrSource>(
      sim, 112 * sim::kMicrosecond, [&] {  // ~100 Mb/s: saturates the trunk
        viper::SendOptions options;
        uploader.send(bulk_route, wire::Bytes(1400, 0xB0), options);
      });
  video->start();
  bulk->start();
  sim.run_until(500 * sim::kMillisecond);
  video->stop();
  bulk->stop();
  sim.run_until(600 * sim::kMillisecond);

  result.preempt_aborts = r1.port(3).stats().preempt_aborts;
  return result;
}

}  // namespace

int main() {
  std::puts("video over a contended 100 Mb/s trunk, with and without the "
            "preemptive type of service");
  std::puts("");
  for (std::uint8_t priority : {std::uint8_t{0}, std::uint8_t{6}}) {
    StreamStats s = run(priority);
    std::printf("video at priority %d:\n", priority);
    std::printf("  frames delivered: %d   bulk packets delivered: %d\n",
                s.received, s.bulk_delivered);
    std::printf("  network inter-arrival: mean %.0f us, p99 %.0f us "
                "(sent every 3300 us)\n",
                s.interarrival_us.mean(), s.interarrival_us.p99());
    std::printf("  after timestamp playout buffer: p99 gap %.0f us\n",
                s.playout_us.p99());
    std::printf("  bulk transmissions preempted mid-packet: %llu\n\n",
                static_cast<unsigned long long>(s.preempt_aborts));
  }
  std::puts("priority 6 preempts the bulk transfer mid-packet, so video "
            "gaps stay near the source spacing;");
  std::puts("the playout buffer uses the VMTP-style timestamps to recreate "
            "the original timing (paper section 8).");
  return 0;
}
