// Health-plane demo: the fabric diagnoses its own failure.
//
//   client --- r1 --- r2 --- r3 --- server
//
// A VMTP echo workload warms the fabric for 250 ms, then a fault lane
// starts silently dropping a quarter of the packets leaving r2 toward
// r3.  Nobody tells the health plane: it watches honest device counters
// through windowed series, notices that r2:p2's books stop balancing
// (packets entered that no exit counter explains), debounces the breach,
// fires a LinkWireLoss alert naming the router and port, and corroborates
// the suspect with in-band path telemetry — damaged packets were last
// stamped at r2.
//
// The run writes the operator-facing artifacts CI archives:
//   fabric_doctor_alerts.json   alert episodes + root-cause analysis
//   fabric_doctor_alerts.prom   Prometheus ALERTS exposition
//   fabric_doctor_trace.json    Perfetto trace with kAlert instants
//
// Run: ./fabric_doctor    (self-checking; exits nonzero on mismatch)
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "directory/fabric.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "flow/plane.hpp"
#include "health/export.hpp"
#include "health/monitor.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "stats/registry.hpp"
#include "transport/vmtp.hpp"

int main() {
  using namespace srp;

  constexpr sim::Time kFaultAt = 250 * sim::kMillisecond;
  constexpr sim::Time kTrafficEnd = 550 * sim::kMillisecond;
  constexpr sim::Time kRunEnd = 600 * sim::kMillisecond;

  sim::Simulator sim;
  stats::Registry registry;
  obs::FlightRecorder recorder;
  flow::FlowPlane flow_plane({}, &registry, &recorder);

  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.example");
  auto& server_host = fabric.add_host("server.example");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& r3 = fabric.add_router("r3");
  fabric.connect(client_host, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, r3);
  fabric.connect(r3, server_host);

  fabric.enable_observability({&registry, &recorder, &flow_plane});
  dir::PathTelemetryConfig telemetry;
  telemetry.sample_period = 4;
  fabric.enable_path_telemetry(telemetry);
  health::HealthConfig config;
  config.series.window = 10 * sim::kMillisecond;
  auto& monitor = fabric.enable_health(config);

  // The fault engine keeps its ground-truth books in a registry the
  // health plane never sees — detection rests on device counters alone.
  fault::FaultPlan plan;
  plan.seed = 0xD0C;
  plan.lane("r2:p2").drop_rate = 0.25;
  stats::Registry fault_stats;
  fault::FaultEngine engine(sim, plan, fault_stats);
  sim.at(kFaultAt, [&engine, &r2] { engine.attach(r2.port(2)); });

  vmtp::VmtpConfig vconfig;
  vconfig.max_retries = 6;
  auto client =
      std::make_unique<vmtp::VmtpEndpoint>(sim, client_host, 0xC1, vconfig);
  auto server =
      std::make_unique<vmtp::VmtpEndpoint>(sim, server_host, 0x5E, vconfig);
  server->serve(
      [](std::span<const std::uint8_t> req, const viper::Delivery&) {
        return wire::Bytes(req.begin(), req.end());
      });

  dir::QueryOptions q;
  q.dest_endpoint = 0x5E;
  const auto routes = fabric.directory().query(fabric.id_of(client_host),
                                               "server.example", q);
  if (routes.empty()) {
    std::puts("error: no route to server.example");
    return 1;
  }

  int issued = 0;
  int ok = 0;
  sim::Rng traffic_rng(0x5EED);
  std::function<void()> pump = [&] {
    if (sim.now() >= kTrafficEnd) return;
    const wire::Bytes request(64 + traffic_rng.uniform_int(0, 800),
                              static_cast<std::uint8_t>(issued));
    ++issued;
    client->invoke(routes.front(), 0x5E, request,
                   [&ok](vmtp::Result r) {
                     if (r.ok) ++ok;
                   });
    sim.after(static_cast<sim::Time>(200 * sim::kMicrosecond +
                                     traffic_rng.uniform_int(
                                         0, 300 * sim::kMicrosecond)),
              [&pump] { pump(); });
  };
  sim.after(1, [&pump] { pump(); });
  sim.run_until(kRunEnd);

  // --- the doctor's report -------------------------------------------------
  std::printf("traffic: %d transactions issued, %d ok (fault live from "
              "%llu ms)\n",
              issued, ok,
              static_cast<unsigned long long>(kFaultAt / sim::kMillisecond));
  bool localized = false;
  for (const health::Alert* alert : monitor.engine().fired()) {
    const health::RootCause cause = monitor.diagnose(*alert);
    const std::string state(health::to_string(alert->state));
    std::printf("ALERT %s [%s] on %s%s%s\n  %s\n",
                alert->labels.alert.c_str(), state.c_str(),
                alert->labels.component.c_str(),
                alert->labels.port.empty() ? "" : " port ",
                alert->labels.port.c_str(), cause.reason.c_str());
    if (!cause.evidence.empty()) {
      std::printf("  evidence: %s\n", cause.evidence.c_str());
    }
    if (alert->labels.alert == "LinkWireLoss" && cause.router == "r2") {
      localized = true;
    }
  }

  // --- artifacts -----------------------------------------------------------
  const std::string alerts_json = health::to_alerts_json(monitor);
  const std::string alerts_prom =
      health::to_prometheus_alerts(monitor.engine());
  std::ofstream("fabric_doctor_alerts.json") << alerts_json;
  std::ofstream("fabric_doctor_alerts.prom") << alerts_prom;
  std::ofstream("fabric_doctor_trace.json")
      << obs::to_chrome_trace(recorder.spans());
  std::puts("wrote fabric_doctor_alerts.{json,prom}, "
            "fabric_doctor_trace.json");

  // --- self-check so CI can run this as a smoke test ----------------------
  int alert_spans = 0;
  for (const auto& span : recorder.spans()) {
    if (span.kind == obs::SpanKind::kAlert) ++alert_spans;
  }
  const bool ok_run =
      issued > 500 && localized && alert_spans > 0 &&
      alerts_json.find("LinkWireLoss") != std::string::npos &&
      alerts_prom.find("ALERTS") != std::string::npos;
  std::printf("self-check: issued>500 %s, LinkWireLoss localized to r2 "
              "%s, kAlert spans %d\n",
              issued > 500 ? "yes" : "NO", localized ? "yes" : "NO",
              alert_spans);
  if (!ok_run) return 1;
  std::puts("fabric doctor: diagnosis confirmed");
  return 0;
}
