// Transactional workload — the paper's motivating case ("increases in
// transactional traffic, such as credit card transactions, make the
// logical connections even shorter").
//
// A point-of-sale client authorizes 50 purchases against a bank server
// across a 3-router internetwork, with token enforcement turned on: every
// packet carries per-hop encrypted capabilities, routers charge the
// merchant's account, and the whole exchange is one VMTP transaction —
// no connection setup, no circuit state.
//
// Run: ./transactional_rpc
#include <cstdio>
#include <memory>

#include "directory/fabric.hpp"
#include "sim/random.hpp"
#include "stats/summary.hpp"
#include "transport/vmtp.hpp"

int main() {
  using namespace srp;

  sim::Simulator sim;
  dir::Fabric fabric(sim);

  auto& pos = fabric.add_host("pos.shop.example");
  auto& r1 = fabric.add_router("r-shop");
  auto& r2 = fabric.add_router("r-transit");
  auto& r3 = fabric.add_router("r-bank");
  auto& bank = fabric.add_host("auth.bank.example");
  fabric.connect(pos, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, r3);
  fabric.connect(r3, bank);

  // Token enforcement with optimistic caching at every router.
  fabric.enable_tokens(/*secret=*/0x5EC4E7, /*enforce=*/true,
                       tokens::UncachedPolicy::kOptimistic,
                       /*verify_delay=*/80 * sim::kMicrosecond);

  constexpr std::uint64_t kPosEntity = 0x705;
  constexpr std::uint64_t kBankEntity = 0xBA4C;
  constexpr std::uint32_t kMerchantAccount = 88'001;

  vmtp::VmtpConfig transport;
  auto client = std::make_unique<vmtp::VmtpEndpoint>(sim, pos, kPosEntity,
                                                     transport);
  auto server = std::make_unique<vmtp::VmtpEndpoint>(sim, bank, kBankEntity,
                                                     transport);

  // The bank approves anything under 500 (request = 2-byte amount).
  server->serve([](std::span<const std::uint8_t> request,
                   const viper::Delivery&) {
    const unsigned amount = request.size() >= 2
                                ? (request[0] << 8 | request[1])
                                : 0;
    return wire::Bytes{amount < 500 ? std::uint8_t{1} : std::uint8_t{0}};
  });

  // One directory query buys routes + tokens charged to the merchant.
  dir::QueryOptions q;
  q.account = kMerchantAccount;
  q.dest_endpoint = kBankEntity;
  const auto routes =
      fabric.directory().query(fabric.id_of(pos), "auth.bank.example", q);
  const dir::IssuedRoute& route = routes.front();
  std::printf("route: %zu hops, %zu tokens minted for account %u\n",
              route.hops, route.router_ids.size(), kMerchantAccount);

  // 50 purchases, one every 2 ms.
  stats::Samples rtts;
  int approved = 0, declined = 0;
  sim::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    sim.at(i * 2 * sim::kMillisecond, [&, i] {
      const auto amount =
          static_cast<std::uint16_t>(rng.uniform_int(10, 700));
      const wire::Bytes request{static_cast<std::uint8_t>(amount >> 8),
                                static_cast<std::uint8_t>(amount)};
      client->invoke(route, kBankEntity, request, [&, i,
                                                   amount](vmtp::Result r) {
        if (!r.ok) return;
        rtts.add(sim::to_micros(r.rtt));
        const bool ok = !r.response.empty() && r.response[0] == 1;
        ok ? ++approved : ++declined;
        if (i < 3) {
          std::printf("  txn %2d: $%3u -> %s in %.1f us\n", i, amount,
                      ok ? "APPROVED" : "declined",
                      sim::to_micros(r.rtt));
        }
      });
    });
  }
  sim.run();

  std::printf("\n50 transactions: %d approved, %d declined\n", approved,
              declined);
  std::printf("rtt: mean %.1f us, p99 %.1f us (first txn pays nothing "
              "extra: optimistic token verification)\n",
              rtts.mean(), rtts.p99());

  const auto usage = fabric.ledger().usage(kMerchantAccount);
  std::printf("merchant account %u charged for %llu packets, %llu bytes "
              "across the internetwork\n",
              kMerchantAccount,
              static_cast<unsigned long long>(usage.packets),
              static_cast<unsigned long long>(usage.bytes));
  std::printf("router token caches: r1=%zu r2=%zu r3=%zu entries\n",
              r1.token_cache().size(), r2.token_cache().size(),
              r3.token_cache().size());
  return 0;
}
