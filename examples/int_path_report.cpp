// In-band path telemetry demo: the fabric stamps a fixed 36-byte record
// into the VIPER trailer at every router a *marked* packet crosses, and
// the sink's obs::PathCollector turns those records back into per-hop
// journeys — no control-plane polling, the path reports on itself.
//
//   client --- r1 --- r2 --- r3 --- server
//                            (r3 -> server link has a small MTU)
//
// Phase 1: 32 sends with 1-in-4 sampling — 8 packets carry telemetry and
// the collector reconstructs each journey: which routers, in what order,
// how long each held the packet, and how much of the end-to-end latency
// the stamps account for (the residual is wire + host time).
//
// Phase 2: one oversized forced-mark send.  The r3->server MTU cut
// slices the trailer mid-record, so the arrival no longer parses — but
// the surviving stamps act as postcards: the collector recovers the last
// whole record and localizes the damage to "after r2".
//
// Run: ./int_path_report    (self-checking; exits nonzero on mismatch)
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "directory/fabric.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "stats/registry.hpp"
#include "viper/host.hpp"

int main() {
  using namespace srp;

  sim::Simulator sim;
  dir::Fabric fabric(sim);

  auto& client = fabric.add_host("client.example");
  auto& server = fabric.add_host("server.example");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& r3 = fabric.add_router("r3");
  fabric.connect(client, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, r3);
  dir::LinkParams last;
  last.mtu = 1100;  // phase 2's oversized packet is cut on this link
  fabric.connect(r3, server, last);
  server.set_default_handler([](const viper::Delivery&) {});

  stats::Registry registry;
  obs::FlightRecorder recorder;
  fabric.enable_observability({&registry, &recorder});

  dir::PathTelemetryConfig config;
  config.sample_period = 4;  // mark 1-in-4 sends at the origin
  auto& collector = fabric.enable_path_telemetry(config);

  const auto routes =
      fabric.directory().query(fabric.id_of(client), "server.example", {});
  if (routes.empty()) {
    std::puts("error: no route to server.example");
    return 1;
  }

  // --- phase 1: sampled traffic -------------------------------------------
  constexpr int kPackets = 32;
  const wire::Bytes payload(600, 0xAB);
  for (int i = 0; i < kPackets; ++i) {
    sim.after(i * 50 * sim::kMicrosecond,
              [&] { client.send(routes.front().route, payload); });
  }
  sim.run();

  const auto& totals = collector.totals();
  std::printf("phase 1: %d sends, 1-in-%u sampled -> %llu journeys "
              "reconstructed (%llu hop stamps)\n",
              kPackets, config.sample_period,
              static_cast<unsigned long long>(totals.packets),
              static_cast<unsigned long long>(totals.hops_stamped));

  // Per-router residence time, straight from the in-band records.
  std::map<std::uint32_t, std::string> names = {
      {fabric.id_of(r1), "r1"}, {fabric.id_of(r2), "r2"},
      {fabric.id_of(r3), "r3"}};
  struct Residence {
    std::uint64_t n = 0;
    double total_us = 0.0;
  };
  std::map<std::uint32_t, Residence> residence;
  sim::Time stamped_total = 0;
  sim::Time e2e_total = 0;
  for (const auto& record : collector.records()) {
    for (const auto& hop : record.hops) {
      auto& r = residence[hop.router_id];
      ++r.n;
      r.total_us +=
          static_cast<double>(hop.depart_ps - hop.arrival_ps) / 1e6;
    }
    stamped_total += record.stamped_latency();
    e2e_total += record.delivered_at - record.sent_at;
  }
  std::puts("per-router residence (arrival -> departure, from stamps):");
  for (const auto& [id, r] : residence) {
    const auto it = names.find(id);
    std::printf("  %-3s n=%-3llu mean=%7.2f us\n",
                it == names.end() ? "?" : it->second.c_str(),
                static_cast<unsigned long long>(r.n),
                r.total_us / static_cast<double>(r.n));
  }
  std::printf("latency attribution: routers account for %.2f us of "
              "%.2f us e2e (residual %.2f us = wire + hosts)\n",
              static_cast<double>(stamped_total) / 1e6,
              static_cast<double>(e2e_total) / 1e6,
              static_cast<double>(e2e_total - stamped_total) / 1e6);

  // --- phase 2: drop localization -----------------------------------------
  const wire::Bytes big(1000, 0xCD);
  viper::SendOptions forced;
  forced.telemetry = true;  // marked regardless of the sampler
  client.send(routes.front().route, big, forced);
  sim.run();

  std::uint64_t localized_after_r2 = 0;
  for (const auto& [router, count] : collector.drops_after_router()) {
    const auto it = names.find(router);
    std::printf("phase 2: %llu damaged arrival(s) last stamped at %s — "
                "packet was hurt downstream of it\n",
                static_cast<unsigned long long>(count),
                it == names.end() ? "?" : it->second.c_str());
    if (router == fabric.id_of(r2)) localized_after_r2 = count;
  }

  // --- self-check so CI can run this as a smoke test ----------------------
  const int expected_marked = kPackets / static_cast<int>(config.sample_period);
  int int_spans = 0;
  for (const auto& span : recorder.spans()) {
    if (span.kind == obs::SpanKind::kIntHop) ++int_spans;
  }
  const auto counters = registry.full_snapshot().counters;
  const auto stamped_it = counters.find("int.path.hops_stamped");
  bool ok = true;
  if (totals.packets != static_cast<std::uint64_t>(expected_marked)) {
    std::printf("error: expected %d reconstructed journeys, got %llu\n",
                expected_marked,
                static_cast<unsigned long long>(totals.packets));
    ok = false;
  }
  if (totals.hops_stamped != static_cast<std::uint64_t>(3 * expected_marked)) {
    std::puts("error: expected 3 stamps per marked packet");
    ok = false;
  }
  if (int_spans != 3 * expected_marked) {
    std::printf("error: expected %d kIntHop spans, got %d\n",
                3 * expected_marked, int_spans);
    ok = false;
  }
  if (stamped_it == counters.end() ||
      stamped_it->second != totals.hops_stamped) {
    std::puts("error: int.path.hops_stamped counter disagrees");
    ok = false;
  }
  if (totals.drops_localized != 1 || localized_after_r2 != 1) {
    std::puts("error: the truncated packet was not localized to r2");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("ok: %llu journeys + 1 drop localized after r2 "
              "(%d kIntHop spans)\n",
              static_cast<unsigned long long>(totals.packets), int_spans);
  return 0;
}
