// Policy-based, user-controlled routing (paper §3).
//
// "A client can request and receive multiple routes to a service.  It can
// also request a route with particular properties, such as low delay, high
// bandwidth, low cost and security ... policy-based routing can be handled
// within this framework."
//
// Topology: two ways from HQ to the branch office — a fast commercial
// transit (cheap on delay, security level 1) and a slower private line
// (security level 5).  The client sends telemetry over the fast route and
// payroll over a security-constrained route; when the private line fails,
// the directory's liveness advisory plus the client cache recover.
//
// Run: ./policy_routing
#include <cstdio>

#include "directory/client.hpp"
#include "directory/fabric.hpp"

int main() {
  using namespace srp;

  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& hq = fabric.add_host("hq.corp.example");
  auto& branch = fabric.add_host("branch.corp.example");
  auto& r_hq = fabric.add_router("r-hq");
  auto& r_transit = fabric.add_router("r-transit");   // fast, insecure
  auto& r_private = fabric.add_router("r-private");   // slow, secure
  auto& r_branch = fabric.add_router("r-branch");

  dir::LinkParams fast;
  fast.prop_delay = 2 * sim::kMillisecond / 1000;  // 2 us
  fast.security = 1;
  fast.cost = 5.0;
  dir::LinkParams secure;
  secure.prop_delay = 20 * sim::kMicrosecond;
  secure.security = 5;
  secure.cost = 1.0;

  fabric.connect(hq, r_hq, secure);
  fabric.connect(r_hq, r_transit, fast);
  fabric.connect(r_transit, r_branch, fast);
  fabric.connect(r_hq, r_private, secure);
  fabric.connect(r_private, r_branch, secure);
  fabric.connect(r_branch, branch, secure);

  int delivered = 0;
  branch.set_default_handler([&](const viper::Delivery&) { ++delivered; });

  // --- 1. Low-delay route for telemetry ---
  dir::QueryOptions low_delay;
  low_delay.constraints.metric = dir::RouteMetric::kDelay;
  auto fast_routes = fabric.directory().query(
      fabric.id_of(hq), "branch.corp.example", low_delay);
  std::printf("low-delay query: %zu-hop route, one-way %.1f us, security "
              "floor %d\n",
              fast_routes[0].hops,
              sim::to_micros(fast_routes[0].propagation_delay),
              fast_routes[0].security_floor);

  // --- 2. Security-constrained route for payroll ---
  dir::QueryOptions classified;
  classified.constraints.min_security = 5;
  auto secure_routes = fabric.directory().query(
      fabric.id_of(hq), "branch.corp.example", classified);
  std::printf("min-security-5 query: %zu-hop route, one-way %.1f us, "
              "security floor %d (avoids the transit network)\n",
              secure_routes[0].hops,
              sim::to_micros(secure_routes[0].propagation_delay),
              secure_routes[0].security_floor);

  // --- 3. Low-cost route: the accountant's pick ---
  dir::QueryOptions cheap;
  cheap.constraints.metric = dir::RouteMetric::kCost;
  auto cheap_routes = fabric.directory().query(
      fabric.id_of(hq), "branch.corp.example", cheap);
  std::printf("low-cost query: cost %.1f vs %.1f for the low-delay route\n",
              cheap_routes[0].cost, fast_routes[0].cost);

  // Send payroll over the secure route.
  viper::SendOptions options;
  options.out_port = secure_routes[0].host_out_port;
  hq.send(secure_routes[0].route, wire::Bytes(256, 0x99), options);
  sim.run();
  std::printf("payroll delivered over the private line (deliveries: %d)\n\n",
              delivered);

  // --- 4. The private line fails; the advisory + re-query recover ---
  fabric.fail_link(r_hq, r_private);
  std::puts("private line failed (directory receives the liveness "
            "advisory)...");
  auto after = fabric.directory().query(fabric.id_of(hq),
                                        "branch.corp.example", classified);
  if (after.empty()) {
    std::puts("no route satisfies min-security 5 any more: the directory "
              "refuses to leak payroll onto the transit network");
  }
  dir::QueryOptions relaxed = classified;
  relaxed.constraints.min_security = 1;
  auto fallback = fabric.directory().query(fabric.id_of(hq),
                                           "branch.corp.example", relaxed);
  std::printf("relaxing to min-security 1 offers %zu route(s) (the "
              "client's policy decision, not the network's)\n",
              fallback.size());

  // --- 5. RouteCache shows cached alternates surviving a failure ---
  fabric.restore_link(r_hq, r_private);
  dir::RouteCache& cache = fabric.route_cache(hq);
  const std::optional<dir::IssuedRoute> active =
      cache.route_to("branch.corp.example");
  std::printf("\nroute cache active route: %zu hops, base rtt %.1f us\n",
              active->hops,
              sim::to_micros(cache.base_rtt("branch.corp.example")));
  cache.report_failure("branch.corp.example");
  const std::optional<dir::IssuedRoute> alt =
      cache.route_to("branch.corp.example");
  std::printf("after a reported failure the cache switched to the "
              "alternate: %zu hops, one-way %.1f us (switches: %llu)\n",
              alt->hops, sim::to_micros(alt->propagation_delay),
              static_cast<unsigned long long>(cache.stats().switches));
  return 0;
}
