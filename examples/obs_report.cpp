// Observability demo: run traffic across a 4-hop VIPER line with the
// full obs layer wired — per-hop latency histograms, token-cache
// counters, and per-packet hop tracing — then export everything:
//
//   obs_metrics.prom   Prometheus text exposition (scrape/textfile),
//   obs_metrics.json   the same snapshot as JSON,
//   obs_trace.json     Chrome trace-event JSON: open https://ui.perfetto.dev
//                      and drag the file in to see one span per router hop
//                      on every traced packet.
//
//   client --- r1 --- r2 --- r3 --- r4 --- server
//
// Run: ./obs_report        (writes the three files to the working dir)
#include <cstdio>
#include <fstream>

#include "directory/fabric.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "stats/registry.hpp"
#include "tokens/token.hpp"
#include "viper/host.hpp"

int main() {
  using namespace srp;

  sim::Simulator sim;
  dir::Fabric fabric(sim);

  // 4-hop line, with token enforcement on so the token-cache metrics and
  // span outcomes have something to show.
  auto& client = fabric.add_host("client.example");
  auto& server = fabric.add_host("server.example");
  std::vector<viper::ViperRouter*> routers;
  net::PortedNode* prev = &client;
  for (int i = 1; i <= 4; ++i) {
    auto& r = fabric.add_router("r" + std::to_string(i));
    fabric.connect(*prev, r);
    routers.push_back(&r);
    prev = &r;
  }
  fabric.connect(*prev, server);
  fabric.enable_tokens(0x0B5, /*enforce=*/true,
                       tokens::UncachedPolicy::kOptimistic);

  // Wire the whole fabric to one registry + flight recorder.
  stats::Registry registry;
  obs::FlightRecorder recorder;
  fabric.enable_observability({&registry, &recorder});

  // Traffic: a burst of packets client -> server; the server echoes the
  // first one back along the trailer's return route so the reverse
  // direction is traced too.
  int delivered = 0;
  server.set_default_handler([&](const viper::Delivery& d) {
    if (delivered++ == 0) {
      const char reply[] = "ack";
      server.reply(d, std::span(reinterpret_cast<const std::uint8_t*>(reply),
                                sizeof(reply) - 1));
    }
  });
  client.set_default_handler([](const viper::Delivery&) {});

  const auto routes =
      fabric.directory().query(fabric.id_of(client), "server.example", {});
  if (routes.empty()) {
    std::puts("error: no route to server.example");
    return 1;
  }
  const wire::Bytes payload(600, 0xAB);
  constexpr int kPackets = 64;
  for (int i = 0; i < kPackets; ++i) {
    sim.after(i * 20 * sim::kMicrosecond, [&] {
      client.send(routes.front().route, payload);
    });
  }
  sim.run();

  // --- export -------------------------------------------------------------
  const auto snapshot = registry.full_snapshot();
  const auto spans = recorder.spans();
  {
    std::ofstream out("obs_metrics.prom");
    out << obs::to_prometheus(snapshot);
  }
  {
    std::ofstream out("obs_metrics.json");
    out << obs::to_json(snapshot);
  }
  {
    std::ofstream out("obs_trace.json");
    out << obs::to_chrome_trace(spans);
  }

  // --- per-hop latency report ---------------------------------------------
  std::printf("%d/%d packets delivered; %llu spans recorded (%llu dropped)\n",
              delivered, kPackets,
              static_cast<unsigned long long>(recorder.recorded()),
              static_cast<unsigned long long>(recorder.dropped()));
  std::puts("per-hop forwarding latency (arrival -> earliest departure):");
  bool histograms_ok = true;
  for (const auto* router : routers) {
    const std::string name =
        "viper." + std::string(router->name()) + ".hop_latency_ps";
    const auto it = snapshot.histograms.find(name);
    if (it == snapshot.histograms.end() || it->second.count == 0) {
      std::printf("  %-6s MISSING\n", std::string(router->name()).c_str());
      histograms_ok = false;
      continue;
    }
    const auto& h = it->second;
    std::printf("  %-6s n=%-4llu mean=%8.2f us  p50<=%8.2f us  p99<=%8.2f us\n",
                std::string(router->name()).c_str(),
                static_cast<unsigned long long>(h.count),
                h.mean() / 1e6,
                static_cast<double>(h.p50()) / 1e6,
                static_cast<double>(h.p99()) / 1e6);
  }

  // Self-check so CI can run this as a smoke test.
  int hop_spans = 0;
  for (const auto& span : spans) {
    if (span.kind == obs::SpanKind::kHop) ++hop_spans;
  }
  if (delivered == 0 || !histograms_ok || hop_spans == 0) {
    std::puts("error: observability outputs incomplete");
    return 1;
  }
  std::printf("wrote obs_metrics.prom, obs_metrics.json, obs_trace.json "
              "(%d hop spans)\n", hop_spans);
  std::puts("view the trace: open https://ui.perfetto.dev and drag "
            "obs_trace.json in");
  return 0;
}
