// flow_top: "top" for a Sirpent fabric.  Two clients with distinct
// accounts push traffic through a shared 2-router line while the flow
// accounting plane watches every hop — per-route/per-account byte
// counters with space-saving heavy-hitter guarantees, deterministic
// 1-in-N packet sampling, and charge mirroring against the token ledger.
//
//   heavy.example (account 1001, 800 B x 96) ---+
//                                                +--- r1 --- r2 --- sinks
//   light.example (account 2002, 200 B x 24) ---+
//
// Prints the heaviest flows per router (rank, route digest, account,
// packets, bytes, share) plus the per-account reconciliation against the
// ledger, and writes:
//
//   flow_top.json       whole-fabric introspection snapshot (queues,
//                       token caches, congestion state, top flows)
//   flow_export.json    the flow plane's own export document
//   flow_records.ipfix  IPFIX-framed binary flow records for r1
//
// Deterministic: fixed seeds everywhere, so reruns are byte-identical.
// Run: ./flow_top       (exits nonzero if any invariant fails)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "directory/fabric.hpp"
#include "directory/introspect.hpp"
#include "flow/export.hpp"
#include "flow/observer.hpp"
#include "flow/plane.hpp"
#include "obs/recorder.hpp"
#include "stats/registry.hpp"
#include "tokens/token.hpp"
#include "viper/host.hpp"

int main() {
  using namespace srp;

  sim::Simulator sim;
  dir::Fabric fabric(sim);

  auto& heavy = fabric.add_host("heavy.example");
  auto& light = fabric.add_host("light.example");
  auto& sink_a = fabric.add_host("sink-a.example");
  auto& sink_b = fabric.add_host("sink-b.example");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  fabric.connect(heavy, r1);
  fabric.connect(light, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, sink_a);
  fabric.connect(r2, sink_b);

  fabric.enable_tokens(0xF101, /*enforce=*/true,
                       tokens::UncachedPolicy::kOptimistic);
  fabric.enable_congestion_control();

  // The observability stack: metrics + flight recorder + flow plane.
  stats::Registry registry;
  obs::FlightRecorder recorder;
  flow::FlowPlane plane(flow::FlowConfig{64, /*sample 1-in-*/ 16, 0x5EED});
  fabric.enable_observability({&registry, &recorder, &plane});

  sink_a.set_default_handler([](const viper::Delivery&) {});
  sink_b.set_default_handler([](const viper::Delivery&) {});

  dir::QueryOptions heavy_q;
  heavy_q.account = 1001;
  dir::QueryOptions light_q;
  light_q.account = 2002;
  const auto heavy_routes = fabric.directory().query(
      fabric.id_of(heavy), "sink-a.example", heavy_q);
  const auto light_routes = fabric.directory().query(
      fabric.id_of(light), "sink-b.example", light_q);
  if (heavy_routes.empty() || light_routes.empty()) {
    std::puts("error: route resolution failed");
    return 1;
  }

  constexpr int kHeavyPackets = 96;
  constexpr int kLightPackets = 24;
  const wire::Bytes heavy_payload(800, 0xAA);
  const wire::Bytes light_payload(200, 0xBB);
  for (int i = 0; i < kHeavyPackets; ++i) {
    sim.after(i * 25 * sim::kMicrosecond, [&] {
      heavy.send(heavy_routes.front().route, heavy_payload);
    });
  }
  for (int i = 0; i < kLightPackets; ++i) {
    sim.after(i * 100 * sim::kMicrosecond, [&] {
      light.send(light_routes.front().route, light_payload);
    });
  }
  // Congestion controllers tick forever: run a bounded window that
  // comfortably drains the traffic.
  sim.run_until(20 * sim::kMillisecond);

  // --- the "top" display ----------------------------------------------------
  bool ok = true;
  for (const auto* observer : plane.observers()) {
    const auto stats = observer->table().stats();
    std::printf("%s  flows=%zu/%zu  recorded=%llu  bytes=%llu  sampled=%llu\n",
                observer->name().c_str(), observer->table().size(),
                observer->table().capacity(),
                static_cast<unsigned long long>(stats.recorded),
                static_cast<unsigned long long>(stats.total_bytes),
                static_cast<unsigned long long>(observer->sampled()));
    std::printf("  %-4s %-18s %-8s %-4s %8s %10s %7s\n", "rank", "route",
                "account", "tos", "packets", "bytes", "share");
    int rank = 1;
    for (const auto& flow : observer->table().top(5)) {
      const double share =
          stats.total_bytes == 0
              ? 0.0
              : 100.0 * static_cast<double>(flow.bytes) /
                    static_cast<double>(stats.total_bytes);
      std::printf("  %-4d %016llx %-8u %-4u %8llu %10llu %6.1f%%\n", rank++,
                  static_cast<unsigned long long>(flow.key.route_digest),
                  flow.key.account, flow.key.tos_class,
                  static_cast<unsigned long long>(flow.packets),
                  static_cast<unsigned long long>(flow.bytes), share);
    }
    // Self-check: the heavy account dominates every shared hop.
    const auto top = observer->table().top(1);
    if (top.empty() || top.front().key.account != 1001) {
      std::printf("error: %s top flow is not the heavy account\n",
                  observer->name().c_str());
      ok = false;
    }
  }

  // --- reconciliation: flow roll-up vs the token ledger ---------------------
  std::puts("account reconciliation (flow plane vs ledger):");
  const auto rollup = plane.account_rollup();
  const auto ledger = fabric.ledger().all();
  for (const auto& [account, usage] : ledger) {
    const auto it = rollup.find(account);
    const flow::AccountCharge charge =
        it != rollup.end() ? it->second : flow::AccountCharge{};
    const bool match =
        charge.packets == usage.packets && charge.bytes == usage.bytes;
    std::printf("  account %-6u ledger %6llu pkts %9llu B | flow %6llu pkts "
                "%9llu B  %s\n",
                account, static_cast<unsigned long long>(usage.packets),
                static_cast<unsigned long long>(usage.bytes),
                static_cast<unsigned long long>(charge.packets),
                static_cast<unsigned long long>(charge.bytes),
                match ? "ok" : "MISMATCH");
    if (!match) ok = false;
  }
  if (ledger.empty()) {
    std::puts("error: ledger recorded no charges");
    ok = false;
  }

  // --- exports --------------------------------------------------------------
  obs::Introspector introspector(fabric, &plane, /*top_k=*/5);
  const std::string snapshot = introspector.snapshot_json(sim.now());
  {
    std::ofstream out("flow_top.json", std::ios::binary);
    out << snapshot;
  }
  {
    std::ofstream out("flow_export.json", std::ios::binary);
    out << flow::to_json(plane, /*top_k=*/5);
  }
  if (const auto* r1_obs = plane.observer("r1")) {
    const auto ipfix = flow::to_ipfix(r1_obs->table().all(),
                                      /*observation_domain=*/1,
                                      /*export_time_sec=*/0, /*sequence=*/0);
    std::ofstream out("flow_records.ipfix", std::ios::binary);
    out.write(reinterpret_cast<const char*>(ipfix.data()),
              static_cast<std::streamsize>(ipfix.size()));
  } else {
    std::puts("error: r1 has no flow observer");
    ok = false;
  }

  if (!ok) {
    std::puts("error: flow accounting invariants failed");
    return 1;
  }
  std::puts("wrote flow_top.json, flow_export.json, flow_records.ipfix");
  return 0;
}
