// Bounded model checking of the protocol transition cores (DESIGN.md §10).
//
//   ./mc_explore                 verify all three machines at depth 8
//   ./mc_explore --depth 10      deeper bound
//   ./mc_explore --model vmtp    one machine only
//   ./mc_explore --self-test     run every registered mutant; each must
//                                be caught with its expected invariant
//   ./mc_explore --mutant ID     explore one mutant and print its
//                                minimized counterexample JSON (this is
//                                how tests/mc_regress/*.json are frozen)
//
// Exit status: 0 = all invariants hold (or all mutants caught),
// 1 = violation found (counterexample JSON on stdout), 2 = usage error.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mc/counterexample.hpp"
#include "mc/explorer.hpp"
#include "mc/mutants.hpp"
#include "mc/throttle_model.hpp"
#include "mc/token_model.hpp"
#include "mc/vmtp_model.hpp"

namespace {

using namespace srp;

std::vector<std::unique_ptr<mc::Model>> build_models(const mc::Mutant* m) {
  std::vector<std::unique_ptr<mc::Model>> models;
  const bool vmtp_machine = m == nullptr || m->machine == "vmtp";
  const bool token_machine = m == nullptr || m->machine == "token";
  const bool throttle_machine = m == nullptr || m->machine == "throttle";
  if (vmtp_machine) {
    mc::VmtpScenario scenario;
    models.push_back(std::make_unique<mc::VmtpModel>(
        scenario, (m != nullptr && m->txn != nullptr) ? m->txn : &vmtp::txn_step,
        (m != nullptr && m->rx != nullptr) ? m->rx : &vmtp::rx_step));
  }
  if (token_machine) {
    for (const auto policy :
         {tokens::UncachedPolicy::kOptimistic, tokens::UncachedPolicy::kBlocking,
          tokens::UncachedPolicy::kDrop}) {
      mc::TokenScenario scenario;
      scenario.policy = policy;
      models.push_back(std::make_unique<mc::TokenModel>(
          scenario, (m != nullptr && m->token != nullptr) ? m->token
                                                          : &tokens::token_step));
    }
  }
  if (throttle_machine) {
    models.push_back(std::make_unique<mc::ThrottleModel>(
        mc::ThrottleScenario{}, (m != nullptr && m->throttle != nullptr)
                                    ? m->throttle
                                    : &cc::throttle_step));
  }
  return models;
}

int verify(int depth, const std::string& only) {
  bool violated = false;
  for (const auto& model : build_models(nullptr)) {
    if (!only.empty() && model->name() != only) continue;
    mc::ExplorerConfig config;
    config.max_depth = depth;
    const mc::ExploreResult result = mc::explore(*model, config);
    std::printf("model=%s depth=%d states=%zu transitions=%zu %s\n",
                model->name().c_str(), depth, result.states_visited,
                result.transitions, result.ok() ? "OK" : "VIOLATION");
    if (!result.ok()) {
      violated = true;
      const mc::Violation minimized = mc::minimize(*model, *result.violation);
      const mc::CounterExample cx = mc::make_counterexample(
          model->name(), "", minimized, result);
      std::fputs(mc::to_json(cx).c_str(), stdout);
    }
  }
  return violated ? 1 : 0;
}

int counterexample_for(const std::string& id, int depth) {
  const mc::Mutant& m = mc::mutant(id);
  for (const auto& model : build_models(&m)) {
    mc::ExplorerConfig config;
    config.max_depth = depth;
    const mc::ExploreResult result = mc::explore(*model, config);
    if (result.ok()) continue;
    const mc::Violation minimized = mc::minimize(*model, *result.violation);
    const mc::CounterExample cx =
        mc::make_counterexample(model->name(), m.id, minimized, result);
    std::fputs(mc::to_json(cx).c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "mutant %s not caught at depth %d\n", id.c_str(),
               depth);
  return 1;
}

int self_test(int depth) {
  int caught = 0;
  int missed = 0;
  for (const mc::Mutant& m : mc::all_mutants()) {
    bool hit = false;
    std::string found;
    for (const auto& model : build_models(&m)) {
      mc::ExplorerConfig config;
      config.max_depth = depth;
      const mc::ExploreResult result = mc::explore(*model, config);
      if (!result.ok()) {
        hit = true;
        found = result.violation->invariant;
        break;
      }
    }
    const bool expected = hit && found == m.expect_invariant;
    std::printf("mutant=%-26s %s (%s)\n", m.id.c_str(),
                expected ? "caught" : "MISSED",
                hit ? found.c_str() : "no violation");
    if (expected) {
      ++caught;
    } else {
      ++missed;
    }
  }
  std::printf("self-test: %d caught, %d missed\n", caught, missed);
  return missed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int depth = 8;
  std::string only;
  std::string mutant_id;
  bool run_self_test = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc) {
      depth = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--mutant") == 0 && i + 1 < argc) {
      mutant_id = argv[++i];
    } else if (std::strcmp(argv[i], "--self-test") == 0) {
      run_self_test = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--depth N] [--model vmtp|token|throttle] "
                   "[--mutant ID] [--self-test]\n",
                   argv[0]);
      return 2;
    }
  }
  if (depth <= 0) {
    std::fprintf(stderr, "--depth must be positive\n");
    return 2;
  }
  if (!mutant_id.empty()) return counterexample_for(mutant_id, depth);
  return run_self_test ? self_test(depth) : verify(depth, only);
}
