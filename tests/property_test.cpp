// Property-based tests over whole internetworks.
//
//  * Random connected topologies: every directory-issued route delivers,
//    and its trailer-reversed return route delivers back (the paper's core
//    invariant, checked across many shapes and seeds).
//  * Corruption fuzz: byte-flipped packets never crash anything; they are
//    dropped at a router (malformed / bad port) or rejected by the
//    transport checksum, and every loss is visible in a counter.
//  * Route reversal round trips across random chains with random
//    priorities and payloads.
//  * Fault-lane composition: (corrupt ∘ duplicate ∘ reorder) may damage,
//    repeat or delay packets but never invents bytes from thin air.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <optional>

#include "core/trailer.hpp"
#include "directory/fabric.hpp"
#include "fault/engine.hpp"
#include "obs/telemetry.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "transport/header.hpp"
#include "viper/codec.hpp"

namespace srp {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;
using test::RandomNet;

class RandomTopologyProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyProperty, EveryIssuedRouteDeliversAndReverses) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed * 31 + 7);
  RandomNet net(seed, 3 + static_cast<int>(seed % 8));

  // Try several random host pairs.
  for (int trial = 0; trial < 5; ++trial) {
    const auto from = rng.uniform_int(0, net.hosts.size() - 1);
    const auto to = rng.uniform_int(0, net.hosts.size() - 1);
    if (from == to) continue;
    viper::ViperHost& src = *net.hosts[from];
    viper::ViperHost& dst = *net.hosts[to];

    const auto routes = net.fabric.directory().query(
        net.fabric.id_of(src), std::string(dst.name()), {});
    ASSERT_FALSE(routes.empty())
        << "seed " << seed << ": no route " << from << "->" << to;
    const auto& route = routes.front();

    std::optional<viper::Delivery> delivered;
    dst.set_default_handler(
        [&](const viper::Delivery& d) { delivered = d; });
    std::optional<viper::Delivery> replied;
    src.set_default_handler(
        [&](const viper::Delivery& d) { replied = d; });

    const wire::Bytes payload =
        pattern_bytes(1 + rng.uniform_int(0, 900),
                      static_cast<std::uint8_t>(trial + 1));
    viper::SendOptions options;
    options.out_port = route.host_out_port;
    options.link = route.first_hop_link;
    src.send(route.route, payload, options);
    net.sim.run();

    ASSERT_TRUE(delivered.has_value()) << "seed " << seed;
    EXPECT_EQ(delivered->data, payload);
    EXPECT_EQ(delivered->hops, route.hops);
    // Return route: one segment per router traversed plus the local one.
    EXPECT_EQ(delivered->return_route.segments.size(), route.hops + 1);

    dst.reply(*delivered, pattern_bytes(17));
    net.sim.run();
    ASSERT_TRUE(replied.has_value()) << "seed " << seed;
    EXPECT_EQ(replied->data, pattern_bytes(17));
    EXPECT_EQ(replied->hops, route.hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

class CorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionFuzz, FlippedBytesNeverCrashAndAreAccounted) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.fuzz");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& dst = fabric.add_host("dst.fuzz");
  fabric.connect(src, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, dst);

  int handled = 0;
  dst.set_default_handler([&](const viper::Delivery&) { ++handled; });

  core::SourceRoute route;
  route.segments = {p2p_segment(2), p2p_segment(2), local_segment()};

  const int kPackets = 60;
  for (int i = 0; i < kPackets; ++i) {
    // Build a legitimate packet, then flip 1..4 random bytes anywhere.
    wire::Bytes image =
        viper::encode_packet(route, pattern_bytes(64, std::uint8_t(i)));
    const auto flips = rng.uniform_int(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      image[rng.uniform_int(0, image.size() - 1)] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    }
    auto packet =
        fabric.network().packets().make(std::move(image), sim.now());
    src.port(1).enqueue(std::move(packet), net::TxMeta{}, 0);
  }
  sim.run();  // must terminate: no crash, no infinite loop

  // Every packet is accounted for: delivered somewhere, or dropped with a
  // counter, or misdelivered back to a host.
  const auto& s1 = r1.stats();
  const auto& s2 = r2.stats();
  const std::uint64_t dropped =
      s1.dropped_malformed + s1.dropped_no_port + s2.dropped_malformed +
      s2.dropped_no_port + dst.stats().dropped_malformed +
      dst.stats().misrouted + src.stats().dropped_malformed +
      src.stats().misrouted + src.stats().delivered +
      s1.delivered_control + s2.delivered_control;
  // Corrupted port fields may bounce packets anywhere (including back to
  // src, or to dst with altered content) — the invariant is conservation:
  EXPECT_GE(static_cast<std::uint64_t>(handled) + dropped +
                dst.stats().delivered,
            1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Range<std::uint64_t>(100, 120));

class TransportCorruptionFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportCorruptionFuzz, ChecksumCatchesEveryFlip) {
  // Paper §4.1: with no network checksum the transport must detect damage.
  sim::Rng rng(GetParam());
  vmtp::Header h;
  h.src_entity = rng.next_u64();
  h.dst_entity = rng.next_u64();
  h.transaction = static_cast<std::uint32_t>(rng.next_u64());
  h.type = vmtp::PacketType::kRequest;
  h.group_size = static_cast<std::uint8_t>(1 + rng.uniform_int(0, 15));
  h.index = static_cast<std::uint8_t>(
      rng.uniform_int(0, h.group_size - 1));
  h.timestamp = static_cast<std::uint32_t>(rng.next_u64());
  const wire::Bytes payload = pattern_bytes(rng.uniform_int(0, 200));
  wire::Bytes packet = vmtp::encode_transport_packet(h, payload);
  ASSERT_TRUE(vmtp::decode_transport_packet(packet).has_value());
  for (int i = 0; i < 32; ++i) {
    wire::Bytes bad = packet;
    bad[rng.uniform_int(0, bad.size() - 1)] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    const auto view = vmtp::decode_transport_packet(bad);
    // A single byte flip must be caught (Internet checksum catches all
    // single-word errors) unless the flip missed the packet semantics
    // entirely — it cannot silently produce the original header.
    if (view.has_value()) {
      EXPECT_FALSE(view->header == h && wire::Bytes(view->payload.begin(),
                                                    view->payload.end()) ==
                                            payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportCorruptionFuzz,
                         ::testing::Range<std::uint64_t>(500, 515));

class ChainReversalProperty
    : public ::testing::TestWithParam<int> {};

TEST_P(ChainReversalProperty, ReplyAlwaysReturnsAcrossNHops) {
  const int hops = GetParam();
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  test::Line line = test::build_line(fabric, hops, "src.chain", "dst.chain");
  viper::ViperHost& src = *line.src;
  viper::ViperHost& dst = *line.dst;
  const core::SourceRoute route = test::line_route(hops);

  std::optional<viper::Delivery> there, back;
  dst.set_default_handler([&](const viper::Delivery& d) { there = d; });
  src.set_default_handler([&](const viper::Delivery& d) { back = d; });
  src.send(route, pattern_bytes(100));
  sim.run();
  ASSERT_TRUE(there.has_value()) << hops << " hops";
  EXPECT_EQ(there->hops, static_cast<std::uint32_t>(hops));
  dst.reply(*there, pattern_bytes(33));
  sim.run();
  ASSERT_TRUE(back.has_value()) << hops << " hops";
  EXPECT_EQ(back->data, pattern_bytes(33));
  // And the reply's own return route leads out again: reverse symmetry.
  EXPECT_EQ(back->return_route.segments.size(),
            static_cast<std::size_t>(hops) + 1);
}

INSTANTIATE_TEST_SUITE_P(Hops, ChainReversalProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 47));

class TrailerReversalProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

/// A randomized but *encodable* trailer segment: when VNT is set on a
/// legal segment the decoder discards port_info, so real trailer entries
/// (and this generator) keep it empty there — the in-place reversal is
/// byte-preserving regardless; this just keeps the decoded-segment
/// cross-check lossless too.
core::HeaderSegment random_trailer_segment(sim::Rng& rng) {
  core::HeaderSegment seg;
  seg.port = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  seg.tos.priority = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
  seg.flags.vnt = rng.uniform_int(0, 1) == 1;
  seg.flags.dib = rng.uniform_int(0, 1) == 1;
  // The decoder mirrors the DIB flag into tos.drop_if_blocked; keep the
  // generated segment consistent so decode(encode(seg)) == seg.
  seg.tos.drop_if_blocked = seg.flags.dib;
  seg.flags.rpf = rng.uniform_int(0, 1) == 1;
  seg.flags.trm = rng.uniform_int(0, 9) == 0;  // occasional TRM mark
  // Mostly short fields; occasionally >254 bytes to force the 32-bit
  // length escape (a different wire size for the same field count).
  const auto field_len = [&rng]() -> std::size_t {
    return rng.uniform_int(0, 19) == 0 ? 255 + rng.uniform_int(0, 40)
                                       : rng.uniform_int(0, 10);
  };
  seg.token = pattern_bytes(field_len(),
                            static_cast<std::uint8_t>(rng.uniform_int(1, 200)));
  if (!(seg.flags.vnt && !seg.flags.trm)) {
    seg.port_info = pattern_bytes(
        field_len(), static_cast<std::uint8_t>(rng.uniform_int(1, 200)));
  }
  return seg;
}

TEST_P(TrailerReversalProperty, InPlaceReversalMatchesCopyReference) {
  sim::Rng rng(GetParam() * 0x9E37 + 1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::vector<core::HeaderSegment> segments;
    std::vector<std::size_t> sizes;
    wire::Writer w;
    for (std::size_t i = 0; i < n; ++i) {
      segments.push_back(random_trailer_segment(rng));
      sizes.push_back(viper::segment_wire_size(segments.back()));
      viper::encode_segment(w, segments.back());
    }
    const wire::Bytes original = std::move(w).take();

    // Copy-based reference: slice the buffer into records by the encoded
    // sizes of the *original* segments (independent of the view decoder),
    // then concatenate the slices in reverse order.
    wire::Bytes reference;
    std::vector<std::pair<std::size_t, std::size_t>> records;
    std::size_t offset = 0;
    for (const std::size_t size : sizes) {
      records.emplace_back(offset, size);
      offset += size;
    }
    ASSERT_EQ(offset, original.size());
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      reference.insert(reference.end(),
                       original.begin() + static_cast<std::ptrdiff_t>(it->first),
                       original.begin() +
                           static_cast<std::ptrdiff_t>(it->first + it->second));
    }

    wire::Bytes in_place = original;
    ASSERT_TRUE(viper::reverse_trailer_in_place(in_place)) << "trial "
                                                           << trial;
    EXPECT_EQ(in_place, reference) << "trial " << trial;

    // The decoded segment list is the exact reverse of the original's.
    wire::Reader r(in_place);
    const auto decoded = viper::decode_segments(r);
    ASSERT_EQ(decoded.size(), segments.size());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i], segments[segments.size() - 1 - i])
          << "trial " << trial << " segment " << i;
    }

    // Reversal is an involution: a second pass restores the original.
    ASSERT_TRUE(viper::reverse_trailer_in_place(in_place));
    EXPECT_EQ(in_place, original) << "trial " << trial;
  }
}

TEST_P(TrailerReversalProperty, MalformedTrailersAreLeftUntouched) {
  sim::Rng rng(GetParam() * 0xB5 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    wire::Writer w;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 6));
    for (std::size_t i = 0; i < n; ++i) {
      viper::encode_segment(w, random_trailer_segment(rng));
    }
    wire::Bytes bytes = std::move(w).take();
    // Chop mid-segment: no whole-number-of-segments parse exists (a
    // truncated final segment either under-runs its length fields or the
    // fixed prefix).
    bytes.resize(bytes.size() -
                 static_cast<std::size_t>(rng.uniform_int(
                     1, static_cast<std::uint64_t>(
                            std::min<std::size_t>(3, bytes.size() - 1)))));
    const wire::Bytes before = bytes;
    EXPECT_FALSE(viper::reverse_trailer_in_place(bytes));
    EXPECT_EQ(bytes, before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrailerReversalProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

class TelemetryReversalProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

/// A random telemetry record as a router would stamp it.
obs::HopTelemetry random_hop_telemetry(sim::Rng& rng, std::uint8_t hop) {
  obs::HopTelemetry t;
  t.router_id = static_cast<std::uint32_t>(rng.next_u64());
  t.hop = hop;
  t.egress_port = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  t.token = static_cast<obs::TokenOutcome>(rng.uniform_int(
      0, static_cast<std::uint64_t>(obs::TokenOutcome::kRejected)));
  t.cut_through = rng.uniform_int(0, 1) == 1;
  t.egress_down = rng.uniform_int(0, 1) == 1;
  t.arrival_ps = rng.next_u64() >> 1;
  t.depart_ps = t.arrival_ps + rng.uniform_int(0, 1'000'000);
  t.queue_wait_ps = static_cast<std::uint32_t>(rng.next_u64());
  t.queue_depth = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  t.in_port = static_cast<std::uint16_t>(rng.uniform_int(1, 255));
  return t;
}

/// Appends the wire pseudo-segment for @p t, exactly as stamp_telemetry
/// does on the forward path.
void append_telemetry_record(wire::Bytes& out, const obs::HopTelemetry& t) {
  std::array<std::uint8_t, obs::kHopTelemetryWire> payload{};
  t.encode(payload);
  core::SegmentFlags flags;
  flags.trm = true;
  viper::append_segment_raw(out, core::kTelemetryPort, core::TypeOfService{},
                            flags, {}, payload);
}

TEST_P(TelemetryReversalProperty, ReversalPreservesRecordsAndHopOrder) {
  // A realistic mixed trailer — return entries interleaved with telemetry
  // records — survives the batched plane's in-place reversal: every record
  // still decodes, and sorting by hop number (what the sink host does)
  // reconstructs the identical path from either trailer orientation.
  sim::Rng rng(GetParam() * 0x51A3 + 9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto hops = static_cast<std::uint8_t>(rng.uniform_int(1, 12));
    std::vector<obs::HopTelemetry> stamped;
    wire::Bytes trailer;
    for (std::uint8_t h = 0; h < hops; ++h) {
      // The hop's reversed return entry, then (sometimes) its stamp — a
      // sampled packet is stamped at every hop, but corruption-dropped
      // records mean the sink cannot rely on that.
      wire::Writer w;
      viper::encode_segment(w, random_trailer_segment(rng));
      const wire::Bytes entry = std::move(w).take();
      trailer.insert(trailer.end(), entry.begin(), entry.end());
      if (rng.uniform_int(0, 4) != 0) {
        stamped.push_back(random_hop_telemetry(rng, h));
        append_telemetry_record(trailer, stamped.back());
      }
    }

    wire::Bytes reversed = trailer;
    ASSERT_TRUE(viper::reverse_trailer_in_place(reversed)) << "trial "
                                                           << trial;

    // Decode both orientations and extract the telemetry records the way
    // the host does (classify, then decode each payload, then hop-sort).
    const auto extract = [](const wire::Bytes& bytes) {
      wire::Reader r(bytes);
      core::TrailerInfo info =
          core::classify_trailer(viper::decode_segments(r));
      std::vector<obs::HopTelemetry> path;
      for (const core::HeaderSegment& rec : info.telemetry) {
        const auto hop = obs::decode_hop_telemetry(rec.port_info);
        EXPECT_TRUE(hop.has_value());
        if (hop.has_value()) path.push_back(*hop);
      }
      std::sort(path.begin(), path.end(),
                [](const obs::HopTelemetry& a, const obs::HopTelemetry& b) {
                  return a.hop < b.hop;
                });
      return path;
    };
    const auto forward_path = extract(trailer);
    const auto reversed_path = extract(reversed);
    ASSERT_EQ(forward_path.size(), stamped.size()) << "trial " << trial;
    EXPECT_EQ(forward_path, stamped) << "trial " << trial;
    EXPECT_EQ(reversed_path, stamped) << "trial " << trial;

    // Involution, with records present: a second reversal restores the
    // original bytes.
    ASSERT_TRUE(viper::reverse_trailer_in_place(reversed));
    EXPECT_EQ(reversed, trailer) << "trial " << trial;
  }
}

TEST_P(TelemetryReversalProperty, SlicedRecordLeavesTrailerUntouched) {
  // An MTU cut through the newest record makes the trailer unparseable as
  // whole segments; the in-place pass must refuse and leave every byte
  // alone (the host then falls back to the reference path byte-identically).
  sim::Rng rng(GetParam() * 0x77F + 5);
  for (int trial = 0; trial < 20; ++trial) {
    wire::Bytes trailer;
    const auto hops = static_cast<std::uint8_t>(rng.uniform_int(1, 6));
    for (std::uint8_t h = 0; h < hops; ++h) {
      wire::Writer w;
      viper::encode_segment(w, random_trailer_segment(rng));
      const wire::Bytes entry = std::move(w).take();
      trailer.insert(trailer.end(), entry.begin(), entry.end());
      append_telemetry_record(trailer, random_hop_telemetry(rng, h));
    }
    // Slice 1..35 bytes off the final record: partial payload or partial
    // prefix, never a whole-segment boundary.
    trailer.resize(trailer.size() -
                   static_cast<std::size_t>(rng.uniform_int(1, 35)));
    const wire::Bytes before = trailer;
    EXPECT_FALSE(viper::reverse_trailer_in_place(trailer)) << "trial "
                                                           << trial;
    EXPECT_EQ(trailer, before) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TelemetryReversalProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

class FaultCompositionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultCompositionProperty, LanesNeverCreateBytesFromThinAir) {
  // The composed perturbation (corrupt ∘ duplicate ∘ reorder ∘ jitter) is
  // conservative at the link layer: every delivered packet descends from
  // an injected one (same id, same length), ids are repeated at most once
  // per counted duplication, and with no drop lane nothing vanishes.
  const std::uint64_t seed = GetParam();
  sim::Simulator sim;
  net::Network net(sim);
  net::PacketFactory packets;
  auto& a = net.add<test::SinkNode>("a");
  auto& b = net.add<test::SinkNode>("b");
  const auto [pa, pb] =
      net.duplex(a, b, net::LinkConfig{1e9, 5 * sim::kMicrosecond, 1500});
  (void)pb;

  fault::FaultPlan plan;
  plan.seed = seed;
  fault::LaneConfig& lane = plan.lane(a.port(pa).name());
  lane.corrupt_rate = 0.3;
  lane.duplicate_rate = 0.3;
  lane.reorder_rate = 0.3;
  lane.jitter_rate = 0.3;
  stats::Registry registry;
  fault::FaultEngine engine(sim, plan, registry);
  engine.attach(a.port(pa));

  // Inject packets whose id -> size map is the ground truth.
  std::map<std::uint64_t, std::size_t> injected;
  sim::Rng rng(seed * 977 + 5);
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    const std::size_t size = 40 + rng.uniform_int(0, 1200);
    auto packet = packets.make(pattern_bytes(size, std::uint8_t(i)),
                               sim.now());
    injected[packet->id] = size;
    sim.at(static_cast<sim::Time>(i) * 2 * sim::kMicrosecond,
           [&a, pa, p = std::move(packet)]() mutable {
             a.port(pa).enqueue(std::move(p), net::TxMeta{}, 0);
           });
  }
  sim.run();

  const std::string target = a.port(pa).name();
  std::map<std::uint64_t, int> seen;
  for (const net::Arrival& arrival : b.arrivals) {
    auto it = injected.find(arrival.packet->id);
    ASSERT_NE(it, injected.end())
        << "seed " << seed << ": delivered id " << arrival.packet->id
        << " was never injected";
    EXPECT_EQ(arrival.packet->size(), it->second)
        << "seed " << seed << ": fault lanes changed a packet's length";
    ++seen[arrival.packet->id];
  }
  // No drop/flap lane: everything injected arrives, plus exactly the
  // counted duplicates — conservation in both directions.
  EXPECT_EQ(b.arrivals.size(),
            kPackets + engine.count(target, "duplicate"));
  std::uint64_t repeats = 0;
  for (const auto& [id, n] : seen) {
    repeats += static_cast<std::uint64_t>(n - 1);
  }
  EXPECT_EQ(repeats, engine.count(target, "duplicate"));
  // The lanes demonstrably fired under these rates.
  EXPECT_GT(engine.count(target, "corrupt"), 0u);
  EXPECT_GT(engine.count(target, "duplicate"), 0u);
  EXPECT_GT(engine.count(target, "reorder"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCompositionProperty,
                         ::testing::Range<std::uint64_t>(700, 712));

}  // namespace
}  // namespace srp
