// Property-based tests over whole internetworks.
//
//  * Random connected topologies: every directory-issued route delivers,
//    and its trailer-reversed return route delivers back (the paper's core
//    invariant, checked across many shapes and seeds).
//  * Corruption fuzz: byte-flipped packets never crash anything; they are
//    dropped at a router (malformed / bad port) or rejected by the
//    transport checksum, and every loss is visible in a counter.
//  * Route reversal round trips across random chains with random
//    priorities and payloads.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "directory/fabric.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "transport/header.hpp"

namespace srp {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;

/// Builds a random connected internetwork: a router spanning tree plus
/// extra chords, with one host per router.
struct RandomNet {
  sim::Simulator sim;
  dir::Fabric fabric{sim};
  std::vector<viper::ViperRouter*> routers;
  std::vector<viper::ViperHost*> hosts;

  RandomNet(std::uint64_t seed, int n_routers) {
    sim::Rng rng(seed);
    for (int i = 0; i < n_routers; ++i) {
      routers.push_back(&fabric.add_router("r" + std::to_string(i)));
      if (i > 0) {
        // Spanning tree: attach to a random earlier router.
        const auto parent = rng.uniform_int(0, static_cast<std::uint64_t>(
                                                   i - 1));
        dir::LinkParams params;
        params.prop_delay =
            static_cast<sim::Time>(rng.uniform_int(1, 50)) *
            sim::kMicrosecond;
        fabric.connect(*routers[static_cast<std::size_t>(parent)],
                       *routers[static_cast<std::size_t>(i)], params);
      }
    }
    // A few chords for path diversity.
    const int chords = n_routers / 2;
    for (int c = 0; c < chords; ++c) {
      const auto a = rng.uniform_int(0, static_cast<std::uint64_t>(
                                            n_routers - 1));
      const auto b = rng.uniform_int(0, static_cast<std::uint64_t>(
                                            n_routers - 1));
      if (a == b) continue;
      dir::LinkParams params;
      params.prop_delay = static_cast<sim::Time>(rng.uniform_int(1, 50)) *
                          sim::kMicrosecond;
      fabric.connect(*routers[a], *routers[b], params);
    }
    for (int i = 0; i < n_routers; ++i) {
      auto& h = fabric.add_host("h" + std::to_string(i) + ".prop");
      fabric.connect(h, *routers[static_cast<std::size_t>(i)]);
      hosts.push_back(&h);
    }
  }
};

class RandomTopologyProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyProperty, EveryIssuedRouteDeliversAndReverses) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed * 31 + 7);
  RandomNet net(seed, 3 + static_cast<int>(seed % 8));

  // Try several random host pairs.
  for (int trial = 0; trial < 5; ++trial) {
    const auto from = rng.uniform_int(0, net.hosts.size() - 1);
    const auto to = rng.uniform_int(0, net.hosts.size() - 1);
    if (from == to) continue;
    viper::ViperHost& src = *net.hosts[from];
    viper::ViperHost& dst = *net.hosts[to];

    const auto routes = net.fabric.directory().query(
        net.fabric.id_of(src), std::string(dst.name()), {});
    ASSERT_FALSE(routes.empty())
        << "seed " << seed << ": no route " << from << "->" << to;
    const auto& route = routes.front();

    std::optional<viper::Delivery> delivered;
    dst.set_default_handler(
        [&](const viper::Delivery& d) { delivered = d; });
    std::optional<viper::Delivery> replied;
    src.set_default_handler(
        [&](const viper::Delivery& d) { replied = d; });

    const wire::Bytes payload =
        pattern_bytes(1 + rng.uniform_int(0, 900),
                      static_cast<std::uint8_t>(trial + 1));
    viper::SendOptions options;
    options.out_port = route.host_out_port;
    options.link = route.first_hop_link;
    src.send(route.route, payload, options);
    net.sim.run();

    ASSERT_TRUE(delivered.has_value()) << "seed " << seed;
    EXPECT_EQ(delivered->data, payload);
    EXPECT_EQ(delivered->hops, route.hops);
    // Return route: one segment per router traversed plus the local one.
    EXPECT_EQ(delivered->return_route.segments.size(), route.hops + 1);

    dst.reply(*delivered, pattern_bytes(17));
    net.sim.run();
    ASSERT_TRUE(replied.has_value()) << "seed " << seed;
    EXPECT_EQ(replied->data, pattern_bytes(17));
    EXPECT_EQ(replied->hops, route.hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

class CorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionFuzz, FlippedBytesNeverCrashAndAreAccounted) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.fuzz");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& dst = fabric.add_host("dst.fuzz");
  fabric.connect(src, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, dst);

  int handled = 0;
  dst.set_default_handler([&](const viper::Delivery&) { ++handled; });

  core::SourceRoute route;
  route.segments = {p2p_segment(2), p2p_segment(2), local_segment()};

  const int kPackets = 60;
  for (int i = 0; i < kPackets; ++i) {
    // Build a legitimate packet, then flip 1..4 random bytes anywhere.
    wire::Bytes image =
        viper::encode_packet(route, pattern_bytes(64, std::uint8_t(i)));
    const auto flips = rng.uniform_int(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      image[rng.uniform_int(0, image.size() - 1)] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    }
    auto packet =
        fabric.network().packets().make(std::move(image), sim.now());
    src.port(1).enqueue(std::move(packet), net::TxMeta{}, 0);
  }
  sim.run();  // must terminate: no crash, no infinite loop

  // Every packet is accounted for: delivered somewhere, or dropped with a
  // counter, or misdelivered back to a host.
  const auto& s1 = r1.stats();
  const auto& s2 = r2.stats();
  const std::uint64_t dropped =
      s1.dropped_malformed + s1.dropped_no_port + s2.dropped_malformed +
      s2.dropped_no_port + dst.stats().dropped_malformed +
      dst.stats().misrouted + src.stats().dropped_malformed +
      src.stats().misrouted + src.stats().delivered +
      s1.delivered_control + s2.delivered_control;
  // Corrupted port fields may bounce packets anywhere (including back to
  // src, or to dst with altered content) — the invariant is conservation:
  EXPECT_GE(static_cast<std::uint64_t>(handled) + dropped +
                dst.stats().delivered,
            1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Range<std::uint64_t>(100, 120));

class TransportCorruptionFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportCorruptionFuzz, ChecksumCatchesEveryFlip) {
  // Paper §4.1: with no network checksum the transport must detect damage.
  sim::Rng rng(GetParam());
  vmtp::Header h;
  h.src_entity = rng.next_u64();
  h.dst_entity = rng.next_u64();
  h.transaction = static_cast<std::uint32_t>(rng.next_u64());
  h.type = vmtp::PacketType::kRequest;
  h.group_size = static_cast<std::uint8_t>(1 + rng.uniform_int(0, 15));
  h.index = static_cast<std::uint8_t>(
      rng.uniform_int(0, h.group_size - 1));
  h.timestamp = static_cast<std::uint32_t>(rng.next_u64());
  const wire::Bytes payload = pattern_bytes(rng.uniform_int(0, 200));
  wire::Bytes packet = vmtp::encode_transport_packet(h, payload);
  ASSERT_TRUE(vmtp::decode_transport_packet(packet).has_value());
  for (int i = 0; i < 32; ++i) {
    wire::Bytes bad = packet;
    bad[rng.uniform_int(0, bad.size() - 1)] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    const auto view = vmtp::decode_transport_packet(bad);
    // A single byte flip must be caught (Internet checksum catches all
    // single-word errors) unless the flip missed the packet semantics
    // entirely — it cannot silently produce the original header.
    if (view.has_value()) {
      EXPECT_FALSE(view->header == h && wire::Bytes(view->payload.begin(),
                                                    view->payload.end()) ==
                                            payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportCorruptionFuzz,
                         ::testing::Range<std::uint64_t>(500, 515));

class ChainReversalProperty
    : public ::testing::TestWithParam<int> {};

TEST_P(ChainReversalProperty, ReplyAlwaysReturnsAcrossNHops) {
  const int hops = GetParam();
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.chain");
  net::PortedNode* prev = &src;
  std::vector<viper::ViperRouter*> routers;
  for (int i = 0; i < hops; ++i) {
    auto& r = fabric.add_router("r" + std::to_string(i));
    fabric.connect(*prev, r);
    routers.push_back(&r);
    prev = &r;
  }
  auto& dst = fabric.add_host("dst.chain");
  fabric.connect(*prev, dst);

  core::SourceRoute route;
  for (int i = 0; i < hops; ++i) route.segments.push_back(p2p_segment(2));
  route.segments.push_back(local_segment());

  std::optional<viper::Delivery> there, back;
  dst.set_default_handler([&](const viper::Delivery& d) { there = d; });
  src.set_default_handler([&](const viper::Delivery& d) { back = d; });
  src.send(route, pattern_bytes(100));
  sim.run();
  ASSERT_TRUE(there.has_value()) << hops << " hops";
  EXPECT_EQ(there->hops, static_cast<std::uint32_t>(hops));
  dst.reply(*there, pattern_bytes(33));
  sim.run();
  ASSERT_TRUE(back.has_value()) << hops << " hops";
  EXPECT_EQ(back->data, pattern_bytes(33));
  // And the reply's own return route leads out again: reverse symmetry.
  EXPECT_EQ(back->return_route.segments.size(),
            static_cast<std::size_t>(hops) + 1);
}

INSTANTIATE_TEST_SUITE_P(Hops, ChainReversalProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 47));

}  // namespace
}  // namespace srp
