// Property-based tests over whole internetworks.
//
//  * Random connected topologies: every directory-issued route delivers,
//    and its trailer-reversed return route delivers back (the paper's core
//    invariant, checked across many shapes and seeds).
//  * Corruption fuzz: byte-flipped packets never crash anything; they are
//    dropped at a router (malformed / bad port) or rejected by the
//    transport checksum, and every loss is visible in a counter.
//  * Route reversal round trips across random chains with random
//    priorities and payloads.
//  * Fault-lane composition: (corrupt ∘ duplicate ∘ reorder) may damage,
//    repeat or delay packets but never invents bytes from thin air.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "directory/fabric.hpp"
#include "fault/engine.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "transport/header.hpp"

namespace srp {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;
using test::RandomNet;

class RandomTopologyProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyProperty, EveryIssuedRouteDeliversAndReverses) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed * 31 + 7);
  RandomNet net(seed, 3 + static_cast<int>(seed % 8));

  // Try several random host pairs.
  for (int trial = 0; trial < 5; ++trial) {
    const auto from = rng.uniform_int(0, net.hosts.size() - 1);
    const auto to = rng.uniform_int(0, net.hosts.size() - 1);
    if (from == to) continue;
    viper::ViperHost& src = *net.hosts[from];
    viper::ViperHost& dst = *net.hosts[to];

    const auto routes = net.fabric.directory().query(
        net.fabric.id_of(src), std::string(dst.name()), {});
    ASSERT_FALSE(routes.empty())
        << "seed " << seed << ": no route " << from << "->" << to;
    const auto& route = routes.front();

    std::optional<viper::Delivery> delivered;
    dst.set_default_handler(
        [&](const viper::Delivery& d) { delivered = d; });
    std::optional<viper::Delivery> replied;
    src.set_default_handler(
        [&](const viper::Delivery& d) { replied = d; });

    const wire::Bytes payload =
        pattern_bytes(1 + rng.uniform_int(0, 900),
                      static_cast<std::uint8_t>(trial + 1));
    viper::SendOptions options;
    options.out_port = route.host_out_port;
    options.link = route.first_hop_link;
    src.send(route.route, payload, options);
    net.sim.run();

    ASSERT_TRUE(delivered.has_value()) << "seed " << seed;
    EXPECT_EQ(delivered->data, payload);
    EXPECT_EQ(delivered->hops, route.hops);
    // Return route: one segment per router traversed plus the local one.
    EXPECT_EQ(delivered->return_route.segments.size(), route.hops + 1);

    dst.reply(*delivered, pattern_bytes(17));
    net.sim.run();
    ASSERT_TRUE(replied.has_value()) << "seed " << seed;
    EXPECT_EQ(replied->data, pattern_bytes(17));
    EXPECT_EQ(replied->hops, route.hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

class CorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionFuzz, FlippedBytesNeverCrashAndAreAccounted) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.fuzz");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& dst = fabric.add_host("dst.fuzz");
  fabric.connect(src, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, dst);

  int handled = 0;
  dst.set_default_handler([&](const viper::Delivery&) { ++handled; });

  core::SourceRoute route;
  route.segments = {p2p_segment(2), p2p_segment(2), local_segment()};

  const int kPackets = 60;
  for (int i = 0; i < kPackets; ++i) {
    // Build a legitimate packet, then flip 1..4 random bytes anywhere.
    wire::Bytes image =
        viper::encode_packet(route, pattern_bytes(64, std::uint8_t(i)));
    const auto flips = rng.uniform_int(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      image[rng.uniform_int(0, image.size() - 1)] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    }
    auto packet =
        fabric.network().packets().make(std::move(image), sim.now());
    src.port(1).enqueue(std::move(packet), net::TxMeta{}, 0);
  }
  sim.run();  // must terminate: no crash, no infinite loop

  // Every packet is accounted for: delivered somewhere, or dropped with a
  // counter, or misdelivered back to a host.
  const auto& s1 = r1.stats();
  const auto& s2 = r2.stats();
  const std::uint64_t dropped =
      s1.dropped_malformed + s1.dropped_no_port + s2.dropped_malformed +
      s2.dropped_no_port + dst.stats().dropped_malformed +
      dst.stats().misrouted + src.stats().dropped_malformed +
      src.stats().misrouted + src.stats().delivered +
      s1.delivered_control + s2.delivered_control;
  // Corrupted port fields may bounce packets anywhere (including back to
  // src, or to dst with altered content) — the invariant is conservation:
  EXPECT_GE(static_cast<std::uint64_t>(handled) + dropped +
                dst.stats().delivered,
            1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Range<std::uint64_t>(100, 120));

class TransportCorruptionFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportCorruptionFuzz, ChecksumCatchesEveryFlip) {
  // Paper §4.1: with no network checksum the transport must detect damage.
  sim::Rng rng(GetParam());
  vmtp::Header h;
  h.src_entity = rng.next_u64();
  h.dst_entity = rng.next_u64();
  h.transaction = static_cast<std::uint32_t>(rng.next_u64());
  h.type = vmtp::PacketType::kRequest;
  h.group_size = static_cast<std::uint8_t>(1 + rng.uniform_int(0, 15));
  h.index = static_cast<std::uint8_t>(
      rng.uniform_int(0, h.group_size - 1));
  h.timestamp = static_cast<std::uint32_t>(rng.next_u64());
  const wire::Bytes payload = pattern_bytes(rng.uniform_int(0, 200));
  wire::Bytes packet = vmtp::encode_transport_packet(h, payload);
  ASSERT_TRUE(vmtp::decode_transport_packet(packet).has_value());
  for (int i = 0; i < 32; ++i) {
    wire::Bytes bad = packet;
    bad[rng.uniform_int(0, bad.size() - 1)] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    const auto view = vmtp::decode_transport_packet(bad);
    // A single byte flip must be caught (Internet checksum catches all
    // single-word errors) unless the flip missed the packet semantics
    // entirely — it cannot silently produce the original header.
    if (view.has_value()) {
      EXPECT_FALSE(view->header == h && wire::Bytes(view->payload.begin(),
                                                    view->payload.end()) ==
                                            payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportCorruptionFuzz,
                         ::testing::Range<std::uint64_t>(500, 515));

class ChainReversalProperty
    : public ::testing::TestWithParam<int> {};

TEST_P(ChainReversalProperty, ReplyAlwaysReturnsAcrossNHops) {
  const int hops = GetParam();
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  test::Line line = test::build_line(fabric, hops, "src.chain", "dst.chain");
  viper::ViperHost& src = *line.src;
  viper::ViperHost& dst = *line.dst;
  const core::SourceRoute route = test::line_route(hops);

  std::optional<viper::Delivery> there, back;
  dst.set_default_handler([&](const viper::Delivery& d) { there = d; });
  src.set_default_handler([&](const viper::Delivery& d) { back = d; });
  src.send(route, pattern_bytes(100));
  sim.run();
  ASSERT_TRUE(there.has_value()) << hops << " hops";
  EXPECT_EQ(there->hops, static_cast<std::uint32_t>(hops));
  dst.reply(*there, pattern_bytes(33));
  sim.run();
  ASSERT_TRUE(back.has_value()) << hops << " hops";
  EXPECT_EQ(back->data, pattern_bytes(33));
  // And the reply's own return route leads out again: reverse symmetry.
  EXPECT_EQ(back->return_route.segments.size(),
            static_cast<std::size_t>(hops) + 1);
}

INSTANTIATE_TEST_SUITE_P(Hops, ChainReversalProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 47));

class FaultCompositionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultCompositionProperty, LanesNeverCreateBytesFromThinAir) {
  // The composed perturbation (corrupt ∘ duplicate ∘ reorder ∘ jitter) is
  // conservative at the link layer: every delivered packet descends from
  // an injected one (same id, same length), ids are repeated at most once
  // per counted duplication, and with no drop lane nothing vanishes.
  const std::uint64_t seed = GetParam();
  sim::Simulator sim;
  net::Network net(sim);
  net::PacketFactory packets;
  auto& a = net.add<test::SinkNode>("a");
  auto& b = net.add<test::SinkNode>("b");
  const auto [pa, pb] =
      net.duplex(a, b, net::LinkConfig{1e9, 5 * sim::kMicrosecond, 1500});
  (void)pb;

  fault::FaultPlan plan;
  plan.seed = seed;
  fault::LaneConfig& lane = plan.lane(a.port(pa).name());
  lane.corrupt_rate = 0.3;
  lane.duplicate_rate = 0.3;
  lane.reorder_rate = 0.3;
  lane.jitter_rate = 0.3;
  stats::Registry registry;
  fault::FaultEngine engine(sim, plan, registry);
  engine.attach(a.port(pa));

  // Inject packets whose id -> size map is the ground truth.
  std::map<std::uint64_t, std::size_t> injected;
  sim::Rng rng(seed * 977 + 5);
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    const std::size_t size = 40 + rng.uniform_int(0, 1200);
    auto packet = packets.make(pattern_bytes(size, std::uint8_t(i)),
                               sim.now());
    injected[packet->id] = size;
    sim.at(static_cast<sim::Time>(i) * 2 * sim::kMicrosecond,
           [&a, pa, p = std::move(packet)]() mutable {
             a.port(pa).enqueue(std::move(p), net::TxMeta{}, 0);
           });
  }
  sim.run();

  const std::string target = a.port(pa).name();
  std::map<std::uint64_t, int> seen;
  for (const net::Arrival& arrival : b.arrivals) {
    auto it = injected.find(arrival.packet->id);
    ASSERT_NE(it, injected.end())
        << "seed " << seed << ": delivered id " << arrival.packet->id
        << " was never injected";
    EXPECT_EQ(arrival.packet->size(), it->second)
        << "seed " << seed << ": fault lanes changed a packet's length";
    ++seen[arrival.packet->id];
  }
  // No drop/flap lane: everything injected arrives, plus exactly the
  // counted duplicates — conservation in both directions.
  EXPECT_EQ(b.arrivals.size(),
            kPackets + engine.count(target, "duplicate"));
  std::uint64_t repeats = 0;
  for (const auto& [id, n] : seen) {
    repeats += static_cast<std::uint64_t>(n - 1);
  }
  EXPECT_EQ(repeats, engine.count(target, "duplicate"));
  // The lanes demonstrably fired under these rates.
  EXPECT_GT(engine.count(target, "corrupt"), 0u);
  EXPECT_GT(engine.count(target, "duplicate"), 0u);
  EXPECT_GT(engine.count(target, "reorder"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCompositionProperty,
                         ::testing::Range<std::uint64_t>(700, 712));

}  // namespace
}  // namespace srp
