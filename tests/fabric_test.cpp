// Tests for the Fabric experiment builder and assorted edge cases of the
// VIPER host/router that the scenario tests do not reach.
#include <gtest/gtest.h>

#include <optional>

#include "directory/fabric.hpp"
#include "test_util.hpp"

namespace srp::dir {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;

TEST(FabricApi, IdsAndLookupsAreConsistent) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& h = fabric.add_host("h.fab");
  auto& r = fabric.add_router("r.fab");
  fabric.connect(h, r);
  EXPECT_EQ(fabric.id_of(h), 0u);
  EXPECT_EQ(fabric.id_of(r), 1u);
  EXPECT_EQ(r.router_id(), fabric.id_of(r));
  // Unknown node throws.
  net::PacketFactory packets;
  viper::ViperHost stranger(sim, "stranger", packets);
  EXPECT_THROW((void)fabric.id_of(stranger), std::invalid_argument);
  EXPECT_THROW(fabric.fail_link(h, stranger), std::invalid_argument);
}

TEST(FabricApi, DirectoryRegistrationSurvivesEnableTokens) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.fab");
  auto& r = fabric.add_router("r1");
  auto& b = fabric.add_host("b.fab");
  fabric.connect(a, r);
  fabric.connect(r, b);
  ASSERT_FALSE(fabric.directory().query(fabric.id_of(a), "b.fab", {})
                   .empty());
  fabric.enable_tokens(1, false);
  // Names were re-registered in the rebuilt directory.
  const auto routes = fabric.directory().query(fabric.id_of(a), "b.fab", {});
  ASSERT_FALSE(routes.empty());
  // Tokens now minted even without enforcement.
  EXPECT_EQ(routes[0].route.segments[0].token.size(),
            tokens::kTokenWireSize);
}

TEST(FabricApi, FailAndRestoreRoundTrip) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.fr");
  auto& r = fabric.add_router("r1");
  auto& b = fabric.add_host("b.fr");
  fabric.connect(a, r);
  fabric.connect(r, b);
  int delivered = 0;
  b.set_default_handler([&](const viper::Delivery&) { ++delivered; });
  core::SourceRoute route;
  route.segments = {p2p_segment(2), local_segment()};

  fabric.fail_link(r, b);
  a.send(route, pattern_bytes(10));
  sim.run();
  EXPECT_EQ(delivered, 0);
  // The directory learned about it.
  EXPECT_TRUE(
      fabric.directory().query(fabric.id_of(a), "b.fr", {}).empty());

  fabric.restore_link(r, b);
  a.send(route, pattern_bytes(10));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(
      fabric.directory().query(fabric.id_of(a), "b.fr", {}).empty());
}

TEST(FabricApi, SilentFailureKeepsDirectoryBlind) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.sf");
  auto& r = fabric.add_router("r1");
  auto& b = fabric.add_host("b.sf");
  fabric.connect(a, r);
  fabric.connect(r, b);
  fabric.fail_link_silently(r, b);
  // The directory still *believes* in the route (no advisory), which is
  // precisely the scenario client-side failure detection exists for.
  EXPECT_FALSE(
      fabric.directory().query(fabric.id_of(a), "b.sf", {}).empty());
}

TEST(ViperEdge, OversizedDataRejectedAtSend) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.big");
  auto& r = fabric.add_router("r1");
  fabric.connect(a, r);
  core::SourceRoute route;
  route.segments = {p2p_segment(1), local_segment()};
  EXPECT_THROW(a.send(route, wire::Bytes(70'000, 0)), wire::CodecError);
}

TEST(ViperEdge, MaxLengthRouteTraversesFortySevenRouters) {
  // The paper's 48-segment bound: 47 routers + the local segment.
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& src = fabric.add_host("src.long");
  net::PortedNode* prev = &src;
  for (int i = 0; i < 47; ++i) {
    auto& r = fabric.add_router("r" + std::to_string(i));
    fabric.connect(*prev, r);
    prev = &r;
  }
  auto& dst = fabric.add_host("dst.long");
  fabric.connect(*prev, dst);
  core::SourceRoute route;
  for (int i = 0; i < 47; ++i) route.segments.push_back(p2p_segment(2));
  route.segments.push_back(local_segment());
  ASSERT_EQ(route.segments.size(), core::kMaxSegments);

  std::optional<viper::Delivery> got;
  dst.set_default_handler([&](const viper::Delivery& d) { got = d; });
  src.send(route, pattern_bytes(100));
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->hops, 47u);
  EXPECT_EQ(got->return_route.segments.size(), 48u);
  // And the 48-segment return route still fits and works.
  std::optional<viper::Delivery> back;
  src.set_default_handler([&](const viper::Delivery& d) { back = d; });
  dst.reply(*got, pattern_bytes(3));
  sim.run();
  ASSERT_TRUE(back.has_value());
}

TEST(ViperEdge, ControlPacketWithoutHandlerCounted) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.ctl");
  auto& r = fabric.add_router("r1");
  fabric.connect(a, r);
  // A port-0 segment addressed to the router itself, with no control
  // handler installed.
  core::SourceRoute route;
  route.segments = {local_segment(viper::kControlEndpoint)};
  a.send(route, pattern_bytes(4));
  sim.run();
  EXPECT_EQ(r.stats().dropped_no_port, 1u);
}

TEST(ViperEdge, DropIfBlockedTosTravelsTheRoute) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.dib");
  auto& r = fabric.add_router("r1");
  auto& b = fabric.add_host("b.dib");
  dir::LinkParams fast;
  fast.rate_bps = 1e9;
  dir::LinkParams slow;
  slow.rate_bps = 1e8;
  fabric.connect(a, r, fast);
  fabric.connect(r, b, slow);

  int delivered = 0;
  b.set_default_handler([&](const viper::Delivery&) { ++delivered; });
  core::SourceRoute route;
  core::HeaderSegment hop = p2p_segment(2);
  hop.tos.drop_if_blocked = true;
  hop.flags.dib = true;
  route.segments = {hop, local_segment()};
  // Back-to-back packets (plain ToS on the host uplink so both clear the
  // first hop): the second finds the slow router port busy and, being
  // drop-if-blocked per its segment, is discarded at the router.
  a.send(route, pattern_bytes(1000));
  a.send(route, pattern_bytes(1000));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(r.port(2).stats().dropped_blocked, 1u);
}

TEST(ViperEdge, PreemptivePriorityAbortsAcrossTheRouter) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.pre");
  auto& c = fabric.add_host("c.pre");  // the preemptor's host
  auto& r = fabric.add_router("r1");
  auto& b = fabric.add_host("b.pre");
  dir::LinkParams fast;
  fast.rate_bps = 1e9;
  dir::LinkParams slow;
  slow.rate_bps = 1e8;
  fabric.connect(a, r, fast);   // r port 1
  fabric.connect(c, r, fast);   // r port 2
  fabric.connect(r, b, slow);   // r port 3

  int intact = 0;
  int truncated = 0;
  b.set_default_handler([&](const viper::Delivery& d) {
    d.truncated ? ++truncated : ++intact;
  });
  auto route_with = [&](std::uint8_t priority) {
    core::SourceRoute route;
    core::HeaderSegment hop = p2p_segment(3, priority);
    route.segments = {hop, local_segment()};
    return route;
  };
  // The victim occupies the slow link for ~113 us; the preemptor lands
  // mid-transmission from the other host.
  a.send(route_with(0), wire::Bytes(1400, 0x01));
  sim.at(40 * sim::kMicrosecond, [&] {
    c.send(route_with(7), wire::Bytes(100, 0x02));
  });
  sim.run();
  EXPECT_EQ(r.port(3).stats().preempt_aborts, 1u);
  EXPECT_EQ(intact, 1);     // the preemptor
  EXPECT_EQ(truncated, 1);  // the aborted victim, detected end-to-end
}

TEST(ViperEdge, TruncationChainsAcrossCutThroughHops) {
  // A packet truncated at hop 1 must be seen as damaged by the receiver
  // even though hop 2 forwarded it before the damage happened upstream.
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.tr");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& b = fabric.add_host("b.tr");
  fabric.connect(a, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, b);

  std::optional<viper::Delivery> got;
  b.set_default_handler([&](const viper::Delivery& d) { got = d; });
  core::SourceRoute route;
  route.segments = {p2p_segment(2), p2p_segment(2, 0), local_segment()};
  // Launch a big low-priority packet, then preempt it at r1's output by
  // injecting a priority-7 packet from a second host attached to r1.
  auto& c = fabric.add_host("c.tr");
  fabric.connect(c, r1);
  a.send(route, wire::Bytes(1400, 0x55));
  core::SourceRoute vip_route;
  vip_route.segments = {p2p_segment(2, 7), p2p_segment(2, 7),
                        local_segment()};
  // Time the preemptor to land while the victim is on the r1->r2 wire.
  sim.at(8 * sim::kMicrosecond,
         [&] { c.send(vip_route, wire::Bytes(100, 0x66),
                      viper::SendOptions{{7, false}, 0, 1, {}}); });
  sim.run();
  ASSERT_TRUE(got.has_value());  // the last delivery (either packet)
  EXPECT_GE(b.stats().delivered, 1u);
  // If the victim arrived, it must have been flagged truncated.
  if (b.stats().delivered == 2) {
    EXPECT_GE(b.stats().truncated_received, 1u);
  }
}

TEST(FabricApi, LoadReportingFeedsDirectoryAdvisories) {
  sim::Simulator sim;
  Fabric fabric(sim);
  auto& a = fabric.add_host("a.lr");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& b = fabric.add_host("b.lr");
  LinkParams slow;
  slow.rate_bps = 1e8;
  fabric.connect(a, r1, slow);
  fabric.connect(r1, r2, slow);
  fabric.connect(r2, b, slow);
  fabric.enable_load_reporting(5 * sim::kMillisecond);

  core::SourceRoute route;
  route.segments = {p2p_segment(2), p2p_segment(2), local_segment()};
  // Saturate the r1->r2 link for 30 ms.
  for (int i = 0; i < 400; ++i) {
    sim.at(1 + i * 80 * sim::kMicrosecond,
           [&] { a.send(route, pattern_bytes(1000)); });
  }
  sim.run_until(30 * sim::kMillisecond);
  const auto* link =
      fabric.topology().find_link(fabric.id_of(r1), fabric.id_of(r2));
  ASSERT_NE(link, nullptr);
  EXPECT_GT(link->load, 0.5);

  // Traffic stops; the next reporting intervals show the link idle again.
  sim.run_until(80 * sim::kMillisecond);
  EXPECT_LT(link->load, 0.1);
}

}  // namespace
}  // namespace srp::dir
