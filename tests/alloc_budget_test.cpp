// Runtime twin of srp-lint's hotpath-alloc pass (scripts/srp_lint.py).
//
// The static pass polices SRP_HOT_PATH function bodies lexically; it
// cannot see allocations that hide behind calls (wire::Bytes copies,
// std::function captures in sim events, container rehashes).  This
// binary replaces global operator new with a counting shim and pins the
// *end-to-end* allocation cost of the steady-state forwarding path: if
// a change sneaks an extra per-packet allocation in anywhere — router,
// port, codec, flow accounting — the budget assertion moves and the
// regression is attributable to this PR, not discovered in a profile
// three PRs later.  Two budgets are pinned: the per-packet reference
// path's end-to-end cost (measured cost plus modest headroom), and the
// batched arena-backed forward path, which must be exactly zero once the
// slabs are warm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "directory/fabric.hpp"
#include "test_util.hpp"
#include "viper/codec.hpp"
#include "viper/router.hpp"
#include "wire/buffer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Full replacement set: every form must be covered or the default
// implementation silently takes over for that form and the counts lie.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace srp {
namespace {

using test::line_route;
using test::pattern_bytes;

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Steady-state allocations per packet across a 2-router line, measured
/// end to end: host encode, two router forwards (cut-through peek, port
/// queueing, flow accounting, hop events), final local delivery.  The
/// measured value on libstdc++ 12 is 31 (host encode, per-hop packet
/// clone + sim events, port queueing, flow accounting, delivery); the
/// cap leaves room for small-buffer-optimization differences between
/// standard libraries, not for new allocations on the path.
constexpr std::uint64_t kSteadyStatePacketBudget = 36;

TEST(AllocBudget, SteadyStateLineForwardingStaysWithinBudget) {
  sim::Simulator sim;
  dir::Fabric fabric{sim};
  test::Line line = test::build_line(fabric, 2, "src.test", "dst.test");

  std::uint64_t delivered = 0;
  line.dst->set_default_handler([&](const viper::Delivery&) { ++delivered; });

  const core::SourceRoute route = line_route(2);
  const wire::Bytes payload = pattern_bytes(64);

  // Warm-up: populate flow tables, port queues, the simulator's event
  // storage and every first-touch std::map node so the measured window
  // sees only the recurring per-packet cost.
  constexpr int kWarmup = 50;
  for (int i = 0; i < kWarmup; ++i) line.src->send(route, payload);
  sim.run();
  ASSERT_EQ(delivered, static_cast<std::uint64_t>(kWarmup));

  constexpr int kPackets = 200;
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < kPackets; ++i) line.src->send(route, payload);
  sim.run();
  const std::uint64_t per_packet =
      (allocation_count() - before) / kPackets;

  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kWarmup + kPackets));
  EXPECT_LE(per_packet, kSteadyStatePacketBudget)
      << "steady-state forwarding now allocates " << per_packet
      << " times per packet (budget " << kSteadyStatePacketBudget
      << "); either hoist the new allocation off the hot path or update "
         "the documented budget with a rationale";
  // A budget that is far too loose is as useless as one that is too
  // tight: if an optimization lands, ratchet the constant down.
  EXPECT_GE(per_packet, kSteadyStatePacketBudget / 4)
      << "measured " << per_packet
      << " allocations/packet — tighten kSteadyStatePacketBudget";
}

/// The tentpole claim of the batched data plane: once the arena slabs and
/// the burst scratch vectors are warm, the batched forward path allocates
/// *zero* times per packet — every derived packet runs out of a recycled
/// slab whose byte capacity survives reset, header fields are views into
/// the arrival buffer, and the rewrite appends in place.  Measured on the
/// router alone (output port administratively down, so enqueue drops
/// without link machinery; driving through sim events would charge the
/// event queue's own storage to the forward path).
TEST(AllocBudget, BatchedForwardPathIsAllocationFreeOnceWarm) {
  sim::Simulator sim;
  viper::ViperRouter router(sim, "r.batch", {});
  const net::LinkConfig link;
  router.add_port(link);         // port 1: ingress side
  router.add_port(link);         // port 2: egress
  router.port(2).set_up(false);  // drop at enqueue, zero events
  viper::ViperRouter::BatchConfig batch;
  batch.max_burst = 64;
  router.set_batching(batch);

  core::SourceRoute route;
  route.segments.push_back(test::p2p_segment(2));
  route.segments.push_back(test::local_segment());
  const wire::Bytes bytes = viper::encode_packet(route, pattern_bytes(256));

  net::PacketFactory packets;
  std::vector<net::Arrival> burst;
  for (int i = 0; i < 64; ++i) {
    net::Arrival arrival;
    arrival.packet = packets.make(bytes, 0);
    arrival.in_port = 1;
    arrival.head = 0;
    arrival.tail = 2048;
    arrival.rate_bps = link.rate_bps;
    burst.push_back(std::move(arrival));
  }

  // Warm-up: the arena pool fills, slab byte capacities grow to the
  // packet size, and the classification scratch reaches steady capacity.
  constexpr std::uint64_t kWarmBursts = 8;
  for (std::uint64_t i = 0; i < kWarmBursts; ++i) {
    router.forward_burst(burst);
  }

  constexpr std::uint64_t kBursts = 100;
  const std::uint64_t before = allocation_count();
  for (std::uint64_t i = 0; i < kBursts; ++i) router.forward_burst(burst);
  EXPECT_EQ(allocation_count() - before, 0u)
      << "the steady-state batched forward path must not allocate; a new "
         "allocation here breaks the zero-copy arena design (DESIGN.md "
         "§11)";

  EXPECT_EQ(router.stats().forwarded, (kWarmBursts + kBursts) * 64);
  // The measured window really ran on recycled slabs, not fresh ones.
  EXPECT_GT(router.arena().stats().recycled, kBursts * 64 - 1);
  EXPECT_LE(router.arena().stats().fresh, 64u);
}

TEST(AllocBudget, CutThroughPeekDoesNotAllocate) {
  // peek_next_port is the per-hop cut-through decision and is written to
  // be allocation-free (span-based wire::Reader, no field copies).  Pin
  // that property exactly: zero allocations per call.
  core::SourceRoute route = line_route(3);
  route.segments[0].port_info = pattern_bytes(12);
  const wire::Bytes bytes = viper::encode_route(route);

  const std::uint64_t before = allocation_count();
  std::uint8_t port = 0;
  for (int i = 0; i < 1'000; ++i) {
    port = viper::peek_next_port(bytes, 0);
  }
  EXPECT_EQ(allocation_count(), before)
      << "peek_next_port allocated on the cut-through path";
  EXPECT_EQ(port, 2);
}

TEST(AllocBudget, HistogramRecordDoesNotAllocate) {
  stats::Registry registry;
  stats::Histogram& h = registry.histogram("alloc.test.latency_ps");
  h.record(1);  // first-touch anything lazy
  const std::uint64_t before = allocation_count();
  for (std::uint64_t i = 0; i < 10'000; ++i) h.record(i);
  EXPECT_EQ(allocation_count(), before)
      << "stats::Histogram::record allocated on the hot path";
}

}  // namespace
}  // namespace srp
