// Unit tests for the token crypto substrate.
#include <gtest/gtest.h>

#include "crypto/siphash.hpp"
#include "crypto/xtea.hpp"

namespace srp::crypto {
namespace {

TEST(Xtea, BlockRoundTrip) {
  const XteaKey key{0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210};
  std::uint32_t v[2] = {0x11223344, 0x55667788};
  const std::uint32_t orig[2] = {v[0], v[1]};
  xtea_encrypt_block(key, v);
  EXPECT_TRUE(v[0] != orig[0] || v[1] != orig[1]);
  xtea_decrypt_block(key, v);
  EXPECT_EQ(v[0], orig[0]);
  EXPECT_EQ(v[1], orig[1]);
}

TEST(Xtea, WrongKeyDoesNotDecrypt) {
  const XteaKey key{1, 2, 3, 4};
  const XteaKey bad{1, 2, 3, 5};
  std::uint32_t v[2] = {42, 99};
  xtea_encrypt_block(key, v);
  xtea_decrypt_block(bad, v);
  EXPECT_FALSE(v[0] == 42 && v[1] == 99);
}

TEST(Xtea, CbcRoundTripVariousSizes) {
  const XteaKey key{11, 22, 33, 44};
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 32u, 100u}) {
    std::vector<std::uint8_t> plain(n);
    for (std::size_t i = 0; i < n; ++i) {
      plain[i] = static_cast<std::uint8_t>(i * 7 + 1);
    }
    const auto cipher = xtea_cbc_encrypt(key, plain);
    EXPECT_EQ(cipher.size() % 8, 0u);
    EXPECT_GE(cipher.size(), std::max<std::size_t>(n, 8));
    const auto back = xtea_cbc_decrypt(key, cipher);
    ASSERT_GE(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(back[i], plain[i]);
    for (std::size_t i = n; i < back.size(); ++i) EXPECT_EQ(back[i], 0);
  }
}

TEST(Xtea, CbcPropagatesBlockChaining) {
  const XteaKey key{5, 6, 7, 8};
  std::vector<std::uint8_t> plain(32, 0xAA);
  auto c1 = xtea_cbc_encrypt(key, plain);
  plain[0] ^= 1;
  auto c2 = xtea_cbc_encrypt(key, plain);
  // Changing the first plaintext byte must change every ciphertext block.
  for (std::size_t block = 0; block < 4; ++block) {
    bool differs = false;
    for (std::size_t i = 0; i < 8; ++i) {
      if (c1[block * 8 + i] != c2[block * 8 + i]) differs = true;
    }
    EXPECT_TRUE(differs) << "block " << block;
  }
}

TEST(Xtea, CbcDecryptRejectsBadSize) {
  const XteaKey key{1, 2, 3, 4};
  std::vector<std::uint8_t> bad(7);
  EXPECT_THROW(xtea_cbc_decrypt(key, bad), std::invalid_argument);
  EXPECT_THROW(xtea_cbc_decrypt(key, {}), std::invalid_argument);
}

// Official SipHash-2-4 reference vectors: key = 00 01 02 ... 0f,
// input = 00 01 02 ... (n-1).
TEST(SipHash, ReferenceVectors) {
  const SipKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  std::vector<std::uint8_t> input;
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(siphash24(key, input), expected[n]) << "length " << n;
    input.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, KeyMatters) {
  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  EXPECT_NE(siphash24({1, 2}, msg), siphash24({1, 3}, msg));
}

TEST(SipHash, LongInput) {
  std::vector<std::uint8_t> msg(1000);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i);
  }
  const auto h1 = siphash24({42, 43}, msg);
  msg[999] ^= 1;
  EXPECT_NE(siphash24({42, 43}, msg), h1);
}

}  // namespace
}  // namespace srp::crypto
