// Tests for the networked directory service (paper §3, footnote 10).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "directory/fabric.hpp"
#include "directory/remote.hpp"
#include "test_util.hpp"

namespace srp::dir {
namespace {

using test::pattern_bytes;

TEST(RemoteDirectoryCodec, QueryRoundTrip) {
  QueryOptions options;
  options.constraints.metric = RouteMetric::kCost;
  options.constraints.min_security = 3;
  options.constraints.min_bandwidth_bps = 1e8;
  options.constraints.count = 4;
  options.account = 77;
  options.dest_endpoint = 0xABCDEF;
  options.token_byte_limit = 5000;
  options.token_expiry_sec = 60;
  const wire::Bytes bytes =
      encode_route_query(42, "server.example", options);
  const auto back = decode_route_query(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from_node, 42u);
  EXPECT_EQ(back->name, "server.example");
  EXPECT_EQ(back->options.constraints.metric, RouteMetric::kCost);
  EXPECT_EQ(back->options.constraints.min_security, 3);
  EXPECT_EQ(back->options.constraints.count, 4u);
  EXPECT_EQ(back->options.account, 77u);
  EXPECT_EQ(back->options.dest_endpoint, 0xABCDEFu);
  EXPECT_EQ(back->options.token_byte_limit, 5000u);
  EXPECT_EQ(back->options.token_expiry_sec, 60u);
  EXPECT_FALSE(decode_route_query(wire::Bytes{1, 2, 3}).has_value());
}

TEST(RemoteDirectoryCodec, RoutesRoundTrip) {
  IssuedRoute route;
  core::HeaderSegment seg;
  seg.port = 9;
  seg.flags.vnt = true;
  seg.token = pattern_bytes(40);
  core::HeaderSegment local;
  local.port = core::kLocalPort;
  local.port_info = viper::encode_endpoint_id(0xFEED);
  route.route.segments = {seg, local};
  route.first_hop_link = net::EthernetHeader{
      net::MacAddr::from_index(1), net::MacAddr::from_index(2),
      net::kEtherTypeSirpent};
  route.host_out_port = 3;
  route.propagation_delay = 123 * sim::kMicrosecond;
  route.bottleneck_bps = 1e9;
  route.mtu = 1500;
  route.cost = 2.5;
  route.security_floor = 4;
  route.hops = 1;
  route.router_ids = {7};

  const wire::Bytes bytes = encode_issued_routes({route, route});
  const auto back = decode_issued_routes(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  const IssuedRoute& b = back->front();
  EXPECT_EQ(b.route.segments, route.route.segments);
  EXPECT_EQ(b.first_hop_link, route.first_hop_link);
  EXPECT_EQ(b.host_out_port, 3);
  EXPECT_EQ(b.propagation_delay, route.propagation_delay);
  EXPECT_EQ(b.bottleneck_bps, 1e9);
  EXPECT_EQ(b.mtu, 1500u);
  EXPECT_EQ(b.cost, 2.5);
  EXPECT_EQ(b.security_floor, 4);
  EXPECT_EQ(b.hops, 1u);
  EXPECT_EQ(b.router_ids, route.router_ids);

  EXPECT_FALSE(decode_issued_routes(wire::Bytes{9}).has_value());
  EXPECT_TRUE(decode_issued_routes(encode_issued_routes({}))->empty());
}

struct RemoteDirFixture : ::testing::Test {
  sim::Simulator sim;
  dir::Fabric fabric{sim};
  viper::ViperHost* client_host = nullptr;
  viper::ViperHost* server_host = nullptr;
  viper::ViperHost* dir_host = nullptr;
  std::unique_ptr<DirectoryServerNode> server_node;
  std::unique_ptr<RemoteDirectoryClient> client;

  void build() {
    client_host = &fabric.add_host("client.rd");
    auto& r1 = fabric.add_router("r1");
    auto& r2 = fabric.add_router("r2");
    server_host = &fabric.add_host("server.rd");
    dir_host = &fabric.add_host("directory.rd");
    fabric.connect(*client_host, r1);
    fabric.connect(r1, r2);
    fabric.connect(r2, *server_host);
    fabric.connect(r1, *dir_host);  // region server near the client

    server_node = std::make_unique<DirectoryServerNode>(
        sim, *dir_host, fabric.directory());
    // Bootstrap: the statically configured route to the region server.
    dir::QueryOptions boot;
    boot.dest_endpoint = kDirectoryEntity;
    const auto boot_routes = fabric.directory().query(
        fabric.id_of(*client_host), "directory.rd", boot);
    ASSERT_FALSE(boot_routes.empty());
    client = std::make_unique<RemoteDirectoryClient>(
        sim, *client_host, fabric.id_of(*client_host), boot_routes[0],
        /*client_entity=*/0xC0FFEE);
  }
};

TEST_F(RemoteDirFixture, QueryOverTheNetworkAndUseTheRoute) {
  build();
  std::vector<IssuedRoute> routes;
  sim::Time query_rtt = 0;
  QueryOptions q;
  client->query("server.rd", q, [&](std::vector<IssuedRoute> r,
                                    sim::Time rtt) {
    routes = std::move(r);
    query_rtt = rtt;
  });
  sim.run();
  ASSERT_FALSE(routes.empty());
  EXPECT_GT(query_rtt, 0);
  EXPECT_EQ(server_node->queries_served(), 1u);

  // The remotely acquired route actually delivers.
  std::optional<viper::Delivery> got;
  server_host->set_default_handler(
      [&](const viper::Delivery& d) { got = d; });
  viper::SendOptions options;
  options.out_port = routes[0].host_out_port;
  options.link = routes[0].first_hop_link;
  client_host->send(routes[0].route, pattern_bytes(99), options);
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, pattern_bytes(99));
}

TEST_F(RemoteDirFixture, UnknownNameReturnsEmpty) {
  build();
  std::optional<std::vector<IssuedRoute>> routes;
  client->query("nosuch.rd", {}, [&](std::vector<IssuedRoute> r,
                                     sim::Time) { routes = std::move(r); });
  sim.run();
  ASSERT_TRUE(routes.has_value());
  EXPECT_TRUE(routes->empty());
}

TEST_F(RemoteDirFixture, QueryRttComparableToOneRoundTrip) {
  // Footnote 10: route acquisition costs one round trip to the server —
  // here client -> r1 -> directory and back, ~4 links of propagation.
  build();
  sim::Time query_rtt = 0;
  client->query("server.rd", {}, [&](std::vector<IssuedRoute>,
                                     sim::Time rtt) { query_rtt = rtt; });
  sim.run();
  // 4 x 10 us propagation plus serialization/processing: well under 1 ms,
  // and at least the bare 40 us of propagation.
  EXPECT_GT(query_rtt, 40 * sim::kMicrosecond);
  EXPECT_LT(query_rtt, sim::kMillisecond);
}

TEST(RemoteDirectoryReferrals, ClientWalksTheRegionHierarchy) {
  // Two region servers: "west" (near the client) owns region W names and
  // refers everything else to "east", which owns region E.  The client
  // only knows its local resolver, exactly like a DNS stub.
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.ref", 0);
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  fabric.connect(client_host, r1);
  fabric.connect(r1, r2);

  Directory& directory = fabric.directory();
  const auto west = directory.add_region("west");
  const auto east = directory.add_region("east");

  auto& west_dir = fabric.add_host("dir.west", west);
  auto& east_dir = fabric.add_host("dir.east", east);
  auto& target = fabric.add_host("svc.east", east);
  fabric.connect(r1, west_dir);
  fabric.connect(r2, east_dir);
  fabric.connect(r2, target);
  // add_host registered the names in region 0; rebind them to regions.
  directory.register_name("dir.west", fabric.id_of(west_dir), west);
  directory.register_name("dir.east", fabric.id_of(east_dir), east);
  directory.register_name("svc.east", fabric.id_of(target), east);

  constexpr std::uint64_t kWestEntity = 0xD1;
  constexpr std::uint64_t kEastEntity = 0xD2;
  DirectoryServerNode west_node(sim, west_dir, directory, kWestEntity);
  DirectoryServerNode east_node(sim, east_dir, directory, kEastEntity);
  west_node.serve_regions({west}, "dir.east", kEastEntity);
  east_node.serve_regions({east}, "dir.west", kWestEntity);

  dir::QueryOptions boot;
  boot.dest_endpoint = kWestEntity;
  const auto boot_routes = directory.query(fabric.id_of(client_host),
                                           "dir.west", boot);
  ASSERT_FALSE(boot_routes.empty());
  RemoteDirectoryClient client(sim, client_host,
                               fabric.id_of(client_host),
                               boot_routes.front(), 0xCC01, kWestEntity);

  // Querying an east name through the west resolver follows a referral.
  std::vector<IssuedRoute> routes;
  sim::Time total_rtt = 0;
  client.query("svc.east", {}, [&](std::vector<IssuedRoute> r,
                                   sim::Time rtt) {
    routes = std::move(r);
    total_rtt = rtt;
  });
  sim.run();
  ASSERT_FALSE(routes.empty());
  EXPECT_EQ(west_node.referrals_issued(), 1u);
  EXPECT_EQ(east_node.queries_served(), 1u);
  EXPECT_EQ(west_node.queries_served(), 0u);
  EXPECT_EQ(client.referrals_followed(), 1u);

  // Two server round trips cost more than one direct hit.
  std::vector<IssuedRoute> local_routes;
  sim::Time local_rtt = 0;
  directory.register_name("svc.west", fabric.id_of(west_dir), west);
  client.query("svc.west", {}, [&](std::vector<IssuedRoute> r,
                                   sim::Time rtt) {
    local_routes = std::move(r);
    local_rtt = rtt;
  });
  sim.run();
  ASSERT_FALSE(local_routes.empty());
  EXPECT_GT(total_rtt, local_rtt);

  // The referred route is usable end to end.
  std::optional<viper::Delivery> got;
  target.set_default_handler([&](const viper::Delivery& d) { got = d; });
  viper::SendOptions options;
  options.out_port = routes[0].host_out_port;
  client_host.send(routes[0].route, test::pattern_bytes(31), options);
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, test::pattern_bytes(31));
}

TEST(RemoteDirectoryReferrals, ReferralLoopBounded) {
  // Two servers that own nothing and refer to each other forever: the
  // client must give up at its depth bound instead of looping.
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.loop");
  auto& r1 = fabric.add_router("r1");
  fabric.connect(client_host, r1);
  Directory& directory = fabric.directory();
  const auto a_region = directory.add_region("a");
  const auto b_region = directory.add_region("b");
  const auto lost_region = directory.add_region("lost");
  auto& dir_a = fabric.add_host("dir.a");
  auto& dir_b = fabric.add_host("dir.b");
  auto& orphan = fabric.add_host("orphan.lost");
  fabric.connect(r1, dir_a);
  fabric.connect(r1, dir_b);
  fabric.connect(r1, orphan);
  directory.register_name("orphan.lost", fabric.id_of(orphan), lost_region);

  DirectoryServerNode node_a(sim, dir_a, directory, 0xA0);
  DirectoryServerNode node_b(sim, dir_b, directory, 0xB0);
  node_a.serve_regions({a_region}, "dir.b", 0xB0);
  node_b.serve_regions({b_region}, "dir.a", 0xA0);

  dir::QueryOptions boot;
  boot.dest_endpoint = 0xA0;
  const auto boot_routes = directory.query(fabric.id_of(client_host),
                                           "dir.a", boot);
  RemoteDirectoryClient client(sim, client_host,
                               fabric.id_of(client_host),
                               boot_routes.front(), 0xCC02, 0xA0);
  std::optional<std::vector<IssuedRoute>> routes;
  client.query("orphan.lost", {},
               [&](std::vector<IssuedRoute> r, sim::Time) {
                 routes = std::move(r);
               });
  sim.run();
  ASSERT_TRUE(routes.has_value());
  EXPECT_TRUE(routes->empty());
  EXPECT_LE(client.referrals_followed(), 8u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace srp::dir
