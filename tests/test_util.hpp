// Shared helpers for the Sirpent test suite.
#pragma once

#include <string>
#include <vector>

#include "core/segment.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "viper/router.hpp"

namespace srp::test {

/// Node that records every arrival for assertions.
class SinkNode : public net::PortedNode {
 public:
  SinkNode(sim::Simulator& sim, std::string name)
      : net::PortedNode(sim, std::move(name)) {}

  void on_arrival(const net::Arrival& arrival) override {
    arrivals.push_back(arrival);
  }

  std::vector<net::Arrival> arrivals;
};

/// A point-to-point hop segment (VNT set, no token).
inline core::HeaderSegment p2p_segment(std::uint8_t port,
                                       std::uint8_t priority = 0) {
  core::HeaderSegment seg;
  seg.port = port;
  seg.tos.priority = priority;
  seg.flags.vnt = true;
  return seg;
}

/// A final local-delivery segment addressed to @p endpoint (0 = default
/// dispatcher).
inline core::HeaderSegment local_segment(std::uint64_t endpoint = 0) {
  core::HeaderSegment seg;
  seg.port = core::kLocalPort;
  if (endpoint != 0) {
    seg.port_info = viper::encode_endpoint_id(endpoint);
  } else {
    seg.flags.vnt = true;
  }
  return seg;
}

/// Bytes helper.
inline wire::Bytes bytes_of(std::initializer_list<std::uint8_t> list) {
  return wire::Bytes(list);
}

/// Payload of n distinct bytes.
inline wire::Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 1) {
  wire::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return out;
}

}  // namespace srp::test
