// Shared helpers for the Sirpent test suite.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/segment.hpp"
#include "directory/fabric.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "viper/router.hpp"

namespace srp::test {

/// Node that records every arrival for assertions.
class SinkNode : public net::PortedNode {
 public:
  SinkNode(sim::Simulator& sim, std::string name)
      : net::PortedNode(sim, std::move(name)) {}

  void on_arrival(const net::Arrival& arrival) override {
    arrivals.push_back(arrival);
  }

  std::vector<net::Arrival> arrivals;
};

/// A point-to-point hop segment (VNT set, no token).
inline core::HeaderSegment p2p_segment(std::uint8_t port,
                                       std::uint8_t priority = 0) {
  core::HeaderSegment seg;
  seg.port = port;
  seg.tos.priority = priority;
  seg.flags.vnt = true;
  return seg;
}

/// A final local-delivery segment addressed to @p endpoint (0 = default
/// dispatcher).
inline core::HeaderSegment local_segment(std::uint64_t endpoint = 0) {
  core::HeaderSegment seg;
  seg.port = core::kLocalPort;
  if (endpoint != 0) {
    seg.port_info = viper::encode_endpoint_id(endpoint);
  } else {
    seg.flags.vnt = true;
  }
  return seg;
}

/// Bytes helper.
inline wire::Bytes bytes_of(std::initializer_list<std::uint8_t> list) {
  return wire::Bytes(list);
}

/// Payload of n distinct bytes.
inline wire::Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 1) {
  wire::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Topology builders (hoisted from the per-suite fixtures).

/// A src —r0—r1—…—r(n-1)— dst line built through the fabric: the fixture
/// shape shared by the vmtp, congestion and routing suites.  Each fabric
/// connect() allocates ports in order, so on every router port 1 faces the
/// source and port 2 faces the destination.
struct Line {
  viper::ViperHost* src = nullptr;
  std::vector<viper::ViperRouter*> routers;
  viper::ViperHost* dst = nullptr;

  [[nodiscard]] viper::ViperRouter& router(std::size_t i) {
    return *routers.at(i);
  }
};

/// Builds a Line of @p n_routers.  @p params applies to every link unless
/// @p per_hop returns an override for hop index i (0 = src—r0 edge).
inline Line build_line(
    dir::Fabric& fabric, int n_routers, const std::string& src_name,
    const std::string& dst_name, dir::LinkParams params = {},
    const std::function<dir::LinkParams(int)>& per_hop = nullptr) {
  Line line;
  line.src = &fabric.add_host(src_name);
  net::PortedNode* prev = line.src;
  for (int i = 0; i < n_routers; ++i) {
    auto& r = fabric.add_router("r" + std::to_string(i + 1));
    fabric.connect(*prev, r, per_hop ? per_hop(i) : params);
    line.routers.push_back(&r);
    prev = &r;
  }
  line.dst = &fabric.add_host(dst_name);
  fabric.connect(*prev, *line.dst,
                 per_hop ? per_hop(n_routers) : params);
  return line;
}

/// The source route along a Line: @p hops forward segments (port 2 leads
/// onward on every Line router) then local delivery.
inline core::SourceRoute line_route(int hops, std::uint64_t endpoint = 0,
                                    std::uint8_t priority = 0) {
  core::SourceRoute route;
  for (int i = 0; i < hops; ++i) {
    route.segments.push_back(p2p_segment(2, priority));
  }
  route.segments.push_back(local_segment(endpoint));
  return route;
}

/// A random connected internetwork: a router spanning tree plus chords,
/// one host per router (the property/chaos/soak topology generator).
struct RandomNet {
  sim::Simulator sim;
  dir::Fabric fabric{sim};
  std::vector<viper::ViperRouter*> routers;
  std::vector<viper::ViperHost*> hosts;

  RandomNet(std::uint64_t seed, int n_routers) {
    sim::Rng rng(seed);
    for (int i = 0; i < n_routers; ++i) {
      routers.push_back(&fabric.add_router("r" + std::to_string(i)));
      if (i > 0) {
        // Spanning tree: attach to a random earlier router.
        const auto parent =
            rng.uniform_int(0, static_cast<std::uint64_t>(i - 1));
        dir::LinkParams params;
        params.prop_delay =
            static_cast<sim::Time>(rng.uniform_int(1, 50)) *
            sim::kMicrosecond;
        fabric.connect(*routers[static_cast<std::size_t>(parent)],
                       *routers[static_cast<std::size_t>(i)], params);
      }
    }
    // A few chords for path diversity.
    const int chords = n_routers / 2;
    for (int c = 0; c < chords; ++c) {
      const auto a = rng.uniform_int(
          0, static_cast<std::uint64_t>(n_routers - 1));
      const auto b = rng.uniform_int(
          0, static_cast<std::uint64_t>(n_routers - 1));
      if (a == b) continue;
      dir::LinkParams params;
      params.prop_delay = static_cast<sim::Time>(rng.uniform_int(1, 50)) *
                          sim::kMicrosecond;
      fabric.connect(*routers[a], *routers[b], params);
    }
    for (int i = 0; i < n_routers; ++i) {
      auto& h = fabric.add_host("h" + std::to_string(i) + ".prop");
      fabric.connect(h, *routers[static_cast<std::size_t>(i)]);
      hosts.push_back(&h);
    }
  }
};

// ---------------------------------------------------------------------------
// Event-chain helpers.

/// Drives a self-rescheduling chain: @p step first runs at @p start and
/// returns the delay until its next run; the chain ends at @p until.  The
/// chain owns itself through the pending event only (weak self-capture),
/// so it is reclaimed as soon as it stops — the pump pattern shared by the
/// congestion/chaos suites and the benches.
inline void drive(sim::Simulator& sim, sim::Time start, sim::Time until,
                  std::function<sim::Time()> step) {
  auto chain = std::make_shared<std::function<void()>>();
  *chain = [&sim, until, step = std::move(step),
            weak = std::weak_ptr(chain)] {
    if (sim.now() >= until) return;
    const sim::Time delay = step();
    sim.after(std::max<sim::Time>(delay, 1),
              [self = weak.lock()] { (*self)(); });
  };
  sim.at(start, [chain] { (*chain)(); });
}

/// Runs @p scenario twice and asserts both runs produce identical results —
/// the seed-replay (determinism) check shared by the stress/chaos suites.
/// The scenario must build its entire world (simulator, fabric, RNGs)
/// internally so nothing leaks between runs.
template <class Scenario>
void expect_deterministic(Scenario scenario) {
  const auto first = scenario();
  const auto second = scenario();
  EXPECT_EQ(first, second);
}

}  // namespace srp::test
