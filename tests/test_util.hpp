// Shared helpers for the Sirpent test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "congestion/throttle.hpp"
#include "core/segment.hpp"
#include "directory/fabric.hpp"
#include "fault/engine.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "transport/vmtp.hpp"
#include "viper/router.hpp"

namespace srp::test {

/// FNV-1a over a byte span — the suite's content-hash for wire/payload
/// equivalence checks.
inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Node that records every arrival for assertions.
class SinkNode : public net::PortedNode {
 public:
  SinkNode(sim::Simulator& sim, std::string name)
      : net::PortedNode(sim, std::move(name)) {}

  void on_arrival(const net::Arrival& arrival) override {
    arrivals.push_back(arrival);
  }

  std::vector<net::Arrival> arrivals;
};

/// A point-to-point hop segment (VNT set, no token).
inline core::HeaderSegment p2p_segment(std::uint8_t port,
                                       std::uint8_t priority = 0) {
  core::HeaderSegment seg;
  seg.port = port;
  seg.tos.priority = priority;
  seg.flags.vnt = true;
  return seg;
}

/// A final local-delivery segment addressed to @p endpoint (0 = default
/// dispatcher).
inline core::HeaderSegment local_segment(std::uint64_t endpoint = 0) {
  core::HeaderSegment seg;
  seg.port = core::kLocalPort;
  if (endpoint != 0) {
    seg.port_info = viper::encode_endpoint_id(endpoint);
  } else {
    seg.flags.vnt = true;
  }
  return seg;
}

/// Bytes helper.
inline wire::Bytes bytes_of(std::initializer_list<std::uint8_t> list) {
  return wire::Bytes(list);
}

/// Payload of n distinct bytes.
inline wire::Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 1) {
  wire::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Topology builders (hoisted from the per-suite fixtures).

/// A src —r0—r1—…—r(n-1)— dst line built through the fabric: the fixture
/// shape shared by the vmtp, congestion and routing suites.  Each fabric
/// connect() allocates ports in order, so on every router port 1 faces the
/// source and port 2 faces the destination.
struct Line {
  viper::ViperHost* src = nullptr;
  std::vector<viper::ViperRouter*> routers;
  viper::ViperHost* dst = nullptr;

  [[nodiscard]] viper::ViperRouter& router(std::size_t i) {
    return *routers.at(i);
  }
};

/// Builds a Line of @p n_routers.  @p params applies to every link unless
/// @p per_hop returns an override for hop index i (0 = src—r0 edge).
inline Line build_line(
    dir::Fabric& fabric, int n_routers, const std::string& src_name,
    const std::string& dst_name, dir::LinkParams params = {},
    const std::function<dir::LinkParams(int)>& per_hop = nullptr) {
  Line line;
  line.src = &fabric.add_host(src_name);
  net::PortedNode* prev = line.src;
  for (int i = 0; i < n_routers; ++i) {
    auto& r = fabric.add_router("r" + std::to_string(i + 1));
    fabric.connect(*prev, r, per_hop ? per_hop(i) : params);
    line.routers.push_back(&r);
    prev = &r;
  }
  line.dst = &fabric.add_host(dst_name);
  fabric.connect(*prev, *line.dst,
                 per_hop ? per_hop(n_routers) : params);
  return line;
}

/// The source route along a Line: @p hops forward segments (port 2 leads
/// onward on every Line router) then local delivery.
inline core::SourceRoute line_route(int hops, std::uint64_t endpoint = 0,
                                    std::uint8_t priority = 0) {
  core::SourceRoute route;
  for (int i = 0; i < hops; ++i) {
    route.segments.push_back(p2p_segment(2, priority));
  }
  route.segments.push_back(local_segment(endpoint));
  return route;
}

/// A random connected internetwork: a router spanning tree plus chords,
/// one host per router (the property/chaos/soak topology generator).
struct RandomNet {
  sim::Simulator sim;
  dir::Fabric fabric{sim};
  std::vector<viper::ViperRouter*> routers;
  std::vector<viper::ViperHost*> hosts;

  RandomNet(std::uint64_t seed, int n_routers) {
    sim::Rng rng(seed);
    for (int i = 0; i < n_routers; ++i) {
      routers.push_back(&fabric.add_router("r" + std::to_string(i)));
      if (i > 0) {
        // Spanning tree: attach to a random earlier router.
        const auto parent =
            rng.uniform_int(0, static_cast<std::uint64_t>(i - 1));
        dir::LinkParams params;
        params.prop_delay =
            static_cast<sim::Time>(rng.uniform_int(1, 50)) *
            sim::kMicrosecond;
        fabric.connect(*routers[static_cast<std::size_t>(parent)],
                       *routers[static_cast<std::size_t>(i)], params);
      }
    }
    // A few chords for path diversity.
    const int chords = n_routers / 2;
    for (int c = 0; c < chords; ++c) {
      const auto a = rng.uniform_int(
          0, static_cast<std::uint64_t>(n_routers - 1));
      const auto b = rng.uniform_int(
          0, static_cast<std::uint64_t>(n_routers - 1));
      if (a == b) continue;
      dir::LinkParams params;
      params.prop_delay = static_cast<sim::Time>(rng.uniform_int(1, 50)) *
                          sim::kMicrosecond;
      fabric.connect(*routers[a], *routers[b], params);
    }
    for (int i = 0; i < n_routers; ++i) {
      auto& h = fabric.add_host("h" + std::to_string(i) + ".prop");
      fabric.connect(h, *routers[static_cast<std::size_t>(i)]);
      hosts.push_back(&h);
    }
  }
};

// ---------------------------------------------------------------------------
// Event-chain helpers.

/// Drives a self-rescheduling chain: @p step first runs at @p start and
/// returns the delay until its next run; the chain ends at @p until.  The
/// chain owns itself through the pending event only (weak self-capture),
/// so it is reclaimed as soon as it stops — the pump pattern shared by the
/// congestion/chaos suites and the benches.
inline void drive(sim::Simulator& sim, sim::Time start, sim::Time until,
                  std::function<sim::Time()> step) {
  auto chain = std::make_shared<std::function<void()>>();
  *chain = [&sim, until, step = std::move(step),
            weak = std::weak_ptr(chain)] {
    if (sim.now() >= until) return;
    const sim::Time delay = step();
    sim.after(std::max<sim::Time>(delay, 1),
              [self = weak.lock()] { (*self)(); });
  };
  sim.at(start, [chain] { (*chain)(); });
}

/// Runs @p scenario twice and asserts both runs produce identical results —
/// the seed-replay (determinism) check shared by the stress/chaos suites.
/// The scenario must build its entire world (simulator, fabric, RNGs)
/// internally so nothing leaks between runs.
template <class Scenario>
void expect_deterministic(Scenario scenario) {
  const auto first = scenario();
  const auto second = scenario();
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Chaos harness (hoisted from chaos_test.cpp so the batch-equivalence suite
// can run the identical scenario with a differently-configured fabric).

namespace chaos {
constexpr sim::Time kTrafficEnd = 600 * sim::kMillisecond;
constexpr sim::Time kDrainEnd = 3 * sim::kSecond;
constexpr sim::Time kFlapAt = 200 * sim::kMillisecond;
constexpr sim::Time kFlapFor = 30 * sim::kMillisecond;
}  // namespace chaos

/// Everything the replay contract must reproduce, keyed for EXPECT_EQ
/// diffing.
using ChaosDigest = std::map<std::string, std::uint64_t>;

struct ChaosOutcome {
  int issued = 0;
  int completed = 0;      ///< callbacks fired (ok or error)
  int ok = 0;
  int mismatched = 0;     ///< acked responses whose bytes were wrong
  int ok_after_flap = 0;  ///< successes completing after the flap window
  /// Order-independent sum of per-response FNV hashes of every ok
  /// response's bytes — pins the delivered *content*, not just counts.
  std::uint64_t response_hash = 0;
  ChaosDigest digest;

  bool operator==(const ChaosOutcome&) const = default;
};

/// Runs the full chaos scenario: VMTP transactions over a multi-hop VIPER
/// diamond while a deterministic FaultPlan attacks every link.  The world
/// is built from scratch each call so reruns share no state but the seed.
/// @p configure, when set, sees the fabric after the topology and the
/// standard enables but before any traffic — the hook the batched-plane
/// equivalence suite uses to flip Fabric::enable_batching.  @p inspect,
/// when set, sees the drained fabric before teardown (for cross-checking
/// external planes against fabric-owned state like the ledger).
inline ChaosOutcome run_chaos(
    std::uint64_t seed, const obs::Observer& observer = {},
    const std::function<void(dir::Fabric&)>& inspect = {},
    const std::function<void(dir::Fabric&)>& configure = {}) {
  using namespace chaos;
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.chaos");
  auto& server_host = fabric.add_host("server.chaos");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");   // primary mid hop
  auto& r3a = fabric.add_router("r3a");  // backup path, one router longer
  auto& r3b = fabric.add_router("r3b");
  auto& r4 = fabric.add_router("r4");
  dir::LinkParams fast;
  fast.prop_delay = 10 * sim::kMicrosecond;
  dir::LinkParams slower;
  slower.prop_delay = 15 * sim::kMicrosecond;
  fabric.connect(client_host, r1, fast);
  fabric.connect(r1, r2, fast);
  fabric.connect(r2, r4, fast);
  fabric.connect(r1, r3a, slower);
  fabric.connect(r3a, r3b, slower);
  fabric.connect(r3b, r4, slower);
  fabric.connect(r4, server_host, fast);

  fabric.enable_tokens(0xC4A05, /*enforce=*/true,
                       tokens::UncachedPolicy::kOptimistic);
  fabric.enable_congestion_control();
  fabric.enable_observability(observer);
  if (configure) configure(fabric);

  // The attack: every lane live on every port of every node, ≥1% each,
  // plus token-cache forgetting and two explicit flap windows that kill
  // the primary path mid-run.
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.defaults.drop_rate = 0.01;
  plan.defaults.corrupt_rate = 0.01;
  plan.defaults.duplicate_rate = 0.01;
  plan.defaults.reorder_rate = 0.01;
  plan.defaults.jitter_rate = 0.01;
  plan.token_poisons_per_second = 100.0;  // forget mode: recoverable
  stats::Registry fault_stats;
  fault::FaultEngine engine(sim, plan, fault_stats);
  for (auto* router : fabric.routers()) {
    engine.attach_all(*router);
    engine.attach_token_cache(std::string(router->name()),
                              router->token_cache());
  }
  engine.attach_all(client_host);
  engine.attach_all(server_host);
  engine.schedule_flap(r1.port(2), kFlapAt, kFlapFor);
  engine.schedule_flap(r2.port(1), kFlapAt, kFlapFor);

  vmtp::VmtpConfig config;
  config.max_retries = 6;
  auto client = std::make_unique<vmtp::VmtpEndpoint>(sim, client_host,
                                                     0xC1, config);
  auto server = std::make_unique<vmtp::VmtpEndpoint>(sim, server_host,
                                                     0x5E, config);
  // Echo server with a visible transform: a correct "ok" must match this
  // byte-for-byte, so a corrupted-but-acked delivery cannot hide.
  server->serve([](std::span<const std::uint8_t> req,
                   const viper::Delivery&) {
    wire::Bytes response(req.begin(), req.end());
    for (auto& byte : response) byte ^= 0x5A;
    return response;
  });

  dir::RouteCacheConfig cache_config;
  cache_config.ttl = kDrainEnd;  // reroute on failure reports, not expiry
  dir::RouteCache& cache = fabric.route_cache(client_host, cache_config);
  client->set_failure_hook([&] { cache.report_failure("server.chaos"); });
  client->set_rtt_hook(
      [&](sim::Time rtt) { cache.report_rtt("server.chaos", rtt); });

  ChaosOutcome outcome;
  dir::QueryOptions q;
  q.dest_endpoint = 0x5E;
  sim::Rng traffic_rng(seed * 131 + 17);
  test::drive(sim, 1, kTrafficEnd, [&]() -> sim::Time {
    const auto route = cache.route_to("server.chaos", q);
    if (route.has_value()) {
      const wire::Bytes request = pattern_bytes(
          1 + traffic_rng.uniform_int(0, 2000),
          static_cast<std::uint8_t>(outcome.issued));
      wire::Bytes expected = request;
      for (auto& byte : expected) byte ^= 0x5A;
      ++outcome.issued;
      client->invoke(*route, 0x5E, request,
                     [&outcome, expected = std::move(expected),
                      &sim](vmtp::Result r) {
                       ++outcome.completed;
                       if (!r.ok) return;
                       if (r.response == expected) {
                         ++outcome.ok;
                         outcome.response_hash += fnv1a(r.response);
                         if (sim.now() > chaos::kFlapAt + chaos::kFlapFor) {
                           ++outcome.ok_after_flap;
                         }
                       } else {
                         ++outcome.mismatched;
                       }
                     });
    }
    return static_cast<sim::Time>(
        sim::kMillisecond + traffic_rng.uniform_int(0, sim::kMillisecond));
  });

  // run_until (not run()): the poisoning process reschedules forever.
  sim.run_until(kDrainEnd);

  outcome.digest = fault_stats.snapshot();
  const auto& cs = client->stats();
  const auto& ss = server->stats();
  outcome.digest["vmtp.client.requests_sent"] = cs.requests_sent;
  outcome.digest["vmtp.client.responses_received"] = cs.responses_received;
  outcome.digest["vmtp.client.retransmitted"] = cs.retransmitted_packets;
  outcome.digest["vmtp.client.timeouts"] = cs.timeouts;
  outcome.digest["vmtp.client.failures"] = cs.failures;
  outcome.digest["vmtp.client.checksum_drops"] = cs.checksum_drops;
  outcome.digest["vmtp.client.misdeliveries"] = cs.misdeliveries;
  outcome.digest["vmtp.server.requests_served"] = ss.requests_served;
  outcome.digest["vmtp.server.checksum_drops"] = ss.checksum_drops;
  outcome.digest["vmtp.server.misdeliveries"] = ss.misdeliveries;
  outcome.digest["vmtp.server.duplicate_requests"] = ss.duplicate_requests;
  outcome.digest["chaos.ok"] = static_cast<std::uint64_t>(outcome.ok);
  outcome.digest["chaos.completed"] =
      static_cast<std::uint64_t>(outcome.completed);
  outcome.digest["chaos.response_hash"] = outcome.response_hash;

  // Congestion soft state has expired back to "unlimited" by the end of
  // the drain window ("as soft cached state, it can be discarded").
  cc::SourceThrottle* throttle = fabric.throttle_of(client_host);
  EXPECT_NE(throttle, nullptr);
  if (throttle != nullptr) {
    EXPECT_TRUE(
        std::isinf(throttle->rate(cc::FlowKey{fabric.id_of(r1), 2})));
  }
  if (inspect) inspect(fabric);
  return outcome;
}

}  // namespace srp::test
