// Health-plane tests: windowed series, detectors, alert lifecycle,
// exports, and the headline ground-truth scoring runs — fixed-seed chaos
// with one fault lane live at a time, where the fault engine's own books
// say exactly what should have been detected and where.
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "directory/fabric.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "flow/plane.hpp"
#include "health/alerts.hpp"
#include "health/detector.hpp"
#include "health/export.hpp"
#include "health/monitor.hpp"
#include "health/series.hpp"
#include "obs/recorder.hpp"
#include "stats/registry.hpp"
#include "test_util.hpp"
#include "transport/vmtp.hpp"

namespace srp {
namespace {

using test::pattern_bytes;

// --- SeriesStore -----------------------------------------------------------

TEST(SeriesStore, CounterDeltasPerWindow) {
  stats::Registry registry;
  auto& counter = registry.counter("viper.r1.token_hit");
  health::SeriesStore store({.window = sim::kMillisecond, .capacity = 4});

  counter.add(10);
  store.roll(sim::kMillisecond, registry.full_snapshot());
  counter.add(3);
  store.roll(2 * sim::kMillisecond, registry.full_snapshot());
  store.roll(3 * sim::kMillisecond, registry.full_snapshot());

  EXPECT_EQ(store.windows(), 3u);
  EXPECT_EQ(store.last_roll(), 3 * sim::kMillisecond);
  EXPECT_EQ(store.counter_rate("viper.r1.token_hit", 0), 0.0);
  EXPECT_EQ(store.counter_rate("viper.r1.token_hit", 1), 3.0);
  EXPECT_EQ(store.counter_rate("viper.r1.token_hit", 2), 10.0);
  EXPECT_EQ(store.counter_rate("viper.r1.token_hit", 3), std::nullopt);
  EXPECT_EQ(store.counter_rate("viper.r1.token_miss_drop", 0), std::nullopt);
}

TEST(SeriesStore, RingEvictsBeyondCapacity) {
  stats::Registry registry;
  auto& counter = registry.counter("cc.r1.reports");
  health::SeriesStore store({.window = sim::kMillisecond, .capacity = 2});
  for (int i = 1; i <= 5; ++i) {
    counter.add(static_cast<std::uint64_t>(i));
    store.roll(i * sim::kMillisecond, registry.full_snapshot());
  }
  EXPECT_EQ(store.depth("cc.r1.reports"), 2u);
  EXPECT_EQ(store.counter_rate("cc.r1.reports", 0), 5.0);
  EXPECT_EQ(store.counter_rate("cc.r1.reports", 1), 4.0);
  EXPECT_EQ(store.counter_rate("cc.r1.reports", 2), std::nullopt);
}

TEST(SeriesStore, GaugeLevelsAndHistogramWindows) {
  stats::Registry registry;
  auto& gauge = registry.gauge("port.r1_p1.queue_depth");
  auto& hist = registry.histogram("port.r1_p1.queue_wait_ps");
  health::SeriesStore store({.window = sim::kMillisecond, .capacity = 8});

  gauge.set(5);
  hist.record(100);
  hist.record(200);
  store.roll(sim::kMillisecond, registry.full_snapshot());
  gauge.set(2);
  hist.record(1'000'000);
  store.roll(2 * sim::kMillisecond, registry.full_snapshot());

  EXPECT_EQ(store.gauge_level("port.r1_p1.queue_depth", 0), 2.0);
  EXPECT_EQ(store.gauge_level("port.r1_p1.queue_depth", 1), 5.0);
  const auto* w0 = store.histogram_window("port.r1_p1.queue_wait_ps", 0);
  const auto* w1 = store.histogram_window("port.r1_p1.queue_wait_ps", 1);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  // The second window contains only the one new sample.
  EXPECT_EQ(w0->count, 1u);
  EXPECT_EQ(w0->sum, 1'000'000u);
  EXPECT_EQ(w1->count, 2u);
  EXPECT_EQ(w1->sum, 300u);
}

TEST(SeriesStore, FractionAboveInterpolatesWithinBucket) {
  stats::HistogramSnapshot window;
  stats::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  window = h.snapshot();
  EXPECT_DOUBLE_EQ(health::fraction_above(window, 1u << 20), 0.0);
  EXPECT_DOUBLE_EQ(health::fraction_above(window, 0), 1.0);
  // Half the samples exceed 50; the straddling [32,63] bucket is shared
  // pro-rata, so the estimate lands near 0.5 (within one bucket's error).
  const double mid = health::fraction_above(window, 50);
  EXPECT_NEAR(mid, 0.5, 0.07);
  EXPECT_DOUBLE_EQ(health::fraction_above(stats::HistogramSnapshot{}, 10),
                   0.0);
}

// --- detectors -------------------------------------------------------------

TEST(ThresholdDetectorSuite, HysteresisHoldsBreachUntilClearLimit) {
  health::ThresholdDetector detector({.limit = 5.0, .clear_limit = 1.0});
  EXPECT_FALSE(detector.evaluate(4.9).breach);
  EXPECT_TRUE(detector.evaluate(5.0).breach);
  // Dips below the breach limit but above clear: still breached.
  EXPECT_TRUE(detector.evaluate(3.0).breach);
  EXPECT_FALSE(detector.evaluate(1.0).breach);
  EXPECT_FALSE(detector.evaluate(4.0).breach);
}

TEST(EwmaDetectorSuite, WarmupAbsorbsColdStart) {
  health::EwmaConfig config;
  config.warmup = 3;
  config.min_deviation = 1.0;
  health::EwmaDetector detector(config);
  // A wild cold-start spike inside warmup must not breach.
  EXPECT_FALSE(detector.evaluate(1000.0).breach);
  EXPECT_FALSE(detector.evaluate(0.0).breach);
  EXPECT_FALSE(detector.evaluate(0.0).breach);
}

TEST(EwmaDetectorSuite, SurgeBreachesAndBaselineFreezes) {
  health::EwmaConfig config;
  config.warmup = 3;
  config.sigmas = 4.0;
  config.clear_sigmas = 2.0;
  config.min_deviation = 5.0;
  config.min_sigma = 1.0;
  health::EwmaDetector detector(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.evaluate(10.0).breach) << "window " << i;
  }
  const double baseline = detector.mean();
  EXPECT_NEAR(baseline, 10.0, 1e-9);

  // Sustained 10x surge: breaches immediately and stays breached, and the
  // frozen baseline never learns the surge as normal.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(detector.evaluate(100.0).breach) << "window " << i;
  }
  EXPECT_NEAR(detector.mean(), baseline, 1e-9);
  // Recovery clears.
  EXPECT_FALSE(detector.evaluate(10.0).breach);
}

TEST(EwmaDetectorSuite, MinDeviationFloorsZeroVarianceBaselines) {
  health::EwmaConfig config;
  config.warmup = 3;
  config.min_deviation = 8.0;
  config.min_sigma = 0.5;
  health::EwmaDetector detector(config);
  for (int i = 0; i < 10; ++i) detector.evaluate(0.0);
  // A 4-event blip is many sigmas above an all-zero baseline but below
  // the absolute floor: no page.
  EXPECT_FALSE(detector.evaluate(4.0).breach);
  EXPECT_TRUE(detector.evaluate(50.0).breach);
}

TEST(BurnRateDetectorSuite, FiresOnBudgetBurnSkipsQuietWindows) {
  health::BurnRateDetector detector({.objective = 1000,
                                     .error_budget = 0.01,
                                     .burn_limit = 10.0,
                                     .clear_burn = 1.0,
                                     .min_samples = 8});
  stats::Histogram slow;
  for (int i = 0; i < 50; ++i) slow.record(i < 40 ? 100 : 1'000'000);
  // 20% of samples over a 1% budget: burn 20x.
  auto verdict = detector.evaluate(slow.snapshot());
  EXPECT_TRUE(verdict.breach);
  EXPECT_NEAR(verdict.score, 20.0, 0.5);

  // A window below min_samples keeps the current state.
  stats::Histogram quiet;
  quiet.record(1'000'000);
  EXPECT_TRUE(detector.evaluate(quiet.snapshot()).breach);

  stats::Histogram healthy;
  for (int i = 0; i < 50; ++i) healthy.record(100);
  EXPECT_FALSE(detector.evaluate(healthy.snapshot()).breach);
}

// --- alert lifecycle -------------------------------------------------------

health::Verdict breach(double value) { return {true, value, value}; }
health::Verdict clear(double value = 0.0) { return {false, value, value}; }

TEST(AlertLifecycle, PendingDebounceThenFiringThenResolved) {
  health::AlertEngine engine({.for_windows = 2, .clear_windows = 2});
  const auto rule = engine.add_rule({.alert = "LinkWireLoss",
                                     .component = "r2",
                                     .port = "r2:p2",
                                     .metric = "port.r2_p2.wire_loss"});

  EXPECT_FALSE(engine.observe(rule, 10, clear()));
  EXPECT_TRUE(engine.observe(rule, 20, breach(3)));
  EXPECT_EQ(engine.alert(rule).state, health::AlertState::kPending);
  EXPECT_TRUE(engine.observe(rule, 30, breach(5)));
  EXPECT_EQ(engine.alert(rule).state, health::AlertState::kFiring);
  EXPECT_EQ(engine.alert(rule).pending_since, 20);
  EXPECT_EQ(engine.alert(rule).firing_since, 30);

  // One clear window is not enough; a breach resets the clear streak.
  EXPECT_FALSE(engine.observe(rule, 40, clear()));
  EXPECT_FALSE(engine.observe(rule, 50, breach(2)));
  EXPECT_FALSE(engine.observe(rule, 60, clear()));
  EXPECT_TRUE(engine.observe(rule, 70, clear()));
  EXPECT_EQ(engine.alert(rule).state, health::AlertState::kResolved);
  EXPECT_EQ(engine.alert(rule).resolved_at, 70);
  EXPECT_EQ(engine.alert(rule).peak_score, 5.0);
  ASSERT_EQ(engine.fired().size(), 1u);
}

TEST(AlertLifecycle, SubDebounceBlipNeverFires) {
  health::AlertEngine engine({.for_windows = 3, .clear_windows = 1});
  const auto rule = engine.add_rule({.alert = "QueueWaitSurge",
                                     .component = "r1",
                                     .port = "",
                                     .metric = "port.r1_p1.queue_wait_ps"});
  EXPECT_TRUE(engine.observe(rule, 10, breach(1)));
  EXPECT_FALSE(engine.observe(rule, 20, breach(1)));
  EXPECT_TRUE(engine.observe(rule, 30, clear()));
  EXPECT_EQ(engine.alert(rule).state, health::AlertState::kInactive);
  EXPECT_TRUE(engine.fired().empty());
  EXPECT_TRUE(engine.firing().empty());
}

TEST(AlertLifecycle, ResolvedEpisodeCanRefire) {
  health::AlertEngine engine({.for_windows = 1, .clear_windows = 1});
  const auto rule = engine.add_rule({.alert = "TokenRejects",
                                     .component = "r2",
                                     .port = "",
                                     .metric = "viper.r2.token_rejected"});
  EXPECT_TRUE(engine.observe(rule, 10, breach(4)));
  EXPECT_TRUE(engine.observe(rule, 20, clear()));
  EXPECT_EQ(engine.alert(rule).state, health::AlertState::kResolved);
  EXPECT_TRUE(engine.observe(rule, 30, breach(9)));
  EXPECT_EQ(engine.alert(rule).state, health::AlertState::kFiring);
  EXPECT_EQ(engine.alert(rule).firing_since, 30);
  // Both firings are recorded, same cell.
  EXPECT_EQ(engine.fired().size(), 2u);
  EXPECT_EQ(engine.alert(rule).events.size(), 3u);
}

// --- ground-truth chaos scoring --------------------------------------------

/// Which single fault lane a scoring run drives (kNone = the paired
/// fault-free control run).
enum class Lane { kNone, kDrop, kFlap, kPoisonFlag, kPoisonForget };

constexpr sim::Time kWindow = 10 * sim::kMillisecond;
constexpr sim::Time kTrafficEnd = 600 * sim::kMillisecond;
constexpr sim::Time kRunEnd = 700 * sim::kMillisecond;
constexpr sim::Time kFaultAt = 250 * sim::kMillisecond;
constexpr sim::Time kFlapFor = 60 * sim::kMillisecond;

struct HealthRun {
  std::vector<health::AlertLabels> fired;
  std::string alerts_json;
  std::string alerts_prom;
  int ok = 0;
  std::uint64_t windows = 0;
};

/// Line fabric client — r1 — r2 — r3 — server under VMTP echo traffic;
/// every fault lane targets router r2 (its egress port r2:p2 toward r3),
/// so ground truth for localization is always "r2".
HealthRun run_health_chaos(Lane lane, std::uint64_t seed) {
  sim::Simulator sim;
  stats::Registry registry;
  obs::FlightRecorder recorder;
  flow::FlowPlane flow_plane({}, &registry, &recorder);
  const obs::Observer observer{&registry, &recorder, &flow_plane};

  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.health");
  auto& server_host = fabric.add_host("server.health");
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& r3 = fabric.add_router("r3");
  fabric.connect(client_host, r1);
  fabric.connect(r1, r2);
  fabric.connect(r2, r3);
  fabric.connect(r3, server_host);

  fabric.enable_tokens(0x8EA17, /*enforce=*/true,
                       tokens::UncachedPolicy::kOptimistic);
  fabric.enable_observability(observer);
  health::HealthConfig config;
  config.series.window = kWindow;
  config.policy = {.for_windows = 2, .clear_windows = 2};
  auto& monitor = fabric.enable_health(config);

  fault::FaultPlan plan;
  plan.seed = seed;
  if (lane == Lane::kDrop) plan.lane("r2:p2").drop_rate = 0.25;
  if (lane == Lane::kPoisonFlag) {
    plan.token_poisons_per_second = 300.0;
    plan.token_poison_flag = true;
  }
  if (lane == Lane::kPoisonForget) {
    plan.token_poisons_per_second = 4000.0;
    plan.token_poison_flag = false;
  }
  stats::Registry fault_stats;  // ground truth stays out of health's sight
  fault::FaultEngine engine(sim, plan, fault_stats);
  if (lane == Lane::kDrop) engine.attach(r2.port(2));
  if (lane == Lane::kFlap) {
    engine.schedule_flap(r2.port(2), kFaultAt, kFlapFor);
  }
  if (lane == Lane::kPoisonFlag) {
    engine.attach_token_cache("r2", r2.token_cache());
  }
  if (lane == Lane::kPoisonForget) {
    // Attach mid-run: the poison process starts after the miss-rate
    // baseline has settled, so the surge is a deviation, not the norm.
    sim.at(kFaultAt, [&engine, &r2] {
      engine.attach_token_cache("r2", r2.token_cache());
    });
  }

  vmtp::VmtpConfig vconfig;
  vconfig.max_retries = 6;
  auto client =
      std::make_unique<vmtp::VmtpEndpoint>(sim, client_host, 0xC1, vconfig);
  auto server =
      std::make_unique<vmtp::VmtpEndpoint>(sim, server_host, 0x5E, vconfig);
  server->serve(
      [](std::span<const std::uint8_t> req, const viper::Delivery&) {
        return wire::Bytes(req.begin(), req.end());
      });

  dir::RouteCacheConfig cache_config;
  cache_config.ttl = kRunEnd;
  dir::RouteCache& cache = fabric.route_cache(client_host, cache_config);
  client->set_failure_hook([&] { cache.report_failure("server.health"); });

  HealthRun run;
  dir::QueryOptions q;
  q.dest_endpoint = 0x5E;
  sim::Rng traffic_rng(seed * 977 + 3);
  test::drive(sim, 1, kTrafficEnd, [&]() -> sim::Time {
    const auto route = cache.route_to("server.health", q);
    if (route.has_value()) {
      const wire::Bytes request = pattern_bytes(
          64 + traffic_rng.uniform_int(0, 900),
          static_cast<std::uint8_t>(traffic_rng.uniform_int(0, 255)));
      client->invoke(*route, 0x5E, request, [&run](vmtp::Result r) {
        if (r.ok) ++run.ok;
      });
    }
    return static_cast<sim::Time>(200 * sim::kMicrosecond +
                                  traffic_rng.uniform_int(
                                      0, 300 * sim::kMicrosecond));
  });
  sim.run_until(kRunEnd);

  for (const health::Alert* alert : monitor.engine().fired()) {
    run.fired.push_back(alert->labels);
  }
  run.alerts_json = health::to_alerts_json(monitor);
  run.alerts_prom = health::to_prometheus_alerts(monitor.engine());
  run.windows = monitor.series().windows();
  return run;
}

/// True when some fired alert has @p name and names @p component.
bool fired_at(const HealthRun& run, const std::string& name,
              const std::string& component) {
  for (const auto& labels : run.fired) {
    if (labels.alert == name && labels.component == component) return true;
  }
  return false;
}

/// All fired alerts named @p name point at @p component (localization
/// precision for that detector class).
bool fired_only_at(const HealthRun& run, const std::string& name,
                   const std::string& component) {
  for (const auto& labels : run.fired) {
    if (labels.alert == name && labels.component != component) return false;
  }
  return true;
}

TEST(HealthGroundTruth, FaultFreeRunRaisesNoAlerts) {
  const auto run = run_health_chaos(Lane::kNone, 0xBA5E);
  EXPECT_GT(run.ok, 1000);
  EXPECT_GE(run.windows, 60u);
  // Precision 1.0: zero alerts ever fired, and nothing left pending.
  EXPECT_TRUE(run.fired.empty())
      << "false alert: " << run.fired.front().alert << " on "
      << run.fired.front().metric;
  EXPECT_EQ(run.alerts_prom,
            "# TYPE ALERTS gauge\n# TYPE ALERTS_FOR_STATE gauge\n");
}

TEST(HealthGroundTruth, FaultFreeAlertStateIsByteIdenticalAcrossReruns) {
  const auto first = run_health_chaos(Lane::kNone, 0xBA5E);
  const auto second = run_health_chaos(Lane::kNone, 0xBA5E);
  EXPECT_EQ(first.alerts_json, second.alerts_json);
  EXPECT_EQ(first.ok, second.ok);
}

TEST(HealthGroundTruth, DropBurstDetectedAndLocalized) {
  const auto run = run_health_chaos(Lane::kDrop, 0xD201);
  EXPECT_TRUE(fired_at(run, "LinkWireLoss", "r2")) << run.alerts_json;
  // The wire-loss conservation residue is per-port: only the attacked
  // port's series may accuse, and it must name the right port.
  EXPECT_TRUE(fired_only_at(run, "LinkWireLoss", "r2"));
  for (const auto& labels : run.fired) {
    if (labels.alert == "LinkWireLoss") {
      EXPECT_EQ(labels.port, "r2:p2");
    }
  }
}

TEST(HealthGroundTruth, LinkFlapDetectedAndLocalized) {
  const auto run = run_health_chaos(Lane::kFlap, 0xF1A9);
  EXPECT_TRUE(fired_at(run, "LinkDown", "r2")) << run.alerts_json;
  EXPECT_TRUE(fired_only_at(run, "LinkDown", "r2"));
  EXPECT_TRUE(fired_only_at(run, "LinkDownDrops", "r2"));
}

TEST(HealthGroundTruth, TokenPoisonFlagDetectedAndLocalized) {
  const auto run = run_health_chaos(Lane::kPoisonFlag, 0x9015);
  EXPECT_TRUE(fired_at(run, "TokenRejects", "r2")) << run.alerts_json;
  EXPECT_TRUE(fired_only_at(run, "TokenRejects", "r2"));
}

TEST(HealthGroundTruth, TokenPoisonForgetDetectedAndLocalized) {
  const auto run = run_health_chaos(Lane::kPoisonForget, 0x4063);
  EXPECT_TRUE(fired_at(run, "TokenMissSurge", "r2")) << run.alerts_json;
  EXPECT_TRUE(fired_only_at(run, "TokenMissSurge", "r2"));
}

TEST(HealthGroundTruth, FaultedRunAlertsAreDeterministic) {
  test::expect_deterministic([] {
    const auto run = run_health_chaos(Lane::kDrop, 0xD201);
    return run.alerts_json;
  });
}

// --- exports ---------------------------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name;
}

void expect_golden_text(const std::string& name, const std::string& text) {
  if (std::getenv("GOLDEN_REGEN") != nullptr) {
    std::ofstream out(golden_path(name), std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << "regen failed for " << name;
    return;
  }
  std::ifstream in(golden_path(name), std::ios::binary);
  ASSERT_TRUE(in) << name << " missing — run with GOLDEN_REGEN=1";
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(text, golden) << "exporter output drifted from " << name;
}

/// A small deterministic monitor run: token rejects at r2 breach a
/// threshold rule, fire, then resolve.
TEST(HealthExportGolden, PromAndJsonMatchGoldens) {
  sim::Simulator sim;
  stats::Registry registry;
  health::HealthConfig config;
  config.series.window = 10 * sim::kMillisecond;
  config.policy = {.for_windows = 2, .clear_windows = 2};
  health::HealthMonitor monitor(sim, registry, config);
  monitor.map_router(2, "r2");

  auto& rejected = registry.counter("viper.r2.token_rejected");
  auto& wait = registry.histogram("port.r2_p1.queue_wait_ps");
  std::uint64_t window = 0;
  const auto step = [&](std::uint64_t rejects) {
    ++window;
    rejected.add(rejects);
    wait.record(2000 + 17 * window);
    sim.run_until(static_cast<sim::Time>(window) * config.series.window);
    monitor.tick();
  };
  step(0);
  step(0);                              // baseline
  step(12);                             // breach 1 -> pending
  step(9);                              // breach 2 -> firing (prom snapshot)
  const std::string prom = health::to_prometheus_alerts(monitor.engine());
  step(0);
  step(0);                              // two clears -> resolved
  const std::string json = health::to_alerts_json(monitor);

  expect_golden_text("health.prom", prom);
  expect_golden_text("health.json", json);
}

}  // namespace
}  // namespace srp
