// Integration tests for Sirpent-over-IP (paper §2.3): the IP internetwork
// as one logical hop of a Sirpent source route, including return routes
// through the tunnel and IP fragmentation underneath it.
#include <gtest/gtest.h>

#include <optional>

#include "interop/ip_gateway.hpp"
#include "ip/builder.hpp"
#include "net/network.hpp"
#include "test_util.hpp"
#include "viper/host.hpp"
#include "viper/router.hpp"

namespace srp::interop {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;

/// Mixed internetwork:
///
///   alice -- GW1(viper router + ip host) == ip cloud (2 IP routers) ==
///   GW2(ip host + viper router) -- bob
///
/// The IP cloud uses its own addressing and routing; the Sirpent route
/// crosses it with a single tunnel segment.
struct MixedNet {
  sim::Simulator sim;
  net::Network net{sim};
  viper::ViperHost* alice = nullptr;
  viper::ViperRouter* gw1 = nullptr;
  viper::ViperRouter* gw2 = nullptr;
  viper::ViperHost* bob = nullptr;
  ip::IpHost* gw1_ip = nullptr;
  ip::IpHost* gw2_ip = nullptr;
  ip::IpRouter* ipr1 = nullptr;
  ip::IpRouter* ipr2 = nullptr;
  std::unique_ptr<IpTunnel> tunnel1;
  std::unique_ptr<IpTunnel> tunnel2;

  static constexpr ip::Addr kGw1Addr = 0x0A010001;
  static constexpr ip::Addr kGw2Addr = 0x0A020001;
  static constexpr std::uint8_t kTunnelPort = 200;

  explicit MixedNet(std::size_t cloud_mtu = 1500) {
    alice = &net.add<viper::ViperHost>("alice", net.packets());
    gw1 = &net.add<viper::ViperRouter>("gw1", viper::RouterConfig{});
    gw2 = &net.add<viper::ViperRouter>("gw2", viper::RouterConfig{});
    bob = &net.add<viper::ViperHost>("bob", net.packets());
    gw1_ip = &net.add<ip::IpHost>("gw1-ip", net.packets(),
                                  ip::IpHostConfig{kGw1Addr,
                                                   500 * sim::kMillisecond,
                                                   64, 64});
    gw2_ip = &net.add<ip::IpHost>("gw2-ip", net.packets(),
                                  ip::IpHostConfig{kGw2Addr,
                                                   500 * sim::kMillisecond,
                                                   64, 64});
    ipr1 = &net.add<ip::IpRouter>("ipr1", net.packets(),
                                  ip::IpRouterConfig{0x0A0100FE});
    ipr2 = &net.add<ip::IpRouter>("ipr2", net.packets(),
                                  ip::IpRouterConfig{0x0A0200FE});

    const net::LinkConfig edge{1e9, 5 * sim::kMicrosecond, 1500};
    const net::LinkConfig cloud{1e9, 20 * sim::kMicrosecond, cloud_mtu};
    net.duplex(*alice, *gw1, edge);    // gw1 port 1
    net.duplex(*gw2, *bob, edge);      // gw2 port 1
    net.duplex(*gw1_ip, *ipr1, cloud); // ip hosts' port 1
    net.duplex(*ipr1, *ipr2, cloud);
    net.duplex(*ipr2, *gw2_ip, cloud);
    // Static IP routes across the cloud.
    ipr1->add_connected(kGw1Addr, 1);
    ipr1->table()[kGw2Addr] = ip::RouteEntry{2, 2, true, 0};
    ipr2->table()[kGw1Addr] = ip::RouteEntry{1, 2, true, 0};
    ipr2->add_connected(kGw2Addr, 2);

    tunnel1 = std::make_unique<IpTunnel>(*gw1, *gw1_ip, kTunnelPort);
    tunnel2 = std::make_unique<IpTunnel>(*gw2, *gw2_ip, kTunnelPort);
  }

  /// alice -> bob: tunnel segment at gw1, then bob behind gw2 port 1.
  core::SourceRoute forward_route() const {
    core::SourceRoute route;
    core::HeaderSegment tunnel_seg;
    tunnel_seg.port = kTunnelPort;
    tunnel_seg.port_info = encode_tunnel_info(kGw2Addr);
    route.segments = {tunnel_seg, p2p_segment(1), local_segment()};
    return route;
  }
};

TEST(IpTunnelInfo, RoundTripAndRejects) {
  const wire::Bytes info = encode_tunnel_info(0x0A020001);
  EXPECT_EQ(info.size(), 5u);
  const auto back = decode_tunnel_info(info);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, 0x0A020001u);
  EXPECT_FALSE(decode_tunnel_info({}).has_value());
  EXPECT_FALSE(decode_tunnel_info({0x49, 1, 2}).has_value());
  EXPECT_FALSE(decode_tunnel_info({0x50, 1, 2, 3, 4}).has_value());
}

TEST(SirpentOverIp, CrossesTheCloudAndBack) {
  MixedNet m;
  std::optional<viper::Delivery> at_bob;
  m.bob->set_default_handler([&](const viper::Delivery& d) { at_bob = d; });

  const wire::Bytes payload = pattern_bytes(300);
  m.alice->send(m.forward_route(), payload);
  m.sim.run();

  ASSERT_TRUE(at_bob.has_value());
  EXPECT_EQ(at_bob->data, payload);
  EXPECT_EQ(m.tunnel1->stats().encapsulated, 1u);
  EXPECT_EQ(m.tunnel2->stats().decapsulated, 1u);

  // The return route's tunnel entry points back at gw1's address.
  bool tunnel_entry_found = false;
  for (const auto& seg : at_bob->return_route.segments) {
    const auto far = decode_tunnel_info(seg.port_info);
    if (far.has_value()) {
      tunnel_entry_found = true;
      EXPECT_EQ(*far, MixedNet::kGw1Addr);
      EXPECT_EQ(seg.port, MixedNet::kTunnelPort);
    }
  }
  EXPECT_TRUE(tunnel_entry_found);

  // The reply tunnels back across the IP cloud.
  std::optional<viper::Delivery> at_alice;
  m.alice->set_default_handler(
      [&](const viper::Delivery& d) { at_alice = d; });
  m.bob->reply(*at_bob, pattern_bytes(40));
  m.sim.run();
  ASSERT_TRUE(at_alice.has_value());
  EXPECT_EQ(at_alice->data, pattern_bytes(40));
  EXPECT_EQ(m.tunnel2->stats().encapsulated, 1u);
  EXPECT_EQ(m.tunnel1->stats().decapsulated, 1u);
}

TEST(SirpentOverIp, IpFragmentationUnderneathIsTransparent) {
  MixedNet m(/*cloud_mtu=*/512);  // VIPER packet won't fit one datagram
  std::optional<viper::Delivery> at_bob;
  m.bob->set_default_handler([&](const viper::Delivery& d) { at_bob = d; });

  const wire::Bytes payload = pattern_bytes(1200);
  m.alice->send(m.forward_route(), payload);
  m.sim.run();

  ASSERT_TRUE(at_bob.has_value());
  EXPECT_EQ(at_bob->data, payload);
  // The cloud fragmented and the far IP host reassembled.
  EXPECT_GT(m.ipr1->stats().fragments_created, 0u);
  EXPECT_EQ(m.gw2_ip->stats().reassembled, 1u);
}

TEST(SirpentOverIp, BadTunnelInfoCounted) {
  MixedNet m;
  core::SourceRoute route;
  core::HeaderSegment bad;
  bad.port = MixedNet::kTunnelPort;
  bad.port_info = {0x49, 0x01};  // malformed: too short
  route.segments = {bad, test::local_segment()};
  m.alice->send(route, pattern_bytes(10));
  m.sim.run();
  EXPECT_EQ(m.tunnel1->stats().bad_tunnel_info, 1u);
  EXPECT_EQ(m.tunnel2->stats().decapsulated, 0u);
}

TEST(SirpentOverIp, HopCountIsLogicalNotPhysical) {
  // The paper's point: the whole IP cloud is ONE Sirpent hop, so the
  // VIPER header carries one tunnel segment regardless of how many IP
  // routers sit inside.
  MixedNet m;
  std::optional<viper::Delivery> at_bob;
  m.bob->set_default_handler([&](const viper::Delivery& d) { at_bob = d; });
  m.alice->send(m.forward_route(), pattern_bytes(64));
  m.sim.run();
  ASSERT_TRUE(at_bob.has_value());
  // Return route: gw2's tunnel entry + gw1's... the forward path consumed
  // two Sirpent segments (tunnel at gw1, port 1 at gw2), so the return
  // route is 2 entries + the local segment.
  EXPECT_EQ(at_bob->return_route.segments.size(), 3u);
}

}  // namespace
}  // namespace srp::interop
