// Bounded model checker tests (src/mc, DESIGN.md §10): exhaustive
// verification of the three shipped transition cores, the mutation
// self-test (every deliberately broken core variant must be caught with
// the expected invariant), counterexample JSON round-trips, livelock
// detection on a synthetic lasso, and replay of the frozen counterexamples
// under tests/mc_regress/ through the *real* simulator via the
// counterexample → FaultPlan converter.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "congestion/throttle.hpp"
#include "directory/fabric.hpp"
#include "fault/engine.hpp"
#include "mc/counterexample.hpp"
#include "mc/explorer.hpp"
#include "mc/model.hpp"
#include "mc/mutants.hpp"
#include "mc/replay.hpp"
#include "mc/throttle_model.hpp"
#include "mc/token_model.hpp"
#include "mc/vmtp_model.hpp"
#include "stats/registry.hpp"
#include "tokens/cache.hpp"
#include "transport/vmtp.hpp"

namespace srp::mc {
namespace {

/// The models one machine presents (token has one per uncached policy),
/// with @p m's broken core plugged in (nullptr = all real cores).
std::vector<std::unique_ptr<Model>> models_for(const std::string& machine,
                                               const Mutant* m = nullptr) {
  std::vector<std::unique_ptr<Model>> models;
  if (machine == "vmtp") {
    models.push_back(std::make_unique<VmtpModel>(
        VmtpScenario{},
        (m != nullptr && m->txn != nullptr) ? m->txn : &vmtp::txn_step,
        (m != nullptr && m->rx != nullptr) ? m->rx : &vmtp::rx_step));
  } else if (machine == "token") {
    for (const auto policy :
         {tokens::UncachedPolicy::kOptimistic, tokens::UncachedPolicy::kBlocking,
          tokens::UncachedPolicy::kDrop}) {
      TokenScenario scenario;
      scenario.policy = policy;
      models.push_back(std::make_unique<TokenModel>(
          scenario,
          (m != nullptr && m->token != nullptr) ? m->token
                                                : &tokens::token_step));
    }
  } else if (machine == "throttle") {
    models.push_back(std::make_unique<ThrottleModel>(
        ThrottleScenario{}, (m != nullptr && m->throttle != nullptr)
                                ? m->throttle
                                : &cc::throttle_step));
  }
  return models;
}

ExploreResult explore_at(const Model& model, int depth) {
  ExplorerConfig config;
  config.max_depth = depth;
  return explore(model, config);
}

// --- Exhaustive verification of the real cores -------------------------
//
// These are the PR's headline claims: at depth 8 every interleaving of
// loss / duplication / corruption / timer fires within the scenario
// budgets upholds every invariant.  Visited-state counts go to the test
// log (and the XML via RecordProperty) so CI shows the search was real.

TEST(Exhaustive, VmtpRealCoreHoldsAllInvariantsAtDepth8) {
  const auto models = models_for("vmtp");
  ASSERT_EQ(models.size(), 1u);
  const ExploreResult result = explore_at(*models[0], 8);
  ASSERT_TRUE(result.ok()) << result.violation->invariant;
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.depth_reached, 8);
  // The interleaving space is genuinely large: tens of thousands of
  // distinct protocol states, not a handful of happy paths.
  EXPECT_GT(result.states_visited, 10'000u);
  ::testing::Test::RecordProperty("vmtp_states",
                                  static_cast<int>(result.states_visited));
  std::printf("[ mc ] vmtp depth=8: %zu states, %zu transitions\n",
              result.states_visited, result.transitions);
}

TEST(Exhaustive, TokenRealCoreHoldsAllInvariantsEveryPolicy) {
  for (const auto& model : models_for("token")) {
    const ExploreResult result = explore_at(*model, 10);
    ASSERT_TRUE(result.ok()) << result.violation->invariant;
    EXPECT_GT(result.states_visited, 10u);
    std::printf("[ mc ] token depth=10: %zu states, %zu transitions\n",
                result.states_visited, result.transitions);
  }
}

TEST(Exhaustive, ThrottleRealCoreHoldsAllInvariantsAtDepth10) {
  const auto models = models_for("throttle");
  const ExploreResult result = explore_at(*models[0], 10);
  ASSERT_TRUE(result.ok()) << result.violation->invariant;
  EXPECT_GT(result.states_visited, 50u);
  std::printf("[ mc ] throttle depth=10: %zu states, %zu transitions\n",
              result.states_visited, result.transitions);
}

// --- Mutation self-test ------------------------------------------------

TEST(Mutation, EveryMutantCaughtWithExpectedInvariant) {
  for (const Mutant& m : all_mutants()) {
    std::optional<Violation> found;
    const Model* found_in = nullptr;
    const auto models = models_for(m.machine, &m);
    ExploreResult result;
    for (const auto& model : models) {
      result = explore_at(*model, 8);
      if (!result.ok()) {
        found = result.violation;
        found_in = model.get();
        break;
      }
    }
    ASSERT_TRUE(found.has_value()) << m.id << " not caught at depth 8";
    EXPECT_EQ(found->invariant, m.expect_invariant) << m.id;

    // The minimized trace must still be legal and still violate.
    const Violation minimized = minimize(*found_in, *found);
    EXPECT_LE(minimized.trace.size(), found->trace.size()) << m.id;
    const auto end = replay(*found_in, minimized.trace);
    ASSERT_TRUE(end.has_value()) << m.id;
    EXPECT_EQ(found_in->check(*end), m.expect_invariant) << m.id;

    // And the frozen form round-trips byte-exactly through JSON.
    const CounterExample cx =
        make_counterexample(found_in->name(), m.id, minimized, result);
    const auto back = from_json(to_json(cx));
    ASSERT_TRUE(back.has_value()) << m.id;
    EXPECT_EQ(*back, cx) << m.id;
  }
}

TEST(Mutation, ExpectedInvariantsAreDeclaredByTheirModels) {
  for (const Mutant& m : all_mutants()) {
    const auto models = models_for(m.machine);
    bool declared = false;
    for (const auto& model : models) {
      for (const std::string& name : model->invariants()) {
        declared = declared || name == m.expect_invariant;
      }
    }
    EXPECT_TRUE(declared) << m.id << " expects undeclared invariant "
                          << m.expect_invariant;
  }
}

// --- Livelock detection ------------------------------------------------

/// A lasso: 0 → 1 ⇄ 2, with an optional exit 2 → 3 that raises progress.
/// Without the exit the 1 ⇄ 2 cycle cannot escape — a livelock.
class LassoModel final : public Model {
 public:
  explicit LassoModel(bool escape) : escape_(escape) {}

  [[nodiscard]] std::string name() const override { return "lasso"; }
  [[nodiscard]] StateBytes initial() const override { return state(0); }

  void enabled(const StateBytes& s,
               std::vector<Event>* events) const override {
    switch (at(s)) {
      case 0:
        events->push_back(Event{1, 0, 0, 0, "enter"});
        break;
      case 1:
        events->push_back(Event{2, 0, 0, 0, "spin-fwd"});
        break;
      case 2:
        events->push_back(Event{3, 0, 0, 0, "spin-back"});
        if (escape_) events->push_back(Event{4, 0, 0, 0, "exit"});
        break;
      case 3:
        break;
    }
  }

  [[nodiscard]] StateBytes apply(const StateBytes& s,
                                 const Event& event) const override {
    switch (event.code) {
      case 1:
        return state(1);
      case 2:
        return state(2);
      case 3:
        return state(1);
      case 4:
        return state(3);
    }
    return s;
  }

  [[nodiscard]] std::string check(const StateBytes&) const override {
    return "";
  }
  [[nodiscard]] bool terminal(const StateBytes& s) const override {
    return at(s) == 3;
  }
  [[nodiscard]] std::uint64_t progress(const StateBytes& s) const override {
    return at(s) == 3 ? 2 : (at(s) == 0 ? 0 : 1);
  }
  [[nodiscard]] std::vector<std::string> invariants() const override {
    return {"livelock"};
  }

 private:
  static StateBytes state(std::uint8_t v) {
    CanonicalWriter w;
    w.u8(v);
    return w.take();
  }
  static std::uint8_t at(const StateBytes& s) {
    return CanonicalReader(s).u8();
  }

  bool escape_;
};

TEST(Livelock, InescapableCycleReported) {
  const LassoModel stuck(/*escape=*/false);
  const ExploreResult result = explore_at(stuck, 8);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.violation->invariant, "livelock");
  // The trace walks into the cycle and around it once.
  EXPECT_GE(result.violation->trace.size(), 2u);
}

TEST(Livelock, EscapableCycleIsNotALivelock) {
  const LassoModel fine(/*escape=*/true);
  const ExploreResult result = explore_at(fine, 8);
  EXPECT_TRUE(result.ok()) << result.violation->invariant;
}

TEST(Livelock, DetectionCanBeDisabled) {
  const LassoModel stuck(/*escape=*/false);
  ExplorerConfig config;
  config.max_depth = 8;
  config.detect_livelock = false;
  EXPECT_TRUE(explore(stuck, config).ok());
}

// --- Explorer mechanics ------------------------------------------------

TEST(Explorer, MaxStatesTruncatesInsteadOfRunningAway) {
  const auto models = models_for("vmtp");
  ExplorerConfig config;
  config.max_depth = 8;
  config.max_states = 100;
  const ExploreResult result = explore(*models[0], config);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.states_visited, 100u);
}

TEST(Explorer, ReplayRejectsIllegalTraces) {
  const auto models = models_for("vmtp");
  std::vector<Event> junk;
  junk.push_back(Event{255, 9, 9, 9, "no-such-event"});
  EXPECT_FALSE(replay(*models[0], junk).has_value());
}

// --- Counterexample JSON -----------------------------------------------

TEST(CounterExampleJson, MalformedDocumentsRejected) {
  EXPECT_FALSE(from_json("").has_value());
  EXPECT_FALSE(from_json("{").has_value());
  EXPECT_FALSE(from_json("[]").has_value());
  EXPECT_FALSE(from_json("{\"model\": 3}").has_value());
  EXPECT_FALSE(from_json("{\"model\": \"x\"").has_value());
}

TEST(CounterExampleJson, LabelsWithEscapesRoundTrip) {
  CounterExample cx;
  cx.model = "vmtp";
  cx.invariant = "part-recorded";
  cx.events.push_back(Event{1, 2, 3, 4, "quote \" slash \\ newline \n"});
  const auto back = from_json(to_json(cx));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cx);
  EXPECT_EQ(back->events[0].label, cx.events[0].label);
}

// --- Counterexample → FaultPlan conversion -----------------------------

TEST(ReplayPlan, VmtpFaultEventsBecomeScriptedLanes) {
  CounterExample cx;
  cx.model = "vmtp";
  cx.events.push_back(Event{VmtpModel::kDeliver, 0, 0, 0, "deliver"});
  cx.events.push_back(Event{VmtpModel::kDrop, 0, 0, 3, "drop"});
  cx.events.push_back(Event{VmtpModel::kCorrupt, 0, 1, 1, "corrupt"});
  cx.events.push_back(Event{VmtpModel::kDup, 0, 0, 5, "dup"});
  ReplayBinding binding;
  binding.client_to_server_port = "c2s";
  binding.server_to_client_port = "s2c";
  const fault::FaultPlan plan = to_fault_plan(cx, binding);

  const auto& c2s = plan.per_port.at("c2s").script;
  ASSERT_EQ(c2s.size(), 2u);  // the delivery scripts nothing
  EXPECT_EQ(c2s[0].packet_index, 3u);
  EXPECT_EQ(c2s[0].action, fault::ScriptedFault::Action::kDrop);
  EXPECT_EQ(c2s[1].packet_index, 5u);
  EXPECT_EQ(c2s[1].action, fault::ScriptedFault::Action::kDuplicate);
  const auto& s2c = plan.per_port.at("s2c").script;
  ASSERT_EQ(s2c.size(), 1u);
  EXPECT_EQ(s2c[0].packet_index, 1u);
  EXPECT_EQ(s2c[0].action, fault::ScriptedFault::Action::kCorrupt);
}

TEST(ReplayPlan, TokenPoisonsBecomeScriptedPoisons) {
  CounterExample cx;
  cx.model = "token";
  cx.events.push_back(Event{TokenModel::kPacket, 0, 0, 0, "packet"});
  cx.events.push_back(Event{TokenModel::kPoisonFlag, 0, 0, 0, "flag"});
  cx.events.push_back(Event{TokenModel::kPoisonForget, 0, 0, 0, "forget"});
  ReplayBinding binding;
  const fault::FaultPlan plan = to_fault_plan(cx, binding);
  ASSERT_EQ(plan.scripted_poisons.size(), 2u);
  EXPECT_EQ(plan.scripted_poisons[0].at, binding.poison_at);
  EXPECT_TRUE(plan.scripted_poisons[0].flag);
  EXPECT_EQ(plan.scripted_poisons[1].at,
            binding.poison_at + binding.poison_spacing);
  EXPECT_FALSE(plan.scripted_poisons[1].flag);
}

// --- Frozen regression corpus (tests/mc_regress) -----------------------
//
// Each JSON under tests/mc_regress/ was frozen from the explorer
// (`mc_explore --mutant ID`).  The tests below prove the full loop: the
// trace is still a legal run of the mutated model ending in the expected
// violation, and — converted to a FaultPlan — it reproduces the defect in
// the real simulator on the mutated core while the real core sails
// through the identical faults.

CounterExample load_regress(const std::string& name) {
  const std::string path = std::string(MC_REGRESS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto cx = from_json(buffer.str());
  EXPECT_TRUE(cx.has_value()) << path;
  return cx.value_or(CounterExample{});
}

/// Frozen trace must replay legally on the mutated model and end in the
/// recorded violation (so the corpus cannot rot silently).
void expect_legal_on_mutant(const CounterExample& cx) {
  const Mutant& m = mutant(cx.mutant);
  for (const auto& model : models_for(m.machine, &m)) {
    if (model->name() != cx.model) continue;
    const auto end = replay(*model, cx.events);
    if (!end.has_value()) continue;  // other policy variant of same name
    if (model->check(*end) == cx.invariant) return;
  }
  FAIL() << cx.mutant << ": frozen trace no longer reaches "
         << cx.invariant;
}

/// One client/router/server VMTP world; returns the client result and
/// retransmission count after running under @p plan with @p hooks
/// (nullptr = real cores on both endpoints, otherwise installed on the
/// endpoint the mutant's machine half lives in — rx on the server,
/// txn on the client).
struct VmtpRun {
  std::optional<vmtp::Result> result;
  std::uint64_t retransmitted = 0;
};

VmtpRun run_vmtp_regress(const CounterExample& cx, bool use_mutant) {
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.mc");
  auto& r1 = fabric.add_router("r1");
  auto& server_host = fabric.add_host("server.mc");
  fabric.connect(client_host, r1);
  fabric.connect(r1, server_host);

  vmtp::VmtpConfig config;
  config.max_data_per_packet = 100;  // 160-byte request = 2-part group
  config.max_retries = 2;
  auto client =
      std::make_unique<vmtp::VmtpEndpoint>(sim, client_host, 0xC1, config);
  auto server =
      std::make_unique<vmtp::VmtpEndpoint>(sim, server_host, 0x5E, config);
  if (use_mutant) {
    const Mutant& m = mutant(cx.mutant);
    vmtp::VmtpEndpoint::CoreHooks hooks;
    if (m.txn != nullptr) hooks.txn = m.txn;
    if (m.rx != nullptr) hooks.rx = m.rx;
    client->set_core_hooks_for_test(hooks);
    server->set_core_hooks_for_test(hooks);
  }
  server->serve([](std::span<const std::uint8_t> request,
                   const viper::Delivery&) {
    return wire::Bytes(request.begin(), request.end());
  });

  ReplayBinding binding;
  binding.client_to_server_port = std::string(client_host.port(1).name());
  binding.server_to_client_port = std::string(server_host.port(1).name());
  const fault::FaultPlan plan = to_fault_plan(cx, binding);
  stats::Registry registry;
  fault::FaultEngine engine(sim, plan, registry);
  engine.attach(client_host.port(1));
  engine.attach(server_host.port(1));

  dir::QueryOptions options;
  options.dest_endpoint = 0x5E;
  const auto routes =
      fabric.directory().query(fabric.id_of(client_host), "server.mc",
                               options);
  VmtpRun run;
  if (routes.empty()) return run;
  const wire::Bytes request(160, 0x7A);
  client->invoke(routes.front(), 0x5E, request,
                 [&](vmtp::Result r) { run.result = std::move(r); });
  // Bounded horizon: a mutated server can NACK a stuck group forever.
  sim.run_until(sim::kSecond);
  run.retransmitted = client->stats().retransmitted_packets;
  return run;
}

TEST(Regress, VmtpRxMaskStuckFailsTransactionOnlyOnMutant) {
  const CounterExample cx = load_regress("vmtp-rx-mask-stuck.json");
  ASSERT_EQ(cx.mutant, "vmtp-rx-mask-stuck");
  ASSERT_EQ(cx.invariant, "part-recorded");
  expect_legal_on_mutant(cx);

  const VmtpRun broken = run_vmtp_regress(cx, /*use_mutant=*/true);
  ASSERT_TRUE(broken.result.has_value());
  EXPECT_FALSE(broken.result->ok);  // group never completes: timeout
  EXPECT_EQ(broken.result->error, "transaction timed out");

  const VmtpRun real = run_vmtp_regress(cx, /*use_mutant=*/false);
  ASSERT_TRUE(real.result.has_value());
  EXPECT_TRUE(real.result->ok);
  EXPECT_EQ(real.result->response.size(), 160u);
}

TEST(Regress, VmtpNackResendAllOverRetransmitsOnlyOnMutant) {
  const CounterExample cx = load_regress("vmtp-nack-resend-all.json");
  ASSERT_EQ(cx.mutant, "vmtp-nack-resend-all");
  ASSERT_EQ(cx.invariant, "retransmit-only-missing");
  expect_legal_on_mutant(cx);

  // Same scripted drops for both runs (taken from the trace's fault
  // events); both transactions succeed, but the mutant answers every
  // selective NACK with the full group.
  const VmtpRun real = run_vmtp_regress(cx, /*use_mutant=*/false);
  ASSERT_TRUE(real.result.has_value());
  EXPECT_TRUE(real.result->ok);
  const VmtpRun broken = run_vmtp_regress(cx, /*use_mutant=*/true);
  ASSERT_TRUE(broken.result.has_value());
  EXPECT_TRUE(broken.result->ok);
  EXPECT_GT(broken.retransmitted, real.retransmitted);
}

TEST(Regress, TokenFlaggedChargeLeaksOnlyOnMutant) {
  const CounterExample cx = load_regress("token-flagged-charge.json");
  ASSERT_EQ(cx.mutant, "token-flagged-charge");
  ASSERT_EQ(cx.invariant, "flagged-never-charged");
  expect_legal_on_mutant(cx);

  for (const bool use_mutant : {false, true}) {
    sim::Simulator sim;
    tokens::TokenCache cache;
    tokens::Ledger ledger;
    if (use_mutant) cache.set_step_for_test(mutant(cx.mutant).token);

    const fault::FaultPlan plan = to_fault_plan(cx, ReplayBinding{});
    ASSERT_EQ(plan.scripted_poisons.size(), 1u);
    EXPECT_TRUE(plan.scripted_poisons[0].flag);
    stats::Registry registry;
    fault::FaultEngine engine(sim, plan, registry);
    engine.attach_token_cache("r1", cache);

    // packet-arrives + verify-ok: optimistic admit settles its charge.
    tokens::TokenBody body;
    body.account = 7;
    body.byte_limit = 1000;
    const wire::Bytes token(40, 0x42);
    const auto settled = cache.store_and_settle(token, body, 125, &ledger);
    EXPECT_TRUE(settled.settled);
    EXPECT_EQ(ledger.usage(7).bytes, 125u);

    // poison-flag fires at the scripted instant.
    sim.run_until(2 * sim::kMillisecond);
    EXPECT_EQ(engine.count("r1", "token_poison"), 1u);

    // packet-arrives: the flagged entry must block the charge.
    const auto result = cache.charge(token, 125, ledger);
    if (use_mutant) {
      EXPECT_EQ(result, tokens::ChargeResult::kCharged);
      EXPECT_EQ(ledger.usage(7).bytes, 250u);  // the leak, reproduced
    } else {
      EXPECT_EQ(result, tokens::ChargeResult::kFlagged);
      EXPECT_EQ(ledger.usage(7).bytes, 125u);
    }
  }
}

TEST(Regress, ThrottleNoDecayNeverExpiresOnlyOnMutant) {
  const CounterExample cx = load_regress("throttle-no-decay.json");
  ASSERT_EQ(cx.mutant, "throttle-no-decay");
  ASSERT_EQ(cx.invariant, "throttle-expires");
  expect_legal_on_mutant(cx);
  // A throttle counterexample contains no wire faults to script.
  const fault::FaultPlan plan = to_fault_plan(cx, ReplayBinding{});
  EXPECT_TRUE(plan.scripted_poisons.empty());

  for (const bool use_mutant : {false, true}) {
    sim::Simulator sim;
    dir::Fabric fabric(sim);
    auto& host = fabric.add_host("h.mc");
    cc::ThrottleConfig config;
    config.ramp_interval = sim::kMillisecond;   // the model's tick
    config.flow_ttl = 2 * sim::kMillisecond;    // ThrottleScenario's TTL
    config.ramp_factor = 2.0;
    config.rate_ceiling_bps = 1500.0;
    cc::SourceThrottle throttle(sim, host, config);
    if (use_mutant) {
      throttle.set_step_for_test(mutant(cx.mutant).throttle);
    }

    cc::RateReport report;
    report.router_id = 1;
    report.port = 2;
    report.rate_bps = 1000.0;  // ThrottleScenario::report_rate_bps
    throttle.apply_report(report);
    EXPECT_EQ(throttle.active_flows(), 1u);

    sim.run_until(10 * sim::kMillisecond);  // trace drives 6 ticks; ample
    if (use_mutant) {
      EXPECT_EQ(throttle.active_flows(), 1u);  // soft state never expires
    } else {
      EXPECT_EQ(throttle.active_flows(), 0u);
    }
  }
}

}  // namespace
}  // namespace srp::mc
