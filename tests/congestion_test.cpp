// Tests for rate-based congestion control (paper §2.2): backpressure from
// a congested queue to upstream routers and source hosts, soft-state
// expiry, and the network-layer slow-start ramp.
#include <gtest/gtest.h>

#include <cmath>

#include "congestion/controller.hpp"
#include "congestion/messages.hpp"
#include "congestion/throttle.hpp"
#include "directory/fabric.hpp"
#include "test_util.hpp"

namespace srp::cc {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;

TEST(RateReportCodec, RoundTrip) {
  const RateReport report{42, 7, 1.25e8};
  const wire::Bytes bytes = encode_rate_report(report);
  const auto back = decode_rate_report(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, report);
}

TEST(RateReportCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_rate_report(wire::Bytes{}).has_value());
  EXPECT_FALSE(decode_rate_report(wire::Bytes{0x99, 1, 2}).has_value());
  // Valid tag but zero rate must be rejected.
  RateReport zero{1, 1, 0.0};
  wire::Bytes bytes = encode_rate_report(zero);
  EXPECT_FALSE(decode_rate_report(bytes).has_value());
}

/// Bottleneck fixture: source host -> r1 -> (slow link) -> r2 -> sink.
/// The source offers ~4x the bottleneck rate.
struct BottleneckTest : ::testing::Test {
  sim::Simulator sim;
  dir::Fabric fabric{sim};
  viper::ViperHost* src = nullptr;
  viper::ViperRouter* r1 = nullptr;
  viper::ViperRouter* r2 = nullptr;
  viper::ViperHost* dst = nullptr;
  core::SourceRoute route;
  std::size_t max_queue_packets = 0;
  int delivered = 0;

  static constexpr double kBottleneck = 1e8;  // 100 Mb/s
  static constexpr std::size_t kPacket = 1000;

  void build(bool with_cc) {
    dir::LinkParams fast;
    fast.rate_bps = 1e9;
    dir::LinkParams slow;
    slow.rate_bps = kBottleneck;
    // src -(fast)- r1 -(slow, the bottleneck at r1 port 2)- r2 -(slow)- dst
    test::Line line = test::build_line(
        fabric, 2, "src.test", "dst.test", {},
        [&](int hop) { return hop == 0 ? fast : slow; });
    src = line.src;
    r1 = &line.router(0);
    r2 = &line.router(1);
    dst = line.dst;
    if (with_cc) {
      ControllerConfig config;
      config.interval = sim::kMillisecond;
      config.queue_watermark_bytes = 16'000;
      fabric.enable_congestion_control(config);
    }
    route = test::line_route(2);
    dst->set_default_handler([this](const viper::Delivery&) { ++delivered; });
    r1->port(2).on_queue_change = [this](sim::Time, std::size_t n) {
      max_queue_packets = std::max(max_queue_packets, n);
    };
  }

  /// Source pump: offers a packet every @p interval, consulting the
  /// throttle when congestion control is on (a rate-based transport).
  void pump(sim::Time interval, sim::Time until) {
    const FlowKey key{fabric.id_of(*r1), 2};
    test::drive(sim, 1, until, [this, key, interval]() -> sim::Time {
      SourceThrottle* throttle = fabric.throttle_of(*src);
      sim::Time when = sim.now();
      if (throttle != nullptr) {
        when = throttle->acquire(key, kPacket);
      }
      sim.at(std::max(when, sim.now()), [this] {
        src->send(route, pattern_bytes(kPacket));
      });
      return std::max(when, sim.now()) + interval - sim.now();
    });
  }
};

TEST_F(BottleneckTest, WithoutControlQueueGrowsUnbounded) {
  build(/*with_cc=*/false);
  pump(20 * sim::kMicrosecond, 100 * sim::kMillisecond);  // ~400 Mb/s offered
  sim.run_until(100 * sim::kMillisecond);
  // Offered 4x capacity for 100 ms: the queue holds thousands of packets.
  EXPECT_GT(max_queue_packets, 1000u);
}

TEST_F(BottleneckTest, BackpressureBoundsQueueAndHoldsThroughput) {
  build(/*with_cc=*/true);
  pump(20 * sim::kMicrosecond, 200 * sim::kMillisecond);
  sim.run_until(220 * sim::kMillisecond);

  SourceThrottle* throttle = fabric.throttle_of(*src);
  ASSERT_NE(throttle, nullptr);
  EXPECT_GT(throttle->stats().reports_received, 0u);
  EXPECT_GT(throttle->stats().sends_delayed, 0u);

  // Queue stays near the watermark, not thousands of packets.
  EXPECT_LT(max_queue_packets, 200u);

  // The bottleneck still carries close to its capacity: >= 60% of the
  // ~100 Mb/s over the run (ramp oscillation costs some).
  const double sent_bits =
      static_cast<double>(r1->port(2).stats().bytes_sent) * 8.0;
  EXPECT_GT(sent_bits, 0.6 * kBottleneck * 0.2);
  EXPECT_GT(delivered, 0);
}

TEST_F(BottleneckTest, SoftStateExpiresAfterQuiet) {
  build(/*with_cc=*/true);
  pump(20 * sim::kMicrosecond, 50 * sim::kMillisecond);
  sim.run_until(60 * sim::kMillisecond);
  SourceThrottle* throttle = fabric.throttle_of(*src);
  ASSERT_NE(throttle, nullptr);
  const FlowKey key{fabric.id_of(*r1), 2};
  // Under pressure the granted rate is finite.
  EXPECT_LT(throttle->rate(key), 1e12);
  // After the source stops, reports cease, the rate ramps up, and the
  // soft state disappears ("as soft cached state, it can be discarded").
  sim.run_until(300 * sim::kMillisecond);
  EXPECT_TRUE(std::isinf(throttle->rate(key)));
}

TEST_F(BottleneckTest, RouterControllerSeesNoFalseCongestion) {
  build(/*with_cc=*/true);
  // Gentle traffic well under the bottleneck: no reports should flow.
  pump(200 * sim::kMicrosecond, 50 * sim::kMillisecond);  // ~40 Mb/s
  sim.run_until(60 * sim::kMillisecond);
  SourceThrottle* throttle = fabric.throttle_of(*src);
  ASSERT_NE(throttle, nullptr);
  EXPECT_EQ(throttle->stats().reports_received, 0u);
  EXPECT_EQ(delivered,
            static_cast<int>(dst->stats().delivered));
  EXPECT_GT(delivered, 100);
}

TEST(ThrottleUnit, AcquirePacesAtGrantedRate) {
  sim::Simulator sim;
  net::PacketFactory packets;
  viper::ViperHost host(sim, "h", packets);
  SourceThrottle throttle(sim, host);

  const FlowKey key{5, 2};
  // No limit installed: sends go immediately.
  EXPECT_EQ(throttle.acquire(key, 1250), sim.now());
  EXPECT_TRUE(std::isinf(throttle.rate(key)));

  // Grant 1 Mb/s: a 1250-byte packet occupies 10 ms of budget.
  throttle.apply_report(RateReport{5, 2, 1e6});
  EXPECT_DOUBLE_EQ(throttle.rate(key), 1e6);
  const sim::Time t1 = throttle.acquire(key, 1250);
  const sim::Time t2 = throttle.acquire(key, 1250);
  EXPECT_EQ(t1, sim.now());
  EXPECT_EQ(t2 - t1, 10 * sim::kMillisecond);

  // An unrelated flow key is unaffected.
  EXPECT_EQ(throttle.acquire(FlowKey{6, 1}, 1250), sim.now());
}

TEST(FeedForward, StampTravelsOneHopAndRenewsGrants) {
  // Two-tier: source -> r0 -> r1 -> bottleneck -> sink, with feed-forward
  // enabled.  r0's shaped packets carry their backlog; r1 must keep
  // renewing the grant while that backlog persists even when its own
  // queue has drained below the watermark.
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.ff");
  auto& r0 = fabric.add_router("r0");
  auto& r1 = fabric.add_router("r1");
  auto& dst = fabric.add_host("dst.ff");
  dir::LinkParams fast;
  fast.rate_bps = 1e9;
  dir::LinkParams slow;
  slow.rate_bps = 1e8;
  fabric.connect(src, r0, fast);
  fabric.connect(r0, r1, fast);
  fabric.connect(r1, dst, slow);
  ControllerConfig config;
  config.interval = sim::kMillisecond;
  config.queue_watermark_bytes = 4'000;
  config.feed_forward = true;
  fabric.enable_congestion_control(config);

  core::SourceRoute route;
  route.segments = {p2p_segment(2), p2p_segment(2), local_segment()};
  // Blast 3x the bottleneck for 30 ms, then watch the renewals continue
  // while r0 drains its backlog.
  for (int i = 0; i < 1200; ++i) {
    sim.at(1 + i * 33 * sim::kMicrosecond, [&] {
      src.send(route, pattern_bytes(1000));
    });
  }
  sim.run_until(120 * sim::kMillisecond);

  auto* c0 = fabric.controller_of(r0);
  auto* c1 = fabric.controller_of(r1);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  // r0 shaped packets (took custody at least once)...
  EXPECT_GT(c0->stats().packets_shaped, 0u);
  // ...and r1 kept reporting well beyond the initial congestion episode.
  EXPECT_GT(c1->stats().reports_sent, 5u);
  // Everything eventually arrives (no loss at the 100 Mb/s port's default
  // unbounded buffer, but throughput was shaped).
  EXPECT_GT(dst.stats().delivered, 1000u);
}

TEST(ThrottleUnit, RampRemovesLimitWhenReportsStop) {
  sim::Simulator sim;
  net::PacketFactory packets;
  viper::ViperHost host(sim, "h", packets);
  ThrottleConfig config;
  config.ramp_interval = sim::kMillisecond;
  config.ramp_factor = 4.0;
  config.rate_ceiling_bps = 1e9;
  SourceThrottle throttle(sim, host, config);
  const FlowKey key{5, 2};
  throttle.apply_report(RateReport{5, 2, 1e6});
  // 1e6 * 4^k >= 1e9 at k = 5; each ramp tick is 1 ms.
  sim.run_until(10 * sim::kMillisecond);
  EXPECT_TRUE(std::isinf(throttle.rate(key)));
}

}  // namespace
}  // namespace srp::cc
