// Unit tests for the Sirpent architecture core: priorities, segments,
// trailer reversal, multicast encodings.
#include <gtest/gtest.h>

#include "core/multicast.hpp"
#include "core/segment.hpp"
#include "core/tos.hpp"
#include "core/trailer.hpp"

namespace srp::core {
namespace {

TEST(Priority, PaperOrdering) {
  // "Normal priority is 0 with 7 highest ... values with the high-order
  // bit set represent lower priorities, 0xF being the lowest."
  EXPECT_EQ(priority_rank(7), 7);
  EXPECT_EQ(priority_rank(0), 0);
  EXPECT_GT(priority_rank(1), priority_rank(0));
  EXPECT_GT(priority_rank(0), priority_rank(8));
  EXPECT_GT(priority_rank(8), priority_rank(0xF));
  // Full order: 7 > 6 > ... > 0 > 8 > 9 > ... > 15.
  int prev = priority_rank(7);
  for (std::uint8_t p : {6, 5, 4, 3, 2, 1, 0, 8, 9, 10, 11, 12, 13, 14, 15}) {
    EXPECT_LT(priority_rank(p), prev) << static_cast<int>(p);
    prev = priority_rank(p);
  }
}

TEST(Priority, OnlySixAndSevenPreempt) {
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(priority_preempts(static_cast<std::uint8_t>(p)),
              p == 6 || p == 7)
        << p;
  }
}

TEST(Segment, TruncationMarkerIsIllegal) {
  const HeaderSegment mark = HeaderSegment::truncation_marker();
  EXPECT_TRUE(mark.flags.trm);
  EXPECT_FALSE(mark.is_legal());
  HeaderSegment normal;
  EXPECT_TRUE(normal.is_legal());
}

TEST(SourceRoute, SetRpfMarksAll) {
  SourceRoute route;
  route.segments.resize(3);
  route.set_rpf();
  for (const auto& seg : route.segments) EXPECT_TRUE(seg.flags.rpf);
}

TEST(Trailer, ReturnRouteReversesEntries) {
  // Entries as routers appended them: first router first.
  std::vector<HeaderSegment> entries;
  for (std::uint8_t p : {3, 7, 2}) {
    HeaderSegment e;
    e.port = p;
    e.flags.vnt = true;
    entries.push_back(e);
  }
  const SourceRoute back = build_return_route(entries);
  // Last router's return hop comes first, then backwards, then local.
  ASSERT_EQ(back.segments.size(), 4u);
  EXPECT_EQ(back.segments[0].port, 2);
  EXPECT_EQ(back.segments[1].port, 7);
  EXPECT_EQ(back.segments[2].port, 3);
  EXPECT_EQ(back.segments[3].port, kLocalPort);
  for (const auto& seg : back.segments) EXPECT_TRUE(seg.flags.rpf);
}

TEST(Trailer, ReturnRouteCarriesPortInfoVerbatim) {
  HeaderSegment e;
  e.port = 5;
  e.port_info = {1, 2, 3, 4};
  const SourceRoute back = build_return_route({e});
  EXPECT_EQ(back.segments[0].port_info, (wire::Bytes{1, 2, 3, 4}));
}

TEST(Trailer, OriginEndpointInFinalSegment) {
  const wire::Bytes endpoint{9, 9, 9, 9, 9, 9, 9, 9};
  const SourceRoute back = build_return_route({}, endpoint);
  ASSERT_EQ(back.segments.size(), 1u);
  EXPECT_EQ(back.segments[0].port, kLocalPort);
  EXPECT_EQ(back.segments[0].port_info, endpoint);
  EXPECT_FALSE(back.segments[0].flags.vnt);
}

TEST(Trailer, ClassifyDetectsTruncationMark) {
  std::vector<HeaderSegment> raw;
  HeaderSegment normal;
  normal.port = 1;
  raw.push_back(normal);
  raw.push_back(HeaderSegment::truncation_marker());
  const TrailerInfo info = classify_trailer(raw);
  EXPECT_TRUE(info.truncated);
  ASSERT_EQ(info.entries.size(), 1u);
  EXPECT_EQ(info.entries[0].port, 1);
}

TEST(Trailer, EmptyTrailerMakesLocalOnlyRoute) {
  const SourceRoute back = build_return_route({});
  ASSERT_EQ(back.segments.size(), 1u);
  EXPECT_EQ(back.segments[0].port, kLocalPort);
}

TEST(Multicast, TreeInfoRoundTrip) {
  const std::vector<wire::Bytes> branches{{1, 2, 3}, {4, 5}, {}};
  const wire::Bytes info = encode_tree_info(branches);
  EXPECT_TRUE(is_tree_info(info));
  EXPECT_EQ(decode_tree_info(info), branches);
}

TEST(Multicast, TreeInfoRejectsBadInput) {
  EXPECT_THROW(encode_tree_info({}), wire::CodecError);
  wire::Bytes not_tree{0x00, 0x01};
  EXPECT_FALSE(is_tree_info(not_tree));
  wire::Bytes bad{kTreeInfoTag, 2, 0, 5, 1};  // claims 5 bytes, has 1
  EXPECT_THROW(decode_tree_info(bad), wire::CodecError);
}

TEST(Multicast, AgentPayloadRoundTrip) {
  AgentPayload payload;
  payload.member_routes = {{1, 1, 1}, {2, 2}};
  payload.data = {9, 8, 7};
  const wire::Bytes encoded = encode_agent_payload(payload);
  const AgentPayload back = decode_agent_payload(encoded);
  EXPECT_EQ(back.member_routes, payload.member_routes);
  EXPECT_EQ(back.data, payload.data);
}

TEST(Multicast, AgentPayloadEmptyMembers) {
  AgentPayload payload;
  payload.data = {1};
  const AgentPayload back =
      decode_agent_payload(encode_agent_payload(payload));
  EXPECT_TRUE(back.member_routes.empty());
  EXPECT_EQ(back.data, (wire::Bytes{1}));
}

}  // namespace
}  // namespace srp::core
