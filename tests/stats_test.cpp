// Unit tests for statistics and queueing analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"
#include "stats/queueing.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace srp::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(TimeWeighted, StepFunctionAverage) {
  TimeWeighted tw;
  tw.update(0.0, 2.0);   // value 2 on [0, 10)
  tw.update(10.0, 6.0);  // value 6 on [10, 20)
  tw.finish(20.0);
  EXPECT_DOUBLE_EQ(tw.average(), 4.0);
  EXPECT_DOUBLE_EQ(tw.max_value(), 6.0);
}

TEST(TimeWeighted, NoSamples) {
  TimeWeighted tw;
  tw.finish(10.0);
  EXPECT_DOUBLE_EQ(tw.average(), 0.0);
}

TEST(Queueing, Md1MatchesClosedForm) {
  // The paper's claim (§6.1): at <= 70% utilization the mean number in
  // system is about one packet or less, and mean wait is about half a
  // service time.
  EXPECT_NEAR(md1_mean_in_system(0.7), 0.7 + 0.49 / 0.6, 1e-12);
  EXPECT_LE(md1_mean_in_system(0.7), 1.52);
  EXPECT_NEAR(md1_mean_wait_service_units(0.5), 0.5, 1e-12);
  EXPECT_NEAR(md1_mean_wait_service_units(0.7), 7.0 / 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(md1_mean_in_queue(0.0), 0.0);
}

TEST(Queueing, Md1HalfOfMm1) {
  // M/D/1 waiting is exactly half of M/M/1 waiting at equal rho.
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(md1_mean_wait_service_units(rho),
                mm1_mean_wait_service_units(rho) / 2.0, 1e-12);
  }
}

TEST(Queueing, MG1GeneralizesBoth) {
  for (double rho : {0.2, 0.6, 0.8}) {
    EXPECT_NEAR(mg1_mean_wait_service_units(rho, 0.0),
                md1_mean_wait_service_units(rho), 1e-12);
    EXPECT_NEAR(mg1_mean_wait_service_units(rho, 1.0),
                mm1_mean_wait_service_units(rho), 1e-12);
  }
}

TEST(Queueing, SaturationIsInfinite) {
  EXPECT_TRUE(std::isinf(md1_mean_in_system(1.0)));
  EXPECT_TRUE(std::isinf(mm1_mean_in_system(1.2)));
  EXPECT_THROW(md1_mean_in_system(-0.1), std::invalid_argument);
}

TEST(LinearHistogram, BinningAndCdf) {
  LinearHistogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1);   // underflow
  h.add(100);  // overflow
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_NEAR(h.cdf(5.0), 6.0 / 12.0, 1e-12);  // underflow + bins 0..4
}

TEST(LinearHistogram, InvalidConstruction) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Table, RendersAlignedRows) {
  Table t("demo");
  t.columns({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  t.note("paper: reference note");
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("paper: reference note"), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0 / 0.0), "inf");
  EXPECT_EQ(Table::num(std::nan("")), "nan");
}

}  // namespace
}  // namespace srp::stats
