// Tests for the optional / forward-looking mechanisms: Blazenet-style
// delay lines (§2.1), token expiry, CVC call rejection, hierarchical
// switch structuring (§5), and transport-id process migration (§4.1).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cvc/host.hpp"
#include "cvc/switch.hpp"
#include "directory/fabric.hpp"
#include "test_util.hpp"
#include "transport/vmtp.hpp"

namespace srp {
namespace {

using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;

// ---------- Delay lines (paper §2.1) ----------

TEST(DelayLines, DeferInsteadOfDroppingTransientBursts) {
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.dl");
  auto& r = fabric.add_router("r1");
  auto& dst = fabric.add_host("dst.dl");
  dir::LinkParams fast;
  fast.rate_bps = 1e9;
  dir::LinkParams slow;
  slow.rate_bps = 1e8;
  fabric.connect(src, r, fast);
  fabric.connect(r, dst, slow);
  r.port(2).set_buffer_limit(2'500);  // two packets of queue, tops
  r.enable_delay_lines(200 * sim::kMicrosecond, /*max_recirculations=*/10);

  int delivered = 0;
  dst.set_default_handler([&](const viper::Delivery&) { ++delivered; });
  core::SourceRoute route;
  route.segments = {p2p_segment(2), local_segment()};
  // A 10-packet burst overruns the 2.5 KB buffer instantly...
  for (int i = 0; i < 10; ++i) src.send(route, pattern_bytes(1000));
  sim.run();
  // ...but the delay lines recirculate the overflow until the slow link
  // drains: nothing is lost.
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(r.port(2).stats().dropped_full, 0u);
  EXPECT_GT(r.port(2).stats().deflected, 0u);
  EXPECT_GT(r.stats().delay_line_loops, 0u);
}

TEST(DelayLines, RecirculationCapBoundsSustainedOverload) {
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.dl2");
  auto& r = fabric.add_router("r1");
  auto& dst = fabric.add_host("dst.dl2");
  dir::LinkParams fast;
  fast.rate_bps = 1e9;
  dir::LinkParams slow;
  slow.rate_bps = 1e7;  // 10 Mb/s: hopeless under this burst
  fabric.connect(src, r, fast);
  fabric.connect(r, dst, slow);
  r.port(2).set_buffer_limit(2'500);
  r.enable_delay_lines(50 * sim::kMicrosecond, /*max_recirculations=*/3);

  core::SourceRoute route;
  route.segments = {p2p_segment(2), local_segment()};
  for (int i = 0; i < 60; ++i) src.send(route, pattern_bytes(1000));
  sim.run_until(100 * sim::kMillisecond);
  // The cap turned sustained overload back into (bounded) loss instead of
  // packets circulating forever.
  EXPECT_GT(r.stats().delay_line_overflows, 0u);
  EXPECT_GT(r.port(2).stats().dropped_full, 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ---------- Token expiry ----------

TEST(TokenExpiry, ExpiredTokensRejectedAtTheRouter) {
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.exp");
  auto& r = fabric.add_router("r1");
  auto& dst = fabric.add_host("dst.exp");
  fabric.connect(src, r);
  fabric.connect(r, dst);
  fabric.enable_tokens(0xE1, true, tokens::UncachedPolicy::kBlocking,
                       10 * sim::kMicrosecond);
  dir::QueryOptions q;
  q.token_expiry_sec = 1;  // valid for the first simulated second only
  const auto routes =
      fabric.directory().query(fabric.id_of(src), "dst.exp", q);
  ASSERT_FALSE(routes.empty());

  int delivered = 0;
  dst.set_default_handler([&](const viper::Delivery&) { ++delivered; });
  viper::SendOptions options;
  options.out_port = routes[0].host_out_port;

  src.send(routes[0].route, pattern_bytes(50), options);
  sim.run();
  EXPECT_EQ(delivered, 1);  // inside the validity window

  sim.run_until(2 * sim::kSecond);  // let the token age past expiry
  src.send(routes[0].route, pattern_bytes(50), options);
  sim.run();
  EXPECT_EQ(delivered, 1);  // rejected now
  EXPECT_EQ(r.stats().dropped_expired_token, 1u);
}

// ---------- CVC rejection ----------

TEST(CvcReject, UnroutableSetupRejectedImmediately) {
  sim::Simulator sim;
  net::Network net(sim);
  auto& a = net.add<cvc::CvcHost>("a", net.packets());
  auto& s = net.add<cvc::CvcSwitch>("s", cvc::SwitchConfig{});
  auto& b = net.add<cvc::CvcHost>("b", net.packets());
  const net::LinkConfig cfg{1e9, 10 * sim::kMicrosecond, 1500};
  net.duplex(a, s, cfg);
  net.duplex(s, b, cfg);

  std::optional<std::optional<std::uint16_t>> outcome;
  sim::Time decided_at = 0;
  a.open({77}, [&](auto c) {  // port 77 does not exist at the switch
    outcome = c;
    decided_at = sim.now();
  });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->has_value());
  // Decided by the Reject, far faster than the 200 ms setup timeout.
  EXPECT_LT(decided_at, 5 * sim::kMillisecond);
  EXPECT_EQ(a.stats().setup_timeouts, 0u);
}

// ---------- Hierarchical switches (paper §5) ----------

TEST(HierarchicalSwitch, TwoStageFabricExtendsFanout) {
  // "We require that larger fan-out switches be structured hierarchically
  // as a series of switches, each with a fan-out of at most 255" — here a
  // root stage feeding 3 leaf stages of 4 hosts each; a route crosses two
  // segments inside the "one big switch".
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& src = fabric.add_host("src.h");
  auto& root = fabric.add_router("stage0");
  fabric.connect(src, root);  // root port 1
  std::vector<viper::ViperRouter*> leaves;
  std::vector<viper::ViperHost*> hosts;
  for (int l = 0; l < 3; ++l) {
    auto& leaf = fabric.add_router("stage1-" + std::to_string(l));
    fabric.connect(root, leaf);  // root ports 2..4, leaf port 1 up
    leaves.push_back(&leaf);
    for (int h = 0; h < 4; ++h) {
      auto& host = fabric.add_host("h" + std::to_string(l) + "_" +
                                   std::to_string(h) + ".h");
      fabric.connect(leaf, host);  // leaf ports 2..5
      hosts.push_back(&host);
    }
  }
  // Reach host (leaf 2, member 3) through the two stages.
  std::optional<viper::Delivery> got;
  hosts[11]->set_default_handler(
      [&](const viper::Delivery& d) { got = d; });
  core::SourceRoute route;
  route.segments = {p2p_segment(4), p2p_segment(5), local_segment()};
  src.send(route, pattern_bytes(64));
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->hops, 2u);  // two internal stages
  // The directory sees it the same way and round trips work.
  std::optional<viper::Delivery> back;
  src.set_default_handler([&](const viper::Delivery& d) { back = d; });
  hosts[11]->reply(*got, pattern_bytes(5));
  sim.run();
  ASSERT_TRUE(back.has_value());
  // The added stage costs only a cut-through decision, not a full store:
  // (paper: hierarchy "imposes no significant additional delay given the
  // use of cut-through routing at each stage").
  EXPECT_LT(got->delivered_at - got->sent_at, 50 * sim::kMicrosecond);
}

// ---------- Entity migration (paper §4.1) ----------

TEST(EntityMigration, TransportIdSurvivesMovingHosts) {
  // "The network-independent addressing in VMTP is used to support
  // process migration, multi-homed hosts and mobile hosts."  The entity
  // keeps its 64-bit id; only the route changes.
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  auto& client_host = fabric.add_host("client.mig");
  auto& r = fabric.add_router("r1");
  auto& host_a = fabric.add_host("a.mig");
  auto& host_b = fabric.add_host("b.mig");
  fabric.connect(client_host, r);
  fabric.connect(r, host_a);
  fabric.connect(r, host_b);

  constexpr std::uint64_t kService = 0x5EAF00D;
  vmtp::VmtpEndpoint client(sim, client_host, 0xC, {});
  auto serve = [](std::span<const std::uint8_t>, const viper::Delivery&) {
    return wire::Bytes{0xAA};
  };

  dir::QueryOptions q;
  q.dest_endpoint = kService;

  // Incarnation 1 on host A.
  auto service = std::make_unique<vmtp::VmtpEndpoint>(
      sim, host_a, kService, vmtp::VmtpConfig{});
  service->serve(serve);
  auto routes = fabric.directory().query(fabric.id_of(client_host),
                                         "a.mig", q);
  std::optional<vmtp::Result> r1v;
  client.invoke(routes[0], kService, pattern_bytes(8),
                [&](vmtp::Result res) { r1v = std::move(res); });
  sim.run();
  ASSERT_TRUE(r1v.has_value());
  EXPECT_TRUE(r1v->ok);

  // Migrate: tear down on A, re-incarnate on B with the SAME entity id.
  service.reset();  // unbinds from host A
  host_a.set_default_handler({});
  service = std::make_unique<vmtp::VmtpEndpoint>(sim, host_b, kService,
                                                 vmtp::VmtpConfig{});
  service->serve(serve);

  // The client just asks the directory for the service's new location;
  // its transport-level peer id is unchanged.
  routes = fabric.directory().query(fabric.id_of(client_host), "b.mig", q);
  std::optional<vmtp::Result> r2v;
  client.invoke(routes[0], kService, pattern_bytes(8),
                [&](vmtp::Result res) { r2v = std::move(res); });
  sim.run();
  ASSERT_TRUE(r2v.has_value());
  EXPECT_TRUE(r2v->ok);
  EXPECT_EQ(r2v->response, wire::Bytes{0xAA});

  // A stale packet sent to the OLD host is not accepted by anyone else:
  // host A has no binding left, so it lands in unknown_endpoint.
  auto stale = fabric.directory().query(fabric.id_of(client_host),
                                        "a.mig", q);
  client.invoke(stale[0], kService, pattern_bytes(8), [](vmtp::Result) {});
  sim.run_until(sim.now() + 50 * sim::kMillisecond);
  EXPECT_GT(host_a.stats().unknown_endpoint, 0u);
}

}  // namespace
}  // namespace srp
