// Differential batch-equivalence harness: the batched (arena-backed)
// data plane must be *observationally identical* to the per-packet
// reference path.  Because batch boundaries are aligned to event
// boundaries and every derived time comes from the arrival timestamps,
// not from when the drain pass runs, the simulation output — delivered
// bytes, span timelines, flow rollups, ledger state, fault counters —
// must be byte-identical for every batch size, including under a
// fixed-seed fault plan on the chaos diamond (drops, corruption,
// duplication, reordering, jitter, token poisoning, link flaps all on).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "directory/fabric.hpp"
#include "flow/observer.hpp"
#include "flow/plane.hpp"
#include "obs/recorder.hpp"
#include "test_util.hpp"
#include "viper/codec.hpp"

namespace srp::viper {
namespace {

using test::ChaosOutcome;
using test::expect_deterministic;
using test::fnv1a;
using test::local_segment;
using test::p2p_segment;
using test::pattern_bytes;
using test::run_chaos;

constexpr std::uint64_t kSeed = 0xBA7C4;

/// The batch sizes the differential sweep covers: degenerate (1), small,
/// the default, and larger-than-any-real-burst (64).
const std::size_t kBatchSizes[] = {1, 4, 16, 64};

std::function<void(dir::Fabric&)> batching_on(std::size_t max_burst) {
  return [max_burst](dir::Fabric& fabric) {
    viper::ViperRouter::BatchConfig config;
    config.max_burst = max_burst;
    fabric.enable_batching(config);
  };
}

TEST(BatchEquivalence, ChaosDigestIdenticalAcrossBatchSizes) {
  // Reference: the per-packet path, untouched.
  const ChaosOutcome reference = run_chaos(kSeed);
  EXPECT_GT(reference.ok, 0);
  EXPECT_NE(reference.response_hash, 0u);

  for (const std::size_t batch : kBatchSizes) {
    std::uint64_t arena_acquired = 0;
    const ChaosOutcome batched = run_chaos(
        kSeed, /*observer=*/{},
        [&](dir::Fabric& fabric) {
          for (const auto* router : fabric.routers()) {
            arena_acquired += router->arena().stats().acquired;
          }
        },
        batching_on(batch));
    EXPECT_EQ(batched, reference) << "batch size " << batch;
    // The equivalence is not vacuous: the arena-backed fast path really
    // carried traffic.
    EXPECT_GT(arena_acquired, 0u) << "batch size " << batch;
  }
}

/// All SpanRecord fields folded into one comparable key.  Spans recorded
/// within the same picosecond may land in the ring in a different order
/// (the burst flush writes them contiguously), so timelines are compared
/// as sorted multisets, which is order-blind only between equal-time
/// records — the timeline itself is pinned by the timestamps.
std::vector<std::string> span_multiset(const obs::FlightRecorder& recorder) {
  std::vector<std::string> keys;
  for (const auto& span : recorder.spans()) {
    std::ostringstream key;
    key << span.trace_id << '|' << span.hop << '|'
        << static_cast<int>(span.kind) << '|'
        << static_cast<int>(span.token) << '|' << span.cut_through << '|'
        << span.in_port << '|' << span.out_port << '|' << span.start << '|'
        << span.decision << '|' << span.end << '|' << span.queue_delay
        << '|' << span.component_view() << '|';
    for (std::size_t i = 0; i < span.excerpt_len; ++i) {
      key << static_cast<int>(span.excerpt[i]) << ',';
    }
    keys.push_back(std::move(key).str());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(BatchEquivalence, SpanTimelinesIdenticalUnderFaults) {
  stats::Registry ref_registry;
  obs::FlightRecorder ref_recorder(std::size_t{1} << 18);
  const ChaosOutcome reference =
      run_chaos(kSeed, {&ref_registry, &ref_recorder});
  EXPECT_GT(ref_recorder.recorded(), 0u);
  // The ring must not have wrapped, or the multiset comparison would only
  // see a suffix.
  ASSERT_EQ(ref_recorder.dropped(), 0u);

  stats::Registry batch_registry;
  obs::FlightRecorder batch_recorder(std::size_t{1} << 18);
  const ChaosOutcome batched = run_chaos(
      kSeed, {&batch_registry, &batch_recorder}, {}, batching_on(16));

  EXPECT_EQ(batched, reference);
  EXPECT_EQ(batch_recorder.recorded(), ref_recorder.recorded());
  EXPECT_EQ(span_multiset(batch_recorder), span_multiset(ref_recorder));
  EXPECT_EQ(batch_registry.snapshot(), ref_registry.snapshot());
}

/// Ledger + flow-plane rollup digest of a chaos run.
test::ChaosDigest accounting_digest(std::size_t batch) {
  flow::FlowPlane plane(flow::FlowConfig{256, 64, 0x5EED});
  test::ChaosDigest digest;
  const ChaosOutcome outcome = run_chaos(
      kSeed, obs::Observer{nullptr, nullptr, &plane},
      [&](dir::Fabric& fabric) {
        for (const auto& [account, usage] : fabric.ledger().all()) {
          digest["ledger." + std::to_string(account) + ".packets"] =
              usage.packets;
          digest["ledger." + std::to_string(account) + ".bytes"] =
              usage.bytes;
        }
      },
      batch == 0 ? std::function<void(dir::Fabric&)>{} : batching_on(batch));
  for (const auto& [account, charge] : plane.account_rollup()) {
    digest["flow." + std::to_string(account) + ".packets"] = charge.packets;
    digest["flow." + std::to_string(account) + ".bytes"] = charge.bytes;
  }
  std::uint64_t sampled = 0;
  for (const auto* observer : plane.observers()) {
    sampled += observer->sampled();
    digest["table." + observer->name() + ".recorded"] =
        observer->table().stats().recorded;
  }
  digest["flow.sampled"] = sampled;
  digest["chaos.ok"] = static_cast<std::uint64_t>(outcome.ok);
  digest["chaos.response_hash"] = outcome.response_hash;
  return digest;
}

TEST(BatchEquivalence, FlowRollupsAndLedgerIdenticalAcrossBatchSizes) {
  const test::ChaosDigest reference = accounting_digest(0);
  EXPECT_FALSE(reference.empty());
  for (const std::size_t batch : kBatchSizes) {
    EXPECT_EQ(accounting_digest(batch), reference)
        << "batch size " << batch;
  }
}

// ---------------------------------------------------------------------------
// Faultless byte-exactness: a fan-in topology (four sources into one
// router, so same-instant arrivals form real multi-packet bursts) where
// every delivery's bytes, rebuilt return route and timestamps are pinned
// exactly against the per-packet path.

struct DeliveryRecord {
  std::uint64_t packet_id = 0;
  std::string key;

  bool operator<(const DeliveryRecord& other) const {
    return packet_id < other.packet_id;
  }
  bool operator==(const DeliveryRecord&) const = default;
};

std::vector<DeliveryRecord> run_fan_in(std::size_t batch) {
  sim::Simulator sim;
  dir::Fabric fabric(sim);
  std::vector<viper::ViperHost*> sources;
  for (int i = 0; i < 4; ++i) {
    sources.push_back(&fabric.add_host("s" + std::to_string(i) + ".fan"));
  }
  auto& r1 = fabric.add_router("r1");
  auto& r2 = fabric.add_router("r2");
  auto& dst = fabric.add_host("dst.fan");
  for (auto* src : sources) fabric.connect(*src, r1);  // r1 ports 1..4
  fabric.connect(r1, r2);                              // r1 port 5
  fabric.connect(r2, dst);                             // r2 port 2
  if (batch != 0) batching_on(batch)(fabric);

  std::vector<DeliveryRecord> records;
  dst.set_default_handler([&](const viper::Delivery& d) {
    std::ostringstream key;
    key << d.sent_at << '|' << d.delivered_at << '|' << d.hops << '|'
        << d.truncated << '|' << d.in_port << '|' << d.flow << '|'
        << fnv1a(d.data) << '|'
        << fnv1a(viper::encode_route(d.return_route));
    records.push_back({d.packet_id, std::move(key).str()});
  });

  core::SourceRoute route;
  route.segments.push_back(p2p_segment(5));
  route.segments.push_back(p2p_segment(2));
  route.segments.push_back(local_segment());
  // 50 rounds; each round all four sources send at the *same instant*, so
  // their packets reach r1 on four different in-ports within one event
  // window and the drain really sees multi-packet bursts.
  for (int round = 0; round < 50; ++round) {
    const auto at = static_cast<sim::Time>((round + 1) * sim::kMillisecond);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      sim.at(at, [&, round, i] {
        viper::SendOptions options;
        options.flow = i + 1;
        sources[i]->send(
            route,
            pattern_bytes(1 + ((round * 131 + i * 37) % 900),
                          static_cast<std::uint8_t>(round + i)),
            options);
      });
    }
  }
  sim.run();
  EXPECT_EQ(records.size(), 200u);
  if (batch != 0) {
    // The fan-in really formed arena-backed bursts on both routers.
    EXPECT_TRUE(r1.batching_enabled());
    EXPECT_GT(r1.arena().stats().acquired, 0u);
    EXPECT_GT(r2.arena().stats().acquired, 0u);
    // Slabs recycle once the downstream copies retire (zero-copy claim:
    // the steady state runs out of the pool, not the allocator).
    EXPECT_GT(r1.arena().stats().recycled, 0u);
  }
  std::sort(records.begin(), records.end());
  return records;
}

TEST(BatchEquivalence, FanInDeliveriesByteExactAcrossBatchSizes) {
  const auto reference = run_fan_in(0);
  for (const std::size_t batch : kBatchSizes) {
    EXPECT_EQ(run_fan_in(batch), reference) << "batch size " << batch;
  }
}

TEST(BatchReplay, BatchedChaosRunIsDeterministic) {
  expect_deterministic(
      [] { return run_chaos(kSeed, {}, {}, batching_on(16)); });
}

}  // namespace
}  // namespace srp::viper
